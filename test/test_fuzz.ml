(* Tests for the fuzzing subsystem (lib/fuzz): mutant determinism, the
   ddmin shrinker, the totality properties as a qcheck over random mutant
   streams, and the regression-corpus replay that tier-1 pins. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let string_t = Alcotest.string
let int_t = Alcotest.int

let cisco_corpus = Fuzz.Corpus.texts Fuzz.Corpus.Cisco
let junos_corpus = Fuzz.Corpus.texts Fuzz.Corpus.Junos

(* ------------------------------------------------------------------ *)
(* Mutator                                                             *)
(* ------------------------------------------------------------------ *)

let test_mutator_deterministic () =
  (* The mutant is a pure function of (seed, round, corpus): regenerating
     it — in another process, after a crash, on another machine — yields
     byte-identical input, which is what makes every escape replayable. *)
  List.iter
    (fun (seed, round) ->
      check string_t
        (Printf.sprintf "mutant (%d, %d) reproducible" seed round)
        (Fuzz.Mutator.mutant ~seed ~round ~corpus:cisco_corpus)
        (Fuzz.Mutator.mutant ~seed ~round ~corpus:cisco_corpus))
    [ (1, 0); (1, 39); (7, 12); (999, 3) ];
  (* Distinct rounds explore distinct inputs (not all, but most). *)
  let distinct =
    List.sort_uniq compare
      (List.init 50 (fun round ->
           Fuzz.Mutator.mutant ~seed:1 ~round ~corpus:cisco_corpus))
  in
  check bool_t "rounds diversify" true (List.length distinct > 25)

let test_mutator_bounded () =
  for round = 0 to 99 do
    let m = Fuzz.Mutator.mutant ~seed:3 ~round ~corpus:junos_corpus in
    if String.length m > Fuzz.Mutator.max_mutant_bytes then
      Alcotest.failf "round %d mutant is %dB (cap %dB)" round (String.length m)
        Fuzz.Mutator.max_mutant_bytes
  done

let test_weighted_deterministic_given_history () =
  (* Two campaigns that paid the same rewards draw identical mutants: the
     schedule changes which operators are picked, never the stream. *)
  let campaign () =
    let h = Fuzz.Mutator.history () in
    Fuzz.Mutator.reward h ~op:0 3;
    Fuzz.Mutator.reward h ~op:5 7;
    List.init 20 (fun round ->
        Fuzz.Mutator.weighted_mutant ~seed:4 ~round ~corpus:cisco_corpus ~history:h)
  in
  check bool_t "weighted campaign reproducible" true (campaign () = campaign ());
  (* With an all-zero history the weighted schedule is uniform over ops, so
     it reports 1–4 applied operator indices per mutant. *)
  let h = Fuzz.Mutator.history () in
  List.iter
    (fun round ->
      let _, ops =
        Fuzz.Mutator.weighted_mutant ~seed:4 ~round ~corpus:cisco_corpus ~history:h
      in
      let n = List.length ops in
      if n < 1 || n > 4 then Alcotest.failf "round %d applied %d ops" round n;
      List.iter
        (fun op ->
          if op < 0 || op >= Fuzz.Mutator.n_ops then
            Alcotest.failf "round %d reported op %d" round op)
        ops)
    [ 0; 1; 2; 3; 4 ]

let test_weighted_bias () =
  (* A heavily rewarded operator dominates the schedule. *)
  let h = Fuzz.Mutator.history () in
  Fuzz.Mutator.reward h ~op:1 1000;
  let hits = ref 0 and total = ref 0 in
  for round = 0 to 49 do
    let _, ops =
      Fuzz.Mutator.weighted_mutant ~seed:8 ~round ~corpus:cisco_corpus ~history:h
    in
    List.iter
      (fun op ->
        incr total;
        if op = 1 then incr hits)
      ops
  done;
  check bool_t
    (Printf.sprintf "rewarded op dominates (%d/%d draws)" !hits !total)
    true
    (!hits * 10 > !total * 9);
  check int_t "score readable" 1000 (Fuzz.Mutator.score h ~op:1)

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)
(* ------------------------------------------------------------------ *)

let test_shrink_minimal () =
  let input =
    "hostname router1\ninterface Loopback0\n ip address Z 10.0.0.1\n\
     router bgp 65000\n neighbor 1.2.3.4 remote-as 65001\n"
  in
  let still_failing s = String.contains s 'Z' in
  let m = Fuzz.Shrink.minimize ~still_failing input in
  (* Line pass isolates the poisoned line, char pass strips it to the
     single byte the predicate needs. *)
  check string_t "1-byte trigger" "Z" m

let test_shrink_result_still_fails () =
  let still_failing s =
    String.length s >= 3 && String.contains s '{' && String.contains s '}'
  in
  let input = String.concat "\n" (List.init 40 (fun i -> Printf.sprintf "line%d { x; }" i)) in
  let m = Fuzz.Shrink.minimize ~still_failing input in
  check bool_t "minimized input still fails" true (still_failing m);
  check bool_t "and shrank" true (String.length m < String.length input)

let test_shrink_passing_input_untouched () =
  let input = "nothing wrong here" in
  check string_t "non-failing input returned unchanged" input
    (Fuzz.Shrink.minimize ~still_failing:(fun _ -> false) input)

(* ------------------------------------------------------------------ *)
(* Totality as a qcheck property                                       *)
(* ------------------------------------------------------------------ *)

(* Any (seed, round) mutant of either corpus must satisfy every pipeline
   property — guarded parse, print/reparse/reprint fixpoint, differ, both
   sims. This is the F1 gate's core restated over a random sample of the
   mutant space instead of a fixed sweep. *)
let prop_pipeline_total =
  QCheck2.Test.make ~name:"fuzz: every pipeline stage total on mutants" ~count:40
    ~print:(fun (seed, round, junos) ->
      Printf.sprintf "seed=%d round=%d dialect=%s" seed round
        (if junos then "junos" else "cisco"))
    QCheck2.Gen.(tup3 (int_range 1 10_000) (int_range 0 200) bool)
    (fun (seed, round, junos) ->
      let dialect = if junos then Fuzz.Corpus.Junos else Fuzz.Corpus.Cisco in
      let corpus = Fuzz.Corpus.texts dialect in
      let m = Fuzz.Mutator.mutant ~seed ~round ~corpus in
      Fuzz.Props.check dialect m = [])

(* ------------------------------------------------------------------ *)
(* Regression corpus                                                   *)
(* ------------------------------------------------------------------ *)

let test_corpus_replay_clean () =
  (* dune runtest materializes test/corpus next to the executable; a bare
     `dune exec test/test_fuzz.exe` runs from the project root instead. *)
  let dir =
    List.find_opt
      (fun d -> Sys.file_exists d && Sys.is_directory d)
      [ "corpus"; "test/corpus"; "../test/corpus" ]
  in
  let results = Fuzz.Props.replay_dir (Option.value dir ~default:"corpus") in
  check bool_t "corpus present (dune copies test/corpus)" true
    (List.length results >= 6);
  List.iter
    (fun (file, escapes) ->
      List.iter
        (fun e ->
          Alcotest.failf "regression crasher %s escaped: %s" file
            (Fuzz.Props.escape_to_string e))
        escapes)
    results

let test_promote_idempotent () =
  let dir = Filename.temp_file "cosynth-promote" "" in
  Sys.remove dir;
  let mk ?(dialect = Fuzz.Corpus.Cisco) ~stage ~ctor ~input () =
    {
      Fuzz.Props.dialect;
      violation =
        { Fuzz.Props.property = "total-parse"; stage; constructor = ctor;
          detail = "boom" };
      fingerprint = "cafecafe";
      seed = 1;
      round = 0;
      input;
      minimized = input;
    }
  in
  let e1 = mk ~stage:"cisco-parse" ~ctor:"Failure" ~input:"hostname r1" () in
  let e2 = mk ~stage:"cisco-parse" ~ctor:"Failure" ~input:"hostname r2" () in
  let e3 =
    mk ~dialect:Fuzz.Corpus.Junos ~stage:"junos-print" ~ctor:"Not_found"
      ~input:"system { }" ()
  in
  (* Two escapes in one bucket promote once; the Junos bucket gets the
     dialect prefix so replay parses it under the right grammar. *)
  let written = Fuzz.Props.promote ~dir [ e1; e2; e3 ] in
  check int_t "one file per new bucket" 2 (List.length written);
  check bool_t "junos bucket carries the dialect prefix" true
    (List.exists
       (fun (name, _) -> String.length name >= 6 && String.sub name 0 6 = "junos-")
       written);
  List.iter
    (fun (name, (e : Fuzz.Props.escape)) ->
      let path = Filename.concat dir name in
      check bool_t (name ^ " written") true (Sys.file_exists path);
      check string_t (name ^ " holds the minimized trigger")
        e.Fuzz.Props.minimized
        (In_channel.with_open_bin path In_channel.input_all))
    written;
  (* The bucket slug lives in the filename: a second campaign hitting the
     same buckets promotes nothing. *)
  check int_t "idempotent across campaigns" 0
    (List.length (Fuzz.Props.promote ~dir [ e2; e1; e3 ]));
  (* Promoted entries replay before the long-stable seeds — the youngest
     regressions fail the gate first. *)
  Out_channel.with_open_bin (Filename.concat dir "aa-stable-seed.txt")
    (fun oc -> Out_channel.output_string oc "hostname stable");
  (match Fuzz.Props.replay_dir dir with
  | [] -> Alcotest.fail "replay_dir missed the corpus"
  | (first, _) :: rest ->
      check bool_t "a promoted entry replays first" true
        (String.length first >= 9
        && (String.sub first 0 9 = "promoted-"
           || String.sub first 0 15 = "junos-promoted-"));
      check string_t "stable seed replays last" "aa-stable-seed.txt"
        (fst (List.nth rest (List.length rest - 1))));
  (* Benign triggers replay clean end to end. *)
  List.iter
    (fun (file, escapes) ->
      if escapes <> [] then Alcotest.failf "promoted trigger %s re-escaped" file)
    (Fuzz.Props.replay_dir dir);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let test_promote_crash_atomic () =
  (* Promotion rides Store.write_atomic, which is three faultable ops
     (write tmp, fsync tmp, rename). Crash at each: the corpus entry is
     absent or whole — never a truncated seed — any [*.tmp] leftover is
     invisible to replay, and a fault-free retry lands the bucket. *)
  let dir = Filename.temp_file "cosynth-promote-crash" "" in
  Sys.remove dir;
  let e =
    {
      Fuzz.Props.dialect = Fuzz.Corpus.Cisco;
      violation =
        { Fuzz.Props.property = "total-parse"; stage = "cisco-parse";
          constructor = "Failure"; detail = "boom" };
      fingerprint = "cafecafe";
      seed = 1;
      round = 0;
      input = "hostname r1";
      minimized = "hostname r1";
    }
  in
  let target = Filename.concat dir "promoted-cisco-parse-failure.txt" in
  Fun.protect
    ~finally:(fun () ->
      Resilience.Diskchaos.uninstall ();
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () ->
      for crash_after = 0 to 2 do
        Resilience.Diskchaos.install
          (Resilience.Diskchaos.make ~crash_after ~seed:(100 + crash_after) ());
        (match Fuzz.Props.promote ~dir [ e ] with
        | _ -> Alcotest.failf "write point %d did not crash" crash_after
        | exception Resilience.Diskchaos.Crashed _ -> ());
        Resilience.Diskchaos.uninstall ();
        if Sys.file_exists target then
          check string_t
            (Printf.sprintf "write point %d: target whole" crash_after)
            e.Fuzz.Props.minimized
            (In_channel.with_open_bin target In_channel.input_all);
        (* The crash may strand a [*.tmp]; replay must never pick it up. *)
        List.iter
          (fun (f, _) ->
            check bool_t (f ^ " is not a temp leftover") false
              (Filename.check_suffix f ".tmp"))
          (Fuzz.Props.replay_dir dir)
      done;
      (* Every crash point dies before the rename installs the target, so
         the bucket is still open and a fault-free retry promotes it. *)
      check int_t "retry promotes the open bucket" 1
        (List.length (Fuzz.Props.promote ~dir [ e ]));
      check bool_t "retry landed the bucket" true (Sys.file_exists target);
      check string_t "converged to the whole seed" e.Fuzz.Props.minimized
        (In_channel.with_open_bin target In_channel.input_all))

let test_canary_caught_and_minimized () =
  Resilience.Guard.reset ();
  match Fuzz.Props.canary ~max_rounds:200 () with
  | Error msg -> Alcotest.fail msg
  | Ok e ->
      check string_t "attributed to the planted stage" "cisco-parse/planted"
        e.Fuzz.Props.violation.Fuzz.Props.stage;
      check string_t "constructor recovered" "Failure"
        e.Fuzz.Props.violation.Fuzz.Props.constructor;
      check bool_t "shrunk to a handful of bytes" true
        (String.length e.Fuzz.Props.minimized <= 4);
      check bool_t "fingerprint present" true
        (String.length e.Fuzz.Props.fingerprint > 0)

let props = List.map QCheck_alcotest.to_alcotest [ prop_pipeline_total ]

let () =
  Alcotest.run "fuzz"
    [
      ( "mutator",
        [
          Alcotest.test_case "deterministic" `Quick test_mutator_deterministic;
          Alcotest.test_case "size bounded" `Quick test_mutator_bounded;
          Alcotest.test_case "weighted schedule deterministic" `Quick
            test_weighted_deterministic_given_history;
          Alcotest.test_case "weighted schedule biased by reward" `Quick
            test_weighted_bias;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "minimal trigger" `Quick test_shrink_minimal;
          Alcotest.test_case "result still fails" `Quick test_shrink_result_still_fails;
          Alcotest.test_case "passing input untouched" `Quick
            test_shrink_passing_input_untouched;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "regression replay clean" `Quick test_corpus_replay_clean;
          Alcotest.test_case "promotion idempotent + replay order" `Quick
            test_promote_idempotent;
          Alcotest.test_case "promotion atomic under crashes" `Quick
            test_promote_crash_atomic;
          Alcotest.test_case "canary caught + minimized" `Slow
            test_canary_caught_and_minimized;
        ] );
      ("properties", props);
    ]
