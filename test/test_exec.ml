(* Tests for the parallel execution engine (lib/exec): pool determinism —
   parallel sweeps must be bit-identical to sequential maps — memo-cache
   correctness for the Batfish-style syntax check, and the driver fixes
   that ride along (hub lookup by name in the global phase, infinite
   leverage handling). *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let cisco_text = Cisco.Samples.border_router

(* A shared pool for the whole file; 4 workers regardless of the machine so
   the parallel path is exercised even on single-core CI. *)
let pool = Exec.Pool.create ~domains:4 ()

exception Boom of int

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_map_ordering () =
  let xs = List.init 50 (fun i -> i) in
  check (Alcotest.list int_t) "results in input order"
    (List.map (fun x -> x * x) xs)
    (Exec.Pool.map pool (fun x -> x * x) xs);
  check (Alcotest.list int_t) "empty input" [] (Exec.Pool.map pool (fun x -> x) [])

let test_pool_map_exception () =
  match Exec.Pool.map pool (fun x -> if x = 3 then raise (Boom x) else x) [ 1; 2; 3; 4 ] with
  | _ -> Alcotest.fail "expected the job exception to propagate"
  | exception Boom 3 -> ()

let test_pool_nested_map () =
  (* A job that maps on the same pool must not deadlock (the waiting caller
     helps drain the queue). *)
  let inner n = Exec.Pool.map pool (fun i -> i + n) [ 1; 2; 3 ] in
  let out = Exec.Pool.map pool (fun n -> List.fold_left ( + ) 0 (inner n)) [ 10; 20 ] in
  check (Alcotest.list int_t) "nested results" [ 36; 66 ] out

let test_pool_sequential_fallback () =
  let p0 = Exec.Pool.create ~domains:0 () in
  check int_t "size 0" 0 (Exec.Pool.size p0);
  check (Alcotest.list int_t) "runs on caller" [ 2; 4 ] (Exec.Pool.map p0 (fun x -> 2 * x) [ 1; 2 ]);
  Exec.Pool.shutdown p0

let test_pool_stats () =
  let p = Exec.Pool.create ~domains:2 () in
  ignore (Exec.Pool.map p (fun x -> x + 1) (List.init 10 (fun i -> i)));
  let s = Exec.Pool.stats p in
  check int_t "domains" 2 s.Exec.Pool.domains;
  check bool_t "jobs counted" true (s.Exec.Pool.jobs_completed >= 10);
  check bool_t "utilization in range" true
    (Exec.Pool.utilization s >= 0. && Exec.Pool.utilization s <= 1.);
  Exec.Pool.shutdown p

(* ------------------------------------------------------------------ *)
(* Sweep determinism: parallel == sequential, bit for bit              *)
(* ------------------------------------------------------------------ *)

let md t = Cosynth.Driver.transcript_to_markdown ~title:"run" t

let test_sweep_translation_deterministic () =
  let seeds = Exec.Sweep.seeds ~base:100 ~n:12 in
  let run seed =
    (Cosynth.Driver.run_translation ~seed ~cisco_text ()).Cosynth.Driver.transcript
  in
  let seq = Exec.Sweep.run_seeds ~seeds run in
  let par = Exec.Sweep.run_seeds ~pool ~seeds run in
  check int_t "same length" (List.length seq) (List.length par);
  List.iter2
    (fun a b ->
      check bool_t "transcript byte-identical" true (md a = md b);
      check bool_t "leverage identical" true
        (Cosynth.Driver.leverage a = Cosynth.Driver.leverage b))
    seq par

let test_sweep_no_transit_deterministic () =
  let seeds = Exec.Sweep.seeds ~base:300 ~n:10 in
  let run ?pool seed =
    let r = Cosynth.Driver.run_no_transit ~seed ?pool ~routers:5 () in
    (r.Cosynth.Driver.transcript, r.Cosynth.Driver.global_ok)
  in
  (* Fully sequential vs: seeds on the pool AND per-router fan-out on the
     pool — the strongest form of the acceptance bar. *)
  let seq = Exec.Sweep.run_seeds ~seeds (fun s -> run s) in
  let par = Exec.Sweep.run_seeds ~pool ~seeds (fun s -> run ~pool s) in
  List.iter2
    (fun (ta, oka) (tb, okb) ->
      check bool_t "transcript byte-identical" true (md ta = md tb);
      check bool_t "global_ok identical" true (oka = okb))
    seq par

let test_run_no_transit_pool_equals_sequential () =
  List.iter
    (fun seed ->
      let a = Cosynth.Driver.run_no_transit ~seed ~routers:7 () in
      let b = Cosynth.Driver.run_no_transit ~seed ~pool ~routers:7 () in
      check bool_t "transcript byte-identical" true
        (md a.Cosynth.Driver.transcript = md b.Cosynth.Driver.transcript);
      check bool_t "configs identical" true
        (List.map fst a.Cosynth.Driver.configs = List.map fst b.Cosynth.Driver.configs);
      check bool_t "verification identical" true
        (a.Cosynth.Driver.per_router_verified = b.Cosynth.Driver.per_router_verified))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Memo cache                                                          *)
(* ------------------------------------------------------------------ *)

let draft_corpus () =
  let junos = Juniper.Printer.print (Juniper.Translate.of_cisco_ir (fst (Cisco.Parser.parse cisco_text))) in
  let star = Netcore.Star.make ~routers:3 in
  let hub = (List.hd (Cosynth.Modularizer.plan star)).Cosynth.Modularizer.correct in
  let hub_text = Cisco.Printer.print hub in
  let broken_cisco = "ip community-list standard CL permit .+\nrouter bgp\n" in
  let broken_junos = "policy-options prefix-list p 1.2.3.0/24-32\n{{{\n" in
  [
    (Batfish.Parse_check.Junos, junos);
    (Batfish.Parse_check.Cisco_ios, hub_text);
    (Batfish.Parse_check.Cisco_ios, cisco_text);
    (Batfish.Parse_check.Cisco_ios, broken_cisco);
    (Batfish.Parse_check.Junos, broken_junos);
    (Batfish.Parse_check.Cisco_ios, "");
    (Batfish.Parse_check.Junos, "garbage in, diagnostics out");
  ]

let test_memo_matches_uncached () =
  Exec.Memo.reset ();
  List.iter
    (fun (dialect, text) ->
      let ir_m, diags_m = Exec.Memo.check dialect text in
      let ir_u, diags_u = Batfish.Parse_check.check dialect text in
      check bool_t "diagnostics identical" true (diags_m = diags_u);
      let print ir =
        match dialect with
        | Batfish.Parse_check.Cisco_ios -> Cisco.Printer.print ir
        | Batfish.Parse_check.Junos -> Juniper.Printer.print ir
      in
      check bool_t "IR identical" true (print ir_m = print ir_u))
    (draft_corpus ())

let test_memo_hits () =
  Exec.Memo.reset ();
  let corpus = draft_corpus () in
  List.iter (fun (d, t) -> ignore (Exec.Memo.check d t)) corpus;
  let s1 = Exec.Memo.stats () in
  check int_t "all misses on first pass" (List.length corpus) s1.Exec.Memo.misses;
  check int_t "no hits yet" 0 s1.Exec.Memo.hits;
  List.iter (fun (d, t) -> ignore (Exec.Memo.check d t)) corpus;
  let s2 = Exec.Memo.stats () in
  check int_t "all hits on second pass" (List.length corpus) s2.Exec.Memo.hits;
  check int_t "no new misses" s1.Exec.Memo.misses s2.Exec.Memo.misses;
  check bool_t "hit rate 0.5" true (abs_float (Exec.Memo.hit_rate s2 -. 0.5) < 1e-9);
  (* Same text under the other dialect is a distinct key. *)
  let d, t = List.hd corpus in
  let other =
    match d with
    | Batfish.Parse_check.Junos -> Batfish.Parse_check.Cisco_ios
    | Batfish.Parse_check.Cisco_ios -> Batfish.Parse_check.Junos
  in
  ignore (Exec.Memo.check other t);
  check int_t "dialect in the key" (s2.Exec.Memo.misses + 1) (Exec.Memo.stats ()).Exec.Memo.misses

let test_memo_thread_safe () =
  Exec.Memo.reset ();
  let corpus = draft_corpus () in
  let results =
    Exec.Pool.map pool
      (fun i ->
        let d, t = List.nth corpus (i mod List.length corpus) in
        snd (Exec.Memo.check d t))
      (List.init 32 (fun i -> i))
  in
  List.iteri
    (fun i diags ->
      let d, t = List.nth corpus (i mod List.length corpus) in
      check bool_t "concurrent result correct" true
        (diags = snd (Batfish.Parse_check.check d t)))
    results

let test_memo_scope () =
  Exec.Memo.reset ();
  let corpus = draft_corpus () in
  List.iter (fun (d, t) -> ignore (Exec.Memo.check d t)) corpus;
  (* A scope opened now must see only what happens after it — the warm
     cache turns the replay into pure hits. *)
  let sc = Exec.Memo.scope () in
  List.iter (fun (d, t) -> ignore (Exec.Memo.check d t)) corpus;
  let s = Exec.Memo.scope_stats sc in
  check int_t "scope sees only its own hits" (List.length corpus) s.Exec.Memo.hits;
  check int_t "scope sees no earlier misses" 0 s.Exec.Memo.misses;
  (* reset_stats zeroes the counters but keeps the table warm. *)
  Exec.Memo.reset_stats ();
  let s0 = Exec.Memo.stats () in
  check int_t "counters zeroed" 0 (s0.Exec.Memo.hits + s0.Exec.Memo.misses);
  check bool_t "entries survive" true (s0.Exec.Memo.entries > 0);
  ignore (Exec.Memo.check (fst (List.hd corpus)) (snd (List.hd corpus)));
  check int_t "warm table still hits" 1 (Exec.Memo.stats ()).Exec.Memo.hits

(* ------------------------------------------------------------------ *)
(* Supervisor: the exception/chaos boundary                            *)
(* ------------------------------------------------------------------ *)

let outcome_t =
  Alcotest.testable
    (fun ppf (o : int Exec.Supervisor.outcome) ->
      match o with
      | Exec.Supervisor.Completed v -> Format.fprintf ppf "Completed %d" v
      | Exec.Supervisor.Abandoned { attempts; reason } ->
          Format.fprintf ppf "Abandoned (%d, %s)" attempts reason)
    ( = )

let test_supervisor_rate0_identity () =
  let xs = List.init 40 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = List.map (fun x -> Exec.Supervisor.Completed (f x)) xs in
  check (Alcotest.list outcome_t) "no plan, sequential" expected
    (Exec.Supervisor.map f xs);
  check (Alcotest.list outcome_t) "no plan, pooled" expected
    (Exec.Supervisor.map ~pool f xs);
  (* A rate-0 plan draws and never loses. *)
  let plan = Resilience.Chaos.worker_plan (Resilience.Chaos.make ~seed:9 ()) ~salt:0 in
  check (Alcotest.list outcome_t) "rate-0 plan, pooled" expected
    (Exec.Supervisor.map ~pool ~plan f xs)

let test_supervisor_exception_boundary () =
  let policy = { Exec.Supervisor.max_attempts = 3 } in
  let out =
    Exec.Supervisor.map ~pool ~policy
      (fun x -> if x = 2 then raise (Boom x) else x * 10)
      [ 0; 1; 2; 3 ]
  in
  (* The poisoned task is data, not a sweep-killing exception, and the
     other results are all present and ordered. *)
  check (Alcotest.list int_t) "survivors intact in order" [ 0; 10; 30 ]
    (List.filter_map Exec.Supervisor.completed out);
  match List.nth out 2 with
  | Exec.Supervisor.Abandoned { attempts; reason } ->
      check int_t "budget spent" 3 attempts;
      check bool_t "reason carries the exception" true
        (String.length reason > 0)
  | Exec.Supervisor.Completed _ -> Alcotest.fail "task 2 must be abandoned"

let test_supervisor_abandonment_deterministic () =
  (* An always-lose plan abandons everything with the full budget spent,
     and the losses never raise even without a pool. *)
  let plan ~index:_ ~attempt:_ = Some Exec.Supervisor.At_dispatch in
  let out = Exec.Supervisor.map ~plan (fun x -> x) [ 1; 2; 3 ] in
  check int_t "all abandoned" 3
    (List.length (List.filter Exec.Supervisor.abandoned out));
  List.iter
    (function
      | Exec.Supervisor.Abandoned { attempts; _ } ->
          check int_t "default budget" 4 attempts
      | Exec.Supervisor.Completed _ -> Alcotest.fail "impossible")
    out;
  (* The seeded plan is a pure function of (index, attempt): two sweeps
     over the same indices draw identical schedules, pooled or not. *)
  let chaos = Resilience.Chaos.make ~worker_loss_rate:0.5 ~seed:77 () in
  let plan = Resilience.Chaos.worker_plan chaos ~salt:0 in
  let xs = List.init 30 (fun i -> 500 + i) in
  let a = Exec.Supervisor.map ~plan ~index_of:(fun x -> x) (fun x -> x) xs in
  let b = Exec.Supervisor.map ~pool ~plan ~index_of:(fun x -> x) (fun x -> x) xs in
  check (Alcotest.list outcome_t) "pooled == sequential under losses" a b;
  check bool_t "a 0.5 loss rate actually loses something" true
    (List.exists Exec.Supervisor.abandoned a
    || List.length (List.filter_map Exec.Supervisor.completed a) < List.length xs
    || (Exec.Supervisor.stats ()).Exec.Supervisor.losses > 0)

let test_supervisor_restarts_worker () =
  (* A private pool so the restart counter is ours alone. Losses on worker
     domains really kill them; the pool replaces each one and the map
     still returns every result in order. *)
  let p = Exec.Pool.create ~domains:2 () in
  let plan ~index ~attempt =
    if index mod 3 = 0 && attempt = 1 then Some Exec.Supervisor.At_dispatch
    else None
  in
  let xs = List.init 12 (fun i -> i) in
  let out = Exec.Supervisor.map ~pool:p ~plan (fun x -> x * 2) xs in
  check (Alcotest.list int_t) "all complete despite losses"
    (List.map (fun x -> x * 2) xs)
    (List.filter_map Exec.Supervisor.completed out);
  let s = Exec.Pool.stats p in
  check bool_t "worker domains were restarted" true (s.Exec.Pool.restarts > 0);
  (* The pool still works after the restarts. *)
  check (Alcotest.list int_t) "pool alive after restarts" [ 2; 3 ]
    (Exec.Pool.map p (fun x -> x + 1) [ 1; 2 ]);
  Exec.Pool.shutdown p

let test_supervisor_in_flight_loss () =
  (* An in-flight loss runs the task body and throws the result away: the
     retry completes normally, so the sweep result is unchanged but the
     body observably ran once more than the task count. *)
  let ran = Atomic.make 0 in
  let plan ~index ~attempt =
    if index = 1 && attempt = 1 then Some Exec.Supervisor.In_flight else None
  in
  let c0 = Exec.Supervisor.stats () in
  let out =
    Exec.Supervisor.map ~plan
      (fun x ->
        Atomic.incr ran;
        x * 2)
      [ 0; 1; 2 ]
  in
  check (Alcotest.list int_t) "every task completes after the in-flight loss"
    [ 0; 2; 4 ]
    (List.filter_map Exec.Supervisor.completed out);
  check int_t "the lost dispatch really ran the body" 4 (Atomic.get ran);
  let c = Exec.Supervisor.diff c0 (Exec.Supervisor.stats ()) in
  check int_t "one loss drawn" 1 c.Exec.Supervisor.losses;
  check int_t "one requeue" 1 c.Exec.Supervisor.requeues;
  (* A body that raises during the doomed dispatch changes nothing: the
     domain was dying anyway, the exception dies with it. *)
  let first = Atomic.make true in
  let out =
    Exec.Supervisor.run_one ~plan ~index:1 (fun () ->
        if Atomic.exchange first false then failwith "died mid-task" else 7)
  in
  check int_t "exception during an in-flight loss is just a loss" 7
    (match out with
    | Exec.Supervisor.Completed v -> v
    | Exec.Supervisor.Abandoned _ -> -1);
  (* Chaos mode split: the loss schedule is identical whatever the
     in-flight fraction — only the mode of each drawn loss varies. *)
  let chaos = Resilience.Chaos.make ~worker_loss_rate:0.4 ~seed:21 () in
  let p0 = Resilience.Chaos.worker_plan chaos ~salt:0 in
  let p1 = Resilience.Chaos.worker_plan ~in_flight:1.0 chaos ~salt:0 in
  for index = 0 to 50 do
    let a = p0 ~index ~attempt:1 and b = p1 ~index ~attempt:1 in
    check bool_t "same dispatches lost at any in-flight fraction" true
      ((a = None) = (b = None));
    check bool_t "fraction 0 losses are at dispatch" true
      (a = None || a = Some Exec.Supervisor.At_dispatch);
    check bool_t "fraction 1 losses are in flight" true
      (b = None || b = Some Exec.Supervisor.In_flight)
  done

(* ------------------------------------------------------------------ *)
(* Checkpoint journal + resumable sweeps                               *)
(* ------------------------------------------------------------------ *)

let with_temp f =
  let path = Filename.temp_file "cosynth_test_" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_checkpoint_roundtrip () =
  with_temp (fun path ->
      let ck = Exec.Checkpoint.open_ ~truncate:true path in
      Exec.Checkpoint.record ck ~seed:7 (Netcore.Json.Int 70);
      Exec.Checkpoint.record ck ~seed:9 (Netcore.Json.String "ninety");
      (* A later record for the same seed supersedes the earlier one. *)
      Exec.Checkpoint.record ck ~seed:7 (Netcore.Json.Int 71);
      Exec.Checkpoint.close ck;
      let entries = Exec.Checkpoint.load path in
      check int_t "two distinct seeds" 2 (List.length entries);
      check bool_t "latest record wins" true
        (List.assoc 7 entries = Netcore.Json.Int 71);
      check bool_t "other seed intact" true
        (List.assoc 9 entries = Netcore.Json.String "ninety"))

let test_checkpoint_partial_line_tolerated () =
  with_temp (fun path ->
      let ck = Exec.Checkpoint.open_ ~truncate:true path in
      Exec.Checkpoint.record ck ~seed:1 (Netcore.Json.Int 10);
      Exec.Checkpoint.record ck ~seed:2 (Netcore.Json.Int 20);
      Exec.Checkpoint.close ck;
      (* Simulate a crash mid-write: a truncated trailing line. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"seed\":3,\"summ";
      close_out oc;
      let entries = Exec.Checkpoint.load path in
      check int_t "whole lines survive" 2 (List.length entries);
      check bool_t "no seed 3" true (not (List.mem_assoc 3 entries));
      check bool_t "missing file is empty" true
        (Exec.Checkpoint.load (path ^ ".does-not-exist") = []))

let test_checkpoint_compact () =
  with_temp (fun path ->
      let ck = Exec.Checkpoint.open_ ~truncate:true path in
      Exec.Checkpoint.record ck ~seed:1 (Netcore.Json.Int 10);
      Exec.Checkpoint.record ck ~seed:2 (Netcore.Json.Int 20);
      Exec.Checkpoint.record ck ~seed:1 (Netcore.Json.Int 11);
      Exec.Checkpoint.record ck ~seed:1 (Netcore.Json.Int 12);
      Exec.Checkpoint.close ck;
      (* A crash-truncated trailing line is dropped by compaction too. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"seed\":3,\"summ";
      close_out oc;
      let before = Exec.Checkpoint.load path in
      let dropped, kept = Exec.Checkpoint.compact path in
      check int_t "superseded + partial lines dropped" 3 dropped;
      check int_t "one line per surviving seed" 2 kept;
      (* Compaction must be invisible to load. *)
      check bool_t "load unchanged by compaction" true
        (Exec.Checkpoint.load path = before);
      (* And idempotent. *)
      check bool_t "second compaction drops nothing" true
        (Exec.Checkpoint.compact path = (0, 2)))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_checkpoint_framing () =
  with_temp (fun path ->
      let ck = Exec.Checkpoint.open_ ~truncate:true path in
      Exec.Checkpoint.record ck ~seed:1 (Netcore.Json.Int 10);
      Exec.Checkpoint.record ck ~seed:2 (Netcore.Json.Int 20);
      Exec.Checkpoint.close ck;
      (* Every journal line carries the store's "len crc payload" frame. *)
      let lines =
        List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' (read_file path))
      in
      check int_t "one frame per record" 2 (List.length lines);
      List.iter
        (fun l ->
          check bool_t "header separators" true (l.[8] = ' ' && l.[17] = ' ');
          let payload = String.sub l 18 (String.length l - 18) in
          check bool_t "framed line decodes as Ok" true
            (match Resilience.Store.decode_line l with
            | `Ok j -> Netcore.Json.to_string j = payload
            | _ -> false))
        lines;
      (* Flipping one payload byte fails the CRC: the record is skipped
         and counted, never decoded wrong or raised. *)
      let b = Bytes.of_string (read_file path) in
      Bytes.set b (Bytes.length b - 3)
        (Char.chr (Char.code (Bytes.get b (Bytes.length b - 3)) lxor 1));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      let entries = Exec.Checkpoint.load path in
      check int_t "flipped record skipped" 1 (List.length entries);
      check bool_t "surviving record intact" true
        (List.assoc 1 entries = Netcore.Json.Int 10))

let test_checkpoint_legacy_loads () =
  with_temp (fun path ->
      (* A journal written before the CRC framing: bare JSON objects. *)
      let oc = open_out_bin path in
      output_string oc "{\"seed\":1,\"summary\":10}\n";
      output_string oc "{\"seed\":2,\"summary\":20}\n";
      close_out oc;
      let entries = Exec.Checkpoint.load path in
      check int_t "legacy lines load" 2 (List.length entries);
      check bool_t "legacy payloads decode" true
        (List.assoc 1 entries = Netcore.Json.Int 10
        && List.assoc 2 entries = Netcore.Json.Int 20);
      (* Mixed history: appends land framed next to the legacy lines and
         compaction rewrites everything framed, dropping nothing legal. *)
      let ck = Exec.Checkpoint.open_ path in
      Exec.Checkpoint.record ck ~seed:3 (Netcore.Json.Int 30);
      Exec.Checkpoint.record ck ~seed:1 (Netcore.Json.Int 11);
      Exec.Checkpoint.close ck;
      let dropped, kept = Exec.Checkpoint.compact path in
      check int_t "superseded legacy line dropped" 1 dropped;
      check int_t "three seeds kept" 3 kept;
      let _, stats = Resilience.Store.read path in
      check int_t "compaction leaves no legacy lines" 0
        stats.Resilience.Store.legacy;
      check bool_t "post-compact load merges both eras" true
        (* Completion order: seed 1's superseding record is the youngest. *)
        (Exec.Checkpoint.load path
        = [ (2, Netcore.Json.Int 20); (3, Netcore.Json.Int 30);
            (1, Netcore.Json.Int 11) ]);
      (* A bare non-object line is corruption, not a legacy record: a torn
         frame header can scan as a JSON scalar. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "0000001\n";
      close_out oc;
      let _, stats = Resilience.Store.read path in
      check int_t "bare scalar counted corrupt" 1 stats.Resilience.Store.corrupt;
      check int_t "no phantom record" 3 (List.length (Exec.Checkpoint.load path)))

let test_checkpoint_torn_tail_sealed () =
  with_temp (fun path ->
      let ck = Exec.Checkpoint.open_ ~truncate:true path in
      Exec.Checkpoint.record ck ~seed:1 (Netcore.Json.Int 10);
      Exec.Checkpoint.close ck;
      (* A writer died mid-record: the tail line has no newline. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "00000016 deadbeef {\"se";
      close_out oc;
      (* Reopening for append seals the torn tail so the next record
         cannot merge into it and be lost to the old crash. *)
      let ck = Exec.Checkpoint.open_ path in
      Exec.Checkpoint.record ck ~seed:2 (Netcore.Json.Int 20);
      Exec.Checkpoint.close ck;
      let entries = Exec.Checkpoint.load path in
      check int_t "record after the torn tail survives" 2 (List.length entries);
      check bool_t "both good seeds load" true
        (List.assoc 1 entries = Netcore.Json.Int 10
        && List.assoc 2 entries = Netcore.Json.Int 20);
      let _, stats = Resilience.Store.read path in
      check int_t "torn line isolated and counted" 1
        stats.Resilience.Store.corrupt)

let test_sweep_journal_resume () =
  with_temp (fun path ->
      let encode v = Netcore.Json.Int v in
      let decode = Netcore.Json.to_int in
      let seeds = Exec.Sweep.seeds ~base:40 ~n:8 in
      let calls = ref [] in
      let f seed =
        calls := seed :: !calls;
        seed * 3
      in
      let expected = List.map (fun s -> s * 3) seeds in
      (* First (interrupted) sweep: only half the seeds run. *)
      let j1 = Exec.Sweep.journal ~path ~encode ~decode () in
      let half = List.filteri (fun i _ -> i < 4) seeds in
      check (Alcotest.list int_t) "first half computed"
        (List.filteri (fun i _ -> i < 4) expected)
        (Exec.Sweep.run_seeds ~journal:j1 ~seeds:half f);
      Exec.Sweep.journal_close j1;
      (* Resume: journaled seeds are decoded, not re-run; the final list is
         identical to an uninterrupted sweep. *)
      calls := [];
      let j2 = Exec.Sweep.journal ~resume:true ~path ~encode ~decode () in
      check (Alcotest.list int_t) "journaled seeds loaded" half
        (Exec.Sweep.journaled_seeds j2);
      check (Alcotest.list int_t) "resumed results identical" expected
        (Exec.Sweep.run_seeds ~journal:j2 ~seeds f);
      Exec.Sweep.journal_close j2;
      check (Alcotest.list int_t) "only fresh seeds re-ran"
        (List.filteri (fun i _ -> i >= 4) seeds)
        (List.rev !calls);
      (* Opening without resume truncates: a fresh sweep re-runs everything. *)
      calls := [];
      let j3 = Exec.Sweep.journal ~path ~encode ~decode () in
      check (Alcotest.list int_t) "no seeds replayed after truncate" []
        (Exec.Sweep.journaled_seeds j3);
      ignore (Exec.Sweep.run_seeds ~journal:j3 ~seeds f);
      Exec.Sweep.journal_close j3;
      check int_t "every seed re-ran" (List.length seeds) (List.length !calls))

let test_sweep_journal_stale_codec () =
  with_temp (fun path ->
      (* A journal line the decoder rejects falls back to a fresh run
         instead of poisoning the sweep. *)
      let ck = Exec.Checkpoint.open_ ~truncate:true path in
      Exec.Checkpoint.record ck ~seed:1 (Netcore.Json.String "not an int");
      Exec.Checkpoint.record ck ~seed:2 (Netcore.Json.Int 222);
      Exec.Checkpoint.close ck;
      let j =
        Exec.Sweep.journal ~resume:true ~path ~encode:(fun v -> Netcore.Json.Int v)
          ~decode:Netcore.Json.to_int ()
      in
      let ran = ref [] in
      let f seed =
        ran := seed :: !ran;
        seed * 111
      in
      check (Alcotest.list int_t) "stale entry recomputed, good entry replayed"
        [ 111; 222 ]
        (Exec.Sweep.run_seeds ~journal:j ~seeds:[ 1; 2 ] f);
      Exec.Sweep.journal_close j;
      check (Alcotest.list int_t) "only the stale seed re-ran" [ 1 ] !ran)

let count_lines path =
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  !n

let test_sweep_journal_lww () =
  with_temp (fun path ->
      (* The bug this pins: a journal holding several lines for one seed
         (an interrupted sweep re-completed it) must replay the LATEST
         line, re-run at most once when that line is stale, and not grow
         without bound across resume cycles. *)
      let ck = Exec.Checkpoint.open_ ~truncate:true path in
      Exec.Checkpoint.record ck ~seed:10 (Netcore.Json.Int 999);
      Exec.Checkpoint.record ck ~seed:11 (Netcore.Json.Int 33);
      (* The latest record for seed 10 is stale (undecodable). *)
      Exec.Checkpoint.record ck ~seed:10 (Netcore.Json.String "stale");
      Exec.Checkpoint.close ck;
      let encode v = Netcore.Json.Int v in
      let decode = Netcore.Json.to_int in
      let ran = ref [] in
      let f seed =
        ran := seed :: !ran;
        seed * 3
      in
      let j = Exec.Sweep.journal ~resume:true ~path ~encode ~decode () in
      check (Alcotest.list int_t) "latest line wins, stale one re-runs once"
        [ 30; 33 ]
        (Exec.Sweep.run_seeds ~journal:j ~seeds:[ 10; 11 ] f);
      Exec.Sweep.journal_close j;
      check (Alcotest.list int_t) "exactly one re-run" [ 10 ] !ran;
      (* The re-run appended its superseding record: 3 old lines + 1. *)
      check int_t "journal grew by the one re-run" 4 (count_lines path);
      (* Second resume: the superseding record decodes, nothing re-runs,
         and the journal size is stable. *)
      ran := [];
      let j = Exec.Sweep.journal ~resume:true ~path ~encode ~decode () in
      check (Alcotest.list int_t) "stable replay" [ 30; 33 ]
        (Exec.Sweep.run_seeds ~journal:j ~seeds:[ 10; 11 ] f);
      Exec.Sweep.journal_close j;
      check (Alcotest.list int_t) "no re-runs on the second resume" [] !ran;
      check int_t "journal size stable across resumes" 4 (count_lines path);
      (* Compaction drops the two superseded lines for seed 10. *)
      check bool_t "compact drops superseded lines" true
        (Exec.Checkpoint.compact path = (2, 2));
      check int_t "one line per seed after compaction" 2 (count_lines path))

(* ------------------------------------------------------------------ *)
(* Memo eviction: bounded, FIFO, warm across the cap                   *)
(* ------------------------------------------------------------------ *)

let test_memo_eviction () =
  Exec.Memo.reset ();
  (* One real parse result reused as the payload for thousands of synthetic
     keys — the test drives the CAP, not the parser. *)
  let ir, diags = Batfish.Parse_check.check Batfish.Parse_check.Cisco_ios "" in
  let payload = Ok (ir, diags) in
  let n = 17_000 in
  for i = 0 to n - 1 do
    ignore
      (Exec.Memo.check_result Batfish.Parse_check.Cisco_ios
         (Printf.sprintf "synthetic key %d" i)
         ~parse:(fun () -> payload))
  done;
  let s = Exec.Memo.stats () in
  check bool_t "cap enforced: table smaller than the insert count" true
    (s.Exec.Memo.entries < n);
  check bool_t "evictions counted" true (s.Exec.Memo.evictions > 0);
  check int_t "entries + evictions = inserts" n
    (s.Exec.Memo.entries + s.Exec.Memo.evictions);
  (* The killer property the old Hashtbl.reset lacked: recent keys are
     still warm after the cap fired. *)
  let ran = ref false in
  (match
     Exec.Memo.check_result Batfish.Parse_check.Cisco_ios
       (Printf.sprintf "synthetic key %d" (n - 1))
       ~parse:(fun () ->
         ran := true;
         payload)
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "cached Ok expected");
  check bool_t "recent key survives the cap (no re-parse)" false !ran;
  check bool_t "hit rate > 0 across the cap" true
    (Exec.Memo.hit_rate (Exec.Memo.stats ()) > 0.);
  (* And the oldest keys are the ones that went (FIFO). *)
  let ran0 = ref false in
  ignore
    (Exec.Memo.check_result Batfish.Parse_check.Cisco_ios "synthetic key 0"
       ~parse:(fun () ->
         ran0 := true;
         payload));
  check bool_t "oldest key was evicted" true !ran0;
  Exec.Memo.reset ()

(* ------------------------------------------------------------------ *)
(* Shard: slices, merge determinism, worker recovery                   *)
(* ------------------------------------------------------------------ *)

let test_shard_slices () =
  let seeds = List.init 10 (fun i -> 100 + i) in
  List.iter
    (fun shards ->
      let ss = Exec.Shard.slices ~seeds ~shards in
      check int_t "one slice per shard" shards (List.length ss);
      check (Alcotest.list int_t) "concatenation is the input" seeds
        (List.concat ss);
      let sizes = List.map List.length ss in
      check bool_t "balanced within one" true
        (List.fold_left max 0 sizes - List.fold_left min max_int sizes <= 1))
    [ 1; 2; 3; 4; 10 ];
  (* More shards than seeds: trailing slices are empty, nothing is lost. *)
  let ss = Exec.Shard.slices ~seeds:[ 1; 2 ] ~shards:5 in
  check (Alcotest.list int_t) "short input still covered" [ 1; 2 ] (List.concat ss);
  match Exec.Shard.slices ~seeds ~shards:0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let with_temp_dir f =
  let dir = Filename.temp_file "cosynth_shard_" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> try Sys.remove (Filename.concat dir e) with _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with _ -> ())
    (fun () -> f dir)

(* Fake workers: the journals are pre-written by the test and the argv is
   /bin/true, so Shard.run's spawn/wait/merge machinery runs for real while
   the "sweep" is deterministic file content. *)
let prewritten_worker dir i slice =
  let journal = Filename.concat dir (Printf.sprintf "shard-%d.jsonl" i) in
  let ck = Exec.Checkpoint.open_ ~truncate:true journal in
  List.iter (fun s -> Exec.Checkpoint.record ck ~seed:s (Netcore.Json.Int (s * 7))) slice;
  Exec.Checkpoint.close ck;
  {
    Exec.Shard.argv = [| "/bin/true" |];
    resume_argv = [| "/bin/true" |];
    journal;
    seeds = slice;
  }

let test_shard_merge_deterministic () =
  let seeds = List.init 12 (fun i -> 200 + i) in
  let merged_file n dir =
    let slices =
      List.filter (fun s -> s <> []) (Exec.Shard.slices ~seeds ~shards:n)
    in
    let workers = List.mapi (prewritten_worker dir) slices in
    match Exec.Shard.run ~workers () with
    | Error e -> Alcotest.fail e
    | Ok report ->
        let out = Filename.concat dir "merged.jsonl" in
        Exec.Shard.write_merged ~path:out report.Exec.Shard.merged;
        let ic = open_in_bin out in
        let len = in_channel_length ic in
        let bytes = really_input_string ic len in
        close_in ic;
        bytes
  in
  let runs =
    List.map (fun n -> with_temp_dir (fun dir -> merged_file n dir)) [ 1; 2; 4 ]
  in
  match runs with
  | [ one; two; four ] ->
      check bool_t "2 shards == 1 shard, byte for byte" true (one = two);
      check bool_t "4 shards == 1 shard, byte for byte" true (one = four);
      check bool_t "merged journal is non-trivial" true (String.length one > 0)
  | _ -> Alcotest.fail "impossible"

let test_shard_recovery () =
  with_temp_dir (fun dir ->
      (* Shard 0's fresh launch journals one seed then dies; its resume argv
         completes the slice. Shard 1 is clean. Shard.run must re-spawn only
         shard 0 and still produce full coverage. *)
      let j0 = Filename.concat dir "shard-0.jsonl" in
      let line s v = Printf.sprintf "{\"seed\":%d,\"summary\":%d}" s v in
      let sh fmt = Printf.sprintf fmt in
      let w0 =
        {
          Exec.Shard.argv =
            [| "/bin/sh"; "-c"; sh "echo '%s' >> %s; exit 1" (line 1 7) j0 |];
          resume_argv =
            [| "/bin/sh"; "-c"; sh "echo '%s' >> %s" (line 2 14) j0 |];
          journal = j0;
          seeds = [ 1; 2 ];
        }
      in
      let w1 = prewritten_worker dir 1 [ 3; 4 ] in
      match Exec.Shard.run ~workers:[ w0; w1 ] () with
      | Error e -> Alcotest.fail e
      | Ok report -> (
          check (Alcotest.list int_t) "merged covers every seed in order"
            [ 1; 2; 3; 4 ]
            (List.map fst report.Exec.Shard.merged);
          match report.Exec.Shard.shards with
          | [ r0; r1 ] ->
              check int_t "dead shard launched twice" 2 r0.Exec.Shard.launches;
              check (Alcotest.list int_t) "only the unjournaled seed re-ran"
                [ 2 ] r0.Exec.Shard.recovered;
              check int_t "clean shard launched once" 1 r1.Exec.Shard.launches;
              check (Alcotest.list int_t) "clean shard recovered nothing" []
                r1.Exec.Shard.recovered
          | _ -> Alcotest.fail "two shard reports expected");
      (* A worker that NEVER succeeds exhausts its budget and errors out. *)
      let dead =
        {
          Exec.Shard.argv = [| "/bin/sh"; "-c"; "exit 1" |];
          resume_argv = [| "/bin/sh"; "-c"; "exit 1" |];
          journal = Filename.concat dir "dead.jsonl";
          seeds = [ 9 ];
        }
      in
      match Exec.Shard.run ~max_respawns:1 ~workers:[ dead ] () with
      | Ok _ -> Alcotest.fail "an always-failing worker must be an Error"
      | Error msg ->
          check bool_t "error names the failing shard" true
            (String.length msg > 0))

(* ------------------------------------------------------------------ *)
(* Serve: length-prefixed JSON over a Unix-domain socket               *)
(* ------------------------------------------------------------------ *)

let test_serve_roundtrip () =
  let dir = Filename.temp_file "cosynth_serve_" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let socket_path = Filename.concat dir "test.sock" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove socket_path with _ -> ());
      try Sys.rmdir dir with _ -> ())
    (fun () ->
      let module J = Netcore.Json in
      let handle ~client req =
        match Option.bind (J.member "job" req) J.to_str with
        | Some "echo" ->
            Exec.Serve.Reply
              (J.Obj
                 [
                   ("ok", J.Bool true);
                   ("client", J.Int client);
                   ("payload", Option.value ~default:J.Null (J.member "payload" req));
                 ])
        | Some "boom" -> failwith "handler exploded"
        | Some "stop" -> Exec.Serve.Final (J.Obj [ ("ok", J.Bool true) ])
        | _ -> Exec.Serve.Reply (J.Obj [ ("ok", J.Bool false) ])
      in
      let server =
        Thread.create (fun () -> Exec.Serve.serve ~socket_path ~handle ()) ()
      in
      let ok r = Option.bind (J.member "ok" r) J.to_bool = Some true in
      (* Several requests on one connection; a big payload crosses any
         single read(2) boundary so the framing is really exercised. *)
      let big = String.make 100_000 'x' in
      Exec.Serve.with_connection ~socket_path (fun fd ->
          let r1 =
            Exec.Serve.request fd
              (J.Obj [ ("job", J.String "echo"); ("payload", J.Int 42) ])
          in
          check bool_t "echo ok" true (ok r1);
          check bool_t "payload round-trips" true
            (J.member "payload" r1 = Some (J.Int 42));
          let r2 =
            Exec.Serve.request fd
              (J.Obj [ ("job", J.String "echo"); ("payload", J.String big) ])
          in
          check bool_t "100kB payload round-trips" true
            (J.member "payload" r2 = Some (J.String big));
          (* A handler crash answers THIS request as an error frame and the
             connection keeps working. *)
          let r3 = Exec.Serve.request fd (J.Obj [ ("job", J.String "boom") ]) in
          check bool_t "handler crash becomes an error reply" true (not (ok r3));
          let r4 =
            Exec.Serve.request fd
              (J.Obj [ ("job", J.String "echo"); ("payload", J.Bool true) ])
          in
          check bool_t "connection alive after the crash" true (ok r4));
      (* A second client gets a distinct id, then stops the server. *)
      Exec.Serve.with_connection ~socket_path (fun fd ->
          let r = Exec.Serve.request fd (J.Obj [ ("job", J.String "echo") ]) in
          check bool_t "second client has a new id" true
            (J.member "client" r = Some (J.Int 1));
          let r = Exec.Serve.request fd (J.Obj [ ("job", J.String "stop") ]) in
          check bool_t "final reply delivered" true (ok r));
      Thread.join server;
      check bool_t "socket file removed on shutdown" true
        (not (Sys.file_exists socket_path)))

(* Shared scaffolding for the lifecycle tests: a temp socket dir and a
   handler with an `echo` job, a `slow` job (the in-flight work a drain
   must not lose) and a `drain` job. *)
let with_serve_dir f =
  let dir = Filename.temp_file "cosynth_serve_" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let socket_path = Filename.concat dir "test.sock" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove socket_path with _ -> ());
      try Sys.rmdir dir with _ -> ())
    (fun () -> f socket_path)

let lifecycle_handle ~client:_ req =
  let module J = Netcore.Json in
  match Option.bind (J.member "job" req) J.to_str with
  | Some "echo" -> Exec.Serve.Reply (J.Obj [ ("ok", J.Bool true) ])
  | Some "slow" ->
      Thread.delay 0.3;
      Exec.Serve.Reply (J.Obj [ ("ok", J.Bool true); ("slow", J.Bool true) ])
  | Some "drain" ->
      Exec.Serve.Drain (J.Obj [ ("ok", J.Bool true); ("draining", J.Bool true) ])
  | _ -> Exec.Serve.Reply (J.Obj [ ("ok", J.Bool false) ])

let test_serve_drain () =
  with_serve_dir (fun socket_path ->
      let module J = Netcore.Json in
      let drained = ref false in
      let server =
        Thread.create
          (fun () ->
            drained :=
              Exec.Serve.serve ~socket_path ~handle:lifecycle_handle
                ~drain_grace_ms:1_000 ())
          ()
      in
      (* A slow job is in flight when the drain lands; its reply must
         still arrive — drain stops NEW work, never accepted work. *)
      let slow_reply = ref None in
      let slow_client =
        Thread.create
          (fun () ->
            slow_reply :=
              Some
                (Exec.Serve.with_connection ~socket_path (fun fd ->
                     Exec.Serve.request fd (J.Obj [ ("job", J.String "slow") ]))))
          ()
      in
      Thread.delay 0.05;
      Exec.Serve.with_connection ~socket_path (fun fd ->
          let d = Exec.Serve.request fd (J.Obj [ ("job", J.String "drain") ]) in
          check bool_t "drain job acks with draining:true" true
            (Option.bind (J.member "draining" d) J.to_bool = Some true);
          (* The same connection is still open, but the server is now
             draining: the next request gets the structured reject, not a
             hang or a slammed socket. *)
          let r = Exec.Serve.request fd (J.Obj [ ("job", J.String "echo") ]) in
          check bool_t "mid-drain request rejected with a structured frame"
            true
            (Option.bind (J.member "ok" r) J.to_bool = Some false
            && Option.bind (J.member "draining" r) J.to_bool = Some true));
      Thread.join slow_client;
      (match !slow_reply with
      | Some r ->
          check bool_t "in-flight job completed across the drain" true
            (Option.bind (J.member "slow" r) J.to_bool = Some true)
      | None -> Alcotest.fail "in-flight job lost its reply");
      Thread.join server;
      check bool_t "serve returned drained=true" true !drained;
      check bool_t "socket unlinked after drain" true
        (not (Sys.file_exists socket_path)))

let test_serve_sigterm_drain () =
  with_serve_dir (fun socket_path ->
      let module J = Netcore.Json in
      let drained = ref false in
      let server =
        Thread.create
          (fun () ->
            drained :=
              Exec.Serve.serve ~socket_path ~handle:lifecycle_handle
                ~handle_signals:true ~drain_grace_ms:300 ())
          ()
      in
      Exec.Serve.with_connection ~socket_path (fun fd ->
          let r = Exec.Serve.request fd (J.Obj [ ("job", J.String "echo") ]) in
          check bool_t "server up before the signal" true
            (Option.bind (J.member "ok" r) J.to_bool = Some true));
      (* SIGTERM from outside the accept loop: the handler must break the
         blocked accept and start a drain, exactly like `kill <daemon>`. *)
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      Thread.join server;
      check bool_t "SIGTERM drained the server" true !drained;
      check bool_t "socket unlinked after SIGTERM" true
        (not (Sys.file_exists socket_path)))

let test_serve_connect_backoff () =
  with_serve_dir (fun socket_path ->
      let module J = Netcore.Json in
      (* No server: the budget bounds the retry loop. *)
      let t0 = Unix.gettimeofday () in
      (match Exec.Serve.connect ~total_budget_ms:200 ~socket_path () with
      | fd ->
          Unix.close fd;
          Alcotest.fail "connect succeeded with no server listening"
      | exception Failure _ -> ());
      let waited = Unix.gettimeofday () -. t0 in
      check bool_t "gave up within ~2x the budget" true (waited < 2.0);
      check bool_t "kept retrying for most of the budget" true (waited > 0.1);
      (* Server appears mid-budget: backoff rides it out and connects —
         the startup race a supervised respawn makes routine. *)
      let server =
        Thread.create
          (fun () ->
            Thread.delay 0.2;
            ignore
              (Exec.Serve.serve ~socket_path ~handle:lifecycle_handle ()
                : bool))
          ()
      in
      Exec.Serve.with_connection ~total_budget_ms:3_000 ~socket_path (fun fd ->
          let r = Exec.Serve.request fd (J.Obj [ ("job", J.String "echo") ]) in
          check bool_t "connected once the server came up" true
            (Option.bind (J.member "ok" r) J.to_bool = Some true);
          ignore
            (Exec.Serve.request fd (J.Obj [ ("job", J.String "drain") ])
              : J.t));
      Thread.join server)

let test_serve_overloaded_raises () =
  with_serve_dir (fun socket_path ->
      let module J = Netcore.Json in
      let handle ~client:_ req =
        match Option.bind (J.member "job" req) J.to_str with
        | Some "drain" -> Exec.Serve.Drain (J.Obj [ ("ok", J.Bool true) ])
        | _ ->
            Exec.Serve.Reply
              (J.Obj
                 [
                   ("ok", J.Bool false);
                   ("error", J.String "overloaded: capacity");
                   ("shed", J.Bool true);
                   ("retry_after_ms", J.Int 75);
                 ])
      in
      let server =
        Thread.create
          (fun () -> ignore (Exec.Serve.serve ~socket_path ~handle () : bool))
          ()
      in
      Exec.Serve.with_connection ~socket_path (fun fd ->
          (match Exec.Serve.request fd (J.Obj [ ("job", J.String "work") ]) with
          | _ -> Alcotest.fail "shed frame did not raise Server_overloaded"
          | exception Exec.Serve.Server_overloaded { retry_after_ms } ->
              check int_t "retry hint decoded" 75 retry_after_ms);
          ignore
            (Exec.Serve.request fd (J.Obj [ ("job", J.String "drain") ]) : J.t));
      Thread.join server)

(* ------------------------------------------------------------------ *)
(* Sweep: certificate-aware budgeted scheduling                        *)
(* ------------------------------------------------------------------ *)

let test_sweep_budgeted () =
  (* 4 seeds sharing 20 prompts. Fair share starts at 5; seed 11 abandons
     after spending 2, so its unspent 3 flow forward and seed 12's share
     rises to 6. The spend log pins the whole allocation schedule. *)
  let log = ref [] in
  let behave = [ (10, (5, false)); (11, (2, true)); (12, (6, false)); (13, (4, false)) ] in
  let results, stats =
    Exec.Sweep.run_seeds_budgeted ~budget:20 ~seeds:[ 10; 11; 12; 13 ]
      (fun ~seed ~max_prompts ->
        log := (seed, max_prompts) :: !log;
        let want, abandoned = List.assoc seed behave in
        let spent = min want max_prompts in
        (seed * 2, { Exec.Sweep.spent; abandoned }))
  in
  check (Alcotest.list int_t) "results in seed order" [ 20; 22; 24; 26 ] results;
  check
    (Alcotest.list (Alcotest.pair int_t int_t))
    "fair-share allocations reflect the reclaim"
    [ (10, 5); (11, 5); (12, 6); (13, 7) ]
    (List.rev !log);
  check int_t "spent sums the actual spends" 17 stats.Exec.Sweep.spent;
  check int_t "one run abandoned early" 1 stats.Exec.Sweep.abandoned_early;
  check int_t "its unspent allocation was reclaimed" 3 stats.Exec.Sweep.reclaimed;
  check int_t "budget echoed" 20 stats.Exec.Sweep.budget

let test_sweep_budgeted_overspend_clamped () =
  (* A run reporting more than its allocation (a driver bug) must not
     starve later seeds: the recorded spend is clamped to the allocation
     and every seed still gets at least 1 prompt. *)
  let allocs = ref [] in
  let _, stats =
    Exec.Sweep.run_seeds_budgeted ~budget:10 ~seeds:[ 1; 2; 3; 4 ]
      (fun ~seed:_ ~max_prompts ->
        allocs := max_prompts :: !allocs;
        ((), { Exec.Sweep.spent = 1_000; abandoned = false }))
  in
  check (Alcotest.list int_t) "fair-share allocations" [ 2; 2; 3; 3 ]
    (List.rev !allocs);
  check int_t "spent clamped to the budget" 10 stats.Exec.Sweep.spent;
  check int_t "nothing reclaimed without abandonment" 0
    stats.Exec.Sweep.reclaimed

(* ------------------------------------------------------------------ *)
(* Global phase: hub looked up by name, not by position                *)
(* ------------------------------------------------------------------ *)

let crossed =
  [
    Llmsim.Fault.make Llmsim.Error_class.Crossed_policy_attachment
      Llmsim.Fault.Whole_config;
  ]

let global_events (r : Cosynth.Driver.synthesis_result) =
  List.filter
    (fun (e : Cosynth.Driver.event) -> e.Cosynth.Driver.note = "global")
    r.Cosynth.Driver.transcript.Cosynth.Driver.events

let test_global_phase_fires () =
  (* A crossed policy attachment survives every local check; the global
     counterexample prompt must fire and eventually repair the hub. *)
  let r = Cosynth.Driver.run_no_transit ~seed:5 ~force_hub_faults:crossed ~routers:5 () in
  check bool_t "global feedback fired" true (global_events r <> []);
  check bool_t "run converged" true r.Cosynth.Driver.global_ok

let test_global_phase_reordered_tasks () =
  (* Regression: with the hub at the END of the task list, the old
     head-pattern match silently skipped the global phase — no prompt, no
     convergence. The hub must be found by name. *)
  let star = Netcore.Star.make ~routers:5 in
  let tasks = List.rev (Cosynth.Modularizer.plan star) in
  let r =
    Cosynth.Driver.run_no_transit ~seed:5 ~tasks ~force_hub_faults:crossed ~routers:5 ()
  in
  check bool_t "global feedback fired with reordered tasks" true (global_events r <> []);
  check bool_t "run converged" true r.Cosynth.Driver.global_ok;
  check int_t "all five routers synthesized" 5 (List.length r.Cosynth.Driver.configs)

let test_global_phase_missing_hub_fails_loudly () =
  let star = Netcore.Star.make ~routers:4 in
  let tasks = List.tl (Cosynth.Modularizer.plan star) in
  match Cosynth.Driver.run_no_transit ~seed:1 ~tasks ~routers:4 () with
  | _ -> Alcotest.fail "expected Invalid_argument for a plan without the hub"
  | exception Invalid_argument msg ->
      check bool_t "message names the hub" true
        (let sub = "hub R1" in
         let n = String.length msg and m = String.length sub in
         let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
         go 0)

(* ------------------------------------------------------------------ *)
(* Leverage edge cases                                                 *)
(* ------------------------------------------------------------------ *)

let transcript ~auto ~human =
  {
    Cosynth.Driver.events = [];
    human_prompts = human;
    auto_prompts = auto;
    converged = true;
    rounds = 0;
    certificate = None;
  }

let test_leverage_zero_human () =
  check bool_t "auto>0, human=0 is infinite" true
    (Cosynth.Driver.leverage (transcript ~auto:20 ~human:0) = Float.infinity);
  check bool_t "empty transcript is 0" true
    (Cosynth.Driver.leverage (transcript ~auto:0 ~human:0) = 0.);
  check bool_t "normal ratio" true
    (Cosynth.Driver.leverage (transcript ~auto:20 ~human:2) = 10.)

let test_summarize_absorbs_infinity () =
  let ts =
    [ transcript ~auto:10 ~human:2; transcript ~auto:20 ~human:0; transcript ~auto:12 ~human:2 ]
  in
  let s = Cosynth.Metrics.summarize ts in
  check int_t "runs" 3 s.Cosynth.Metrics.runs;
  check int_t "infinite runs counted" 1 s.Cosynth.Metrics.infinite_leverage;
  check bool_t "mean finite" true (Float.is_finite s.Cosynth.Metrics.mean_leverage);
  check bool_t "stddev finite" true (Float.is_finite s.Cosynth.Metrics.stddev_leverage);
  check bool_t "mean over finite runs" true
    (abs_float (s.Cosynth.Metrics.mean_leverage -. 5.5) < 1e-9);
  check bool_t "max finite" true (s.Cosynth.Metrics.max_leverage = 6.);
  let all_inf = Cosynth.Metrics.summarize [ transcript ~auto:4 ~human:0 ] in
  check bool_t "all-infinite mean is 0" true (all_inf.Cosynth.Metrics.mean_leverage = 0.);
  check int_t "all-infinite counted" 1 all_inf.Cosynth.Metrics.infinite_leverage

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map ordering" `Quick test_pool_map_ordering;
          Alcotest.test_case "map exception" `Quick test_pool_map_exception;
          Alcotest.test_case "nested map" `Quick test_pool_nested_map;
          Alcotest.test_case "sequential fallback" `Quick test_pool_sequential_fallback;
          Alcotest.test_case "stats" `Quick test_pool_stats;
        ] );
      ( "sweep-determinism",
        [
          Alcotest.test_case "translation parallel == sequential" `Slow
            test_sweep_translation_deterministic;
          Alcotest.test_case "no-transit parallel == sequential" `Slow
            test_sweep_no_transit_deterministic;
          Alcotest.test_case "per-router fan-out == sequential" `Slow
            test_run_no_transit_pool_equals_sequential;
        ] );
      ( "memo",
        [
          Alcotest.test_case "matches uncached" `Quick test_memo_matches_uncached;
          Alcotest.test_case "hit accounting" `Quick test_memo_hits;
          Alcotest.test_case "thread safe" `Quick test_memo_thread_safe;
          Alcotest.test_case "scoped stats" `Quick test_memo_scope;
          Alcotest.test_case "bounded eviction keeps the cache warm" `Quick
            test_memo_eviction;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "rate-0 identity" `Quick test_supervisor_rate0_identity;
          Alcotest.test_case "exception boundary" `Quick
            test_supervisor_exception_boundary;
          Alcotest.test_case "deterministic abandonment" `Quick
            test_supervisor_abandonment_deterministic;
          Alcotest.test_case "worker domains restart" `Quick
            test_supervisor_restarts_worker;
          Alcotest.test_case "in-flight loss" `Quick test_supervisor_in_flight_loss;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip, latest wins" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "partial line tolerated" `Quick
            test_checkpoint_partial_line_tolerated;
          Alcotest.test_case "compaction" `Quick test_checkpoint_compact;
          Alcotest.test_case "CRC framing on every line" `Quick
            test_checkpoint_framing;
          Alcotest.test_case "legacy bare-JSON journals load" `Quick
            test_checkpoint_legacy_loads;
          Alcotest.test_case "torn tail sealed on reopen" `Quick
            test_checkpoint_torn_tail_sealed;
          Alcotest.test_case "sweep resume" `Quick test_sweep_journal_resume;
          Alcotest.test_case "stale codec recomputes" `Quick
            test_sweep_journal_stale_codec;
          Alcotest.test_case "last write wins across resumes" `Quick
            test_sweep_journal_lww;
          Alcotest.test_case "budgeted schedule reclaims abandoned budget" `Quick
            test_sweep_budgeted;
          Alcotest.test_case "budgeted schedule clamps overspend" `Quick
            test_sweep_budgeted_overspend_clamped;
        ] );
      ( "shard",
        [
          Alcotest.test_case "slices partition" `Quick test_shard_slices;
          Alcotest.test_case "merge deterministic for 1/2/4 shards" `Quick
            test_shard_merge_deterministic;
          Alcotest.test_case "dead worker recovered from its journal" `Quick
            test_shard_recovery;
        ] );
      ( "serve",
        [
          Alcotest.test_case "socket round-trip" `Quick test_serve_roundtrip;
          Alcotest.test_case "drain keeps in-flight work, rejects new" `Quick
            test_serve_drain;
          Alcotest.test_case "SIGTERM drains" `Quick test_serve_sigterm_drain;
          Alcotest.test_case "connect backoff within a budget" `Quick
            test_serve_connect_backoff;
          Alcotest.test_case "shed frame raises Server_overloaded" `Quick
            test_serve_overloaded_raises;
        ] );
      ( "global-phase",
        [
          Alcotest.test_case "fires on crossed attachment" `Quick test_global_phase_fires;
          Alcotest.test_case "reordered task list" `Quick test_global_phase_reordered_tasks;
          Alcotest.test_case "missing hub fails loudly" `Quick
            test_global_phase_missing_hub_fails_loudly;
        ] );
      ( "leverage",
        [
          Alcotest.test_case "zero human prompts" `Quick test_leverage_zero_human;
          Alcotest.test_case "summarize absorbs infinity" `Quick
            test_summarize_absorbs_infinity;
        ] );
    ]
