(* Tests for the resilience layer (lib/resilience): retry backoff, the
   circuit breaker state machine, the seeded chaos injector, the runtime
   call paths, and the driver-level guarantees — pay-for-what-you-use
   (rate-0 transcripts identical to the unwrapped loops), chaos-run
   determinism (including pooled fan-out), budget exhaustion, and the
   success-only memo contract. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let cisco_text = Cisco.Samples.border_router

(* ------------------------------------------------------------------ *)
(* Retry                                                               *)
(* ------------------------------------------------------------------ *)

let test_retry_deterministic () =
  let seq seed =
    let rng = Llmsim.Rng.make seed in
    List.init 10 (fun i ->
        Resilience.Retry.backoff Resilience.Retry.default rng ~failures:(i + 1))
  in
  check (Alcotest.list int_t) "same seed, same backoffs" (seq 7) (seq 7);
  check bool_t "different seeds explore different jitter" true (seq 7 <> seq 8)

let test_retry_bounds () =
  let p = Resilience.Retry.default in
  let rng = Llmsim.Rng.make 3 in
  for failures = 1 to 12 do
    let exp =
      min p.Resilience.Retry.max_backoff
        (p.Resilience.Retry.base_backoff * (1 lsl min (failures - 1) 20))
    in
    let cap =
      exp + int_of_float (p.Resilience.Retry.jitter *. float_of_int exp)
    in
    let b = Resilience.Retry.backoff p rng ~failures in
    if b < exp || b > cap then
      Alcotest.failf "backoff %d out of [%d, %d] after %d failures" b exp cap
        failures
  done

(* ------------------------------------------------------------------ *)
(* Breaker                                                             *)
(* ------------------------------------------------------------------ *)

let breaker_policy = { Resilience.Breaker.failure_threshold = 3; cooldown = 10 }

let state_t =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Resilience.Breaker.state_to_string s))
    ( = )

let test_breaker_trips_and_recovers () =
  let b = Resilience.Breaker.create breaker_policy in
  check state_t "starts closed" Resilience.Breaker.Closed (Resilience.Breaker.state b);
  check bool_t "failure 1" false (Resilience.Breaker.record_failure b ~now:0);
  check bool_t "failure 2" false (Resilience.Breaker.record_failure b ~now:1);
  check bool_t "failure 3 trips" true (Resilience.Breaker.record_failure b ~now:2);
  check state_t "open" Resilience.Breaker.Open (Resilience.Breaker.state b);
  check int_t "one trip" 1 (Resilience.Breaker.trips b);
  (match Resilience.Breaker.acquire b ~now:5 with
  | `Reject -> ()
  | `Proceed -> Alcotest.fail "open breaker must reject inside the cooldown");
  check bool_t "cooldown counts down" true
    (Resilience.Breaker.cooldown_left b ~now:5 > 0);
  (match Resilience.Breaker.acquire b ~now:12 with
  | `Proceed -> ()
  | `Reject -> Alcotest.fail "cooldown elapsed: must allow a half-open trial");
  check state_t "half-open" Resilience.Breaker.Half_open (Resilience.Breaker.state b);
  Resilience.Breaker.record_success b;
  check state_t "success closes" Resilience.Breaker.Closed (Resilience.Breaker.state b);
  check int_t "trips unchanged by recovery" 1 (Resilience.Breaker.trips b)

let test_breaker_half_open_failure_retrips () =
  let b = Resilience.Breaker.create breaker_policy in
  for now = 0 to 2 do
    ignore (Resilience.Breaker.record_failure b ~now)
  done;
  (match Resilience.Breaker.acquire b ~now:20 with
  | `Proceed -> ()
  | `Reject -> Alcotest.fail "expected a half-open trial");
  check bool_t "half-open failure re-trips" true
    (Resilience.Breaker.record_failure b ~now:20);
  check state_t "open again" Resilience.Breaker.Open (Resilience.Breaker.state b);
  check int_t "two trips" 2 (Resilience.Breaker.trips b)

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)
(* ------------------------------------------------------------------ *)

let outcomes chaos ~salt ~n =
  let clock = Resilience.Clock.create () in
  let v = Resilience.Verifier.wrap Resilience.Verifier.Parse_check (fun x -> x * 2) in
  Resilience.Chaos.arm chaos ~salt ~clock v;
  List.init n (fun i ->
      Resilience.Clock.advance clock 1;
      match Resilience.Verifier.run v i with
      | Ok o -> Printf.sprintf "ok %d" o
      | Error f -> Resilience.Verifier.failure_to_string f)

let test_chaos_deterministic () =
  let chaos =
    Resilience.Chaos.make ~crash_rate:0.2 ~timeout_rate:0.2 ~flake_rate:0.2 ~seed:11 ()
  in
  check (Alcotest.list Alcotest.string) "same (seed, salt): same schedule"
    (outcomes chaos ~salt:5 ~n:60) (outcomes chaos ~salt:5 ~n:60);
  check bool_t "different salts: different schedules" true
    (outcomes chaos ~salt:5 ~n:60 <> outcomes chaos ~salt:6 ~n:60)

let test_chaos_none_is_noop () =
  let clock = Resilience.Clock.create () in
  let v = Resilience.Verifier.wrap Resilience.Verifier.Campion (fun x -> x + 1) in
  Resilience.Chaos.arm (Resilience.Chaos.make ~seed:3 ()) ~salt:0 ~clock v;
  check bool_t "is_none" true (Resilience.Chaos.is_none (Resilience.Chaos.make ~seed:3 ()));
  (match Resilience.Verifier.run v 41 with
  | Ok 42 -> ()
  | _ -> Alcotest.fail "all-zero chaos must leave the Ok-oracle fast path")

let test_chaos_crash_window () =
  let chaos = Resilience.Chaos.make ~crash_rate:1.0 ~seed:1 () in
  let clock = Resilience.Clock.create () in
  let v = Resilience.Verifier.wrap Resilience.Verifier.Topology (fun () -> ()) in
  Resilience.Chaos.arm chaos ~salt:0 ~clock v;
  (match Resilience.Verifier.run v () with
  | Error (Resilience.Verifier.Crashed { down_ticks }) ->
      check bool_t "outage window in [8, 24]" true (down_ticks >= 8 && down_ticks <= 24);
      (* Inside the window every call keeps failing, and the remaining
         window shrinks as the clock advances. *)
      Resilience.Clock.advance clock 1;
      (match Resilience.Verifier.run v () with
      | Error (Resilience.Verifier.Crashed { down_ticks = left }) ->
          check int_t "window shrinks with the clock" (down_ticks - 1) left
      | _ -> Alcotest.fail "call inside the outage window must fail")
  | _ -> Alcotest.fail "crash rate 1.0 must crash the first call")

let test_chaos_truncate_never_passes () =
  let chaos = Resilience.Chaos.make ~truncate_rate:1.0 ~seed:4 () in
  let clock = Resilience.Clock.create () in
  let v =
    Resilience.Verifier.wrap Resilience.Verifier.Route_policies (fun () -> [ "finding" ])
  in
  Resilience.Chaos.arm chaos ~salt:0 ~clock v;
  for _ = 1 to 20 do
    match Resilience.Verifier.run v () with
    | Error Resilience.Verifier.Truncated -> ()
    | Ok _ -> Alcotest.fail "a truncated response must never read as a clean pass"
    | Error f ->
        Alcotest.failf "expected Truncated, got %s"
          (Resilience.Verifier.failure_to_string f)
  done;
  check (Alcotest.list Alcotest.string) "the oracle stays reachable" [ "finding" ]
    (Resilience.Verifier.oracle v ())

(* ------------------------------------------------------------------ *)
(* Runtime call paths                                                  *)
(* ------------------------------------------------------------------ *)

let rt () = Resilience.Runtime.create Resilience.Runtime.default_config

let test_runtime_success_passthrough () =
  let t = rt () in
  let v = Resilience.Verifier.wrap Resilience.Verifier.Parse_check (fun x -> x * 3) in
  match Resilience.Runtime.call t v 5 with
  | Ok 15 -> ()
  | _ -> Alcotest.fail "no faults: call must be Ok (oracle input)"

let test_runtime_retries_transient () =
  let t = rt () in
  let v = Resilience.Verifier.wrap Resilience.Verifier.Campion (fun x -> x) in
  let calls = ref 0 in
  Resilience.Verifier.install v (fun x ->
      incr calls;
      if !calls = 1 then Error Resilience.Verifier.Flaked else Ok x);
  (match Resilience.Runtime.call t v 9 with
  | Ok 9 -> ()
  | _ -> Alcotest.fail "a flake within the retry budget must recover");
  check int_t "one retry" 2 !calls;
  check state_t "breaker closed after recovery" Resilience.Breaker.Closed
    (Resilience.Runtime.breaker_state t Resilience.Verifier.Campion)

let test_runtime_exhaustion_degrades_and_trips () =
  let t = rt () in
  let v = Resilience.Verifier.wrap Resilience.Verifier.Topology (fun x -> x) in
  Resilience.Verifier.install v (fun _ -> Error Resilience.Verifier.Flaked);
  (match Resilience.Runtime.call t v 0 with
  | Error { Resilience.Runtime.kind = Resilience.Verifier.Topology; _ } -> ()
  | _ -> Alcotest.fail "a permanently failing verifier must degrade");
  (* Three failed attempts (Retry.default) = Breaker.default's threshold. *)
  check int_t "breaker tripped" 1
    (Resilience.Runtime.breaker_trips t Resilience.Verifier.Topology);
  match Resilience.Runtime.call t v 0 with
  | Error { Resilience.Runtime.reason; _ } ->
      check bool_t "short-circuited by the open breaker" true
        (String.length reason >= 12 && String.sub reason 0 12 = "circuit open")
  | Ok _ -> Alcotest.fail "the open breaker must reject without calling"

let test_runtime_derive_is_independent () =
  let t = rt () in
  let v = Resilience.Verifier.wrap Resilience.Verifier.Bgp_sim (fun x -> x) in
  Resilience.Verifier.install v (fun _ -> Error Resilience.Verifier.Flaked);
  ignore (Resilience.Runtime.call t v 0);
  check bool_t "parent breaker tripped" true
    (Resilience.Runtime.breaker_trips t Resilience.Verifier.Bgp_sim > 0);
  let child = Resilience.Runtime.derive t 0 in
  check int_t "child breakers start fresh" 0
    (Resilience.Runtime.breaker_trips child Resilience.Verifier.Bgp_sim);
  check state_t "child closed" Resilience.Breaker.Closed
    (Resilience.Runtime.breaker_state child Resilience.Verifier.Bgp_sim)

(* ------------------------------------------------------------------ *)
(* Per-verifier policies                                               *)
(* ------------------------------------------------------------------ *)

let test_policies_cost_scaled () =
  let parse = Resilience.Policies.for_kind Resilience.Verifier.Parse_check in
  let bgp = Resilience.Policies.for_kind Resilience.Verifier.Bgp_sim in
  check bool_t "bgp-sim retries strictly fewer than parse-check" true
    (bgp.Resilience.Policies.retry.Resilience.Retry.max_attempts
    < parse.Resilience.Policies.retry.Resilience.Retry.max_attempts);
  check bool_t "bgp-sim breaker trips on a shorter streak" true
    (bgp.Resilience.Policies.breaker.Resilience.Breaker.failure_threshold
    < parse.Resilience.Policies.breaker.Resilience.Breaker.failure_threshold);
  check bool_t "bgp-sim breaker cools down longer" true
    (bgp.Resilience.Policies.breaker.Resilience.Breaker.cooldown
    > parse.Resilience.Policies.breaker.Resilience.Breaker.cooldown);
  List.iter
    (fun k ->
      check bool_t "mid-cost kinds keep the default policy" true
        (Resilience.Policies.for_kind k = Resilience.Policies.default))
    [
      Resilience.Verifier.Campion;
      Resilience.Verifier.Topology;
      Resilience.Verifier.Route_policies;
    ];
  List.iter
    (fun k ->
      check bool_t "uniform flattens the table" true
        (Resilience.Policies.uniform Resilience.Policies.default k
        = Resilience.Policies.default))
    Resilience.Verifier.all_kinds

(* A fresh runtime per kind so one kind's tripped breaker cannot leak into
   the other's attempt count. *)
let attempts_under_permafail kind =
  let t = rt () in
  let v = Resilience.Verifier.wrap kind (fun x -> x) in
  let calls = ref 0 in
  Resilience.Verifier.install v (fun _ ->
      incr calls;
      Error Resilience.Verifier.Flaked);
  (match Resilience.Runtime.call t v 0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a permanently failing verifier must degrade");
  !calls

let test_runtime_honors_per_kind_caps () =
  check int_t "parse-check exhausts its 4-attempt budget" 4
    (attempts_under_permafail Resilience.Verifier.Parse_check);
  check int_t "bgp-sim gives up after 2 attempts" 2
    (attempts_under_permafail Resilience.Verifier.Bgp_sim);
  check bool_t "the expensive verifier stops strictly sooner" true
    (attempts_under_permafail Resilience.Verifier.Bgp_sim
    < attempts_under_permafail Resilience.Verifier.Parse_check)

(* ------------------------------------------------------------------ *)
(* Driver: pay-for-what-you-use and chaos determinism                  *)
(* ------------------------------------------------------------------ *)

let md t = Cosynth.Driver.transcript_to_markdown ~title:"run" t

let chaos_config ?(crash = 0.) ?(timeout = 0.) ?(flake = 0.) ?(truncate = 0.) seed =
  Resilience.Runtime.config
    ~chaos:
      (Resilience.Chaos.make ~crash_rate:crash ~timeout_rate:timeout ~flake_rate:flake
         ~truncate_rate:truncate ~seed ())
    ()

let test_rate0_translation_identical () =
  let wrapped =
    Cosynth.Driver.run_translation ~seed:42
      ~resilience:Resilience.Runtime.default_config ~cisco_text ()
  in
  let plain = Cosynth.Driver.run_translation ~seed:42 ~cisco_text () in
  check Alcotest.string "transcripts byte-identical"
    (md plain.Cosynth.Driver.transcript)
    (md wrapped.Cosynth.Driver.transcript);
  check Alcotest.string "final configs byte-identical" plain.Cosynth.Driver.final_text
    wrapped.Cosynth.Driver.final_text

let test_rate0_no_transit_identical () =
  let wrapped =
    Cosynth.Driver.run_no_transit ~seed:42
      ~resilience:Resilience.Runtime.default_config ~routers:5 ()
  in
  let plain = Cosynth.Driver.run_no_transit ~seed:42 ~routers:5 () in
  check Alcotest.string "transcripts byte-identical"
    (md plain.Cosynth.Driver.transcript)
    (md wrapped.Cosynth.Driver.transcript)

let test_chaos_run_deterministic () =
  let resilience = chaos_config ~crash:0.2 ~timeout:0.1 ~flake:0.1 11 in
  let run () =
    md
      (Cosynth.Driver.run_translation ~seed:5 ~resilience ~cisco_text ())
        .Cosynth.Driver.transcript
  in
  check Alcotest.string "same chaos seed: same transcript" (run ()) (run ())

let test_chaos_pool_equals_sequential () =
  let resilience = chaos_config ~crash:0.2 ~flake:0.1 13 in
  let seq = Cosynth.Driver.run_no_transit ~seed:9 ~resilience ~routers:5 () in
  let pool = Exec.Pool.create ~domains:4 () in
  let par = Cosynth.Driver.run_no_transit ~seed:9 ~resilience ~pool ~routers:5 () in
  Exec.Pool.shutdown pool;
  check Alcotest.string "pooled chaos run == sequential"
    (md seq.Cosynth.Driver.transcript)
    (md par.Cosynth.Driver.transcript)

(* ------------------------------------------------------------------ *)
(* Driver: degradation and budget exhaustion                           *)
(* ------------------------------------------------------------------ *)

let count_origin origin (t : Cosynth.Driver.transcript) =
  List.length
    (List.filter
       (fun (e : Cosynth.Driver.event) -> e.Cosynth.Driver.origin = origin)
       t.Cosynth.Driver.events)

let assert_counts_accurate (t : Cosynth.Driver.transcript) =
  check int_t "auto counter matches the events" t.Cosynth.Driver.auto_prompts
    (count_origin Cosynth.Driver.Auto t);
  check int_t "human counter matches the events" t.Cosynth.Driver.human_prompts
    (count_origin Cosynth.Driver.Human t)

let test_outage_degrades_not_crashes () =
  (* Every verifier permanently down: the loop must still terminate, with
     the stages hand-checked (Degraded events) and findings escalated to
     the human — reduced leverage, never an exception. *)
  let resilience = chaos_config ~crash:1.0 17 in
  let r = Cosynth.Driver.run_translation ~seed:3 ~resilience ~cisco_text () in
  let t = r.Cosynth.Driver.transcript in
  check bool_t "degraded events recorded" true (count_origin Cosynth.Driver.Degraded t > 0);
  assert_counts_accurate t;
  let baseline =
    Cosynth.Driver.leverage
      (Cosynth.Driver.run_translation ~seed:3 ~cisco_text ()).Cosynth.Driver.transcript
  in
  check bool_t "outages reduce leverage" true (Cosynth.Driver.leverage t < baseline)

let test_budget_exhaustion_translation () =
  let resilience = chaos_config ~crash:1.0 19 in
  let r =
    Cosynth.Driver.run_translation ~seed:3 ~max_prompts:5 ~resilience ~cisco_text ()
  in
  let t = r.Cosynth.Driver.transcript in
  check bool_t "does not converge on a starved budget" false t.Cosynth.Driver.converged;
  check bool_t "stays within max_prompts" true
    (t.Cosynth.Driver.auto_prompts + t.Cosynth.Driver.human_prompts <= 5);
  assert_counts_accurate t

let test_budget_exhaustion_no_transit () =
  let resilience = chaos_config ~crash:1.0 23 in
  let r =
    Cosynth.Driver.run_no_transit ~seed:3 ~max_prompts:8 ~resilience ~routers:5 ()
  in
  let t = r.Cosynth.Driver.transcript in
  check bool_t "does not converge on a starved budget" false t.Cosynth.Driver.converged;
  check bool_t "stays within max_prompts" true
    (t.Cosynth.Driver.auto_prompts + t.Cosynth.Driver.human_prompts <= 8);
  assert_counts_accurate t

(* ------------------------------------------------------------------ *)
(* Memo: success-only caching                                          *)
(* ------------------------------------------------------------------ *)

let test_memo_failures_bypass_table () =
  Exec.Memo.reset ();
  (* A unique key so earlier tests cannot have primed the table. *)
  let text = "hostname memo-success-only\n" in
  let dialect = Batfish.Parse_check.Cisco_ios in
  (match Exec.Memo.check_result dialect text ~parse:(fun () -> Error `Down) with
  | Error `Down -> ()
  | Ok _ -> Alcotest.fail "an injected failure must be surfaced, not swallowed");
  let s1 = Exec.Memo.stats () in
  check int_t "failure counted as a miss" 1 s1.Exec.Memo.misses;
  check int_t "failure not cached" 0 s1.Exec.Memo.entries;
  let parsed = ref 0 in
  (match
     Exec.Memo.check_result dialect text ~parse:(fun () ->
         incr parsed;
         Ok (Batfish.Parse_check.check dialect text))
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "a clean parse must succeed");
  check int_t "failure did not poison the key: re-parsed" 1 !parsed;
  (match
     Exec.Memo.check_result dialect text ~parse:(fun () ->
         Alcotest.fail "cached success must not re-parse")
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "expected the cached success");
  let s3 = Exec.Memo.stats () in
  check int_t "success cached" 1 s3.Exec.Memo.entries;
  check int_t "third call is a hit" 1 s3.Exec.Memo.hits

(* ------------------------------------------------------------------ *)
(* Property: any fault schedule terminates within budget               *)
(* ------------------------------------------------------------------ *)

let rates_gen =
  let open QCheck2.Gen in
  let rate = map (fun n -> float_of_int n /. 20.) (int_range 0 10) in
  tup2 (tup4 rate rate rate rate) (int_range 0 10_000)

let rates_print ((c, t, f, tr), seed) =
  Printf.sprintf "crash %.2f timeout %.2f flake %.2f truncate %.2f seed %d" c t f tr
    seed

let prop_translation_terminates_within_budget =
  QCheck2.Test.make
    ~name:"translation: any fault schedule terminates within max_prompts" ~count:15
    ~print:rates_print rates_gen
    (fun ((crash, timeout, flake, truncate), seed) ->
      let resilience = chaos_config ~crash ~timeout ~flake ~truncate seed in
      let r =
        Cosynth.Driver.run_translation ~seed ~max_prompts:60 ~resilience ~cisco_text ()
      in
      let t = r.Cosynth.Driver.transcript in
      t.Cosynth.Driver.auto_prompts + t.Cosynth.Driver.human_prompts <= 60
      && t.Cosynth.Driver.auto_prompts = count_origin Cosynth.Driver.Auto t
      && t.Cosynth.Driver.human_prompts = count_origin Cosynth.Driver.Human t)

let prop_no_transit_terminates_within_budget =
  QCheck2.Test.make
    ~name:"no-transit: any fault schedule terminates within max_prompts" ~count:10
    ~print:rates_print rates_gen
    (fun ((crash, timeout, flake, truncate), seed) ->
      let resilience = chaos_config ~crash ~timeout ~flake ~truncate seed in
      let r =
        Cosynth.Driver.run_no_transit ~seed ~max_prompts:120 ~resilience ~routers:5 ()
      in
      let t = r.Cosynth.Driver.transcript in
      t.Cosynth.Driver.auto_prompts + t.Cosynth.Driver.human_prompts <= 120
      && t.Cosynth.Driver.auto_prompts = count_origin Cosynth.Driver.Auto t
      && t.Cosynth.Driver.human_prompts = count_origin Cosynth.Driver.Human t)

(* ------------------------------------------------------------------ *)
(* Property: retry backoff bounds under extreme policies and seeds     *)
(* ------------------------------------------------------------------ *)

let retry_extreme_gen =
  let open QCheck2.Gen in
  let policy =
    map
      (fun ((base, cap), jitter_q) ->
        {
          Resilience.Retry.max_attempts = 1;
          base_backoff = base;
          max_backoff = cap;
          jitter = float_of_int jitter_q /. 4.;
        })
      (tup2 (tup2 (int_range 1 1_000_000) (int_range 1 1_000_000_000)) (int_range 0 16))
  in
  tup3 policy (int_range 1 100_000) int

let retry_extreme_print (p, failures, seed) =
  Printf.sprintf "base %d cap %d jitter %.2f failures %d seed %d"
    p.Resilience.Retry.base_backoff p.Resilience.Retry.max_backoff
    p.Resilience.Retry.jitter failures seed

let prop_retry_backoff_bounds_extreme =
  QCheck2.Test.make
    ~name:"retry: backoff within [capped, capped + jitter*capped] for any policy"
    ~count:500 ~print:retry_extreme_print retry_extreme_gen
    (fun (p, failures, seed) ->
      let rng = Llmsim.Rng.make seed in
      (* Mirror of the documented bound: exponential on failures with the
         shift capped (so huge failure counts cannot overflow), clamped to
         max_backoff, plus jitter in [0, jitter * capped]. *)
      let capped =
        min p.Resilience.Retry.max_backoff
          (p.Resilience.Retry.base_backoff * (1 lsl min (failures - 1) 20))
      in
      let hi =
        capped
        + int_of_float (p.Resilience.Retry.jitter *. float_of_int capped)
      in
      let b = Resilience.Retry.backoff p rng ~failures in
      b >= capped && b <= hi)

(* ------------------------------------------------------------------ *)
(* Property: breaker half-open gating and re-trip timing               *)
(* ------------------------------------------------------------------ *)

let breaker_ops_gen =
  let open QCheck2.Gen in
  let policy =
    map
      (fun (th, cd) -> { Resilience.Breaker.failure_threshold = th; cooldown = cd })
      (tup2 (int_range 1 5) (int_range 1 30))
  in
  let op =
    frequency
      [
        (2, map (fun d -> `Advance d) (int_range 0 40));
        (3, return `Fail);
        (1, return `Succeed);
        (3, return `Acquire);
      ]
  in
  tup2 policy (list_size (int_range 1 80) op)

let breaker_ops_print (p, ops) =
  let op_str = function
    | `Advance d -> Printf.sprintf "+%d" d
    | `Fail -> "F"
    | `Succeed -> "S"
    | `Acquire -> "A"
  in
  Printf.sprintf "threshold %d cooldown %d: %s" p.Resilience.Breaker.failure_threshold
    p.Resilience.Breaker.cooldown
    (String.concat " " (List.map op_str ops))

let prop_breaker_half_open_timing =
  QCheck2.Test.make ~name:"breaker: half-open gating and re-trip timing" ~count:300
    ~print:breaker_ops_print breaker_ops_gen
    (fun (policy, ops) ->
      let module B = Resilience.Breaker in
      let b = B.create policy in
      let now = ref 0 in
      let opened_at = ref 0 in
      let trips_seen = ref 0 in
      let ok = ref true in
      let expect c = if not c then ok := false in
      List.iter
        (fun op ->
          if !ok then
            match op with
            | `Advance d -> now := !now + d
            | `Succeed ->
                B.record_success b;
                expect (B.state b = B.Closed);
                expect (B.cooldown_left b ~now:!now = 0)
            | `Fail ->
                let before = B.state b in
                let tripped = B.record_failure b ~now:!now in
                if tripped then begin
                  incr trips_seen;
                  opened_at := !now
                end;
                (* A trip always lands open; a failed half-open trial always
                   re-trips; failing while already open never re-trips. *)
                expect ((not tripped) || B.state b = B.Open);
                expect (before <> B.Half_open || tripped);
                expect (before <> B.Open || not tripped)
            | `Acquire -> (
                let before = B.state b in
                let r = B.acquire b ~now:!now in
                match before with
                | B.Open ->
                    if !now - !opened_at >= policy.B.cooldown then
                      (* Cooldown elapsed: exactly one half-open trial. *)
                      expect (r = `Proceed && B.state b = B.Half_open)
                    else begin
                      expect (r = `Reject && B.state b = B.Open);
                      expect
                        (B.cooldown_left b ~now:!now
                        = policy.B.cooldown - (!now - !opened_at))
                    end
                | B.Closed | B.Half_open -> expect (r = `Proceed)))
        ops;
      expect (Resilience.Breaker.trips b = !trips_seen);
      !ok)

(* ------------------------------------------------------------------ *)
(* Durable store: CRC framing, disk chaos, triage durability           *)
(* ------------------------------------------------------------------ *)

let with_store_temp f =
  let path = Filename.temp_file "cosynth_store_" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Resilience.Diskchaos.uninstall ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_crc32_vector () =
  (* The IEEE CRC-32 check value: crc32("123456789") = 0xCBF43926. *)
  check bool_t "check vector" true
    (Durable.Crc32.digest "123456789" = 0xCBF43926);
  check bool_t "empty string" true (Durable.Crc32.digest "" = 0);
  check bool_t "single-bit sensitivity" true
    (Durable.Crc32.digest "123456788" <> 0xCBF43926)

let test_store_roundtrip () =
  with_store_temp (fun path ->
      let records =
        List.init 5 (fun i -> Netcore.Json.Obj [ ("i", Netcore.Json.Int i) ])
      in
      let t = Resilience.Store.open_ ~truncate:true path in
      List.iter
        (fun j -> check bool_t "append durable" true (Resilience.Store.append t j))
        records;
      Resilience.Store.close t;
      let got, stats = Resilience.Store.read path in
      check bool_t "round trip" true (got = records);
      check int_t "all ok" 5 stats.Resilience.Store.ok;
      check int_t "no corruption" 0 stats.Resilience.Store.corrupt;
      check int_t "no legacy" 0 stats.Resilience.Store.legacy)

let test_diskchaos_deterministic () =
  let cfg = Resilience.Diskchaos.make ~torn_rate:0.3 ~io_error_rate:0.2 ~seed:11 () in
  let fates cfg =
    Resilience.Diskchaos.install cfg;
    let fs =
      List.init 20 (fun i ->
          Resilience.Diskchaos.write_fate ~path:"/x/a" ~len:(40 + i))
    in
    Resilience.Diskchaos.uninstall ();
    fs
  in
  check bool_t "same config, same fates" true (fates cfg = fates cfg);
  check bool_t "different seed, different fates" true
    (fates cfg
    <> fates (Resilience.Diskchaos.make ~torn_rate:0.3 ~io_error_rate:0.2 ~seed:12 ()));
  check bool_t "none is none" true
    (Resilience.Diskchaos.is_none Resilience.Diskchaos.none);
  (* Disarmed: the fast path neither injects nor counts. Installing the
     all-zero config injects nothing but counts every operation — how the
     D1 gate measures a run's write-point schedule. *)
  check bool_t "disarmed fast path" true
    (Resilience.Diskchaos.write_fate ~path:"/x/a" ~len:100
    = Resilience.Diskchaos.Write_all);
  Resilience.Diskchaos.install Resilience.Diskchaos.none;
  ignore (Resilience.Diskchaos.write_fate ~path:"/x/a" ~len:10);
  ignore (Resilience.Diskchaos.fsync_fate ~path:"/x/a");
  let st = Resilience.Diskchaos.stats () in
  Resilience.Diskchaos.uninstall ();
  check int_t "armed zero-rate config counts ops" 2 st.Resilience.Diskchaos.ops;
  check int_t "but injects nothing" 0
    (st.Resilience.Diskchaos.shorts + st.Resilience.Diskchaos.torn
    + st.Resilience.Diskchaos.io_errors + st.Resilience.Diskchaos.enospc
    + st.Resilience.Diskchaos.fsync_failures + st.Resilience.Diskchaos.crashes)

let test_triage_kill_mid_append () =
  with_store_temp (fun path ->
      let rows = [ ("parse", "Failure", 2); ("synth", "Timeout", 1) ] in
      (* Each row is one write + one fsync; crash_after 2 lets row 1 land
         durably and kills the process inside row 2's write. *)
      Resilience.Diskchaos.install
        (Resilience.Diskchaos.make ~crash_after:2 ~seed:1 ());
      (match Resilience.Triage.append ~path ~seed:5 rows with
      | () -> Alcotest.fail "expected the injected crash"
      | exception Resilience.Diskchaos.Crashed _ -> ());
      Resilience.Diskchaos.uninstall ();
      let survived = Resilience.Triage.load path in
      check int_t "only the fsync'd prefix row survives" 1 (List.length survived);
      (match survived with
      | [ r ] ->
          check bool_t "and it is the first row, intact" true
            (r.Resilience.Triage.stage = "parse"
            && r.Resilience.Triage.constructor = "Failure"
            && r.Resilience.Triage.count = 2)
      | _ -> ());
      (* Re-running the seed repairs the history: load stays total over
         the torn line and merges the re-run rows. *)
      Resilience.Triage.append ~path ~seed:5 rows;
      let merged = Resilience.Triage.load path in
      check int_t "re-run restores both buckets" 2 (List.length merged);
      check bool_t "torn line never surfaces as a row" true
        (List.for_all
           (fun r ->
             r.Resilience.Triage.stage = "parse"
             || r.Resilience.Triage.stage = "synth")
           merged))

let test_parse_admission_caps () =
  let module A = Resilience.Admission in
  let current = A.default_config in
  let parse = Cosynth.Service.parse_admission_caps ~current in
  (match parse "{\"max_in_flight\": 9, \"max_queue\": 3}" with
  | Ok c ->
      check int_t "in-flight applied" 9 c.A.max_in_flight;
      check int_t "queue applied" 3 c.A.max_queue;
      check int_t "missing keys keep current" current.A.max_per_client
        c.A.max_per_client;
      check int_t "missing deadline kept" current.A.max_deadline_ms
        c.A.max_deadline_ms
  | Error e -> Alcotest.failf "valid caps rejected: %s" e);
  (match parse "{\"unknown\": 1}" with
  | Ok c -> check bool_t "unknown keys ignored" true (c = current)
  | Error e -> Alcotest.failf "unknown-keys file rejected: %s" e);
  let rejects text = match parse text with Ok _ -> false | Error _ -> true in
  check bool_t "truncated write rejected (all-or-nothing)" true
    (rejects "{\"max_in_flight\": 2, \"max_qu");
  check bool_t "empty file rejected" true (rejects "");
  check bool_t "non-object rejected" true (rejects "[1, 2]");
  check bool_t "non-integer value rejected" true
    (rejects "{\"max_in_flight\": \"all\"}");
  check bool_t "below-floor in-flight rejected" true
    (rejects "{\"max_in_flight\": 0}");
  check bool_t "negative queue rejected" true (rejects "{\"max_queue\": -1}");
  check bool_t "one bad key poisons the whole file" true
    (rejects "{\"max_queue\": 5, \"max_in_flight\": 0}")

(* ------------------------------------------------------------------ *)
(* Property: store reads are total under arbitrary corruption          *)
(* ------------------------------------------------------------------ *)

let store_corruption_gen =
  let open QCheck2.Gen in
  (* (record count, payload seed, mutation site, xor byte, truncate?) *)
  tup5 (int_range 1 8) (int_range 0 9999) (int_range 0 1_000_000) (int_range 1 255)
    bool

let store_corruption_print (n, seed, site, x, truncate) =
  Printf.sprintf "%d record(s) seed %d %s at site %d (xor %#x)" n seed
    (if truncate then "truncated" else "flipped")
    site x

let prop_store_read_total_under_corruption =
  QCheck2.Test.make
    ~name:"store: reads are total under truncation and byte flips" ~count:250
    ~print:store_corruption_print store_corruption_gen
    (fun (n, seed, site, x, truncate) ->
      let records =
        List.init n (fun i ->
            Netcore.Json.Obj
              [
                ("seed", Netcore.Json.Int seed);
                ("i", Netcore.Json.Int i);
                ("note", Netcore.Json.String (Printf.sprintf "r%d-%d" seed i));
              ])
      in
      let intact = List.map Netcore.Json.to_string records in
      let bytes =
        String.concat ""
          (List.map (fun j -> Resilience.Store.frame (Netcore.Json.to_string j)) records)
      in
      let mutated =
        if truncate then String.sub bytes 0 (site mod (String.length bytes + 1))
        else begin
          let b = Bytes.of_string bytes in
          let p = site mod Bytes.length b in
          Bytes.set b p (Char.chr (Char.code (Bytes.get b p) lxor x));
          Bytes.to_string b
        end
      in
      let path = Filename.temp_file "cosynth_prop_" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let oc = open_out_bin path in
          output_string oc mutated;
          close_out oc;
          let got, _ = Resilience.Store.read path in
          let got = List.map Netcore.Json.to_string got in
          let rec is_prefix a b =
            match (a, b) with
            | [], _ -> true
            | x :: a', y :: b' when String.equal x y -> is_prefix a' b'
            | _ -> false
          in
          (* Never a phantom record; a truncation yields exactly a clean
             prefix, and a single flipped byte loses at most the lines it
             touches (two, when the flip eats a newline). *)
          List.for_all (fun g -> List.mem g intact) got
          &&
          if truncate then is_prefix got intact else List.length got >= n - 2))

let prop_store_roundtrip_identity =
  QCheck2.Test.make ~name:"store: fault-free frame/decode round trip" ~count:200
    ~print:(fun (a, b) -> Printf.sprintf "(%d, %d)" a b)
    QCheck2.Gen.(tup2 int int)
    (fun (a, b) ->
      let j =
        Netcore.Json.Obj
          [ ("a", Netcore.Json.Int a); ("b", Netcore.Json.Int b) ]
      in
      let line = Resilience.Store.frame (Netcore.Json.to_string j) in
      match
        Resilience.Store.decode_line (String.sub line 0 (String.length line - 1))
      with
      | `Ok j' -> j' = j
      | _ -> false)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_translation_terminates_within_budget;
      prop_no_transit_terminates_within_budget;
      prop_retry_backoff_bounds_extreme;
      prop_breaker_half_open_timing;
      prop_store_read_total_under_corruption;
      prop_store_roundtrip_identity;
    ]

(* ------------------------------------------------------------------ *)
(* Guard: the exception firewall                                       *)
(* ------------------------------------------------------------------ *)

exception Kaboom of string

let test_guard_passthrough () =
  Resilience.Guard.reset ();
  (match Resilience.Guard.run ~label:"ok-stage" (fun () -> 6 * 7) with
  | Ok 42 -> ()
  | _ -> Alcotest.fail "a returning thunk must pass through untouched");
  check int_t "no registry entries on success" 0 (Resilience.Guard.total ())

let test_guard_maps_exceptions () =
  Resilience.Guard.reset ();
  let crash_of f =
    match Resilience.Guard.run ~label:"boom-stage" ~fingerprint:"cafe1234" f with
    | Error c -> c
    | Ok _ -> Alcotest.fail "a raising thunk must be Error"
  in
  let c = crash_of (fun () -> failwith "nope") in
  check Alcotest.string "Failure constructor" "Failure"
    c.Resilience.Guard.constructor;
  check Alcotest.string "stage label carried" "boom-stage" c.Resilience.Guard.stage;
  check Alcotest.string "fingerprint carried" "cafe1234"
    c.Resilience.Guard.fingerprint;
  check bool_t "message keeps the payload" true
    (String.length c.Resilience.Guard.message > 0);
  let c = crash_of (fun () -> invalid_arg "bad") in
  check Alcotest.string "Invalid_argument constructor" "Invalid_argument"
    c.Resilience.Guard.constructor;
  let c = crash_of (fun () -> raise Not_found) in
  check Alcotest.string "Not_found constructor" "Not_found"
    c.Resilience.Guard.constructor;
  let c = crash_of (fun () -> raise (Kaboom "custom")) in
  check bool_t "custom constructor resolved" true
    (String.length c.Resilience.Guard.constructor > 0
    && c.Resilience.Guard.constructor <> "Failure");
  (* Every crash landed in the registry, bucketed by (stage, constructor). *)
  check int_t "registry counted each crash" 4 (Resilience.Guard.total ());
  check bool_t "buckets keyed by constructor" true
    (List.exists
       (fun (s, k, n) -> s = "boom-stage" && k = "Failure" && n = 1)
       (Resilience.Guard.crashes ()))

let test_guard_wall_clock_watchdog () =
  Resilience.Guard.reset ();
  match
    Resilience.Guard.run ~timeout_ms:100 ~label:"spin-stage" (fun () ->
        while true do
          ignore (Sys.opaque_identity (ref 0))
        done)
  with
  | Error c ->
      check Alcotest.string "timeout constructor" "Stage_timeout"
        c.Resilience.Guard.constructor
  | Ok _ -> Alcotest.fail "an infinite loop must be cut by the watchdog"

let test_guard_verifier_faulted () =
  Resilience.Guard.reset ();
  let v =
    Resilience.Verifier.wrap Resilience.Verifier.Parse_check (fun _ ->
        raise (Kaboom "verifier blew up"))
  in
  (match Resilience.Verifier.run v 5 with
  | Error (Resilience.Verifier.Faulted c) ->
      check Alcotest.string "stage is the verifier kind" "parse-check"
        c.Resilience.Guard.stage;
      check bool_t "humanizable failure text" true
        (let s =
           Resilience.Verifier.failure_to_string (Resilience.Verifier.Faulted c)
         in
         String.length s > 0)
  | _ -> Alcotest.fail "a raising oracle must surface as Faulted");
  (* And a healthy oracle through the same boundary is untouched. *)
  let v = Resilience.Verifier.wrap Resilience.Verifier.Parse_check (fun x -> x + 1) in
  match Resilience.Verifier.run v 5 with
  | Ok 6 -> ()
  | _ -> Alcotest.fail "the guard must be invisible on the success path"

let test_runtime_stage_watchdog () =
  (* Big retry budget, huge round budget, tiny stage budget: the tick
     watchdog — not attempts exhaustion, not the round deadline — is what
     cancels the stage. *)
  let cfg =
    Resilience.Runtime.config
      ~retry:
        { Resilience.Retry.max_attempts = 50; base_backoff = 4; max_backoff = 8;
          jitter = 0. }
      ~breaker:{ Resilience.Breaker.failure_threshold = 1000; cooldown = 1 }
      ~round_budget:10_000 ~stage_budget:16 ()
  in
  let t = Resilience.Runtime.create cfg in
  let v = Resilience.Verifier.wrap Resilience.Verifier.Topology (fun x -> x) in
  let calls = ref 0 in
  Resilience.Verifier.install v (fun _ ->
      incr calls;
      Error Resilience.Verifier.Flaked);
  match Resilience.Runtime.call t v 0 with
  | Error { Resilience.Runtime.reason; _ } ->
      let has_needle =
        let needle = "stage watchdog" in
        let n = String.length needle and l = String.length reason in
        let rec at i = i + n <= l && (String.sub reason i n = needle || at (i + 1)) in
        at 0
      in
      check bool_t "degraded by the stage watchdog" true has_needle;
      check bool_t "watchdog fired mid-retry, not at exhaustion" true (!calls < 50)
  | Ok _ -> Alcotest.fail "a hung stage must be cancelled"

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let adm_cfg =
  {
    Resilience.Admission.max_in_flight = 2;
    max_queue = 1;
    max_per_client = 2;
    max_deadline_ms = 5_000;
    retry_after_ms = 30;
  }

let test_admission_admit_release () =
  let a = Resilience.Admission.create adm_cfg in
  match
    (Resilience.Admission.admit a ~client:"x", Resilience.Admission.admit a ~client:"y")
  with
  | Resilience.Admission.Admitted t1, Resilience.Admission.Admitted t2 ->
      let s = Resilience.Admission.stats a in
      check int_t "both in flight" 2 s.Resilience.Admission.in_flight;
      Resilience.Admission.release a t1;
      (* Idempotent: the abandonment path and the completion path may both
         release the same ticket. *)
      Resilience.Admission.release a t1;
      Resilience.Admission.release a t2;
      let s = Resilience.Admission.stats a in
      check int_t "all released" 0 s.Resilience.Admission.in_flight;
      check int_t "released counts tickets, not release calls" 2
        s.Resilience.Admission.released;
      check int_t "peak tracked" 2 s.Resilience.Admission.peak_in_flight
  | _ -> Alcotest.fail "two admits under capacity must both be Admitted"

let test_admission_capacity_shed () =
  (* Capacity 2 + queue 1: with 2 running and 1 queued, the 4th caller is
     shed immediately with the configured retry hint. *)
  let a = Resilience.Admission.create adm_cfg in
  let t1 =
    match Resilience.Admission.admit a ~client:"a" with
    | Resilience.Admission.Admitted t -> t
    | _ -> Alcotest.fail "first admit"
  in
  (match Resilience.Admission.admit a ~client:"b" with
  | Resilience.Admission.Admitted _ -> ()
  | _ -> Alcotest.fail "second admit");
  (* Third caller queues (blocking), so it runs on its own thread; it must
     be admitted once a slot frees. *)
  let queued_result = ref None in
  let queued =
    Thread.create
      (fun () -> queued_result := Some (Resilience.Admission.admit a ~client:"c"))
      ()
  in
  Thread.delay 0.05;
  check int_t "third caller is queued" 1
    (Resilience.Admission.stats a).Resilience.Admission.queued;
  (* Queue full: the fourth caller is shed, not queued. *)
  (match Resilience.Admission.admit a ~client:"d" with
  | Resilience.Admission.Shed { retry_after_ms; reason } ->
      check int_t "retry hint from config" 30 retry_after_ms;
      check bool_t "shed for capacity" true (reason = Resilience.Admission.Capacity)
  | Resilience.Admission.Admitted _ -> Alcotest.fail "queue-full caller admitted");
  Resilience.Admission.release a t1;
  Thread.join queued;
  (match !queued_result with
  | Some (Resilience.Admission.Admitted _) -> ()
  | _ -> Alcotest.fail "queued caller not admitted after a release");
  let s = Resilience.Admission.stats a in
  check int_t "one capacity shed counted" 1 s.Resilience.Admission.shed_capacity;
  check int_t "peak queue depth tracked" 1 s.Resilience.Admission.peak_queued

let test_admission_per_client_cap () =
  (* One identity at its cap is shed immediately — even though global
     capacity remains — so a single flooding client cannot occupy the
     whole queue. *)
  let a =
    Resilience.Admission.create { adm_cfg with Resilience.Admission.max_in_flight = 8 }
  in
  (match
     ( Resilience.Admission.admit a ~client:"greedy",
       Resilience.Admission.admit a ~client:"greedy" )
   with
  | Resilience.Admission.Admitted _, Resilience.Admission.Admitted _ -> ()
  | _ -> Alcotest.fail "under the per-client cap both admit");
  (match Resilience.Admission.admit a ~client:"greedy" with
  | Resilience.Admission.Shed { reason; _ } ->
      check bool_t "shed for the per-client cap" true
        (reason = Resilience.Admission.Per_client)
  | Resilience.Admission.Admitted _ -> Alcotest.fail "cap not enforced");
  (* A different identity is untouched. *)
  match Resilience.Admission.admit a ~client:"other" with
  | Resilience.Admission.Admitted _ ->
      check int_t "per-client shed counted" 1
        (Resilience.Admission.stats a).Resilience.Admission.shed_per_client
  | _ -> Alcotest.fail "other client shed by a stranger's cap"

let test_admission_clamp_deadline () =
  check int_t "no ask means the cap" 5_000
    (Resilience.Admission.clamp_deadline adm_cfg None);
  check int_t "ask under the cap honored" 250
    (Resilience.Admission.clamp_deadline adm_cfg (Some 250));
  check int_t "ask over the cap clamped" 5_000
    (Resilience.Admission.clamp_deadline adm_cfg (Some 60_000));
  check int_t "nonpositive ask clamped to 1" 1
    (Resilience.Admission.clamp_deadline adm_cfg (Some 0))

(* ------------------------------------------------------------------ *)
(* Guard: per-request deadlines                                        *)
(* ------------------------------------------------------------------ *)

let test_guard_deadline_in_time () =
  Resilience.Guard.reset ();
  let settled = ref false in
  (match
     Resilience.Guard.run_deadline ~deadline_ms:2_000
       ~on_settled:(fun () -> settled := true)
       ~label:"fast" (fun () -> 6 * 7)
   with
  | Ok 42 -> ()
  | _ -> Alcotest.fail "an in-time thunk must pass through");
  (* on_settled fires on the worker thread the moment the thunk finishes;
     give it a beat. *)
  Thread.delay 0.05;
  check bool_t "on_settled fired" true !settled;
  check int_t "no crash recorded" 0 (Resilience.Guard.total ())

let test_guard_deadline_expiry () =
  Resilience.Guard.reset ();
  let settled = ref false in
  let t0 = Unix.gettimeofday () in
  (match
     Resilience.Guard.run_deadline ~deadline_ms:80
       ~on_settled:(fun () -> settled := true)
       ~label:"slow"
       (fun () ->
         Thread.delay 0.4;
         0)
   with
  | Error c ->
      check Alcotest.string "deadline constructor" "Deadline_exceeded"
        c.Resilience.Guard.constructor;
      check Alcotest.string "stage label carried" "slow" c.Resilience.Guard.stage
  | Ok _ -> Alcotest.fail "an overrunning thunk must be Error");
  let waited = Unix.gettimeofday () -. t0 in
  check bool_t "caller returned near the deadline, not the full sleep" true
    (waited < 0.3);
  check bool_t "expiry recorded in the registry" true
    (List.exists
       (fun (s, k, _) -> s = "slow" && k = "Deadline_exceeded")
       (Resilience.Guard.crashes ()));
  (* The abandoned worker still finishes and settles — that is where the
     admission slot comes back from. *)
  Thread.delay 0.5;
  check bool_t "on_settled fired after abandonment" true !settled

(* ------------------------------------------------------------------ *)
(* Trust: the Byzantine-verifier reputation ledger                     *)
(* ------------------------------------------------------------------ *)

let test_trust_two_disagreements_quarantine () =
  let t = Resilience.Trust.create Resilience.Trust.default_config in
  let k = Resilience.Verifier.Campion in
  (* 1.0 - 0.4 = 0.6 >= 0.5: the first detected lie only debits... *)
  check bool_t "first disagreement debits" true
    (Resilience.Trust.disagree t k = `Ok);
  check bool_t "still trusted" false (Resilience.Trust.quarantined t k);
  (* ...and 0.6 - 0.4 = 0.2 < 0.5: the second quarantines. *)
  check bool_t "second disagreement quarantines" true
    (Resilience.Trust.disagree t k = `Quarantined);
  check bool_t "quarantined" true (Resilience.Trust.quarantined t k);
  check int_t "both lies counted" 2 (Resilience.Trust.lies_detected t);
  check int_t "entered quarantine once" 1 (Resilience.Trust.quarantine_count t);
  (* Reputation is per kind: a lying Campion says nothing about Batfish. *)
  check bool_t "other kinds untouched" false
    (Resilience.Trust.quarantined t Resilience.Verifier.Parse_check);
  (* A quarantined kind's answers are hand-run, never voluntarily
     cross-checked — the budget is for kinds still worth vetting. *)
  check bool_t "no voluntary checks while quarantined" false
    (Resilience.Trust.should_check t k ~dirty:true)

let test_trust_probation_restores () =
  let cfg = { Resilience.Trust.default_config with Resilience.Trust.probation = 2 } in
  let t = Resilience.Trust.create cfg in
  let k = Resilience.Verifier.Topology in
  ignore (Resilience.Trust.disagree t k);
  check bool_t "setup: quarantined" true
    (Resilience.Trust.disagree t k = `Quarantined);
  (* One agreement, then a disagreement: the streak resets — restoration
     demands *consecutive* honest behavior. *)
  check bool_t "first agreeing re-run not enough" true
    (Resilience.Trust.probation t k ~agree:true = `Still);
  check bool_t "disagreeing re-run resets the streak" true
    (Resilience.Trust.probation t k ~agree:false = `Still);
  check bool_t "streak restarts" true
    (Resilience.Trust.probation t k ~agree:true = `Still);
  check bool_t "second consecutive agreement restores" true
    (Resilience.Trust.probation t k ~agree:true = `Restored 2);
  check bool_t "quarantine lifted" false (Resilience.Trust.quarantined t k);
  check int_t "restore counted" 1 (Resilience.Trust.restore_count t);
  (* Restoration is a clean slate: the score is back at [initial]. *)
  check bool_t "score reset to initial" true
    (Resilience.Trust.score t k = cfg.Resilience.Trust.initial)

let test_trust_suspicion_and_note_truth () =
  let t = Resilience.Trust.create Resilience.Trust.default_config in
  let k = Resilience.Verifier.Parse_check in
  (* A kind's very first clean pass is suspicious (a round-one false
     negative must not slip through)... *)
  check bool_t "first clean pass checked" true
    (Resilience.Trust.should_check t k ~dirty:false);
  (* ...but clean-after-clean is not. *)
  check bool_t "clean after clean not suspicious" false
    (Resilience.Trust.should_check t k ~dirty:false);
  (* The oracle said the draft was actually dirty: re-anchoring to the
     truth makes the next fake clean pass suspicious again — without
     note_truth a caught false negative would launder the history. *)
  Resilience.Trust.note_truth t k ~dirty:true;
  check bool_t "clean after a caught lie is suspicious" true
    (Resilience.Trust.should_check t k ~dirty:false)

let test_trust_budget_exhausts () =
  let cfg =
    { Resilience.Trust.default_config with Resilience.Trust.check_budget = 3 }
  in
  let t = Resilience.Trust.create cfg in
  let k = Resilience.Verifier.Bgp_sim in
  for i = 1 to 3 do
    if not (Resilience.Trust.should_check t k ~dirty:true) then
      Alcotest.failf "check %d refused with budget remaining" i
  done;
  check bool_t "budget spent: dirty answers no longer checked" false
    (Resilience.Trust.should_check t k ~dirty:true);
  check int_t "spent exactly the budget" 3 (Resilience.Trust.checks_spent t)

(* Whatever the answer stream — any dirtiness sequence, spread over every
   kind — the ledger never grants more voluntary cross-checks than its
   budget, and its spent counter is exactly the number of grants. *)
let prop_trust_budget_never_exceeded =
  QCheck2.Test.make ~name:"trust: voluntary cross-checks never exceed the budget"
    ~count:100
    QCheck2.Gen.(pair (int_bound 8) (list_size (int_bound 60) bool))
    (fun (budget, answers) ->
      let cfg =
        { Resilience.Trust.default_config with Resilience.Trust.check_budget = budget }
      in
      let t = Resilience.Trust.create cfg in
      let kinds = Array.of_list Resilience.Verifier.all_kinds in
      let granted =
        List.fold_left
          (fun (i, n) dirty ->
            let k = kinds.(i mod Array.length kinds) in
            (i + 1, if Resilience.Trust.should_check t k ~dirty then n + 1 else n))
          (0, 0) answers
        |> snd
      in
      granted <= budget && Resilience.Trust.checks_spent t = granted)

let test_admission_set_caps_live () =
  (* SIGHUP hot reload: raising max_in_flight must admit a queued waiter
     immediately — no release, no drain. *)
  let a =
    Resilience.Admission.create
      { adm_cfg with Resilience.Admission.max_in_flight = 1 }
  in
  let t1 =
    match Resilience.Admission.admit a ~client:"a" with
    | Resilience.Admission.Admitted t -> t
    | _ -> Alcotest.fail "first admit"
  in
  let queued_result = ref None in
  let queued =
    Thread.create
      (fun () -> queued_result := Some (Resilience.Admission.admit a ~client:"b"))
      ()
  in
  Thread.delay 0.05;
  check int_t "second caller queued behind the cap" 1
    (Resilience.Admission.stats a).Resilience.Admission.queued;
  Resilience.Admission.set_caps a
    { adm_cfg with Resilience.Admission.max_in_flight = 2 };
  Thread.join queued;
  (match !queued_result with
  | Some (Resilience.Admission.Admitted _) -> ()
  | _ -> Alcotest.fail "raised cap did not admit the queued waiter");
  check int_t "new caps in force" 2
    (Resilience.Admission.config a).Resilience.Admission.max_in_flight;
  (* Reloaded caps are clamped exactly as by create: garbage in a caps
     file must not wedge the daemon. *)
  Resilience.Admission.set_caps a
    { adm_cfg with Resilience.Admission.max_in_flight = 0; max_queue = -5 };
  let c = Resilience.Admission.config a in
  check int_t "in-flight clamped to >= 1" 1 c.Resilience.Admission.max_in_flight;
  check int_t "queue clamped to >= 0" 0 c.Resilience.Admission.max_queue;
  (* Lowering below current usage never revokes tickets: both releases
     settle cleanly. *)
  Resilience.Admission.release a t1;
  (match !queued_result with
  | Some (Resilience.Admission.Admitted t2) -> Resilience.Admission.release a t2
  | _ -> ());
  check int_t "all slots returned" 0
    (Resilience.Admission.stats a).Resilience.Admission.in_flight

(* ------------------------------------------------------------------ *)
(* Quorum cross-checks (the collusion defense)                         *)
(* ------------------------------------------------------------------ *)

let test_quorum_overrule_refund_and_tie () =
  let t = Resilience.Trust.create Resilience.Trust.default_config in
  let k = Resilience.Verifier.Campion in
  check bool_t "audit granted against a fresh ledger" true
    (Resilience.Trust.should_audit t k);
  check int_t "the grant charges the budget" 1 (Resilience.Trust.audits_spent t);
  (* K=4: two referees at weight 1.0 tie the full-trust suspect+oracle
     camp (1.0 + 1.0) — and referees win ties, because agreement between
     two already-suspect parties must not outrank independent hand
     re-runs of equal weight. *)
  (match Resilience.Trust.quorum_verdict t k with
  | `Overruled (kind_q, oracle_q) ->
      check bool_t "one debit does not quarantine the kind" false kind_q;
      (* The oracle is debited at double weight: one proven collusion
         (1.0 - 0.8 = 0.2 < 0.5) quarantines it. *)
      check bool_t "one overrule quarantines the oracle" true oracle_q
  | `Outvoted -> Alcotest.fail "tie must go to the referees");
  check bool_t "oracle quarantined" true (Resilience.Trust.oracle_quarantined t);
  check int_t "collusion counted" 1 (Resilience.Trust.collusions_detected t);
  (* The overrule refunds its audit charge: the budget bounds what
     auditing honest agreements may cost, never the pursuit of a proven
     coalition. *)
  check int_t "overruled audit refunded" 0 (Resilience.Trust.audits_spent t);
  (* A quarantined oracle stops all audits — hand-runs are authoritative
     now, there is no clean-agreement left to audit. *)
  check bool_t "no audits while the oracle is quarantined" false
    (Resilience.Trust.should_audit t k)

let test_quorum_k3_outvoted () =
  (* The deliberately-too-small quorum: one referee (K - 2 = 1) cannot
     outweigh the full-trust camp's 2.0, so the colluding clean pass
     stands — and the outvoted audit stays charged. *)
  let cfg =
    { Resilience.Trust.default_config with Resilience.Trust.quorum = 3 }
  in
  let t = Resilience.Trust.create cfg in
  let k = Resilience.Verifier.Parse_check in
  check bool_t "audit granted" true (Resilience.Trust.should_audit t k);
  check bool_t "one referee is outvoted" true
    (Resilience.Trust.quorum_verdict t k = `Outvoted);
  check bool_t "no debit on an outvote" true
    (Resilience.Trust.oracle_score t = cfg.Resilience.Trust.initial);
  check int_t "no collusion counted" 0 (Resilience.Trust.collusions_detected t);
  check int_t "outvoted audit stays charged" 1 (Resilience.Trust.audits_spent t)

let test_quorum_trust_weighted_shares () =
  (* Trust-informed scheduling: a full-trust kind among five gets
     ceil(8 * 1.0 / 5.0) = 2 of the default budget of 8 — audits
     concentrate on the high-trust kinds whose lies would do the most
     damage, and the third request for the same kind is refused with
     budget remaining. *)
  let t = Resilience.Trust.create Resilience.Trust.default_config in
  let k = Resilience.Verifier.Topology in
  check bool_t "first audit granted" true (Resilience.Trust.should_audit t k);
  check bool_t "second audit granted" true (Resilience.Trust.should_audit t k);
  check bool_t "third audit exceeds the kind's share" false
    (Resilience.Trust.should_audit t k);
  check int_t "global budget barely touched" 2 (Resilience.Trust.audits_spent t);
  check bool_t "another kind still has its own share" true
    (Resilience.Trust.should_audit t Resilience.Verifier.Bgp_sim)

let test_quorum_oracle_probation_and_alert_mode () =
  let t = Resilience.Trust.create Resilience.Trust.default_config in
  let k = Resilience.Verifier.Campion in
  ignore (Resilience.Trust.should_audit t k);
  (match Resilience.Trust.quorum_verdict t k with
  | `Overruled (_, true) -> ()
  | _ -> Alcotest.fail "setup: overrule must quarantine the oracle");
  (* Alert mode: a quarantined oracle proves a coalition with unknown
     membership, so every answer is suspicious — even clean-after-clean —
     and the checks are free (they resolve against the hand-run fallback,
     not the oracle service the budget bounds). *)
  let k2 = Resilience.Verifier.Topology in
  check bool_t "clean answer suspicious in alert mode" true
    (Resilience.Trust.should_check t k2 ~dirty:false);
  check bool_t "clean-after-clean still suspicious in alert mode" true
    (Resilience.Trust.should_check t k2 ~dirty:false);
  check int_t "alert-mode checks are not charged" 0
    (Resilience.Trust.checks_spent t);
  (* Oracle probation mirrors kind probation: a disagreement resets the
     streak, enough consecutive agreements restore. *)
  check bool_t "first agreement not enough" true
    (Resilience.Trust.oracle_probation t ~agree:true = `Still);
  check bool_t "disagreement resets the streak" true
    (Resilience.Trust.oracle_probation t ~agree:false = `Still);
  for _ = 1 to 2 do
    ignore (Resilience.Trust.oracle_probation t ~agree:true)
  done;
  check bool_t "third consecutive agreement restores" true
    (Resilience.Trust.oracle_probation t ~agree:true = `Restored 3);
  check bool_t "oracle quarantine lifted" false
    (Resilience.Trust.oracle_quarantined t);
  (* Peacetime rules are back: clean-after-clean is no longer suspicious.
     ([k2]'s last observation above was clean.) *)
  check bool_t "alert mode ends with the quarantine" false
    (Resilience.Trust.should_check t k2 ~dirty:false)

(* ------------------------------------------------------------------ *)
(* Persistent trust ledger (Ledger_store)                              *)
(* ------------------------------------------------------------------ *)

let sample_counters =
  {
    Resilience.Trust.cross_checks = 3;
    agreements = 2;
    disagreements = 1;
    quarantines = 1;
    restores = 0;
    probation_runs = 2;
  }

let sample_quorum =
  {
    Resilience.Trust.audits = 2;
    overruled = 1;
    outvoted = 0;
    oracle_quarantines = 1;
    oracle_restores = 0;
    oracle_probations = 1;
  }

(* A ledger with real battle scars: the oracle quarantined by an overrule,
   Campion quarantined by two lies, Parse_check debited once. *)
let scarred_entry () =
  let t = Resilience.Trust.create Resilience.Trust.default_config in
  ignore (Resilience.Trust.should_audit t Resilience.Verifier.Parse_check);
  ignore (Resilience.Trust.quorum_verdict t Resilience.Verifier.Parse_check);
  ignore (Resilience.Trust.disagree t Resilience.Verifier.Campion);
  ignore (Resilience.Trust.disagree t Resilience.Verifier.Campion);
  Resilience.Trust.state_of t ~counters:sample_counters ~quorum:sample_quorum

let test_ledger_store_roundtrip () =
  let e = scarred_entry () in
  (* JSON codec round-trip, field for field. *)
  (match
     Resilience.Trust.Ledger_store.entry_of_json
       (Resilience.Trust.Ledger_store.entry_to_json e)
   with
  | Some e' -> check bool_t "entry round-trips through JSON" true (e = e')
  | None -> Alcotest.fail "entry_to_json produced an unparseable entry");
  (* File round-trip with last-write-wins by seed. *)
  let path = Filename.temp_file "cosynth_trust_ledger_" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with _ -> ())
    (fun () ->
      let fresh =
        Resilience.Trust.state_of
          (Resilience.Trust.create Resilience.Trust.default_config)
          ~counters:Resilience.Trust.zero ~quorum:Resilience.Trust.zero_quorum
      in
      let h = Resilience.Trust.Ledger_store.open_ ~truncate:true path in
      Resilience.Trust.Ledger_store.record h ~seed:0 fresh;
      Resilience.Trust.Ledger_store.record h ~seed:1 fresh;
      (* A re-run of seed 0 supersedes its first record. *)
      Resilience.Trust.Ledger_store.record h ~seed:0 e;
      Resilience.Trust.Ledger_store.close h;
      match Resilience.Trust.Ledger_store.load path with
      | None -> Alcotest.fail "load lost the ledger"
      | Some merged ->
          check bool_t "last write wins, then seeds merge" true
            (merged = Resilience.Trust.Ledger_store.merge e fresh));
  check bool_t "missing file loads to None" true
    (Resilience.Trust.Ledger_store.load (path ^ ".does-not-exist") = None)

let test_ledger_merge_commutative () =
  let e1 = scarred_entry () in
  let e2 =
    let t = Resilience.Trust.create Resilience.Trust.default_config in
    ignore (Resilience.Trust.disagree t Resilience.Verifier.Topology);
    Resilience.Trust.state_of t ~counters:sample_counters
      ~quorum:Resilience.Trust.zero_quorum
  in
  let e3 =
    Resilience.Trust.state_of
      (Resilience.Trust.create Resilience.Trust.default_config)
      ~counters:Resilience.Trust.zero ~quorum:sample_quorum
  in
  let m = Resilience.Trust.Ledger_store.merge in
  check bool_t "merge commutes" true (m e1 e2 = m e2 e1);
  check bool_t "merge associates" true (m (m e1 e2) e3 = m e1 (m e2 e3));
  (* Quarantine ORs, scores take the min, counter deltas sum. *)
  let merged = m e1 e2 in
  check bool_t "quarantine survives the merge" true
    (List.exists
       (fun (k, (c : Resilience.Trust.Ledger_store.cell_state)) ->
         k = Resilience.Verifier.Campion && c.Resilience.Trust.Ledger_store.s_quarantined)
       merged.Resilience.Trust.Ledger_store.kinds);
  check int_t "counter deltas sum" 6
    merged.Resilience.Trust.Ledger_store.counters.Resilience.Trust.cross_checks

let test_trust_create_from () =
  let cfg = Resilience.Trust.default_config in
  (* Restoring an all-initial entry is indistinguishable from create. *)
  let initial =
    Resilience.Trust.state_of (Resilience.Trust.create cfg)
      ~counters:Resilience.Trust.zero ~quorum:Resilience.Trust.zero_quorum
  in
  let t = Resilience.Trust.create_from cfg initial in
  List.iter
    (fun k ->
      check bool_t "no kind quarantined" false (Resilience.Trust.quarantined t k);
      check bool_t "score at initial" true
        (Resilience.Trust.score t k = cfg.Resilience.Trust.initial))
    Resilience.Verifier.all_kinds;
  check bool_t "oracle trusted" false (Resilience.Trust.oracle_quarantined t);
  (* Restoring battle scars puts the quarantines back in force. *)
  let t' = Resilience.Trust.create_from cfg (scarred_entry ()) in
  check bool_t "kind quarantine restored" true
    (Resilience.Trust.quarantined t' Resilience.Verifier.Campion);
  check bool_t "oracle quarantine restored" true
    (Resilience.Trust.oracle_quarantined t');
  check bool_t "debited score restored" true
    (Resilience.Trust.score t' Resilience.Verifier.Parse_check
    < cfg.Resilience.Trust.initial)

(* ------------------------------------------------------------------ *)
(* Service daemon x trust layer races                                  *)
(* ------------------------------------------------------------------ *)

let with_trust_daemon ?admission ?caps f =
  let dir = Filename.temp_file "cosynth_trustserve_" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let socket_path = Filename.concat dir "trust.sock" in
  let ledger = Filename.concat dir "trust.jsonl" in
  let caps_path = Filename.concat dir "caps.json" in
  Option.iter
    (fun text ->
      let oc = open_out caps_path in
      output_string oc text;
      close_out oc)
    caps;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with _ -> ())
        [ socket_path; ledger; caps_path ];
      try Sys.rmdir dir with _ -> ())
    (fun () ->
      let cfg =
        {
          Cosynth.Service.default_config with
          Cosynth.Service.domains = Some 1;
          drain_grace_ms = 500;
          trust_ledger = Some ledger;
          admission =
            Option.value
              ~default:
                Cosynth.Service.default_config.Cosynth.Service.admission
              admission;
          admission_file =
            (if caps = None then None else Some caps_path);
        }
      in
      let summary = ref None in
      let server =
        Thread.create
          (fun () -> summary := Some (Cosynth.Service.serve ~socket_path cfg))
          ()
      in
      let rec wait n =
        if n = 0 then Alcotest.fail "daemon never bound its socket"
        else if not (Sys.file_exists socket_path) then begin
          Thread.delay 0.05;
          wait (n - 1)
        end
      in
      wait 100;
      let r = f ~dir ~socket_path ~ledger in
      Thread.join server;
      (r, !summary))

let req_ok r =
  let module J = Netcore.Json in
  Option.bind (J.member "ok" r) J.to_bool = Some true

let test_service_drain_races_trust_crosscheck () =
  let module J = Netcore.Json in
  let (), summary =
    with_trust_daemon (fun ~dir:_ ~socket_path ~ledger ->
        (* Warm-up: a completed trust-armed job must hand its admission
           slot back — [health] still shows zero in flight and the compact
           trust object. *)
        Exec.Serve.with_connection ~socket_path (fun fd ->
            let r =
              Exec.Serve.request fd (J.Obj [ ("job", J.String "translate") ])
            in
            check bool_t "warm-up translate ok" true (req_ok r);
            let h = Exec.Serve.request fd (J.Obj [ ("job", J.String "health") ]) in
            check bool_t "no admission-slot leak after the trust job" true
              (Option.bind (J.member "in_flight" h) J.to_int = Some 0);
            check bool_t "health carries the trust object" true
              (J.member "trust" h <> None));
        (* The race: drain lands while a trust-armed job — mid quorum
           cross-check, holding the trust mutex — is in flight. Drain must
           wait for admitted work, the reply must arrive intact, and the
           job's ledger line must be flushed before the daemon exits. *)
        let in_flight_reply = ref None in
        let worker =
          Thread.create
            (fun () ->
              Exec.Serve.with_connection ~socket_path (fun fd ->
                  in_flight_reply :=
                    Some
                      (Exec.Serve.request fd
                         (J.Obj [ ("job", J.String "translate"); ("seed", J.Int 7) ]))))
            ()
        in
        Thread.delay 0.02;
        Exec.Serve.with_connection ~socket_path (fun fd ->
            ignore (Exec.Serve.request fd (J.Obj [ ("job", J.String "drain") ])));
        Thread.join worker;
        (match !in_flight_reply with
        | Some r -> check bool_t "in-flight trust job survived the drain" true (req_ok r)
        | None -> Alcotest.fail "in-flight job lost its reply");
        check bool_t "trust ledger flushed across the drain" true
          (Resilience.Trust.Ledger_store.load ledger <> None))
  in
  match summary with
  | Some s -> check bool_t "daemon wound down via drain" true s.Cosynth.Service.drained
  | None -> Alcotest.fail "daemon never returned a summary"

let test_service_set_caps_during_queued_trust_job () =
  let module J = Netcore.Json in
  let admission =
    {
      Resilience.Admission.max_in_flight = 1;
      max_queue = 4;
      max_per_client = 4;
      max_deadline_ms = 30_000;
      retry_after_ms = 30;
    }
  in
  let (), _ =
    with_trust_daemon ~admission ~caps:{|{"max_in_flight": 2}|}
      (fun ~dir:_ ~socket_path ~ledger:_ ->
        (* Job A holds the single admission slot and the trust mutex; job B
           queues behind the cap. A SIGHUP caps reload (Admission.set_caps
           under the hood) lands while B is queued: B re-evaluates against
           the raised cap, gets admitted, then blocks on the trust mutex
           until A's ledger write completes. Nothing may deadlock and both
           replies must arrive. *)
        let reply_a = ref None and reply_b = ref None in
        let job cell seed =
          Thread.create
            (fun () ->
              Exec.Serve.with_connection ~socket_path (fun fd ->
                  cell :=
                    Some
                      (Exec.Serve.request fd
                         (J.Obj
                            [ ("job", J.String "translate"); ("seed", J.Int seed) ]))))
            ()
        in
        let a = job reply_a 42 in
        Thread.delay 0.02;
        let b = job reply_b 43 in
        Thread.delay 0.02;
        Unix.kill (Unix.getpid ()) Sys.sighup;
        Thread.join a;
        Thread.join b;
        (match (!reply_a, !reply_b) with
        | Some ra, Some rb ->
            check bool_t "job A answered" true (req_ok ra);
            check bool_t "job B answered after the reload" true (req_ok rb)
        | _ -> Alcotest.fail "a queued trust job lost its reply");
        Exec.Serve.with_connection ~socket_path (fun fd ->
            let s = Exec.Serve.request fd (J.Obj [ ("job", J.String "stats") ]) in
            check bool_t "the SIGHUP was counted" true
              (match Option.bind (J.member "reloads" s) J.to_int with
              | Some n -> n >= 1
              | None -> false);
            check bool_t "all slots returned" true
              (match J.member "admission" s with
              | Some adm -> Option.bind (J.member "in_flight" adm) J.to_int = Some 0
              | None -> false);
            ignore (Exec.Serve.request fd (J.Obj [ ("job", J.String "shutdown") ]))))
  in
  ()

let () =
  Alcotest.run "resilience"
    [
      ( "retry",
        [
          Alcotest.test_case "deterministic backoff" `Quick test_retry_deterministic;
          Alcotest.test_case "backoff bounds" `Quick test_retry_bounds;
        ] );
      ( "guard",
        [
          Alcotest.test_case "pass-through" `Quick test_guard_passthrough;
          Alcotest.test_case "exception -> crash mapping" `Quick
            test_guard_maps_exceptions;
          Alcotest.test_case "wall-clock watchdog" `Quick
            test_guard_wall_clock_watchdog;
          Alcotest.test_case "raising oracle becomes Faulted" `Quick
            test_guard_verifier_faulted;
          Alcotest.test_case "runtime stage watchdog" `Quick
            test_runtime_stage_watchdog;
          Alcotest.test_case "deadline: in-time passthrough" `Quick
            test_guard_deadline_in_time;
          Alcotest.test_case "deadline: expiry abandons and records" `Quick
            test_guard_deadline_expiry;
        ] );
      ( "admission",
        [
          Alcotest.test_case "admit and idempotent release" `Quick
            test_admission_admit_release;
          Alcotest.test_case "bounded queue, capacity shed" `Quick
            test_admission_capacity_shed;
          Alcotest.test_case "per-client cap" `Quick test_admission_per_client_cap;
          Alcotest.test_case "deadline clamping" `Quick test_admission_clamp_deadline;
          Alcotest.test_case "set_caps hot reload" `Quick test_admission_set_caps_live;
        ] );
      ( "trust",
        [
          Alcotest.test_case "two disagreements quarantine" `Quick
            test_trust_two_disagreements_quarantine;
          Alcotest.test_case "probation restores on a streak" `Quick
            test_trust_probation_restores;
          Alcotest.test_case "suspicion + note_truth re-anchor" `Quick
            test_trust_suspicion_and_note_truth;
          Alcotest.test_case "check budget exhausts" `Quick test_trust_budget_exhausts;
          QCheck_alcotest.to_alcotest prop_trust_budget_never_exceeded;
        ] );
      ( "quorum",
        [
          Alcotest.test_case "overrule: tie to referees, refund, oracle out"
            `Quick test_quorum_overrule_refund_and_tie;
          Alcotest.test_case "K=3: one referee is outvoted" `Quick
            test_quorum_k3_outvoted;
          Alcotest.test_case "trust-weighted audit shares" `Quick
            test_quorum_trust_weighted_shares;
          Alcotest.test_case "oracle probation and alert mode" `Quick
            test_quorum_oracle_probation_and_alert_mode;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "JSON + file roundtrip, last write wins" `Quick
            test_ledger_store_roundtrip;
          Alcotest.test_case "merge commutes and associates" `Quick
            test_ledger_merge_commutative;
          Alcotest.test_case "create_from restores state" `Quick
            test_trust_create_from;
        ] );
      ( "service-trust",
        [
          Alcotest.test_case "drain races an in-flight cross-check" `Slow
            test_service_drain_races_trust_crosscheck;
          Alcotest.test_case "SIGHUP caps reload with a queued trust job" `Slow
            test_service_set_caps_during_queued_trust_job;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips and recovers" `Quick test_breaker_trips_and_recovers;
          Alcotest.test_case "half-open failure re-trips" `Quick
            test_breaker_half_open_failure_retrips;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "deterministic schedules" `Quick test_chaos_deterministic;
          Alcotest.test_case "all-zero rates are a no-op" `Quick test_chaos_none_is_noop;
          Alcotest.test_case "crash outage window" `Quick test_chaos_crash_window;
          Alcotest.test_case "truncation never passes" `Quick
            test_chaos_truncate_never_passes;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "success passthrough" `Quick test_runtime_success_passthrough;
          Alcotest.test_case "retries a transient" `Quick test_runtime_retries_transient;
          Alcotest.test_case "exhaustion degrades and trips" `Quick
            test_runtime_exhaustion_degrades_and_trips;
          Alcotest.test_case "derived contexts independent" `Quick
            test_runtime_derive_is_independent;
        ] );
      ( "policies",
        [
          Alcotest.test_case "cost-scaled per-kind knobs" `Quick test_policies_cost_scaled;
          Alcotest.test_case "runtime honors per-kind caps" `Quick
            test_runtime_honors_per_kind_caps;
        ] );
      ( "driver",
        [
          Alcotest.test_case "rate-0 translation identical" `Slow
            test_rate0_translation_identical;
          Alcotest.test_case "rate-0 no-transit identical" `Slow
            test_rate0_no_transit_identical;
          Alcotest.test_case "chaos run deterministic" `Slow test_chaos_run_deterministic;
          Alcotest.test_case "chaos pool == sequential" `Slow
            test_chaos_pool_equals_sequential;
          Alcotest.test_case "outage degrades, never crashes" `Slow
            test_outage_degrades_not_crashes;
          Alcotest.test_case "budget exhaustion (translation)" `Quick
            test_budget_exhaustion_translation;
          Alcotest.test_case "budget exhaustion (no-transit)" `Quick
            test_budget_exhaustion_no_transit;
        ] );
      ( "memo",
        [
          Alcotest.test_case "failures bypass the table" `Quick
            test_memo_failures_bypass_table;
        ] );
      ( "durable",
        [
          Alcotest.test_case "CRC-32 check vector" `Quick test_crc32_vector;
          Alcotest.test_case "fault-free round trip" `Quick test_store_roundtrip;
          Alcotest.test_case "deterministic fault schedules" `Quick
            test_diskchaos_deterministic;
          Alcotest.test_case "triage kill mid-append" `Quick
            test_triage_kill_mid_append;
          Alcotest.test_case "admission caps all-or-nothing" `Quick
            test_parse_admission_caps;
        ] );
      ("properties", props);
    ]
