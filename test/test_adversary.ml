(* Tests for the adversary layer (lib/adversary) and the driver-loop
   hardening it drives: the oscillation detector on a planted A/B/A cycle,
   the progress watchdog at exactly K rounds, per-mode seed determinism of
   the Byzantine wrappers, the rate-0 identity, and a qcheck that the
   hardened loop terminates with a certificate for arbitrary rates in
   [0, 1]. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Watch: oscillation detector                                         *)
(* ------------------------------------------------------------------ *)

let test_osc_period1 () =
  let o = Adversary.Watch.osc ~repeat_threshold:3 () in
  check bool_t "first A" true (Adversary.Watch.observe o "A" = None);
  check bool_t "second A" true (Adversary.Watch.observe o "A" = None);
  (* Third identical draft completes a period-1 cycle. *)
  check bool_t "third A fires period 1" true (Adversary.Watch.observe o "A" = Some 1);
  (* Detection cleared the history: the same episode is not re-reported. *)
  check bool_t "re-armed" true (Adversary.Watch.observe o "A" = None)

let test_osc_planted_aba () =
  let o = Adversary.Watch.osc ~repeat_threshold:3 () in
  let feed s = Adversary.Watch.observe o s in
  (* A planted A/B/A/B alternation: two full periods complete the cycle. *)
  check bool_t "A" true (feed "draft A" = None);
  check bool_t "B" true (feed "draft B" = None);
  check bool_t "A again" true (feed "draft A" = None);
  check int_t "B again fires period 2" 2
    (Option.value ~default:0 (feed "draft B"));
  (* Converging drafts never fire. *)
  let o2 = Adversary.Watch.osc ~repeat_threshold:3 () in
  List.iteri
    (fun i s ->
      if Adversary.Watch.observe o2 s <> None then
        Alcotest.failf "distinct draft %d reported as a cycle" i)
    [ "v1"; "v2"; "v3"; "v4"; "v5" ]

let test_osc_window_period3 () =
  (* An A/B/C/A revisit at distance 3: one sighting suffices within the
     window — a deterministic loop that reproduced a draft verbatim will
     reproduce what followed it too. *)
  let o = Adversary.Watch.osc ~repeat_threshold:3 () in
  let feed s = Adversary.Watch.observe o s in
  check bool_t "A" true (feed "draft A" = None);
  check bool_t "B" true (feed "draft B" = None);
  check bool_t "C" true (feed "draft C" = None);
  check int_t "revisiting A fires period 3" 3
    (Option.value ~default:0 (feed "draft A"));
  (* Detection cleared the history: the detector re-arms. *)
  check bool_t "re-armed" true (feed "draft B" = None)

let test_osc_window_bound () =
  (* A revisit farther back than the window is not reported — the bound is
     what keeps a long, genuinely-progressing conversation from tripping
     on a coincidental digest reappearance. *)
  let o = Adversary.Watch.osc ~window:4 ~repeat_threshold:3 () in
  let feed s = Adversary.Watch.observe o s in
  List.iter (fun s -> ignore (feed s)) [ "A"; "B"; "C"; "D"; "E" ];
  check bool_t "revisit at distance 5 > window 4 ignored" true (feed "A" = None);
  (* window < 3 disables the long-period check entirely, leaving exactly
     the period-1/2 detector. *)
  let o2 = Adversary.Watch.osc ~window:0 ~repeat_threshold:3 () in
  List.iter (fun s -> ignore (Adversary.Watch.observe o2 s)) [ "A"; "B"; "C" ];
  check bool_t "window 0 never fires on a distance-3 revisit" true
    (Adversary.Watch.observe o2 "A" = None)

(* ------------------------------------------------------------------ *)
(* Watch: progress watchdog                                            *)
(* ------------------------------------------------------------------ *)

let test_watchdog_fires_at_exactly_k () =
  let k = 5 in
  let p = Adversary.Watch.progress ~rounds:k in
  (* First observation of the stage counts as progress. *)
  check bool_t "round 0 is progress" false
    (Adversary.Watch.step p ~stage:"syntax" ~findings:4);
  (* K - 1 flat rounds: armed but silent. *)
  for i = 1 to k - 1 do
    if Adversary.Watch.step p ~stage:"syntax" ~findings:4 then
      Alcotest.failf "watchdog fired early at flat round %d (limit %d)" i k
  done;
  (* The K-th consecutive non-improving round fires. *)
  check bool_t "fires at exactly K" true
    (Adversary.Watch.step p ~stage:"syntax" ~findings:4)

let test_watchdog_reset_on_progress () =
  let k = 4 in
  let p = Adversary.Watch.progress ~rounds:k in
  ignore (Adversary.Watch.step p ~stage:"syntax" ~findings:6);
  for _ = 1 to k - 1 do
    ignore (Adversary.Watch.step p ~stage:"syntax" ~findings:6)
  done;
  (* A shrinking finding set resets the streak... *)
  check bool_t "improvement is progress" false
    (Adversary.Watch.step p ~stage:"syntax" ~findings:5);
  (* ...so the next K - 1 flat rounds stay silent again. *)
  for i = 1 to k - 1 do
    if Adversary.Watch.step p ~stage:"syntax" ~findings:5 then
      Alcotest.failf "watchdog fired %d round(s) after progress (limit %d)" i k
  done;
  check bool_t "then fires" true (Adversary.Watch.step p ~stage:"syntax" ~findings:5)

(* ------------------------------------------------------------------ *)
(* Per-mode seed determinism                                           *)
(* ------------------------------------------------------------------ *)

let translate ?adversary seed =
  (Cosynth.Driver.run_translation ~seed ?adversary
     ~cisco_text:Cisco.Samples.border_router ())
    .Cosynth.Driver.transcript

let transcript_fingerprint t =
  Netcore.Json.to_string (Cosynth.Driver.transcript_to_json t)

let test_llm_modes_deterministic () =
  List.iter
    (fun mode ->
      let spec =
        Adversary.Spec.make
          ~llm:(Adversary.Llm.with_rate (Adversary.Llm.make ~seed:9 ()) mode 0.5)
          ()
      in
      check string_t
        (Printf.sprintf "llm mode %s reproducible in seed"
           (Adversary.Llm.mode_name mode))
        (transcript_fingerprint (translate ~adversary:spec 31))
        (transcript_fingerprint (translate ~adversary:spec 31)))
    Adversary.Llm.all_modes

let test_findings_modes_deterministic () =
  List.iter
    (fun mode ->
      let spec =
        Adversary.Spec.make
          ~findings:
            (Adversary.Findings.with_rate (Adversary.Findings.make ~seed:9 ()) mode 0.5)
          ()
      in
      check string_t
        (Printf.sprintf "findings mode %s reproducible in seed"
           (Adversary.Findings.mode_name mode))
        (transcript_fingerprint (translate ~adversary:spec 31))
        (transcript_fingerprint (translate ~adversary:spec 31)))
    Adversary.Findings.all_modes

let test_modes_distinct_streams () =
  (* Different modes at the same seed draw from disjoint streams, so they
     corrupt different rounds — the transcripts must not all coincide. *)
  let prints =
    List.map
      (fun mode ->
        let spec =
          Adversary.Spec.make
            ~llm:(Adversary.Llm.with_rate (Adversary.Llm.make ~seed:9 ()) mode 0.6)
            ()
        in
        transcript_fingerprint (translate ~adversary:spec 31))
      Adversary.Llm.all_modes
  in
  check bool_t "modes diverge" true (List.length (List.sort_uniq compare prints) > 1)

(* ------------------------------------------------------------------ *)
(* Rate-0 identity and certificates                                    *)
(* ------------------------------------------------------------------ *)

let test_rate0_identity () =
  List.iter
    (fun seed ->
      let plain = translate seed in
      let zero = translate ~adversary:Adversary.Spec.none seed in
      check string_t
        (Printf.sprintf "rate-0 JSON identical (seed %d)" seed)
        (transcript_fingerprint plain) (transcript_fingerprint zero);
      check string_t
        (Printf.sprintf "rate-0 markdown identical (seed %d)" seed)
        (Cosynth.Driver.transcript_to_markdown ~title:"t" plain)
        (Cosynth.Driver.transcript_to_markdown ~title:"t" zero);
      check bool_t "plain run carries no certificate" true
        (plain.Cosynth.Driver.certificate = None))
    [ 1; 5; 42 ]

let test_certificate_roundtrip () =
  List.iter
    (fun cert ->
      let t =
        {
          Cosynth.Driver.events = [];
          human_prompts = 1;
          auto_prompts = 3;
          converged = false;
          rounds = 4;
          certificate = cert;
        }
      in
      let t' = Cosynth.Driver.transcript_of_json (Cosynth.Driver.transcript_to_json t) in
      check bool_t "certificate round-trips" true
        (t'.Cosynth.Driver.certificate = cert))
    [
      None;
      Some Cosynth.Driver.Converged;
      Some (Cosynth.Driver.Stalled_out "watchdog");
      Some (Cosynth.Driver.Oscillating 2);
    ]

let test_hardened_run_certified () =
  let spec =
    Adversary.Spec.make
      ~llm:(Adversary.Llm.make ~truncated:0.4 ~seed:3 ())
      ~findings:(Adversary.Findings.make ~garbled:0.3 ~seed:3 ())
      ()
  in
  List.iter
    (fun seed ->
      let t = translate ~adversary:spec seed in
      match t.Cosynth.Driver.certificate with
      | Some _ -> ()
      | None -> Alcotest.failf "hardened run (seed %d) has no certificate" seed)
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Triage persistence                                                  *)
(* ------------------------------------------------------------------ *)

let test_triage_roundtrip () =
  let path = Filename.temp_file "cosynth-triage" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Resilience.Triage.append ~path ~seed:7
        [ ("cisco-parse", "Failure", 3); ("bgp-sim", "Invalid_argument", 1) ];
      Resilience.Triage.append ~path ~seed:9 [ ("cisco-parse", "Failure", 2) ];
      (* A torn final line (writer died mid-write) must be skipped. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"stage\":\"trunc";
      close_out oc;
      match Resilience.Triage.load path with
      | [ bgp; cisco ] ->
          check string_t "sorted by stage" "bgp-sim" bgp.Resilience.Triage.stage;
          check int_t "counts summed" 5 cisco.Resilience.Triage.count;
          check int_t "first seed" 7 cisco.Resilience.Triage.first_seed;
          check int_t "last seed" 9 cisco.Resilience.Triage.last_seed
      | rows -> Alcotest.failf "expected 2 merged rows, got %d" (List.length rows))

let test_triage_missing_file () =
  check int_t "missing file is empty history" 0
    (List.length (Resilience.Triage.load "/nonexistent/cosynth-triage.jsonl"))

let test_triage_timestamps () =
  (* Timestamped lines (the daemon's) merge with untimestamped ones (the
     seeded sweeps'): first/last_ts cover only the stamped sightings, and
     a bucket never stamped loads as None — old journals stay readable. *)
  let path = Filename.temp_file "cosynth-triage-ts" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Resilience.Triage.append ~path ~seed:1 [ ("serve:sleep", "Deadline_exceeded", 1) ];
      Resilience.Triage.append ~ts:100. ~path ~seed:2
        [ ("serve:sleep", "Deadline_exceeded", 2) ];
      Resilience.Triage.append ~ts:250. ~path ~seed:3
        [ ("serve:sleep", "Deadline_exceeded", 1); ("vpp-loop", "Failure", 1) ];
      match Resilience.Triage.load path with
      | [ sleep; vpp ] ->
          check int_t "counts summed across stamped and unstamped" 4
            sleep.Resilience.Triage.count;
          check bool_t "first_ts is the earliest stamped line" true
            (sleep.Resilience.Triage.first_ts = Some 100.);
          check bool_t "last_ts is the latest stamped line" true
            (sleep.Resilience.Triage.last_ts = Some 250.);
          check bool_t "single sighting: first = last" true
            (vpp.Resilience.Triage.first_ts = Some 250.
            && vpp.Resilience.Triage.last_ts = Some 250.)
      | rows -> Alcotest.failf "expected 2 merged rows, got %d" (List.length rows))

(* ------------------------------------------------------------------ *)
(* qcheck: termination with certificate for arbitrary rates            *)
(* ------------------------------------------------------------------ *)

let rate_gen = QCheck2.Gen.float_bound_inclusive 1.0

let spec_gen =
  QCheck2.Gen.map
    (fun ((truncated, wrong_dialect, stale), (partial_fix, off_topic), (dropped, garbled)) ->
      Adversary.Spec.make
        ~llm:
          (Adversary.Llm.make ~truncated ~wrong_dialect ~stale ~partial_fix
             ~off_topic ~seed:5 ())
        ~findings:(Adversary.Findings.make ~dropped ~garbled ~seed:5 ())
        ())
    (QCheck2.Gen.triple
       (QCheck2.Gen.triple rate_gen rate_gen rate_gen)
       (QCheck2.Gen.pair rate_gen rate_gen)
       (QCheck2.Gen.pair rate_gen rate_gen))

let max_prompts = 30

let prop_loop_terminates_certified =
  QCheck2.Test.make ~name:"hardened loop terminates with a certificate for any rates"
    ~count:30 spec_gen (fun spec ->
      let t =
        (Cosynth.Driver.run_translation ~seed:11 ~max_prompts ~adversary:spec
           ~cisco_text:Cisco.Samples.border_router ())
          .Cosynth.Driver.transcript
      in
      let within_budget =
        t.Cosynth.Driver.auto_prompts + t.Cosynth.Driver.human_prompts <= max_prompts
      in
      let certified =
        if Adversary.Spec.is_none spec then t.Cosynth.Driver.certificate = None
        else t.Cosynth.Driver.certificate <> None
      in
      within_budget && certified)

(* The windowed revisit detector must stay silent on any all-distinct
   draft stream, for any window — escalations on converging conversations
   would burn human prompts for nothing. The drafts are fixed strings, so
   a digest collision (the only benign false positive) would be
   deterministic, not flaky. *)
let prop_distinct_drafts_never_fire =
  QCheck2.Test.make ~name:"distinct drafts never fire the windowed detector"
    ~count:100
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 12) (QCheck2.Gen.int_bound 20))
    (fun (window, n) ->
      let o = Adversary.Watch.osc ~window ~repeat_threshold:3 () in
      List.for_all
        (fun i -> Adversary.Watch.observe o (Printf.sprintf "draft %d" i) = None)
        (List.init n (fun i -> i)))

(* Beyond-period-2 detection must not move rate-0 behavior: a run with no
   adversary and a run with an all-zero spec stay byte-identical for any
   seed (the hardened machinery, detector window included, arms only when
   some rate is nonzero). *)
let prop_rate0_identity_any_seed =
  QCheck2.Test.make ~name:"rate-0 transcript identical to plain for any seed"
    ~count:15 (QCheck2.Gen.int_bound 10_000) (fun seed ->
      transcript_fingerprint (translate seed)
      = transcript_fingerprint (translate ~adversary:Adversary.Spec.none seed))

(* ------------------------------------------------------------------ *)
(* Byzantine verifiers: lies, determinism, and the trust ledger        *)
(* ------------------------------------------------------------------ *)

(* An all-zero verifier lie spec — adaptivity included, since a schedule
   with no rate to escalate is off — must keep the rate-0 byte-identity:
   the lie engine installs nothing. *)
let prop_verifier_rate0_identity_any_seed =
  QCheck2.Test.make
    ~name:"all-zero verifier lie spec keeps byte-identity (adaptive on)"
    ~count:10 (QCheck2.Gen.int_bound 10_000) (fun seed ->
      let spec =
        Adversary.Spec.make
          ~verifier:(Adversary.Verifier.make ~adaptive:true ()) ()
      in
      transcript_fingerprint (translate seed)
      = transcript_fingerprint (translate ~adversary:spec seed))

let test_verifier_lies_deterministic () =
  let spec () =
    Adversary.Spec.make
      ~verifier:
        (Adversary.Verifier.make ~false_negative:0.5 ~mutated:0.3 ~seed:7 ())
      ()
  in
  check string_t "same seed, same lie schedule, same transcript"
    (transcript_fingerprint (translate ~adversary:(spec ()) 3))
    (transcript_fingerprint (translate ~adversary:(spec ()) 3))

let test_trust_crosscheck_budget_and_quarantine () =
  (* A heavy false-negative liar with the trust layer on: the driver's
     cross-checks catch lies and quarantine the lying kinds, per-run
     voluntary spend stays within the configured budget, and the end state
     still verifies against the raw oracle — the A2 headline in one run. *)
  let cfg = Resilience.Trust.default_config in
  let spec =
    Adversary.Spec.make
      ~verifier:(Adversary.Verifier.make ~false_negative:0.9 ~seed:5 ())
      ()
  in
  let before = Resilience.Trust.snapshot () in
  let r =
    Cosynth.Driver.run_translation ~seed:3 ~adversary:spec ~trust:cfg
      ~cisco_text:Cisco.Samples.border_router ()
  in
  let d =
    Resilience.Trust.totals (Resilience.Trust.diff (Resilience.Trust.snapshot ()) before)
  in
  check bool_t "cross-checks within the budget" true
    (d.Resilience.Trust.cross_checks <= cfg.Resilience.Trust.check_budget);
  check bool_t "lies detected" true (d.Resilience.Trust.disagreements > 0);
  check bool_t "quarantine entries bounded by detected lies" true
    (d.Resilience.Trust.quarantines <= d.Resilience.Trust.disagreements);
  check bool_t "restores bounded by quarantine entries" true
    (d.Resilience.Trust.restores <= d.Resilience.Trust.quarantines);
  check bool_t "end state verified despite 0.9 fn lies" true
    r.Cosynth.Driver.verified

(* ------------------------------------------------------------------ *)
(* Colluding coalitions: rate-0 identity, determinism, quorum headline *)
(* ------------------------------------------------------------------ *)

(* Satellite of the A3 gate: an all-zero collusion spec — coalition
   members and the compromised-oracle flag included — installs nothing,
   for any seed. So does a non-empty rate with an empty coalition (an
   oracle flag alone colludes with nobody). *)
let prop_collusion_rate0_identity_any_seed =
  QCheck2.Test.make
    ~name:"all-zero / empty collusion spec keeps byte-identity"
    ~count:10 (QCheck2.Gen.int_bound 10_000) (fun seed ->
      let zero_rate =
        Adversary.Spec.make
          ~collusion:
            (Adversary.Collusion.make
               ~members:
                 [ Resilience.Verifier.Parse_check; Resilience.Verifier.Campion ]
               ~oracle:true ~rate:0.0 ())
          ()
      in
      let no_members =
        Adversary.Spec.make
          ~collusion:(Adversary.Collusion.make ~oracle:true ~rate:0.7 ())
          ()
      in
      let plain = transcript_fingerprint (translate seed) in
      plain = transcript_fingerprint (translate ~adversary:zero_rate seed)
      && plain = transcript_fingerprint (translate ~adversary:no_members seed))

let collusion_spec ?(rate = 0.35) ?(seed = 11) () =
  Adversary.Spec.make
    ~collusion:
      (Adversary.Collusion.make
         ~members:
           [ Resilience.Verifier.Parse_check; Resilience.Verifier.Campion ]
         ~oracle:true ~rate ~seed ())
    ()

let test_collusion_deterministic () =
  (* Same coalition config + same driver seed → the same suppression
     decisions on both the member wrappers and the oracle service, hence
     the same transcript — the decisions are keyed on honest-answer
     fingerprints, not wall-clock or call order. *)
  List.iter
    (fun seed ->
      check string_t
        (Printf.sprintf "collusion reproducible in seed %d" seed)
        (transcript_fingerprint (translate ~adversary:(collusion_spec ()) seed))
        (transcript_fingerprint (translate ~adversary:(collusion_spec ()) seed)))
    [ 3; 31; 9980 ]

let test_collusion_trust_ledger_restore_identity () =
  (* The persistent-ledger identity the A3 gate pins, in one run: a ledger
     restored from an all-initial-scores entry drives the attacked run to
     the same transcript as a fresh [?trust] ledger. *)
  let cfg = Resilience.Trust.default_config in
  let initial =
    Resilience.Trust.state_of
      (Resilience.Trust.create cfg)
      ~counters:Resilience.Trust.zero ~quorum:Resilience.Trust.zero_quorum
  in
  let run ?trust ?trust_ledger () =
    (Cosynth.Driver.run_translation ~seed:9980
       ~adversary:(collusion_spec ~rate:0.5 ())
       ?trust ?trust_ledger ~cisco_text:Cisco.Samples.border_router ())
      .Cosynth.Driver.transcript
  in
  check string_t "restored all-initial ledger == fresh trust config"
    (transcript_fingerprint (run ~trust:cfg ()))
    (transcript_fingerprint
       (run ~trust_ledger:(Resilience.Trust.create_from cfg initial) ()))

let test_collusion_quorum_restores_verification () =
  (* The A3 headline in one seed: with the oracle in the coalition, PR 8's
     oracle-as-ground-truth trust (audit budget 0) is blind — while the
     quorum defense detects the collusion and quarantines the oracle.
     Coalition seed tied to the driver seed, the CLI/bench convention. *)
  let spec () = collusion_spec ~rate:0.5 ~seed:9980 () in
  let cfg = Resilience.Trust.default_config in
  let before = Resilience.Trust.quorum_snapshot () in
  let r =
    Cosynth.Driver.run_translation ~seed:9980 ~adversary:(spec ()) ~trust:cfg
      ~cisco_text:Cisco.Samples.border_router ()
  in
  let d =
    Resilience.Trust.diff_quorum (Resilience.Trust.quorum_snapshot ()) before
  in
  check bool_t "quorum audits spent" true (d.Resilience.Trust.audits > 0);
  check bool_t "collusion overruled" true (d.Resilience.Trust.overruled > 0);
  check bool_t "compromised oracle quarantined" true
    (d.Resilience.Trust.oracle_quarantines > 0);
  check bool_t "run verified under a colluding oracle" true
    r.Cosynth.Driver.verified;
  (* PR 8's defense on the same attack: no audits, no detection. *)
  let before = Resilience.Trust.quorum_snapshot () in
  let r8 =
    Cosynth.Driver.run_translation ~seed:9980 ~adversary:(spec ())
      ~trust:{ cfg with Resilience.Trust.audit_budget = 0 }
      ~cisco_text:Cisco.Samples.border_router ()
  in
  let d8 =
    Resilience.Trust.diff_quorum (Resilience.Trust.quorum_snapshot ()) before
  in
  ignore r8;
  check int_t "oracle-only defense never audits" 0 d8.Resilience.Trust.audits;
  check int_t "oracle-only defense never detects" 0
    d8.Resilience.Trust.overruled

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "adversary"
    [
      ( "watch",
        [
          Alcotest.test_case "period-1 cycle detected" `Quick test_osc_period1;
          Alcotest.test_case "planted A/B/A cycle detected" `Quick test_osc_planted_aba;
          Alcotest.test_case "window revisit fires period 3" `Quick
            test_osc_window_period3;
          Alcotest.test_case "window bounds the revisit search" `Quick
            test_osc_window_bound;
          Alcotest.test_case "watchdog fires at exactly K" `Quick
            test_watchdog_fires_at_exactly_k;
          Alcotest.test_case "watchdog resets on progress" `Quick
            test_watchdog_reset_on_progress;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "llm modes reproducible in seed" `Quick
            test_llm_modes_deterministic;
          Alcotest.test_case "findings modes reproducible in seed" `Quick
            test_findings_modes_deterministic;
          Alcotest.test_case "modes draw disjoint streams" `Quick
            test_modes_distinct_streams;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "rate-0 identity" `Quick test_rate0_identity;
          Alcotest.test_case "certificate JSON round-trip" `Quick
            test_certificate_roundtrip;
          Alcotest.test_case "hardened runs certified" `Quick
            test_hardened_run_certified;
        ] );
      ( "triage",
        [
          Alcotest.test_case "append/load round-trip" `Quick test_triage_roundtrip;
          Alcotest.test_case "missing file" `Quick test_triage_missing_file;
          Alcotest.test_case "timestamps merge with unstamped lines" `Quick
            test_triage_timestamps;
        ] );
      ( "byzantine-verifiers",
        [
          Alcotest.test_case "lies reproducible in seed" `Slow
            test_verifier_lies_deterministic;
          Alcotest.test_case "trust: budget, quarantine, verified end state" `Slow
            test_trust_crosscheck_budget_and_quarantine;
        ] );
      ( "collusion",
        [
          Alcotest.test_case "coalition reproducible in seed" `Slow
            test_collusion_deterministic;
          Alcotest.test_case "restored ledger == fresh trust config" `Slow
            test_collusion_trust_ledger_restore_identity;
          Alcotest.test_case "quorum detects what oracle-only cannot" `Slow
            test_collusion_quorum_restores_verification;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_loop_terminates_certified;
          QCheck_alcotest.to_alcotest prop_distinct_drafts_never_fire;
          QCheck_alcotest.to_alcotest prop_rate0_identity_any_seed;
          QCheck_alcotest.to_alcotest prop_verifier_rate0_identity_any_seed;
          QCheck_alcotest.to_alcotest prop_collusion_rate0_identity_any_seed;
        ] );
    ]
