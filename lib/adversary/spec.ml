(* The combined adversary specification the driver accepts: Byzantine-LLM
   rates, findings-corruption rates, verifier-lie rates, and the
   convergence-hardening knobs. [is_none] is the byte-identity switch: an
   all-zero spec means the driver runs the exact unhardened code path, so
   `?adversary:(Some zero)` and `?adversary:None` produce identical
   transcripts. *)

type t = {
  llm : Llm.config;
  findings : Findings.config;
  verifier : Verifier.config;
  collusion : Collusion.config;
  osc_repeat : int;
  watchdog_rounds : int;
}

let default_osc_repeat = 6
let default_watchdog_rounds = 12

let make ?(llm = Llm.none) ?(findings = Findings.none) ?(verifier = Verifier.none)
    ?(collusion = Collusion.none) ?(osc_repeat = default_osc_repeat)
    ?(watchdog_rounds = default_watchdog_rounds) () =
  { llm; findings; verifier; collusion; osc_repeat; watchdog_rounds }

let none = make ()

let is_none t =
  Llm.is_none t.llm && Findings.is_none t.findings && Verifier.is_none t.verifier
  && Collusion.is_none t.collusion

let describe t =
  (* The collusion clause is appended only when armed, so every historical
     spec description — and the journal/bench output embedding it — stays
     byte-identical. *)
  Printf.sprintf "llm: %s; findings: %s; verifier: %s%s; osc-repeat %d; watchdog %d rounds"
    (Llm.describe t.llm) (Findings.describe t.findings)
    (Verifier.describe t.verifier)
    (if Collusion.is_none t.collusion then ""
     else "; collusion: " ^ Collusion.describe t.collusion)
    t.osc_repeat t.watchdog_rounds
