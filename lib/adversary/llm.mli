(** The Byzantine LLM: a seeded, deterministic misbehaviour wrapper around
    {!Llmsim.Chat}.

    Each draft/response passes through per-mode coin flips keyed on
    [(seed, salt, counter, mode)] — one-shot RNG streams disjoint from every
    chaos and mutator stream — so a run is a pure function of the
    configuration and replaying a seed reproduces the misbehaviour exactly.
    With every rate at 0 the wrapper is the identity. *)

type mode =
  | Truncated  (** The reply is a strict prefix of the real draft. *)
  | Wrong_dialect  (** The draft is rendered in the other dialect. *)
  | Stale  (** The reply ignores the latest prompt (chat state untouched). *)
  | Partial_fix  (** Only the first fault reference of the prompt is applied. *)
  | Off_topic  (** Prose filler instead of a configuration. *)

val all_modes : mode list
val mode_name : mode -> string

type config = {
  truncated : float;
  wrong_dialect : float;
  stale : float;
  partial_fix : float;
  off_topic : float;
  seed : int;
}

val make :
  ?truncated:float ->
  ?wrong_dialect:float ->
  ?stale:float ->
  ?partial_fix:float ->
  ?off_topic:float ->
  ?seed:int ->
  unit ->
  config
(** All rates default to 0; [seed] defaults to 0. *)

val none : config
val rate : config -> mode -> float
val with_rate : config -> mode -> float -> config
val is_none : config -> bool
val describe : config -> string

type t
(** Per-loop wrapper state (draft/respond counters). *)

val create : ?salt:int -> config -> t
val derive : t -> int -> t
(** An independent stream for fan-out task [idx]; deterministic whether the
    tasks run sequentially or on a pool. *)

val draft : t -> Llmsim.Chat.t -> string
(** The possibly-corrupted draft for this round ([Truncated],
    [Wrong_dialect] and [Off_topic] act here). *)

val respond : t -> Llmsim.Chat.t -> Llmsim.Chat.prompt -> unit
(** Deliver a correction prompt through the wrapper ([Stale] and
    [Partial_fix] act here). *)
