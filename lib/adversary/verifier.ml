type config = {
  false_negative : float;
  false_positive : float;
  mutated : float;
  adaptive : bool;
  seed : int;
}

let make ?(false_negative = 0.0) ?(false_positive = 0.0) ?(mutated = 0.0) ?(adaptive = false)
    ?(seed = 0) () =
  let clamp r = Float.min 1.0 (Float.max 0.0 r) in
  {
    false_negative = clamp false_negative;
    false_positive = clamp false_positive;
    mutated = clamp mutated;
    adaptive;
    seed;
  }

let none = make ()

let is_none c = c.false_negative = 0.0 && c.false_positive = 0.0 && c.mutated = 0.0

let describe c =
  if is_none c then "off"
  else
    let parts =
      List.filter_map
        (fun (name, r) -> if r > 0.0 then Some (Printf.sprintf "%s=%.2f" name r) else None)
        [ ("fn", c.false_negative); ("fp", c.false_positive); ("mutate", c.mutated) ]
    in
    String.concat " " (parts @ if c.adaptive then [ "adaptive" ] else [])

type t = {
  config : config;
  salt : int;
  mutable count : int;
  mutable quiet : int;  (* consecutive clean honest answers seen *)
}

let create ?(salt = 0) config = { config; salt; count = 0; quiet = 0 }

let derive t idx = { t with salt = t.salt + ((idx + 1) * 104_395_301); count = 0; quiet = 0 }

(* One fresh splitmix64 stream per (seed, salt, kind, call, mode): every lie
   decision is a single independent draw, so reordering one verifier's calls
   never shifts another's lies. The multipliers are primes unused by the
   chaos/LLM/findings streams. *)
let stream t ~kind_ix ~counter ~mode_ix =
  Llmsim.Rng.make
    ((t.config.seed * 122_949_823) + (t.salt * 15_485_867) + (kind_ix * 32_452_867)
    + (counter * 49_979_693) + (mode_ix * 67_867_979) + 59)

(* The adaptive schedule: rates escalate with rounds-since-last-finding, so
   the adversary saves its lies for the moment the transcript nears
   convergence — when a fake clean pass is most likely to be believed and a
   fabricated finding most disruptive. Deterministic: [quiet] is driven
   only by the honest answers the wrapper observes. *)
let effective t r =
  if not t.config.adaptive then r
  else Float.min 1.0 (r *. (1.0 +. (0.5 *. float_of_int (min t.quiet 8))))

type decision = Honest | Lie_clean | Lie_fabricate | Lie_mutate

let decision_name = function
  | Honest -> "honest"
  | Lie_clean -> "false-negative"
  | Lie_fabricate -> "false-positive"
  | Lie_mutate -> "mutated"

let decide t ~kind_ix ~dirty =
  t.count <- t.count + 1;
  let counter = t.count in
  let fires mode_ix r =
    let r = effective t r in
    r > 0.0 && Llmsim.Rng.bernoulli (stream t ~kind_ix ~counter ~mode_ix) r
  in
  let d =
    if dirty then
      if fires 0 t.config.false_negative then Lie_clean
      else if fires 2 t.config.mutated then Lie_mutate
      else Honest
    else if fires 1 t.config.false_positive then Lie_fabricate
    else Honest
  in
  t.quiet <- (if dirty then 0 else t.quiet + 1);
  d

(* How to forge each lie mode for one verifier's output type. The driver
   supplies a lens per wrapped verifier — only it knows the typed findings
   well enough to swallow, fabricate or misplace them plausibly. *)
type 'o lens = {
  dirty : 'o -> bool;
  clean : 'o -> 'o;  (** False negative: strip every finding. *)
  fabricate : 'o -> 'o;  (** False positive: add a plausible fake finding. *)
  mutate : 'o -> 'o;  (** Real finding, wrong router/line/direction. *)
}

let arm t ~lens v =
  if is_none t.config then ()
  else begin
    (* Compose under [Resilience.Verifier.run]: capture whatever runner is
       already installed (the chaos fault schedule, or the bare oracle) and
       lie only about its successes — a lie must ride through the retry and
       breaker machinery as a perfectly healthy answer, which is exactly
       what makes it dangerous. *)
    let inner = Resilience.Verifier.runner v in
    let kind_ix = Resilience.Verifier.kind_index (Resilience.Verifier.kind v) in
    Resilience.Verifier.install v (fun input ->
        match inner input with
        | Error _ as e -> e
        | Ok honest -> (
            match decide t ~kind_ix ~dirty:(lens.dirty honest) with
            | Honest -> Ok honest
            | Lie_clean -> Ok (lens.clean honest)
            | Lie_fabricate -> Ok (lens.fabricate honest)
            | Lie_mutate -> Ok (lens.mutate honest)))
  end
