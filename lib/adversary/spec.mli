(** The combined adversary specification accepted by [Driver.run_* ?adversary]:
    Byzantine-LLM rates ({!Llm.config}), feedback-corruption rates
    ({!Findings.config}), verifier-lie rates ({!Verifier.config}) and the
    convergence-hardening knobs. *)

type t = {
  llm : Llm.config;
  findings : Findings.config;
  verifier : Verifier.config;
      (** Byzantine-verifier lie rates (false negative / false positive /
          mutated, plus the adaptive schedule). *)
  collusion : Collusion.config;
      (** The colluding coalition (optionally owning the cross-check
          oracle). *)
  osc_repeat : int;  (** Oscillation detector threshold ({!Watch.osc}). *)
  watchdog_rounds : int;  (** Progress watchdog K ({!Watch.progress}). *)
}

val default_osc_repeat : int
val default_watchdog_rounds : int

val make :
  ?llm:Llm.config ->
  ?findings:Findings.config ->
  ?verifier:Verifier.config ->
  ?collusion:Collusion.config ->
  ?osc_repeat:int ->
  ?watchdog_rounds:int ->
  unit ->
  t

val none : t

val is_none : t -> bool
(** Every rate is 0. The driver treats such a spec exactly like no spec at
    all — the unhardened code path runs and transcripts stay byte-identical
    (the rate-0 invariant the A1 and A2 gates pin). *)

val describe : t -> string
(** Includes the verifier-lie and adaptive fields, so journal and triage
    headers fully identify the attack that produced them. *)
