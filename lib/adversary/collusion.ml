type config = {
  members : Resilience.Verifier.kind list;
  oracle : bool;
  rate : float;
  seed : int;
}

let make ?(members = []) ?(oracle = false) ?(rate = 0.0) ?(seed = 0) () =
  let members =
    (* canonical order + dedup so [describe] and the decision streams are
       insensitive to CLI argument order *)
    List.filter (fun k -> List.mem k members) Resilience.Verifier.all_kinds
  in
  { members; oracle; rate = Float.min 1.0 (Float.max 0.0 rate); seed }

let none = make ()

(* An oracle flag without members is a coalition of nobody: still none. *)
let is_none c = c.rate = 0.0 || c.members = []

let describe c =
  if is_none c then "off"
  else
    Printf.sprintf "coalition {%s}%s rate=%.2f"
      (String.concat ", " (List.map Resilience.Verifier.kind_name c.members))
      (if c.oracle then " + oracle" else "")
      c.rate

type t = { config : config; salt : int }

let create ?(salt = 0) config = { config; salt }
let derive t idx = { t with salt = t.salt + ((idx + 1) * 104_395_303) }

(* The whole point of a coalition is that every colluder tells the SAME lie
   about the same input: the decision stream is keyed on the input's
   fingerprint, not a per-wrapper call counter, so the lying member and the
   compromised oracle service draw identical verdicts for identical inputs
   — PR 8's cross-check sees two "independent" checks agree on the
   suppressed answer. Primes are unused by every other stream. *)
let fires t ~kind_ix input =
  t.config.rate > 0.0
  &&
  let h = Hashtbl.hash (Resilience.Guard.fingerprint_value input) in
  Llmsim.Rng.bernoulli
    (Llmsim.Rng.make
       ((t.config.seed * 86_028_121) + (t.salt * 49_979_687) + (kind_ix * 15_485_863)
      + (h * 86_028_157) + 73))
    t.config.rate

(* Arm one wrapped verifier. Members lie by suppression only (the
   false-negative signature — fabricated findings would disagree with the
   clean-lying oracle and give the coalition away); when the coalition owns
   the oracle, the same suppression is installed as the cross-check oracle
   service for the member kinds. A no-op for non-members and for an
   all-zero config, preserving rate-0 byte-identity. *)
let arm t ~lens v =
  if is_none t.config then ()
  else begin
    let k = Resilience.Verifier.kind v in
    if List.mem k t.config.members then begin
      let kind_ix = Resilience.Verifier.kind_index k in
      let suppress honest =
        if lens.Verifier.dirty honest && fires t ~kind_ix honest then lens.Verifier.clean honest
        else honest
      in
      let inner = Resilience.Verifier.runner v in
      Resilience.Verifier.install v (fun input ->
          match inner input with Error _ as e -> e | Ok honest -> Ok (suppress honest));
      if t.config.oracle then begin
        let inner_oracle = Resilience.Verifier.oracle_runner v in
        Resilience.Verifier.install_oracle v (fun input ->
            match inner_oracle input with
            | Error _ as e -> e
            | Ok honest -> Ok (suppress honest))
      end
    end
  end
