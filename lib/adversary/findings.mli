(** Feedback corruption: mangles verifier findings after the {!Resilience}
    boundary has produced them, exercising the humanizer and the driver's
    accounting on hostile input. Seeded and deterministic like {!Llm}; with
    every rate at 0 the layer is the identity. *)

type mode =
  | Dropped  (** The finding never reaches the driver. *)
  | Duplicated  (** The same finding is delivered twice. *)
  | Misattributed
      (** The fault references point at the wrong class/location (the
          "wrong router" corruption), so the prompt fixes nothing. *)
  | Garbled  (** The text is mangled and the structured refs are lost. *)

val all_modes : mode list
val mode_name : mode -> string

type config = {
  dropped : float;
  duplicated : float;
  misattributed : float;
  garbled : float;
  seed : int;
}

val make :
  ?dropped:float ->
  ?duplicated:float ->
  ?misattributed:float ->
  ?garbled:float ->
  ?seed:int ->
  unit ->
  config

val none : config
val rate : config -> mode -> float
val with_rate : config -> mode -> float -> config
val is_none : config -> bool
val describe : config -> string

type t

val create : ?salt:int -> config -> t
val derive : t -> int -> t

val corrupt :
  t -> text:string -> refs:Llmsim.Fault.t list -> (string * Llmsim.Fault.t list) list
(** Pass one finding through the corruption layer. Each returned pair is
    delivered as one prompt; [[]] means the finding was dropped. Total on
    arbitrary text/refs. *)

val garble : string -> string
(** The deterministic text mangling (exposed for tests/fuzzers). *)
