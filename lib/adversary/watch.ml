(* Convergence instrumentation for the driver loop: a draft-digest
   oscillation detector and a finding-count progress watchdog. Both are
   pure state machines over what the loop already computes — no RNG, no
   clock — so their verdicts are deterministic and the loop's behaviour
   with them disabled is untouched. *)

(* ------------------------------------------------------------------ *)
(* Oscillation detector                                                *)
(* ------------------------------------------------------------------ *)

(* A short digest is all we keep per draft: the detector compares equality,
   never content, so collisions only ever cost a spurious escalation. *)
let digest s = Printf.sprintf "%08x" (Hashtbl.hash s land 0xffffffff)

type osc = {
  repeat_threshold : int;
  window : int;
  mutable history : string list;  (* newest first, bounded *)
}

let osc ?(window = 8) ~repeat_threshold () =
  { repeat_threshold = max 2 repeat_threshold; window = max 0 window; history = [] }

let take n l =
  let rec go n = function x :: rest when n > 0 -> x :: go (n - 1) rest | _ -> [] in
  go n l

let all_equal = function
  | [] -> false
  | x :: rest -> List.for_all (String.equal x) rest

(* Distance (1-based) to the nearest earlier occurrence of [d] in the
   digest history tail. Distance 1 is a consecutive repeat (the period-1
   rule's territory) and distance 2 belongs to the A/B/A/B rule, so the
   windowed revisit check below only acts on distances >= 3. *)
let revisit_distance d tail =
  let rec go i = function
    | [] -> None
    | x :: rest -> if String.equal x d then Some i else go (i + 1) rest
  in
  go 1 tail

let observe o draft =
  let d = digest draft in
  o.history <- take (max (o.repeat_threshold + 2) (o.window + 1)) (d :: o.history);
  let verdict =
    (* Period 1: the same draft [repeat_threshold] times in a row. *)
    if
      List.length o.history >= o.repeat_threshold
      && all_equal (take o.repeat_threshold o.history)
    then Some 1
    else
      (* Period 2: an A/B/A/B tail (two full periods) with A <> B. *)
      match o.history with
      | a :: b :: a' :: b' :: _ when a = a' && b = b' && a <> b -> Some 2
      | _ -> (
          (* Longer cycles: any draft revisited within the window is a
             cycle of that period — one sighting is enough, because a
             deterministic loop that reproduced a draft verbatim will
             reproduce the steps that follow it too. Distances 1 and 2 are
             left to the stricter rules above, so rate-0 behavior and the
             pinned period-1/2 detection timings are untouched. *)
          match o.history with
          | d :: tail when o.window >= 3 -> (
              match revisit_distance d tail with
              | Some k when k >= 3 && k <= o.window -> Some k
              | _ -> None)
          | _ -> None)
  in
  (* Re-arm on detection so the caller escalates once per episode instead
     of on every subsequent round of the same cycle. *)
  if verdict <> None then o.history <- [];
  verdict

(* ------------------------------------------------------------------ *)
(* Progress watchdog                                                   *)
(* ------------------------------------------------------------------ *)

(* Progress means some stage's finding count reached a new minimum (or a
   stage was observed for the first time). Each per-stage best is a
   non-negative integer that strictly decreases on progress, and there are
   finitely many stages, so progress events are bounded: once they dry up,
   the watchdog fires within [limit] rounds — the loop's termination
   argument when corrupted findings stop consuming prompt budget. *)
type progress = {
  limit : int;
  mutable best : (string * int) list;  (* stage -> smallest count seen *)
  mutable streak : int;  (* consecutive rounds without progress *)
}

let progress ~rounds = { limit = max 1 rounds; best = []; streak = 0 }

let step p ~stage ~findings =
  let improved =
    match List.assoc_opt stage p.best with None -> true | Some b -> findings < b
  in
  if improved then begin
    p.best <- (stage, findings) :: List.remove_assoc stage p.best;
    p.streak <- 0;
    false
  end
  else begin
    p.streak <- p.streak + 1;
    p.streak >= p.limit
  end
