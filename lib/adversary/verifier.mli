(** The Byzantine-{e verifier} adversary: a seeded lying wrapper installed
    {e under} [Resilience.Verifier.run].

    The paper's premise is that verifiers supply the ground truth the LLM
    lacks — so a verifier that lies is the most dangerous fault the
    pipeline can face. Three lie modes, each drawn per call from an
    independent seeded stream:

    - {b false negative}: real findings silently swallowed — the loop sees
      a fake clean pass and converges on a wrong config;
    - {b false positive}: a plausible fabricated finding on a correct
      draft — the loop burns budget chasing ghosts;
    - {b mutated}: a real finding with the wrong router/line/direction —
      the prompt points the LLM at the wrong place.

    Lies apply only to {e successful} answers: an armed chaos schedule's
    faults pass through untouched, so a lie rides the retry/breaker
    machinery as a perfectly healthy response — which is exactly what makes
    it invisible to the failure-oriented resilience layer and motivates the
    [Resilience.Trust] cross-check ledger. *)

type config = {
  false_negative : float;
  false_positive : float;
  mutated : float;
  adaptive : bool;
      (** Escalate rates as the transcript nears convergence (keyed off
          rounds-since-last-finding, seeded and deterministic). *)
  seed : int;
}

val make :
  ?false_negative:float ->
  ?false_positive:float ->
  ?mutated:float ->
  ?adaptive:bool ->
  ?seed:int ->
  unit ->
  config
(** Rates are clamped to [0, 1]; everything defaults to 0/off. *)

val none : config

val is_none : config -> bool
(** Every rate is 0 (adaptivity without a rate to escalate is also off).
    An armed engine with such a config installs nothing, preserving the
    rate-0 byte-identity invariant. *)

val describe : config -> string
(** ["off"], or e.g. ["fn=0.30 mutate=0.10 adaptive"]. *)

type t
(** Lie engine state for one driver loop: the call counter and the
    rounds-since-last-finding signal feeding the adaptive schedule. *)

val create : ?salt:int -> config -> t

val derive : t -> int -> t
(** Independent streams for fan-out task [idx] (fresh counters, disjoint
    salt), mirroring [Resilience.Runtime.derive]. *)

type decision = Honest | Lie_clean | Lie_fabricate | Lie_mutate

val decision_name : decision -> string

val decide : t -> kind_ix:int -> dirty:bool -> decision
(** One seeded draw per applicable mode for this call: a dirty honest
    answer can be swallowed ([Lie_clean]) or misplaced ([Lie_mutate]); a
    clean one can gain a fabricated finding ([Lie_fabricate]). Also feeds
    the adaptive signal. Exposed for the property tests; {!arm} is the
    normal entry point. *)

type 'o lens = {
  dirty : 'o -> bool;
  clean : 'o -> 'o;  (** False negative: strip every finding. *)
  fabricate : 'o -> 'o;  (** False positive: add a plausible fake finding. *)
  mutate : 'o -> 'o;  (** Real finding, wrong router/line/direction. *)
}
(** How to forge each lie mode for one verifier's output type; supplied by
    the driver, which knows the typed findings. *)

val arm : t -> lens:'o lens -> ('i, 'o) Resilience.Verifier.t -> unit
(** Install the lying schedule, composed over whatever fault schedule is
    already armed (chaos faults pass through; only successes are lied
    about). A no-op when {!is_none}. *)
