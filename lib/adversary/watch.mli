(** Convergence instrumentation for the driver loop: pure, deterministic
    state machines the hardened loop consults each round. *)

(** {2 Oscillation detector}

    Keeps a bounded history of draft digests. A draft repeated
    [repeat_threshold] times in a row is a period-1 cycle; an A/B/A/B tail
    (two full periods, A ≠ B) is a period-2 cycle; and any draft revisited
    at a distance of 3 to [window] rounds is a cycle of that period — one
    sighting suffices there, since a loop that reproduced a draft verbatim
    will reproduce what followed it too. Any verdict means the
    conversation is burning budget without moving. *)

type osc

val osc : ?window:int -> repeat_threshold:int -> unit -> osc
(** [repeat_threshold] is clamped to at least 2. [window] (default 8)
    bounds the revisit search for periods ≥ 3; anything below 3 disables
    that check, leaving exactly the period-1/2 detector. *)

val observe : osc -> string -> int option
(** Record one draft; [Some period] when a cycle completed on this
    observation. Detection clears the history, so the same episode is
    reported once and the detector re-arms. *)

val digest : string -> string
(** The 8-hex-digit digest the detector compares (exposed for tests). *)

(** {2 Progress watchdog}

    Fires after [rounds] consecutive observations in which no verifier
    stage's finding count reached a new minimum. Per-stage minima are
    non-negative and strictly decrease on progress, so with finitely many
    stages the watchdog bounds any loop whose findings stop shrinking —
    including one whose prompts are being dropped by a Byzantine layer and
    therefore never consume prompt budget. *)

type progress

val progress : rounds:int -> progress
(** [rounds] is clamped to at least 1. *)

val step : progress -> stage:string -> findings:int -> bool
(** Record one round's outstanding finding count for the stage that
    produced it. [true] = the watchdog fired: [rounds] consecutive
    non-improving rounds. The first observation of a stage counts as
    progress. *)
