(* The Byzantine LLM: a seeded wrapper around [Llmsim.Chat] that misbehaves
   at configurable per-mode rates. Every decision is a one-shot RNG draw
   keyed on (seed, salt, counter, mode), so a run is a pure function of the
   configuration — the same discipline as [Resilience.Chaos] — and the
   multipliers below are distinct from every chaos/jitter/mutator stream. *)

type mode = Truncated | Wrong_dialect | Stale | Partial_fix | Off_topic

let all_modes = [ Truncated; Wrong_dialect; Stale; Partial_fix; Off_topic ]

let mode_name = function
  | Truncated -> "truncated"
  | Wrong_dialect -> "wrong-dialect"
  | Stale -> "stale"
  | Partial_fix -> "partial-fix"
  | Off_topic -> "off-topic"

let mode_index = function
  | Truncated -> 0
  | Wrong_dialect -> 1
  | Stale -> 2
  | Partial_fix -> 3
  | Off_topic -> 4

type config = {
  truncated : float;
  wrong_dialect : float;
  stale : float;
  partial_fix : float;
  off_topic : float;
  seed : int;
}

let make ?(truncated = 0.0) ?(wrong_dialect = 0.0) ?(stale = 0.0)
    ?(partial_fix = 0.0) ?(off_topic = 0.0) ?(seed = 0) () =
  { truncated; wrong_dialect; stale; partial_fix; off_topic; seed }

let none = make ()

let rate config = function
  | Truncated -> config.truncated
  | Wrong_dialect -> config.wrong_dialect
  | Stale -> config.stale
  | Partial_fix -> config.partial_fix
  | Off_topic -> config.off_topic

let with_rate config mode r =
  match mode with
  | Truncated -> { config with truncated = r }
  | Wrong_dialect -> { config with wrong_dialect = r }
  | Stale -> { config with stale = r }
  | Partial_fix -> { config with partial_fix = r }
  | Off_topic -> { config with off_topic = r }

let is_none config = List.for_all (fun m -> rate config m = 0.0) all_modes

type t = {
  config : config;
  salt : int;
  mutable drafts : int;  (* draft counter: one stream position per draft *)
  mutable responds : int;  (* respond counter, independent of drafts *)
}

let create ?(salt = 0) config = { config; salt; drafts = 0; responds = 0 }

(* Per-router derivation for pooled fan-out: each task gets a disjoint
   stream, deterministic whether the tasks run sequentially or on a pool. *)
let derive t idx = { t with salt = t.salt + ((idx + 1) * 104_729); drafts = 0; responds = 0 }

(* One-shot stream per (seed, salt, counter, mode, purpose): the purpose
   axis separates the fire/no-fire coin from the mode's own parameter
   draws. Multipliers are primes unused by any other stream in the tree. *)
let stream t ~counter ~mode_ix ~purpose =
  Llmsim.Rng.make
    ((t.config.seed * 1_299_709) + (t.salt * 15_485_863) + (counter * 32_452_843)
    + (mode_ix * 49_979_687) + purpose + 23)

let fires t ~counter mode =
  let r = rate t.config mode in
  r > 0.0
  && Llmsim.Rng.bernoulli (stream t ~counter ~mode_ix:(mode_index mode) ~purpose:0) r

let flip = function
  | Llmsim.Fault.Cisco_cfg -> Llmsim.Fault.Junos_cfg
  | Llmsim.Fault.Junos_cfg -> Llmsim.Fault.Cisco_cfg

(* Prose an LLM plausibly substitutes for the requested artifact. *)
let fillers =
  [
    "Certainly! Before writing any configuration, it is worth reviewing some \
     general best practices for BGP deployments: always document your peering \
     policy, prefer route-maps over distribute-lists, and monitor session \
     state.";
    "Here is a summary of the requirements as I understand them. The network \
     should implement the stated policy; each router plays its assigned role; \
     and the operator should verify the result. Let me know if you would like \
     the actual configuration.";
    "I notice the previous attempt had issues. Rather than a configuration, \
     here is an explanation of how BGP communities work: a community is a \
     32-bit tag, conventionally written as two 16-bit halves, attached to \
     routes by policy.";
  ]

let draft t chat =
  t.drafts <- t.drafts + 1;
  let counter = t.drafts in
  let real = Llmsim.Chat.draft chat in
  if fires t ~counter Truncated then begin
    let n = String.length real in
    if n <= 1 then real
    else
      let rng = stream t ~counter ~mode_ix:(mode_index Truncated) ~purpose:1 in
      String.sub real 0 (1 + Llmsim.Rng.int rng (n - 1))
  end
  else if fires t ~counter Wrong_dialect then
    (* Re-render the same latent faults in the other dialect: syntactically
       coherent, but not what was asked for. [Fault.render] is total, so
       unknown targets in the flipped dialect are simply ignored. *)
    Llmsim.Fault.render
      (flip (Llmsim.Chat.dialect chat))
      (Llmsim.Chat.correct chat)
      (Llmsim.Chat.live_faults chat)
  else if fires t ~counter Off_topic then
    let rng = stream t ~counter ~mode_ix:(mode_index Off_topic) ~purpose:1 in
    Option.value ~default:real (Llmsim.Rng.choice rng fillers)
  else real

let respond t chat (prompt : Llmsim.Chat.prompt) =
  t.responds <- t.responds + 1;
  let counter = t.responds in
  if fires t ~counter Stale then
    (* The reply ignores the latest prompt entirely: the chat state does
       not move, so the next draft repeats the previous one. *)
    ()
  else if fires t ~counter Partial_fix then
    let refs = match prompt.Llmsim.Chat.refs with [] -> [] | r :: _ -> [ r ] in
    Llmsim.Chat.respond chat { prompt with Llmsim.Chat.refs }
  else Llmsim.Chat.respond chat prompt

let describe config =
  let parts =
    List.filter_map
      (fun m ->
        let r = rate config m in
        if r > 0.0 then Some (Printf.sprintf "%s=%.2f" (mode_name m) r) else None)
      all_modes
  in
  if parts = [] then "off" else String.concat " " parts
