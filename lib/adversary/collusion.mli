(** A colluding verifier coalition — the attack PR 8's trust layer cannot
    see.

    {!Verifier} models {e independently} lying verifiers, which the trust
    layer defeats by cross-checking suspicious answers against the raw
    oracle. This module models the stronger adversary the ROADMAP names: a
    {e coalition} of verifier kinds that lies {e consistently} — every
    colluder suppresses the same findings on the same input — optionally
    including the cross-check oracle itself. With the oracle in the
    coalition, a PR 8 cross-check re-runs the lie and agrees with it: the
    false negative is laundered into ground truth. Only a quorum that
    includes hand-run referees ({!Resilience.Trust.should_audit} /
    [quorum_verdict]) can catch it.

    Lie decisions are keyed on the {e fingerprint of the honest answer},
    not a per-wrapper call counter, so the lying member and the compromised
    oracle service deterministically draw the same verdict for the same
    check — the definition of colluding consistently. Suppression is the
    only lie mode: fabricated findings would disagree with the
    clean-claiming oracle and betray the coalition. *)

type config = {
  members : Resilience.Verifier.kind list;
      (** The coalition, stored in canonical [all_kinds] order. *)
  oracle : bool;  (** Is the cross-check oracle itself compromised? *)
  rate : float;  (** Per-check suppression probability, clamped to [0,1]. *)
  seed : int;
}

val make :
  ?members:Resilience.Verifier.kind list ->
  ?oracle:bool ->
  ?rate:float ->
  ?seed:int ->
  unit ->
  config

val none : config

val is_none : config -> bool
(** Rate 0 or an empty coalition (an oracle flag alone colludes with
    nobody): arming is a guaranteed no-op — rate-0 byte-identity. *)

val describe : config -> string

type t

val create : ?salt:int -> config -> t

val derive : t -> int -> t
(** Independent decision streams for fan-out task [idx] (same discipline as
    {!Verifier.derive}, distinct salt prime). *)

val arm : t -> lens:'o Verifier.lens -> ('i, 'o) Resilience.Verifier.t -> unit
(** Install the coalition on one wrapped verifier: a suppressing schedule
    composed over the current runner for member kinds, plus the same
    suppression as the cross-check oracle service when [config.oracle].
    No-op for non-members and all-zero configs. *)
