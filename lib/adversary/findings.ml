(* Feedback corruption: what reaches the humanizer/driver after the
   verifier answered (post-Guard, so the finding itself is well-formed —
   the corruption models a hostile transport, not a verifier bug). The
   driver delivers each returned (text, refs) pair as one prompt; an empty
   list means the finding was silently dropped. Same one-shot seeded-draw
   discipline as [Llm]. *)

type mode = Dropped | Duplicated | Misattributed | Garbled

let all_modes = [ Dropped; Duplicated; Misattributed; Garbled ]

let mode_name = function
  | Dropped -> "dropped"
  | Duplicated -> "duplicated"
  | Misattributed -> "misattributed"
  | Garbled -> "garbled"

let mode_index = function Dropped -> 0 | Duplicated -> 1 | Misattributed -> 2 | Garbled -> 3

type config = {
  dropped : float;
  duplicated : float;
  misattributed : float;
  garbled : float;
  seed : int;
}

let make ?(dropped = 0.0) ?(duplicated = 0.0) ?(misattributed = 0.0) ?(garbled = 0.0)
    ?(seed = 0) () =
  { dropped; duplicated; misattributed; garbled; seed }

let none = make ()

let rate config = function
  | Dropped -> config.dropped
  | Duplicated -> config.duplicated
  | Misattributed -> config.misattributed
  | Garbled -> config.garbled

let with_rate config mode r =
  match mode with
  | Dropped -> { config with dropped = r }
  | Duplicated -> { config with duplicated = r }
  | Misattributed -> { config with misattributed = r }
  | Garbled -> { config with garbled = r }

let is_none config = List.for_all (fun m -> rate config m = 0.0) all_modes

type t = { config : config; salt : int; mutable count : int }

let create ?(salt = 0) config = { config; salt; count = 0 }

let derive t idx = { t with salt = t.salt + ((idx + 1) * 224_737); count = 0 }

let stream t ~counter ~mode_ix =
  Llmsim.Rng.make
    ((t.config.seed * 86_028_121) + (t.salt * 2_750_159) + (counter * 7_368_787)
    + (mode_ix * 9_576_89) + 41)

let fires t ~counter mode =
  let r = rate t.config mode in
  r > 0.0 && Llmsim.Rng.bernoulli (stream t ~counter ~mode_ix:(mode_index mode)) r

(* Rotate a fault reference to the "wrong router's" finding: the next error
   class in the taxonomy, anchored at the whole config (the corrupted
   transport lost the precise location along with the attribution). *)
let rotate_class cls =
  let all = Llmsim.Error_class.all in
  let rec next = function
    | a :: (b :: _ as rest) ->
        if Llmsim.Error_class.equal a cls then b else next rest
    | _ -> List.hd all
  in
  next all

let misattribute refs =
  List.map
    (fun (f : Llmsim.Fault.t) ->
      Llmsim.Fault.make (rotate_class f.Llmsim.Fault.class_) Llmsim.Fault.Whole_config)
    refs

(* Deterministic text mangling: reverse the byte order. Unreadable to any
   template matcher, same stall-bookkeeping key every time the same finding
   recurs — so a persistently garbled finding stalls out and the loop gives
   up on it instead of spinning. *)
let garble text =
  let n = String.length text in
  String.init n (fun i -> text.[n - 1 - i])

let corrupt t ~text ~refs =
  t.count <- t.count + 1;
  let counter = t.count in
  if fires t ~counter Dropped then []
  else if fires t ~counter Duplicated then [ (text, refs); (text, refs) ]
  else if fires t ~counter Misattributed then
    [ ("On a different router: " ^ text, misattribute refs) ]
  else if fires t ~counter Garbled then [ (garble text, []) ]
  else [ (text, refs) ]

let describe config =
  let parts =
    List.filter_map
      (fun m ->
        let r = rate config m in
        if r > 0.0 then Some (Printf.sprintf "%s=%.2f" (mode_name m) r) else None)
      all_modes
  in
  if parts = [] then "off" else String.concat " " parts
