open Netcore
open Policy

type state = {
  mutable hostname : string;
  mutable interfaces : Config_ir.interface list;
  mutable prefix_lists : Prefix_list.t list;
  mutable community_lists : Community_list.t list;
  mutable as_path_lists : As_path_list.t list;
  mutable route_maps : Route_map.t list;
  mutable router_id : Ipv4.t option;
  mutable asn : int option;
  mutable networks : Prefix.t list;
  mutable neighbors : Config_ir.neighbor list;
  mutable ospf_interfaces : Config_ir.ospf_interface list;
  mutable acls : Acl.t list;
  mutable statics : Config_ir.static_route list;
  mutable has_bgp : bool;
  mutable has_ospf : bool;
  mutable diags : Diag.t list;
}

let fresh () =
  {
    hostname = "router";
    interfaces = [];
    prefix_lists = [];
    community_lists = [];
    as_path_lists = [];
    route_maps = [];
    router_id = None;
    asn = None;
    networks = [];
    neighbors = [];
    ospf_interfaces = [];
    acls = [];
    statics = [];
    has_bgp = false;
    has_ospf = false;
    diags = [];
  }

let warn st ~line fmt = Printf.ksprintf (fun s -> st.diags <- Diag.warning ~line s :: st.diags) fmt
let err st ~line fmt = Printf.ksprintf (fun s -> st.diags <- Diag.error ~line s :: st.diags) fmt

(* LLM (and fuzzed) text routinely repeats a term or stanza verbatim; the
   IR constructors reject duplicate sequence numbers, so bump collisions to
   the next free number (preserving order) rather than raise. *)
let resequence ~seq_of ~with_seq entries =
  let seen = Hashtbl.create 8 in
  List.map
    (fun e ->
      let seq = ref (seq_of e) in
      while Hashtbl.mem seen !seq do
        incr seq
      done;
      Hashtbl.add seen !seq ();
      with_seq e !seq)
    entries

let find_community_list st n =
  List.find_opt (fun (l : Community_list.t) -> l.name = n) st.community_lists

(* Detects the invalid "1.2.3.0/24-32" shorthand GPT-4 produces when asked
   to translate Cisco's ge/le bounds. *)
let invalid_range_shorthand s =
  match String.index_opt s '/' with
  | None -> false
  | Some i ->
      let tail = String.sub s (i + 1) (String.length s - i - 1) in
      String.contains tail '-' && Prefix.of_string (String.sub s 0 i) <> None

(* ------------------------------------------------------------------ *)
(* system / interfaces                                                 *)
(* ------------------------------------------------------------------ *)

let parse_system st node =
  List.iter
    (fun (n : Ast.node) ->
      match n.keywords with
      | [ "host-name"; h ] -> st.hostname <- h
      | _ -> warn st ~line:n.line "ignoring system statement '%s'" (String.concat " " n.keywords))
    (Ast.children node)

let parse_interface st (n : Ast.node) =
  match n.keywords with
  | [ name ] -> (
      match Iface.of_junos name with
      | None -> err st ~line:n.line "unknown interface name '%s'" name
      | Some iface ->
          let descr = ref None and shutdown = ref false and address = ref None in
          let acl_in = ref None and acl_out = ref None in
          List.iter
            (fun (s : Ast.node) ->
              match s.keywords with
              | [ "description"; d ] -> descr := Some d
              | "description" :: rest -> descr := Some (String.concat " " rest)
              | [ "disable" ] -> shutdown := true
              | [ "unit"; "0" ] ->
                  List.iter
                    (fun (f : Ast.node) ->
                      match f.keywords with
                      | [ "family"; "inet" ] ->
                          List.iter
                            (fun (a : Ast.node) ->
                              match a.keywords with
                              | [ "filter" ] ->
                                  List.iter
                                    (fun (ff : Ast.node) ->
                                      match ff.keywords with
                                      | [ "input"; n ] -> acl_in := Some n
                                      | [ "output"; n ] -> acl_out := Some n
                                      | _ ->
                                          warn st ~line:ff.line
                                            "ignoring filter statement '%s'"
                                            (String.concat " " ff.keywords))
                                    (Ast.children a)
                              | [ "address"; spec ] -> (
                                  match String.index_opt spec '/' with
                                  | Some i -> (
                                      let astr = String.sub spec 0 i in
                                      let lstr =
                                        String.sub spec (i + 1) (String.length spec - i - 1)
                                      in
                                      match (Ipv4.of_string astr, int_of_string_opt lstr) with
                                      | Some a, Some l when l >= 0 && l <= 32 ->
                                          address := Some (a, l)
                                      | _ -> err st ~line:a.line "invalid interface address '%s'" spec)
                                  | None -> err st ~line:a.line "interface address needs a /length")
                              | _ ->
                                  warn st ~line:a.line "ignoring family inet statement '%s'"
                                    (String.concat " " a.keywords))
                            (Ast.children f)
                      | _ ->
                          warn st ~line:f.line "ignoring unit statement '%s'"
                            (String.concat " " f.keywords))
                    (Ast.children s)
              | "unit" :: _ ->
                  warn st ~line:s.line "only unit 0 is supported"
              | _ ->
                  warn st ~line:s.line "ignoring interface statement '%s'"
                    (String.concat " " s.keywords))
            (Ast.children n);
          st.interfaces <-
            st.interfaces
            @ [
                {
                  Config_ir.iface;
                  address = !address;
                  description = !descr;
                  shutdown = !shutdown;
                  acl_in = !acl_in;
                  acl_out = !acl_out;
                };
              ])
  | _ -> err st ~line:n.line "malformed interface block"

(* ------------------------------------------------------------------ *)
(* routing-options                                                     *)
(* ------------------------------------------------------------------ *)

let parse_routing_options st node =
  List.iter
    (fun (n : Ast.node) ->
      match n.keywords with
      | [ "router-id"; r ] -> (
          match Ipv4.of_string r with
          | Some rid -> st.router_id <- Some rid
          | None -> err st ~line:n.line "invalid router-id '%s'" r)
      | [ "autonomous-system"; a ] -> (
          match int_of_string_opt a with
          | Some a when a > 0 -> st.asn <- Some a
          | _ -> err st ~line:n.line "invalid autonomous-system '%s'" a)
      | [ "static" ] ->
          List.iter
            (fun (r : Ast.node) ->
              match r.keywords with
              | [ "route"; dest ] -> (
                  match Prefix.of_string dest with
                  | None -> err st ~line:r.line "invalid static route destination"
                  | Some destination ->
                      List.iter
                        (fun (h : Ast.node) ->
                          match h.keywords with
                          | [ "next-hop"; nh ] -> (
                              match Ipv4.of_string nh with
                              | Some next_hop ->
                                  st.statics <-
                                    st.statics @ [ { Config_ir.destination; next_hop } ]
                              | None -> err st ~line:h.line "invalid next-hop")
                          | _ ->
                              warn st ~line:h.line "ignoring static route statement '%s'"
                                (String.concat " " h.keywords))
                        (Ast.children r))
              | _ ->
                  warn st ~line:r.line "ignoring static statement '%s'"
                    (String.concat " " r.keywords))
            (Ast.children n)
      | [ "announce" ] ->
          List.iter
            (fun (p : Ast.node) ->
              match p.keywords with
              | [ spec ] -> (
                  match Prefix.of_string spec with
                  | Some pre -> st.networks <- st.networks @ [ pre ]
                  | None -> err st ~line:p.line "invalid announced prefix '%s'" spec)
              | _ -> err st ~line:p.line "malformed announce entry")
            (Ast.children n)
      | _ ->
          warn st ~line:n.line "ignoring routing-options statement '%s'"
            (String.concat " " n.keywords))
    (Ast.children node)

(* ------------------------------------------------------------------ *)
(* protocols bgp / ospf                                                *)
(* ------------------------------------------------------------------ *)

let parse_neighbor st (n : Ast.node) =
  match n.keywords with
  | [ "neighbor"; addr ] -> (
      match Ipv4.of_string addr with
      | None -> err st ~line:n.line "invalid neighbor address '%s'" addr
      | Some addr ->
          let peer_as = ref (-1)
          and local_as = ref None
          and descr = ref None
          and import_policy = ref None
          and export_policy = ref None in
          List.iter
            (fun (s : Ast.node) ->
              match s.keywords with
              | [ "peer-as"; a ] -> (
                  match int_of_string_opt a with
                  | Some a when a > 0 -> peer_as := a
                  | _ -> err st ~line:s.line "invalid peer-as '%s'" a)
              | [ "local-as"; a ] -> (
                  match int_of_string_opt a with
                  | Some a when a > 0 -> local_as := Some a
                  | _ -> err st ~line:s.line "invalid local-as '%s'" a)
              | "description" :: rest -> descr := Some (String.concat " " rest)
              | "import" :: pols -> (
                  match pols with
                  | [ p ] -> import_policy := Some p
                  | _ ->
                      err st ~line:s.line
                        "only a single import policy per neighbor is supported")
              | "export" :: pols -> (
                  match pols with
                  | [ p ] -> export_policy := Some p
                  | _ ->
                      err st ~line:s.line
                        "only a single export policy per neighbor is supported")
              | _ ->
                  warn st ~line:s.line "ignoring neighbor statement '%s'"
                    (String.concat " " s.keywords))
            (Ast.children n);
          if !peer_as <= 0 then
            warn st ~line:n.line "neighbor %s has no peer-as" (Ipv4.to_string addr);
          st.neighbors <-
            st.neighbors
            @ [
                {
                  Config_ir.addr;
                  remote_as = !peer_as;
                  local_as = !local_as;
                  description = !descr;
                  import_policy = !import_policy;
                  export_policy = !export_policy;
                  next_hop_self = false;
                  send_community = true;
                };
              ])
  | _ -> err st ~line:n.line "malformed neighbor block"

let parse_bgp st node =
  st.has_bgp <- true;
  List.iter
    (fun (g : Ast.node) ->
      match g.keywords with
      | "group" :: _ ->
          List.iter
            (fun (s : Ast.node) ->
              match s.keywords with
              | "neighbor" :: _ -> parse_neighbor st s
              | [ "type"; ("external" | "internal") ] -> ()
              | [ "local-as"; a ] -> (
                  (* group-level local-as applies to neighbors that follow *)
                  match int_of_string_opt a with
                  | Some a when a > 0 -> if st.asn = None then st.asn <- Some a
                  | _ -> err st ~line:s.line "invalid local-as")
              | _ ->
                  warn st ~line:s.line "ignoring bgp group statement '%s'"
                    (String.concat " " s.keywords))
            (Ast.children g)
      | "neighbor" :: _ -> parse_neighbor st g
      | _ ->
          warn st ~line:g.line "ignoring bgp statement '%s'" (String.concat " " g.keywords))
    (Ast.children node)

let parse_ospf st node =
  st.has_ospf <- true;
  List.iter
    (fun (a : Ast.node) ->
      match a.keywords with
      | [ "area"; area_str ] -> (
          let area =
            match Ipv4.of_string area_str with
            | Some ip -> Some (Ipv4.to_int ip land 0xFF)
            | None -> int_of_string_opt area_str
          in
          match area with
          | None -> err st ~line:a.line "invalid area '%s'" area_str
          | Some area ->
              List.iter
                (fun (i : Ast.node) ->
                  match i.keywords with
                  | [ "interface"; ifname ] -> (
                      match Iface.of_junos ifname with
                      | None -> err st ~line:i.line "unknown interface '%s'" ifname
                      | Some iface ->
                          let cost = ref None and passive = ref false in
                          List.iter
                            (fun (s : Ast.node) ->
                              match s.keywords with
                              | [ "metric"; m ] -> (
                                  match int_of_string_opt m with
                                  | Some m -> cost := Some m
                                  | None -> err st ~line:s.line "invalid metric")
                              | [ "passive" ] -> passive := true
                              | _ ->
                                  warn st ~line:s.line
                                    "ignoring ospf interface statement '%s'"
                                    (String.concat " " s.keywords))
                            (Ast.children i);
                          st.ospf_interfaces <-
                            st.ospf_interfaces
                            @ [ { Config_ir.iface; cost = !cost; passive = !passive; area } ])
                  | _ ->
                      warn st ~line:i.line "ignoring area statement '%s'"
                        (String.concat " " i.keywords))
                (Ast.children a))
      | _ ->
          warn st ~line:a.line "ignoring ospf statement '%s'" (String.concat " " a.keywords))
    (Ast.children node)

(* ------------------------------------------------------------------ *)
(* policy-options                                                      *)
(* ------------------------------------------------------------------ *)

let parse_prefix_list st (n : Ast.node) name =
  let entries = ref [] and seq = ref 0 in
  List.iter
    (fun (p : Ast.node) ->
      match p.keywords with
      | [ spec ] -> (
          if invalid_range_shorthand spec then
            err st ~line:p.line
              "'policy-options prefix-list %s %s' is not valid Juniper syntax: a \
               prefix-list entry is a plain prefix; to match a range of prefix \
               lengths use a route-filter with prefix-length-range or upto in the \
               policy-statement"
              name spec
          else
            match Prefix.of_string spec with
            | Some pre ->
                seq := !seq + 5;
                entries := !entries @ [ Prefix_list.entry !seq (Prefix_range.exact pre) ]
            | None -> err st ~line:p.line "invalid prefix '%s' in prefix-list %s" spec name)
      | _ -> err st ~line:p.line "malformed prefix-list entry")
    (Ast.children n);
  st.prefix_lists <- st.prefix_lists @ [ Prefix_list.make name !entries ]

let parse_route_filter st ~line toks =
  (* route-filter P exact|orlonger|upto /n|prefix-length-range /a-/b *)
  let slash_num s =
    if String.length s > 1 && s.[0] = '/' then
      int_of_string_opt (String.sub s 1 (String.length s - 1))
    else None
  in
  match toks with
  | p :: rest -> (
      if invalid_range_shorthand p then (
        err st ~line
          "'route-filter %s' is not valid syntax: write the prefix and a \
           prefix-length-range /a-/b modifier"
          p;
        None)
      else
        match Prefix.of_string p with
        | None ->
            err st ~line "invalid prefix '%s' in route-filter" p;
            None
        | Some base -> (
            match rest with
            | [ "exact" ] -> Some (Prefix_range.exact base)
            | [ "orlonger" ] -> Some (Prefix_range.orlonger base)
            | [ "upto"; l ] -> (
                match slash_num l with
                | Some l when l >= Prefix.len base && l <= 32 ->
                    Some (Prefix_range.le base l)
                | _ ->
                    err st ~line "invalid upto bound '%s'" l;
                    None)
            | [ "prefix-length-range"; r ] -> (
                match String.split_on_char '-' r with
                | [ a; b ] -> (
                    match (slash_num a, slash_num b) with
                    | Some a, Some b
                      when Prefix.len base <= a && a <= b && b <= 32 ->
                        Some (Prefix_range.make base ~ge:a ~le:b)
                    | _ ->
                        err st ~line "invalid prefix-length-range '%s'" r;
                        None)
                | _ ->
                    err st ~line "invalid prefix-length-range '%s'" r;
                    None)
            | [] -> Some (Prefix_range.exact base)
            | _ ->
                err st ~line "unsupported route-filter modifier '%s'"
                  (String.concat " " rest);
                None))
  | [] ->
      err st ~line "route-filter needs a prefix";
      None

(* Community names referenced in a from clause may be several (OR). A single
   name maps to the named list directly; several synthesize a combined list
   with one entry per name. *)
let resolve_community_match st ~line names =
  match names with
  | [ n ] -> Some (Route_map.Match_community_list n)
  | _ :: _ ->
      let combined_name = "or-" ^ String.concat "-" names in
      (if find_community_list st combined_name = None then
         let entries =
           List.concat_map
             (fun n ->
               match find_community_list st n with
               | Some l -> l.Community_list.entries
               | None ->
                   warn st ~line "community '%s' referenced before definition" n;
                   [])
             names
         in
         if entries <> [] then
           st.community_lists <-
             st.community_lists @ [ Community_list.make combined_name entries ]);
      (* If nothing resolved there is no list to cite: an empty combined
         list would print as a bare [community;] leaf that cannot reparse,
         so the match is dropped (the warnings above already flag it). *)
      if find_community_list st combined_name = None then None
      else Some (Route_map.Match_community_list combined_name)
  | [] ->
      err st ~line "from community needs at least one name";
      None

let parse_term st policy_name idx (n : Ast.node) =
  let term_name =
    match n.keywords with
    | [ "term"; t ] -> t
    | _ -> Printf.sprintf "t%d" ((idx + 1) * 10)
  in
  let seq =
    let s =
      if String.length term_name > 1 && term_name.[0] = 't' then
        int_of_string_opt (String.sub term_name 1 (String.length term_name - 1))
      else int_of_string_opt term_name
    in
    match s with Some s -> s | None -> (idx + 1) * 10
  in
  let matches = ref [] and sets = ref [] and action = ref None in
  let route_filter_ranges = ref [] in
  List.iter
    (fun (c : Ast.node) ->
      match c.keywords with
      | [ "from" ] ->
          List.iter
            (fun (f : Ast.node) ->
              match f.keywords with
              | "route-filter" :: toks -> (
                  match parse_route_filter st ~line:f.line toks with
                  | Some range -> route_filter_ranges := !route_filter_ranges @ [ range ]
                  | None -> ())
              | [ "prefix-list"; name ] ->
                  matches := !matches @ [ Route_map.Match_prefix_list name ]
              | "community" :: names -> (
                  match resolve_community_match st ~line:f.line names with
                  | Some m -> matches := !matches @ [ m ]
                  | None -> ())
              | [ "as-path"; name ] -> matches := !matches @ [ Route_map.Match_as_path name ]
              | [ "protocol"; p ] -> (
                  match p with
                  | "bgp" -> matches := !matches @ [ Route_map.Match_source_protocol Route.Bgp ]
                  | "ospf" -> matches := !matches @ [ Route_map.Match_source_protocol Route.Ospf ]
                  | "direct" | "connected" ->
                      matches := !matches @ [ Route_map.Match_source_protocol Route.Connected ]
                  | "static" ->
                      matches := !matches @ [ Route_map.Match_source_protocol Route.Static ]
                  | _ -> err st ~line:f.line "unknown protocol '%s'" p)
              | [ "metric"; m ] -> (
                  match int_of_string_opt m with
                  | Some m -> matches := !matches @ [ Route_map.Match_med m ]
                  | None -> err st ~line:f.line "invalid metric")
              | _ ->
                  err st ~line:f.line "unrecognized from condition '%s'"
                    (String.concat " " f.keywords))
            (Ast.children c)
      | [ "then" ] ->
          List.iter
            (fun (t : Ast.node) ->
              match t.keywords with
              | [ "accept" ] -> action := Some Action.Permit
              | [ "reject" ] -> action := Some Action.Deny
              | [ "metric"; m ] -> (
                  match int_of_string_opt m with
                  | Some m -> sets := !sets @ [ Route_map.Set_med m ]
                  | None -> err st ~line:t.line "invalid metric")
              | [ "local-preference"; p ] -> (
                  match int_of_string_opt p with
                  | Some p -> sets := !sets @ [ Route_map.Set_local_pref p ]
                  | None -> err st ~line:t.line "invalid local-preference")
              | [ "community"; op; name ] -> (
                  match op with
                  | "add" | "set" -> (
                      match find_community_list st name with
                      | Some { Community_list.entries = e :: _; _ } ->
                          sets :=
                            !sets
                            @ [
                                Route_map.Set_community
                                  {
                                    communities = e.Community_list.communities;
                                    additive = op = "add";
                                  };
                              ]
                      | _ ->
                          err st ~line:t.line
                            "community '%s' used in 'community %s' is not defined" name op)
                  | "delete" -> sets := !sets @ [ Route_map.Set_community_delete name ]
                  | _ -> err st ~line:t.line "unknown community operation '%s'" op)
              | [ "next-hop"; a ] -> (
                  match Ipv4.of_string a with
                  | Some a -> sets := !sets @ [ Route_map.Set_next_hop a ]
                  | None -> err st ~line:t.line "invalid next-hop")
              | [ "as-path-prepend"; spec ] -> (
                  let parts =
                    String.split_on_char ' ' spec |> List.filter (fun x -> x <> "")
                  in
                  let nums = List.map int_of_string_opt parts in
                  match (parts, List.for_all Option.is_some nums) with
                  | [], _ -> err st ~line:t.line "empty as-path-prepend"
                  | _, false -> err st ~line:t.line "invalid as-path-prepend '%s'" spec
                  | _, true ->
                      sets :=
                        !sets @ [ Route_map.Set_as_path_prepend (List.filter_map Fun.id nums) ])
              | _ ->
                  err st ~line:t.line "unrecognized then action '%s'"
                    (String.concat " " t.keywords))
            (Ast.children c)
      | _ ->
          warn st ~line:c.line "ignoring term statement '%s'" (String.concat " " c.keywords))
    (Ast.children n);
  (* Route filters become a synthesized all-permit prefix list. Duplicate
     filter lines are meaningless and are dropped (the printer's
     prefix-space compilation would merge them anyway). *)
  (match !route_filter_ranges with
  | [] -> ()
  | ranges ->
      let ranges =
        List.fold_left
          (fun acc r -> if List.exists (Prefix_range.equal r) acc then acc else acc @ [ r ])
          [] ranges
      in
      let name = Printf.sprintf "rf-%s-%s" policy_name term_name in
      let entries = List.mapi (fun i r -> Prefix_list.entry ((i + 1) * 5) r) ranges in
      st.prefix_lists <- st.prefix_lists @ [ Prefix_list.make name entries ];
      matches := Route_map.Match_prefix_list name :: !matches);
  let action =
    match !action with
    | Some a -> a
    | None ->
        warn st ~line:n.line "term %s of policy %s has no accept/reject; assuming reject"
          term_name policy_name;
        Action.Deny
  in
  Route_map.entry ~action ~matches:!matches ~sets:!sets seq

let parse_policy_statement st (n : Ast.node) name =
  let entries = List.mapi (fun i t -> parse_term st name i t) (Ast.children n) in
  let entries =
    resequence
      ~seq_of:(fun (e : Route_map.entry) -> e.seq)
      ~with_seq:(fun (e : Route_map.entry) seq -> { e with Route_map.seq })
      entries
  in
  st.route_maps <- st.route_maps @ [ Route_map.make name entries ]

let parse_firewall st node =
  let slash_range s =
    match String.index_opt s '-' with
    | Some i -> (
        let lo = String.sub s 0 i and hi = String.sub s (i + 1) (String.length s - i - 1) in
        match (int_of_string_opt lo, int_of_string_opt hi) with
        | Some lo, Some hi when 0 <= lo && lo <= hi && hi <= 65535 ->
            Some (Acl.Port_range (lo, hi))
        | _ -> None)
    | None -> (
        match int_of_string_opt s with
        | Some p when 0 <= p && p <= 65535 -> Some (Acl.Eq p)
        | _ -> None)
  in
  let parse_filter (f : Ast.node) name =
    let entries = ref [] and next_seq = ref 0 in
    List.iter
      (fun (t : Ast.node) ->
        match t.keywords with
        | "term" :: _ ->
            let proto = ref Acl.Any_proto
            and src = ref Prefix.default
            and dst = ref Prefix.default
            and port = ref Acl.Any_port
            and action = ref None in
            List.iter
              (fun (c : Ast.node) ->
                match c.keywords with
                | [ "from" ] ->
                    List.iter
                      (fun (fr : Ast.node) ->
                        match fr.keywords with
                        | [ "protocol"; p ] -> (
                            match Packet.proto_of_string p with
                            | Some p -> proto := Acl.Proto p
                            | None -> err st ~line:fr.line "unknown protocol '%s'" p)
                        | [ "source-address"; spec ] -> (
                            match Prefix.of_string spec with
                            | Some p -> src := p
                            | None -> err st ~line:fr.line "invalid source address")
                        | [ "destination-address"; spec ] -> (
                            match Prefix.of_string spec with
                            | Some p -> dst := p
                            | None -> err st ~line:fr.line "invalid destination address")
                        | [ "destination-port"; spec ] -> (
                            match slash_range spec with
                            | Some pm -> port := pm
                            | None -> err st ~line:fr.line "invalid destination port")
                        | _ ->
                            warn st ~line:fr.line "ignoring filter condition '%s'"
                              (String.concat " " fr.keywords))
                      (Ast.children c)
                | [ "then" ] ->
                    List.iter
                      (fun (th : Ast.node) ->
                        match th.keywords with
                        | [ "accept" ] -> action := Some Action.Permit
                        | [ "discard" ] | [ "reject" ] -> action := Some Action.Deny
                        | _ ->
                            warn st ~line:th.line "ignoring filter action '%s'"
                              (String.concat " " th.keywords))
                      (Ast.children c)
                | _ ->
                    warn st ~line:c.line "ignoring term statement '%s'"
                      (String.concat " " c.keywords))
              (Ast.children t);
            let seq =
              match t.keywords with
              | [ "term"; tn ]
                when String.length tn > 1 && tn.[0] = 't'
                     && int_of_string_opt (String.sub tn 1 (String.length tn - 1)) <> None ->
                  int_of_string (String.sub tn 1 (String.length tn - 1))
              | _ ->
                  next_seq := !next_seq + 10;
                  !next_seq
            in
            let action =
              match !action with
              | Some a -> a
              | None ->
                  warn st ~line:t.line "filter term without accept/discard; assuming discard";
                  Action.Deny
            in
            entries :=
              !entries
              @ [ Acl.entry ~action ~proto:!proto ~src:!src ~dst:!dst ~dst_port:!port seq ]
        | _ ->
            warn st ~line:t.line "ignoring filter statement '%s'"
              (String.concat " " t.keywords))
      (Ast.children f);
    let entries =
      resequence
        ~seq_of:(fun (e : Acl.entry) -> e.seq)
        ~with_seq:(fun (e : Acl.entry) seq -> { e with Acl.seq })
        !entries
    in
    st.acls <- st.acls @ [ Acl.make name entries ]
  in
  List.iter
    (fun (fam : Ast.node) ->
      match fam.keywords with
      | [ "family"; "inet" ] ->
          List.iter
            (fun (f : Ast.node) ->
              match f.keywords with
              | [ "filter"; name ] -> parse_filter f name
              | _ ->
                  warn st ~line:f.line "ignoring firewall statement '%s'"
                    (String.concat " " f.keywords))
            (Ast.children fam)
      | _ ->
          warn st ~line:fam.line "only firewall family inet is supported")
    (Ast.children node)

let parse_policy_options st node =
  (* Two passes: definitions (prefix lists, communities, as-paths) first so
     policy statements can reference them regardless of file order. *)
  List.iter
    (fun (n : Ast.node) ->
      match n.keywords with
      | [ "prefix-list"; name ] -> parse_prefix_list st n name
      | "community" :: name :: "members" :: members -> (
          let parsed = List.map Community.of_string members in
          match (members, List.for_all Option.is_some parsed) with
          | [], _ -> err st ~line:n.line "community %s has no members" name
          | _, false -> err st ~line:n.line "invalid community member in %s" name
          | _, true ->
              st.community_lists <-
                st.community_lists
                @ [
                    Community_list.make name
                      [ Community_list.entry (List.filter_map Fun.id parsed) ];
                  ])
      | [ "as-path"; name; regex ] ->
          st.as_path_lists <-
            st.as_path_lists @ [ As_path_list.make name [ As_path_list.entry regex ] ]
      | [ "policy-statement"; _ ] -> ()
      | _ ->
          warn st ~line:n.line "ignoring policy-options statement '%s'"
            (String.concat " " n.keywords))
    (Ast.children node);
  List.iter
    (fun (n : Ast.node) ->
      match n.keywords with
      | [ "policy-statement"; name ] -> parse_policy_statement st n name
      | _ -> ())
    (Ast.children node)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let parse text =
  let nodes, tree_diags = Ast.parse text in
  let st = fresh () in
  st.diags <- List.rev tree_diags;
  List.iter
    (fun (n : Ast.node) ->
      match n.keywords with
      | [ "system" ] -> parse_system st n
      | [ "interfaces" ] -> List.iter (parse_interface st) (Ast.children n)
      | [ "routing-options" ] -> parse_routing_options st n
      | [ "protocols" ] ->
          List.iter
            (fun (p : Ast.node) ->
              match p.keywords with
              | [ "bgp" ] -> parse_bgp st p
              | [ "ospf" ] -> parse_ospf st p
              | _ ->
                  warn st ~line:p.line "ignoring protocol '%s'"
                    (String.concat " " p.keywords))
            (Ast.children n)
      | [ "policy-options" ] -> parse_policy_options st n
      | [ "firewall" ] -> parse_firewall st n
      | _ ->
          err st ~line:n.line "unrecognized top-level statement '%s'"
            (String.concat " " n.keywords))
    nodes;
  (* The Table 2 "Missing BGP local-as" warning: a BGP process needs either
     routing-options autonomous-system or per-neighbor local-as. *)
  if st.has_bgp && st.asn = None then begin
    let missing =
      List.filter (fun (n : Config_ir.neighbor) -> n.local_as = None) st.neighbors
    in
    List.iter
      (fun (n : Config_ir.neighbor) ->
        err st ~line:0
          "BGP neighbor %s has no local AS: set 'local-as' on the neighbor or \
           'routing-options autonomous-system'"
          (Ipv4.to_string n.addr))
      missing
  end;
  let bgp =
    if st.has_bgp || st.neighbors <> [] || st.networks <> [] then
      Some
        {
          Config_ir.asn = Option.value ~default:0 st.asn;
          router_id = st.router_id;
          networks = st.networks;
          neighbors = st.neighbors;
          redistributions = [];
        }
    else None
  in
  let ospf =
    if st.has_ospf then
      Some
        {
          Config_ir.process_id = 1;
          router_id = st.router_id;
          networks = [];
          interfaces =
            List.sort
              (fun (a : Config_ir.ospf_interface) (b : Config_ir.ospf_interface) ->
                Iface.compare a.iface b.iface)
              st.ospf_interfaces;
          redistributions = [];
        }
    else None
  in
  ( {
      Config_ir.hostname = st.hostname;
      interfaces = st.interfaces;
      prefix_lists = st.prefix_lists;
      community_lists = st.community_lists;
      as_path_lists = st.as_path_lists;
      route_maps = st.route_maps;
      acls = st.acls;
      statics = st.statics;
      bgp;
      ospf;
    },
    List.rev st.diags )

let parse_clean text =
  match parse text with
  | ir, [] -> Ok ir
  | _, diags -> Error diags
