(* Seeded disk-fault injection. One global (config, counters, streams)
   cell under a mutex: the store consults it at every write/fsync/rename,
   and the crash-after-N schedule needs a process-wide operation counter
   anyway (it models the whole process dying, not one file). *)

type config = {
  seed : int;
  short_rate : float;
  torn_rate : float;
  io_error_rate : float;
  enospc_rate : float;
  fsync_fail_rate : float;
  crash_after : int option;
}

exception Crashed of string

let clamp r = if r < 0. then 0. else if r > 1. then 1. else r

let none =
  {
    seed = 0;
    short_rate = 0.;
    torn_rate = 0.;
    io_error_rate = 0.;
    enospc_rate = 0.;
    fsync_fail_rate = 0.;
    crash_after = None;
  }

let make ?(short_rate = 0.) ?(torn_rate = 0.) ?(io_error_rate = 0.)
    ?(enospc_rate = 0.) ?(fsync_fail_rate = 0.) ?crash_after ~seed () =
  {
    seed;
    short_rate = clamp short_rate;
    torn_rate = clamp torn_rate;
    io_error_rate = clamp io_error_rate;
    enospc_rate = clamp enospc_rate;
    fsync_fail_rate = clamp fsync_fail_rate;
    crash_after = Option.map (max 0) crash_after;
  }

let is_none c =
  c.short_rate = 0. && c.torn_rate = 0. && c.io_error_rate = 0.
  && c.enospc_rate = 0. && c.fsync_fail_rate = 0. && c.crash_after = None

let describe c =
  if is_none c then "no disk faults"
  else
    let rates =
      List.filter_map
        (fun (name, r) ->
          if r > 0. then Some (Printf.sprintf "%s %.2f" name r) else None)
        [
          ("short", c.short_rate);
          ("torn", c.torn_rate);
          ("io-error", c.io_error_rate);
          ("enospc", c.enospc_rate);
          ("fsync-fail", c.fsync_fail_rate);
        ]
      @
      match c.crash_after with
      | None -> []
      | Some n -> [ Printf.sprintf "crash-after %d" n ]
    in
    Printf.sprintf "%s (seed %d)" (String.concat ", " rates) c.seed

type write_fate =
  | Write_all
  | Write_short of int
  | Write_torn of int
  | Write_error of Unix.error
  | Write_crash of int

type fsync_fate = Fsync_ok | Fsync_error | Fsync_crash

type stats = {
  ops : int;
  shorts : int;
  torn : int;
  io_errors : int;
  enospc : int;
  fsync_failures : int;
  crashes : int;
}

let zero =
  {
    ops = 0;
    shorts = 0;
    torn = 0;
    io_errors = 0;
    enospc = 0;
    fsync_failures = 0;
    crashes = 0;
  }

let m = Mutex.create ()
let active : config option ref = ref None
let counters = ref zero

(* One splitmix64 stream per (salt, path): write fates, fsync fates and
   rename fates never share a stream, and neither do two stores — so the
   fate sequence a given file sees is independent of what any other file
   does, and a resumed run re-draws the same fates for the writes it
   re-issues. *)
let streams : (int * string, Llmsim.Rng.t) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let install c =
  locked (fun () ->
      active := Some c;
      counters := zero;
      Hashtbl.reset streams)

let uninstall () =
  locked (fun () ->
      active := None;
      Hashtbl.reset streams)

let installed () = locked (fun () -> !active <> None)
let stats () = locked (fun () -> !counters)

(* FNV-1a over the path, folded with the seed and a distinct large odd
   multiplier per salt (the Chaos stream-seeding idiom). *)
let fnv1a s =
  (* The 64-bit FNV offset basis, truncated to OCaml's 63-bit int. *)
  let h = ref 0x4BF29CE484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001B3)
    s;
  !h

let stream c ~salt ~path =
  match Hashtbl.find_opt streams (salt, path) with
  | Some r -> r
  | None ->
      let r =
        Llmsim.Rng.make
          (c.seed + ((salt + 1) * 7_368_787) + (fnv1a path land 0x3FFFFFFFFF))
      in
      Hashtbl.replace streams (salt, path) r;
      r

let count_op () =
  counters := { !counters with ops = !counters.ops + 1 };
  !counters.ops

let crashes_now () = counters := { !counters with crashes = !counters.crashes + 1 }

let crash_due c n =
  match c.crash_after with Some k -> n > k | None -> false

let write_fate ~path ~len =
  locked (fun () ->
      match !active with
      | None -> Write_all
      | Some c ->
          let n = count_op () in
          let r = stream c ~salt:1 ~path in
          let offset () = if len = 0 then 0 else Llmsim.Rng.int r len in
          if crash_due c n then begin
            crashes_now ();
            Write_crash (offset ())
          end
          else
            (* One uniform draw decides the fate (cumulative thresholds),
               so arming an extra rate never perturbs which writes an
               already-armed rate strikes. *)
            let u = Llmsim.Rng.float r in
            let t1 = c.io_error_rate in
            let t2 = t1 +. c.enospc_rate in
            let t3 = t2 +. c.torn_rate in
            let t4 = t3 +. c.short_rate in
            if u < t1 then begin
              counters := { !counters with io_errors = !counters.io_errors + 1 };
              Write_error Unix.EIO
            end
            else if u < t2 then begin
              counters := { !counters with enospc = !counters.enospc + 1 };
              Write_error Unix.ENOSPC
            end
            else if u < t3 then begin
              counters := { !counters with torn = !counters.torn + 1 };
              Write_torn (offset ())
            end
            else if u < t4 then begin
              counters := { !counters with shorts = !counters.shorts + 1 };
              Write_short (offset ())
            end
            else Write_all)

let fsync_fate ~path =
  locked (fun () ->
      match !active with
      | None -> Fsync_ok
      | Some c ->
          let n = count_op () in
          if crash_due c n then begin
            crashes_now ();
            Fsync_crash
          end
          else
            let r = stream c ~salt:2 ~path in
            if Llmsim.Rng.bernoulli r c.fsync_fail_rate then begin
              counters :=
                { !counters with fsync_failures = !counters.fsync_failures + 1 };
              Fsync_error
            end
            else Fsync_ok)

let rename_fate ~path =
  ignore path;
  locked (fun () ->
      match !active with
      | None -> `Proceed
      | Some c ->
          let n = count_op () in
          if crash_due c n then begin
            crashes_now ();
            `Crash
          end
          else `Proceed)
