(** The one checksummed append-only record store every persistence surface
    rides on.

    Before this module the repo had five independently-written durability
    paths — checkpoint journals, the trust ledger, crash triage, corpus
    promotion, admission-cap files — each with its own (subtly different)
    crash story. [Store] implements the discipline once:

    - {b Framing.} One record per line: ["%08x %08x %s\n"] — payload byte
      length, IEEE CRC-32 of the payload, then the compact JSON payload.
      A torn line, a flipped bit, or two lines merged by a lost newline
      all fail the frame check and are {e skipped and counted}, never
      raised and never silently decoded.
    - {b Durability.} {!append} writes the whole frame with raw
      [Unix.write] and [fsync]s before returning, under a mutex — a
      record is durable before the caller may treat the run it describes
      as completed. Detected write failures roll the file back to the
      pre-append length; fsync failures leave the bytes but report the
      record as not journaled (a resume re-runs it; replay dedup absorbs
      the possible duplicate).
    - {b Atomic replace.} {!write_atomic} and {!rewrite} build the new
      content in a sibling temp file, fsync it, verify it by read-back,
      and [rename] over the target — a crash at any point leaves either
      the old file or the new one, plus at worst an ignorable [*.tmp].
    - {b Total reads.} {!read} never raises on any byte string. Lines
      written by an older revision (bare JSON objects, no header) still
      load and are counted as [legacy]; a bare line that is not a JSON
      object is corruption — a torn frame header can scan as a JSON
      scalar, and must not come back as a phantom record.

    Every write, fsync and rename first consults {!Diskchaos}, so the
    whole crash-recovery story is drilled by seeded fault injection (the
    D1 gate) rather than asserted. *)

type t
(** An open store handle (one writer; appends are mutex-serialised). *)

val open_ : ?truncate:bool -> string -> t
(** Open [path] for appending, creating it if needed; [~truncate:true]
    discards existing contents. Opening for append {e seals} a torn tail:
    if the file does not end in a newline (a previous writer died
    mid-record) a bare ['\n'] is appended first, so the corrupt tail is
    isolated to its own line and the next record cannot merge into it. *)

val path : t -> string

val append : t -> Netcore.Json.t -> bool
(** Frame, write and fsync one record. [true] when the record is durably
    on disk; [false] when an injected fault prevented that (the caller
    must not count the record as journaled — on the fault-free path the
    result is always [true]). Thread-safe.
    @raise Diskchaos.Crashed under an injected crash schedule.
    @raise Invalid_argument after {!close}. *)

val close : t -> unit
(** Idempotent. *)

type read_stats = {
  lines : int;  (** Non-blank lines seen. *)
  ok : int;  (** Well-framed, CRC-verified records. *)
  corrupt : int;  (** Lines that failed the frame/CRC/JSON check. *)
  legacy : int;  (** Pre-framing bare-JSON lines, decoded and kept. *)
}

val read : string -> Netcore.Json.t list * read_stats
(** Decode every surviving record in file order ([legacy] lines
    included). Total: any byte string yields a result — corruption is
    counted, never raised. A missing file is an empty store. *)

val corrupt_seen : unit -> int
(** Process-wide count of corrupt records skipped by {!read} (the
    {!Stats}-idiom counter the bench and CLI report). *)

val frame : string -> string
(** The framed line (newline included) for a payload — exposed so tests
    and the corruption gate can build and mutate wire bytes directly. *)

val decode_line :
  string -> [ `Ok of Netcore.Json.t | `Legacy of Netcore.Json.t | `Corrupt | `Blank ]
(** Classify one line (no trailing newline) exactly as {!read} does. *)

val rewrite : string -> Netcore.Json.t list -> bool
(** Atomically replace [path]'s contents with the given records, framed —
    the compaction primitive. [false] when an injected fault aborted the
    replacement; the original file is then untouched.
    @raise Diskchaos.Crashed under an injected crash schedule. *)

val write_atomic : string -> string -> bool
(** Atomically replace [path] with raw (unframed) [content] — for
    artifacts that are not record streams, e.g. promoted corpus seeds.
    Write to [path ^ ".tmp"], fsync, verify by read-back, rename. [false]
    on an injected failure (target untouched).
    @raise Diskchaos.Crashed under an injected crash schedule. *)
