(** Seeded, deterministic disk-fault injection — the {!Chaos} discipline
    applied to the filesystem instead of the verifiers.

    A configuration is a set of per-I/O fault rates plus a seed. Once
    {!install}ed it is consulted by {!Store} at every write, fsync and
    rename; each decision is drawn from a splitmix64 stream keyed on
    [(seed, salt, path)] — so a faulty run is exactly reproducible from
    its configuration, and two stores (or the write vs. fsync streams of
    one store) never share a stream. A process-wide operation counter
    drives crash-after-N schedules: the bench gate replays the same
    scripted run once per write point, killing it at each in turn.

    Fault model, per operation:
    - {b short write}: only a prefix of the buffer is written and the
      caller {e sees the failure} — a careful store rolls the file back
      and reports the record as not journaled.
    - {b torn write}: only a prefix is written but the kernel {e claims
      success} — undetectable at write time; this is what the CRC frame
      exists to catch at replay.
    - {b EIO / ENOSPC}: the write fails outright with an I/O or
      disk-full error.
    - {b fsync failure}: the bytes may be in the page cache but the
      durability barrier fails; the record must not be counted as
      journaled (a later resume re-runs it — replay dedup makes the
      possible duplicate line harmless).
    - {b crash}: after the configured number of counted operations the
      process "dies" — {!Crashed} is raised through the store, a write
      in progress is torn at a drawn offset, and the CLI exits like a
      killed process would.

    With every rate 0 and no crash schedule, an installed configuration
    only counts operations (how the gate measures a run's write-point
    count); with nothing installed the fast path returns [Write_all]
    without counting. *)

type config = {
  seed : int;
  short_rate : float;  (** Per-write probability of a detected short write. *)
  torn_rate : float;  (** Per-write probability of a silent torn write. *)
  io_error_rate : float;  (** Per-write probability of [EIO]. *)
  enospc_rate : float;  (** Per-write probability of [ENOSPC]. *)
  fsync_fail_rate : float;  (** Per-fsync probability of a failed barrier. *)
  crash_after : int option;
      (** [Some n]: the first [n] counted operations succeed (modulo the
          rates above); the next one crashes the process. *)
}

exception Crashed of string
(** The simulated process death, carrying the operation that "killed" us.
    Never caught inside the store — it must propagate like a real crash
    (the CLI maps it to exit code 3, the kill/resume convention). *)

val none : config
(** All rates 0, no crash schedule — never installed, never consulted. *)

val make :
  ?short_rate:float ->
  ?torn_rate:float ->
  ?io_error_rate:float ->
  ?enospc_rate:float ->
  ?fsync_fail_rate:float ->
  ?crash_after:int ->
  seed:int ->
  unit ->
  config
(** Rates default to 0 and are clamped to [0, 1]; [crash_after] is clamped
    to [>= 0] ([Some 0] crashes the very first operation). *)

val is_none : config -> bool
(** Every rate is 0 and there is no crash schedule. *)

val describe : config -> string
(** E.g. ["torn 0.30, fsync-fail 0.05 (seed 7)"]; ["no disk faults"] for
    {!none}. *)

val install : config -> unit
(** Arm the configuration process-wide: resets the operation counter, the
    fault counters and every per-path stream, so two identical runs under
    the same configuration draw identical fates. Installing {!none} is
    allowed and useful — it counts operations without injecting. *)

val uninstall : unit -> unit
(** Disarm. Fault counters survive so a post-run report can still read
    {!stats}; the next {!install} resets them. *)

val installed : unit -> bool

type write_fate =
  | Write_all  (** The write succeeds in full. *)
  | Write_short of int  (** Only this many bytes land; caller sees failure. *)
  | Write_torn of int  (** Only this many bytes land; caller sees success. *)
  | Write_error of Unix.error  (** [EIO] or [ENOSPC]; nothing lands. *)
  | Write_crash of int  (** This many bytes land, then raise {!Crashed}. *)

type fsync_fate = Fsync_ok | Fsync_error | Fsync_crash

val write_fate : path:string -> len:int -> write_fate
(** Draw the fate of an [len]-byte write to [path]. Counts one operation
    when a configuration is installed; [Write_all] (uncounted) otherwise.
    Partial-write offsets are drawn uniform in [0, len). *)

val fsync_fate : path:string -> fsync_fate
(** Draw the fate of a durability barrier on [path]. *)

val rename_fate : path:string -> [ `Proceed | `Crash ]
(** Draw the fate of an atomic rename {e onto} [path]. [`Crash] strikes
    before the rename happens — the interesting half of the window, since
    a crash after an atomic rename is indistinguishable from a clean
    finish. *)

type stats = {
  ops : int;  (** Counted write/fsync/rename points since {!install}. *)
  shorts : int;
  torn : int;
  io_errors : int;
  enospc : int;
  fsync_failures : int;
  crashes : int;
}

val zero : stats
val stats : unit -> stats
(** Injected-fault tallies since the last {!install}. *)
