(* Table-driven IEEE CRC-32 (polynomial 0xEDB88320, reflected). Fits in
   OCaml's native int on 64-bit: every intermediate stays below 2^32. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update register s =
  let t = Lazy.force table in
  let crc = ref register in
  String.iter
    (fun ch -> crc := t.((!crc lxor Char.code ch) land 0xFF) lxor (!crc lsr 8))
    s;
  !crc

let digest s = update 0xFFFFFFFF s lxor 0xFFFFFFFF
