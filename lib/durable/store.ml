(* The single checksummed append-only store. Raw Unix file descriptors
   rather than out_channels: fault injection and rollback need to know
   exactly which bytes reached the file, and an out_channel's buffer
   would put a second, invisible tearing point between us and the disk. *)

type t = {
  path : string;
  fd : Unix.file_descr;
  m : Mutex.t;
  mutable closed : bool;
}

let frame payload =
  Printf.sprintf "%08x %08x %s\n" (String.length payload)
    (Crc32.digest payload) payload

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let write_exactly fd bytes off len =
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd bytes (off + !written) (len - !written)
  done

let corrupt_counter = ref 0
let counter_m = Mutex.create ()

let corrupt_seen () =
  Mutex.lock counter_m;
  let v = !corrupt_counter in
  Mutex.unlock counter_m;
  v

let note_corrupt n =
  if n > 0 then begin
    Mutex.lock counter_m;
    corrupt_counter := !corrupt_counter + n;
    Mutex.unlock counter_m
  end

let open_ ?(truncate = false) path =
  let flags =
    [ Unix.O_RDWR; Unix.O_CREAT; (if truncate then Unix.O_TRUNC else Unix.O_APPEND) ]
  in
  let fd = Unix.openfile path flags 0o644 in
  (* Seal a torn tail: a writer that died mid-record leaves a line with no
     newline, and an append landing right after it would merge both into
     one corrupt line — losing a good record to an old crash. One repair
     byte isolates the damage. (A plain metadata fix-up, not a journaled
     write: it is not routed through the fault layer, so recovery runs
     converge instead of re-tearing.) *)
  if not truncate then begin
    let size = (Unix.fstat fd).Unix.st_size in
    if size > 0 then begin
      ignore (Unix.lseek fd (-1) Unix.SEEK_END);
      let last = Bytes.create 1 in
      if Unix.read fd last 0 1 = 1 && Bytes.get last 0 <> '\n' then
        write_exactly fd (Bytes.of_string "\n") 0 1
    end
  end;
  { path; fd; m = Mutex.create (); closed = false }

let path t = t.path

let append t json =
  let payload = Netcore.Json.to_string json in
  let line = Bytes.of_string (frame payload) in
  let len = Bytes.length line in
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      if t.closed then invalid_arg "Store.append: store is closed";
      let offset = Unix.lseek t.fd 0 Unix.SEEK_END in
      (* A detected failure rolls the file back to the pre-append length:
         short writes and I/O errors must not leave a torn line behind
         when the caller is being told about them anyway. (Torn writes
         and crashes do leave one — that is their point.) *)
      let rollback () =
        try Unix.ftruncate t.fd offset with Unix.Unix_error _ -> ()
      in
      match Diskchaos.write_fate ~path:t.path ~len with
      | Diskchaos.Write_error _ -> false
      | Diskchaos.Write_short k ->
          if k > 0 then write_exactly t.fd line 0 k;
          rollback ();
          false
      | Diskchaos.Write_crash k ->
          if k > 0 then write_exactly t.fd line 0 k;
          raise (Diskchaos.Crashed ("write " ^ t.path))
      | (Diskchaos.Write_all | Diskchaos.Write_torn _) as fate ->
          (match fate with
          | Diskchaos.Write_torn k -> if k > 0 then write_exactly t.fd line 0 k
          | _ -> write_exactly t.fd line 0 len);
          (match Diskchaos.fsync_fate ~path:t.path with
          | Diskchaos.Fsync_crash ->
              raise (Diskchaos.Crashed ("fsync " ^ t.path))
          | Diskchaos.Fsync_error ->
              (* The barrier failed: the bytes may or may not be durable.
                 Keep them (rollback after a failed fsync is guesswork) but
                 report the record as not journaled; if it did survive, the
                 re-run's line is a duplicate that replay dedup absorbs. *)
              false
          | Diskchaos.Fsync_ok ->
              Unix.fsync t.fd;
              (* A torn write "succeeded" as far as this process can tell:
                 report true and let the CRC frame catch it at replay. *)
              true))

let close t =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Unix.close t.fd
      end)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type read_stats = { lines : int; ok : int; corrupt : int; legacy : int }

let is_hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false

let hex_field line off =
  let v = ref 0 in
  for i = off to off + 7 do
    v :=
      (!v * 16)
      +
      match line.[i] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | c -> Char.code c - Char.code 'a' + 10
  done;
  !v

(* A line is frame-shaped when the 18-byte header scans; a frame-shaped
   line that fails length/CRC/JSON is corrupt — it is never retried as
   bare JSON (a bare-JSON payload starts with a JSON token, not eight hex
   digits, so the two shapes cannot collide). *)
let frame_shaped line =
  String.length line >= 18
  && line.[8] = ' '
  && line.[17] = ' '
  &&
  let ok = ref true in
  for i = 0 to 7 do
    if not (is_hex line.[i] && is_hex line.[i + 9]) then ok := false
  done;
  !ok

let decode_line line =
  if String.trim line = "" then `Blank
  else if frame_shaped line then begin
    let len = hex_field line 0 in
    let crc = hex_field line 9 in
    let payload = String.sub line 18 (String.length line - 18) in
    if String.length payload <> len then `Corrupt
    else if Crc32.digest payload <> crc then `Corrupt
    else
      match Netcore.Json.of_string payload with
      | Ok j -> `Ok j
      | Error _ -> `Corrupt
  end
  else
    (* Every pre-framing surface wrote one JSON *object* per line, so the
       legacy fallback accepts nothing else: a truncated or mangled frame
       whose tail happens to scan as a bare JSON scalar (e.g. the leading
       "0000001" of a torn length field) must read as corruption, not as a
       phantom record. *)
    match Netcore.Json.of_string line with
    | Ok (Netcore.Json.Obj _ as j) -> `Legacy j
    | Ok _ | Error _ -> `Corrupt

let read path =
  if not (Sys.file_exists path) then
    ([], { lines = 0; ok = 0; corrupt = 0; legacy = 0 })
  else begin
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let records = ref [] in
    let stats = ref { lines = 0; ok = 0; corrupt = 0; legacy = 0 } in
    List.iter
      (fun line ->
        match decode_line line with
        | `Blank -> ()
        | `Ok j ->
            records := j :: !records;
            stats := { !stats with lines = !stats.lines + 1; ok = !stats.ok + 1 }
        | `Legacy j ->
            records := j :: !records;
            stats :=
              { !stats with lines = !stats.lines + 1; legacy = !stats.legacy + 1 }
        | `Corrupt ->
            stats :=
              {
                !stats with
                lines = !stats.lines + 1;
                corrupt = !stats.corrupt + 1;
              })
      (String.split_on_char '\n' text);
    note_corrupt !stats.corrupt;
    (List.rev !records, !stats)
  end

(* ------------------------------------------------------------------ *)
(* Atomic replacement                                                  *)
(* ------------------------------------------------------------------ *)

let read_back tmp =
  try
    let ic = open_in_bin tmp in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Some s
  with Sys_error _ -> None

let remove_noerr tmp = try Sys.remove tmp with Sys_error _ -> ()

(* Temp + fsync + read-back verify + rename. The read-back is what turns
   a silent torn write into a detected failure here: record streams have
   the CRC frame to catch tearing at replay, but a raw artifact (a
   promoted corpus seed) has no frame, so the writer itself must look. *)
let atomic_replace ~tmp ~path content =
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let bytes = Bytes.of_string content in
  let len = Bytes.length bytes in
  let write_ok =
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        match Diskchaos.write_fate ~path:tmp ~len with
        | Diskchaos.Write_error _ -> false
        | Diskchaos.Write_short k ->
            if k > 0 then write_exactly fd bytes 0 k;
            false
        | Diskchaos.Write_crash k ->
            if k > 0 then write_exactly fd bytes 0 k;
            raise (Diskchaos.Crashed ("write " ^ tmp))
        | (Diskchaos.Write_all | Diskchaos.Write_torn _) as fate -> (
            (match fate with
            | Diskchaos.Write_torn k -> if k > 0 then write_exactly fd bytes 0 k
            | _ -> write_exactly fd bytes 0 len);
            match Diskchaos.fsync_fate ~path:tmp with
            | Diskchaos.Fsync_crash -> raise (Diskchaos.Crashed ("fsync " ^ tmp))
            | Diskchaos.Fsync_error -> false
            | Diskchaos.Fsync_ok ->
                Unix.fsync fd;
                true))
  in
  if not write_ok then begin
    remove_noerr tmp;
    false
  end
  else if read_back tmp <> Some content then begin
    (* A torn write slipped past the claimed success: caught here, before
       the rename could install a truncated artifact. *)
    remove_noerr tmp;
    false
  end
  else
    match Diskchaos.rename_fate ~path with
    | `Crash -> raise (Diskchaos.Crashed ("rename " ^ tmp))
    | `Proceed ->
        Sys.rename tmp path;
        true

let rewrite path records =
  let content =
    String.concat ""
      (List.map (fun j -> frame (Netcore.Json.to_string j)) records)
  in
  atomic_replace ~tmp:(path ^ ".compact.tmp") ~path content

let write_atomic path content = atomic_replace ~tmp:(path ^ ".tmp") ~path content
