(** IEEE CRC-32 (the zlib/PNG polynomial), table-driven.

    The {!Store} frame integrity check. CRC-32 detects every single-bit
    and single-byte change and all burst errors up to 32 bits — exactly
    the torn-write and bit-flip corruption the disk-chaos layer injects —
    at a per-record cost that is noise next to the fsync that follows. *)

val digest : string -> int
(** CRC-32 of the whole string, in [0, 0xFFFFFFFF]. *)

val update : int -> string -> int
(** Fold more bytes into a running digest: [digest s = update (digest "") s]
    does {e not} hold (the pre/post conditioning is baked in); instead
    [update] takes and returns the {e unconditioned} register so callers
    can checksum streams chunk by chunk. [digest] is the one-shot form. *)
