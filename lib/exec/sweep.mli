(** Fan seeded runs across a {!Pool}.

    The paper's headline numbers are means over 10–30 seeded VPP runs, and
    every run is independent given its seed, so the sweep is embarrassingly
    parallel (the same observation Lightyear makes for per-router checks).
    [run_seeds] keeps the sequential semantics — results come back in seed
    order, and a deterministic run function yields bit-identical output
    with or without a pool. *)

val seeds : base:int -> n:int -> int list
(** [\[base; base + 1; ...; base + n - 1\]] — the seed convention used by
    the bench harness and {!Cosynth.Metrics}. *)

val run_seeds : ?pool:Pool.t -> seeds:int list -> (int -> 'a) -> 'a list
(** [run_seeds ~seeds f] maps [f] over [seeds], on [pool] when given and
    sequentially otherwise, returning results in seed order. *)

val timed : (unit -> 'a) -> 'a * float
(** Result and wall-clock seconds. *)
