(** Fan seeded runs across a {!Pool}, optionally checkpointed to a journal.

    The paper's headline numbers are means over 10–30 seeded VPP runs, and
    every run is independent given its seed, so the sweep is embarrassingly
    parallel (the same observation Lightyear makes for per-router checks).
    [run_seeds] keeps the sequential semantics — results come back in seed
    order, and a deterministic run function yields bit-identical output
    with or without a pool, with or without a journal. *)

val seeds : base:int -> n:int -> int list
(** [\[base; base + 1; ...; base + n - 1\]] — the seed convention used by
    the bench harness and {!Cosynth.Metrics}. *)

(** {2 Checkpoint journal}

    A sweep given a journal records each completed seed as one fsync'd
    line ({!Checkpoint}); a sweep resumed from that journal decodes the
    recorded seeds instead of re-running them and reproduces the identical
    final result list from the mix of journaled and fresh runs. *)

type 'a journal

val journal :
  ?resume:bool ->
  path:string ->
  encode:('a -> Netcore.Json.t) ->
  decode:(Netcore.Json.t -> 'a option) ->
  unit ->
  'a journal
(** Open a journal at [path]. Without [~resume:true] any existing file is
    truncated (a fresh sweep); with it, previously recorded seeds are
    loaded for replay and new completions are appended. Replay is
    {e last-write-wins}: when a seed appears on several lines (it was
    re-run after a stale-codec fallback or a mid-write crash) only the
    latest record is consulted, so a re-run converges in one resume
    instead of re-running the seed forever. [decode] returning [None]
    (stale codec, hand-edited file) falls back to re-running that seed,
    whose fresh record then supersedes the stale line. *)

val journaled_seeds : 'a journal -> int list
(** Seeds already recorded, in first-completion order. *)

val journal_close : 'a journal -> unit

val run_seeds :
  ?pool:Pool.t -> ?journal:'a journal -> seeds:int list -> (int -> 'a) -> 'a list
(** [run_seeds ~seeds f] maps [f] over [seeds], on [pool] when given and
    sequentially otherwise, returning results in seed order. With
    [?journal], seeds present in the journal are decoded instead of run,
    and every fresh completion is durably recorded before the sweep
    returns. *)

(** {2 Certificate-aware budgeted scheduling}

    A fixed-allocation sweep wastes the budget a hopeless seed burns to
    exhaustion: a run that stalls out (its convergence certificate says no
    further prompt will help) should surrender what it did not spend to
    the seeds still waiting. [run_seeds_budgeted] implements that:
    fair-share allocation — remaining budget over remaining seeds, floor
    1 — recomputed after every run, so an early abandonment automatically
    raises every later seed's allowance. *)

type budget_outcome = {
  spent : int;  (** Prompts the run actually consumed. *)
  abandoned : bool;
      (** The run gave up early (e.g. a [Stalled_out] certificate) — its
          unspent allocation counts as reclaimed. *)
}

type budget_stats = {
  budget : int;  (** The total handed to the scheduler. *)
  spent : int;  (** Sum of per-run spend. *)
  abandoned_early : int;  (** Runs that reported [abandoned]. *)
  reclaimed : int;
      (** Allocation the abandoned runs returned to the pool — budget that
          a fixed per-seed split would have burned to exhaustion. *)
}

val run_seeds_budgeted :
  budget:int ->
  seeds:int list ->
  (seed:int -> max_prompts:int -> 'a * budget_outcome) ->
  'a list * budget_stats
(** Run [f] over [seeds] in order (sequentially — each allocation depends
    on every earlier run's spend), passing each run its fair-share prompt
    allocation. [f] reports what it spent and whether it abandoned early;
    over-reports are clamped to the allocation. Results in seed order. *)

val timed : (unit -> 'a) -> 'a * float
(** Result and wall-clock seconds. *)
