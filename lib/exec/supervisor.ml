type 'b outcome =
  | Completed of 'b
  | Abandoned of { attempts : int; reason : string }

let completed = function Completed v -> Some v | Abandoned _ -> None
let abandoned = function Completed _ -> false | Abandoned _ -> true

type policy = { max_attempts : int }

let default_policy = { max_attempts = 4 }

type loss = At_dispatch | In_flight
type plan = index:int -> attempt:int -> loss option

(* ------------------------------------------------------------------ *)
(* Process-wide counters (same discipline as Resilience.Stats: global   *)
(* atomics that aggregate across every supervised map and every worker  *)
(* domain; they feed the bench report and never influence control flow) *)
(* ------------------------------------------------------------------ *)

type counters = {
  dispatched : int;
  completed : int;
  losses : int;
  requeues : int;
  task_exceptions : int;
  abandoned : int;
}

let zero =
  {
    dispatched = 0;
    completed = 0;
    losses = 0;
    requeues = 0;
    task_exceptions = 0;
    abandoned = 0;
  }

let c_dispatched = Atomic.make 0
let c_completed = Atomic.make 0
let c_losses = Atomic.make 0
let c_requeues = Atomic.make 0
let c_exceptions = Atomic.make 0
let c_abandoned = Atomic.make 0

let stats () =
  {
    dispatched = Atomic.get c_dispatched;
    completed = Atomic.get c_completed;
    losses = Atomic.get c_losses;
    requeues = Atomic.get c_requeues;
    task_exceptions = Atomic.get c_exceptions;
    abandoned = Atomic.get c_abandoned;
  }

let diff a b =
  {
    dispatched = b.dispatched - a.dispatched;
    completed = b.completed - a.completed;
    losses = b.losses - a.losses;
    requeues = b.requeues - a.requeues;
    task_exceptions = b.task_exceptions - a.task_exceptions;
    abandoned = b.abandoned - a.abandoned;
  }

let reset () =
  List.iter
    (fun c -> Atomic.set c 0)
    [ c_dispatched; c_completed; c_losses; c_requeues; c_exceptions; c_abandoned ]

(* ------------------------------------------------------------------ *)
(* The supervision loop                                                 *)
(* ------------------------------------------------------------------ *)

(* One task under the exception/chaos boundary. Attempts are numbered from
   1. A drawn worker-domain loss burns the attempt: [At_dispatch] losses
   die before the task body runs, [In_flight] losses run the body to
   completion (side effects and all) and lose only the result with the
   domain. Either way — when a pool is present — the loss actually kills
   the worker via [Pool.lose_current_worker]; the retry is what the
   replacement domain picks up. A task exception burns the attempt too.
   The task is re-dispatched until the budget is spent, then recorded as
   [Abandoned] instead of re-raised. *)
let run_one ?pool ?plan ?(policy = default_policy) ~index f =
  let budget = Stdlib.max 1 policy.max_attempts in
  let rec go attempt =
    Atomic.incr c_dispatched;
    let lost = match plan with Some p -> p ~index ~attempt | None -> None in
    match lost with
    | Some mode ->
      (* An in-flight loss means the work happened but the result never
         made it back: run the body for its side effects and discard the
         value — and a body that raises changes nothing, the domain was
         dying anyway. *)
      (if mode = In_flight then try ignore (f ()) with _ -> ());
      Atomic.incr c_losses;
      (match pool with Some p -> Pool.lose_current_worker p | None -> ());
      if attempt >= budget then begin
        Atomic.incr c_abandoned;
        Abandoned
          {
            attempts = attempt;
            reason =
              Printf.sprintf "worker domain lost on every dispatch (%d attempts)"
                attempt;
          }
      end
      else begin
        Atomic.incr c_requeues;
        go (attempt + 1)
      end
    | None -> (
      match f () with
      | v ->
          Atomic.incr c_completed;
          Completed v
      | exception e ->
          Atomic.incr c_exceptions;
          if attempt >= budget then begin
            Atomic.incr c_abandoned;
            Abandoned { attempts = attempt; reason = Printexc.to_string e }
          end
          else begin
            Atomic.incr c_requeues;
            go (attempt + 1)
          end)
  in
  go 1

let map ?pool ?plan ?policy ?index_of f xs =
  let task i x =
    let index = match index_of with Some g -> g x | None -> i in
    run_one ?pool ?plan ?policy ~index (fun () -> f x)
  in
  let indexed = List.mapi (fun i x -> (i, x)) xs in
  match pool with
  | Some p -> Pool.map p (fun (i, x) -> task i x) indexed
  | None -> Pool.map_seq (fun (i, x) -> task i x) indexed
