(** A thread-safe memo cache for {!Batfish.Parse_check.check}.

    The VPP loops re-verify the current draft after every prompt, and a
    stalled prompt (the simulated LLM "usually does nothing when asked to
    fix the error") leaves the draft byte-identical — so the same text is
    parsed and linted again and again. Parsing is pure, so the result can
    be memoized on [(dialect, text)]. The cache is shared across domains
    and guarded by a mutex; parse work happens outside the lock (a
    concurrent duplicate parse is harmless — both compute the same
    value). *)

val check :
  Batfish.Parse_check.dialect ->
  string ->
  Policy.Config_ir.t * Netcore.Diag.t list
(** Same contract as {!Batfish.Parse_check.check}, memoized. *)

val check_result :
  Batfish.Parse_check.dialect ->
  string ->
  parse:(unit -> (Policy.Config_ir.t * Netcore.Diag.t list, 'e) result) ->
  (Policy.Config_ir.t * Netcore.Diag.t list, 'e) result
(** The failure-aware entry the resilience layer uses: consult the cache;
    on a miss run [parse]. The table is {e success-only} — only [Ok]
    results are cached, and an [Error] (a crashed, flaky or truncated
    verifier call) bypasses the table untouched, so a transient fault can
    never be memoized as truth. A bypassed failure still counts as a miss
    in {!stats}. *)

type stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;
      (** Entries dropped by the bounded cap. When the table reaches its
          cap, the {e oldest eighth} of the entries is evicted (FIFO batch)
          rather than the whole table — a long-lived warm process (a
          multi-day sweep, the [cosynth serve] daemon) keeps most of its
          working set hot across the boundary instead of restarting from a
          0% hit rate. *)
}

val stats : unit -> stats

val hit_rate : stats -> float
(** [hits / (hits + misses)]; 0 when the cache is untouched. *)

val reset : unit -> unit
(** Drop every entry and zero the counters (used between bench sections so
    per-experiment hit rates are meaningful). *)

val reset_stats : unit -> unit
(** Zero the hit/miss counters but keep the table — per-phase hit rates
    without sacrificing the warm cache (dropping it would also change the
    phase's own hit rate). *)

type scope
(** A counter snapshot; the non-destructive alternative to {!reset_stats}
    when phases can overlap (a bench section while a sweep is in flight). *)

val scope : unit -> scope

val scope_stats : scope -> stats
(** Hits/misses accumulated since {!scope} (entries is the current table
    size). *)
