(** Length-prefixed JSON framing and a Unix-domain-socket server loop — the
    transport under [cosynth serve].

    The batch bench pays the whole warm-up bill (domain spawn, memo fill,
    verifier state) on every invocation; a persistent daemon pays it once
    and amortizes it across every job a client submits. This module is
    deliberately policy-free: it knows how to frame JSON values over a
    local socket, how to run one handler thread per client, and how to
    wind the loop down (drain or stop) without stranding a peer — what a
    request {e means} (synthesis, admission, deadlines) is the caller's
    handler, which keeps the exec library independent of the driver; the
    hardened policy layer is {!Cosynth.Service}.

    Framing: each message is a 4-byte big-endian byte length followed by
    exactly that many bytes of compact JSON. Length-prefixing (rather than
    newline-delimiting) lets request and response bodies contain anything —
    embedded newlines in config text included. *)

val max_frame_bytes : int
(** Hard cap (16 MiB) on a single frame; a peer announcing more is treated
    as malformed and its connection dropped. *)

val write_frame : Unix.file_descr -> Netcore.Json.t -> unit
(** Serialize compactly and write header + payload (handles short
    writes). *)

val read_frame : Unix.file_descr -> Netcore.Json.t option
(** [None] on a clean end-of-stream at a frame boundary.
    @raise Failure on a truncated frame, an oversized announced length, or
    a payload that is not valid JSON. *)

(** What the handler wants done with its reply. *)
type reply =
  | Reply of Netcore.Json.t  (** Send and keep serving. *)
  | Drain of Netcore.Json.t
      (** Send, then begin a graceful drain: stop accepting, answer
          further requests with the reject frame for the grace window,
          then close every connection (the [drain] job). *)
  | Final of Netcore.Json.t
      (** Send, then shut the whole server down (the [shutdown] job). *)

val default_drain_reject : Netcore.Json.t -> Netcore.Json.t
(** [{"ok": false, "error": "server draining", "draining": true}]. *)

val serve :
  socket_path:string ->
  handle:(client:int -> Netcore.Json.t -> reply) ->
  ?backlog:int ->
  ?io_timeout_ms:int ->
  ?drain_grace_ms:int ->
  ?drain_reject:(Netcore.Json.t -> Netcore.Json.t) ->
  ?handle_signals:bool ->
  ?on_drain:(unit -> unit) ->
  ?on_ready:(unit -> unit) ->
  ?on_reload:(unit -> unit) ->
  unit ->
  bool
(** Bind [socket_path] (unlinking any stale socket file first), listen, and
    accept until a handler returns [Final] or a drain begins. Every
    accepted connection gets its own thread; requests {e within} one
    connection are handled sequentially in arrival order, while distinct
    clients proceed concurrently — so the handler must be thread-safe (the
    warm state it shares, [Exec.Memo] and [Exec.Pool], already is). A
    handler exception is answered with an [{"ok": false, "error": ...}]
    frame rather than killing the connection; a framing error drops only
    that client.

    Robustness knobs:
    {ul
    {- [io_timeout_ms] (default 30 000; [0] disables) arms [SO_RCVTIMEO] /
       [SO_SNDTIMEO] on every accepted socket, so a peer stalling mid-frame
       or refusing to drain our writes drops its own connection instead of
       pinning a handler thread.}
    {- A drain (a [Drain] reply, or SIGTERM/SIGINT with
       [handle_signals:true]) stops accepting at once; requests arriving on
       live connections during the next [drain_grace_ms] (default 1 000)
       are answered with [drain_reject] applied to the request (default
       {!default_drain_reject}), in-flight handlers finish and their
       replies are flushed, and then every connection is closed.
       [on_drain] runs once when the drain begins.}
    {- [handle_signals] installs SIGTERM/SIGINT handlers for the server's
       lifetime (restored before returning); each signal triggers the same
       drain path, so a supervisor's TERM is indistinguishable from a
       [drain] job.}
    {- [on_reload] installs a SIGHUP handler for the server's lifetime
       (restored before returning). The signal handler only flips an atomic
       flag; the callback runs on the accept loop (the signal's EINTR wakes
       it) or on a client thread's next 50 ms select slice — never inside
       the signal handler, so it may freely take locks (e.g.
       [Resilience.Admission.set_caps]). It must therefore be thread-safe.
       Exceptions it raises are swallowed: a bad reload must not kill the
       daemon.}}

    [on_ready] runs once the socket is listening (the CLI prints its
    "listening" line there; tests use it to know when to connect). Returns
    after every client thread has been joined and the socket file is
    unlinked; the result is [true] when the server wound down via a drain
    and [false] on the [Final] (shutdown) path. *)

(** {2 Client side} *)

exception Server_overloaded of { retry_after_ms : int }
(** Raised by {!request} on a shed frame ([{"shed": true, ...}]): the
    daemon refused the job at admission. Distinct from [Failure] so
    clients and tests can catch it and retry deliberately after
    [retry_after_ms]. *)

val connect :
  ?total_budget_ms:int -> socket_path:string -> unit -> Unix.file_descr
(** Connect to the daemon, retrying with exponential backoff (1 ms
    doubling to a 200 ms cap) while the socket file does not exist yet or
    refuses connections — the daemon may still be binding, or a supervisor
    may be respawning it. [total_budget_ms] (default 1 000) bounds the
    whole attempt in wall-clock time.
    @raise Failure when the budget is exhausted. *)

val request : Unix.file_descr -> Netcore.Json.t -> Netcore.Json.t
(** One round trip: {!write_frame} then {!read_frame}.
    @raise Server_overloaded on a shed frame.
    @raise Failure if the server closed the stream instead of replying. *)

val with_connection :
  ?total_budget_ms:int -> socket_path:string -> (Unix.file_descr -> 'a) -> 'a
(** {!connect}, run, close (also on exception). *)
