(** Length-prefixed JSON framing and a Unix-domain-socket server loop — the
    transport under [cosynth serve].

    The batch bench pays the whole warm-up bill (domain spawn, memo fill,
    verifier state) on every invocation; a persistent daemon pays it once
    and amortizes it across every job a client submits. This module is
    deliberately policy-free: it knows how to frame JSON values over a
    local socket and how to run one handler thread per client — what a
    request {e means} (synthesis, translation, repair) is the caller's
    handler, which keeps the exec library independent of the driver.

    Framing: each message is a 4-byte big-endian byte length followed by
    exactly that many bytes of compact JSON. Length-prefixing (rather than
    newline-delimiting) lets request and response bodies contain anything —
    embedded newlines in config text included. *)

val max_frame_bytes : int
(** Hard cap (16 MiB) on a single frame; a peer announcing more is treated
    as malformed and its connection dropped. *)

val write_frame : Unix.file_descr -> Netcore.Json.t -> unit
(** Serialize compactly and write header + payload (handles short
    writes). *)

val read_frame : Unix.file_descr -> Netcore.Json.t option
(** [None] on a clean end-of-stream at a frame boundary.
    @raise Failure on a truncated frame, an oversized announced length, or
    a payload that is not valid JSON. *)

(** What the handler wants done with its reply. *)
type reply =
  | Reply of Netcore.Json.t  (** Send and keep serving. *)
  | Final of Netcore.Json.t
      (** Send, then shut the whole server down (the [shutdown] job). *)

val serve :
  socket_path:string ->
  handle:(client:int -> Netcore.Json.t -> reply) ->
  ?backlog:int ->
  ?on_ready:(unit -> unit) ->
  unit ->
  unit
(** Bind [socket_path] (unlinking any stale socket file first), listen, and
    accept until a handler returns [Final]. Every accepted connection gets
    its own thread; requests {e within} one connection are handled
    sequentially in arrival order, while distinct clients proceed
    concurrently — so the handler must be thread-safe (the warm state it
    shares, [Exec.Memo] and [Exec.Pool], already is). A handler exception
    is answered with an [{"ok": false, "error": ...}] frame rather than
    killing the connection; a framing error drops only that client.
    [on_ready] runs once the socket is listening (the CLI prints its
    "listening" line there; tests use it to know when to connect). Returns
    after the [Final] reply is flushed, every client thread has been
    joined, and the socket file is unlinked. *)

(** {2 Client side} *)

val connect : ?retries:int -> socket_path:string -> unit -> Unix.file_descr
(** Connect to the daemon. [retries] (default 50) polls at 20 ms intervals
    while the socket file does not exist yet or refuses connections — the
    daemon may still be starting.
    @raise Failure when the budget is exhausted. *)

val request : Unix.file_descr -> Netcore.Json.t -> Netcore.Json.t
(** One round trip: {!write_frame} then {!read_frame}.
    @raise Failure if the server closed the stream instead of replying. *)

val with_connection :
  ?retries:int -> socket_path:string -> (Unix.file_descr -> 'a) -> 'a
(** {!connect}, run, close (also on exception). *)
