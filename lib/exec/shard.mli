(** Shard a seeded sweep across OS processes and merge the journals.

    {!Pool} parallelizes within one process; a shard coordinator goes one
    level up: it partitions a seed range into contiguous slices, spawns one
    worker {e process} per slice, and lets each worker append completed
    seeds to its own {!Checkpoint} journal. The journal format is
    process-neutral JSON lines, so the coordinator's merge is pure file
    work: load every shard journal (last-write-wins, like any resume),
    check the union covers every expected seed, and rewrite the records in
    seed order — which makes the merged journal byte-identical to the one
    a sequential single-process sweep would have written, the property the
    S1 bench gate pins.

    Fault story: a worker that exits nonzero (crash, kill, simulated
    [--halt-after]) has already fsync'd one line per completed seed, so the
    coordinator re-spawns it with its {e resume} command line and only the
    unjournaled seeds are re-run — the same at-least-once discipline as
    {!Supervisor}, at process granularity.

    The module is CLI-agnostic: a worker is just an argv (plus the resume
    argv and the journal path); the [cosynth shard] subcommand builds argvs
    that re-invoke [cosynth chaos] on a seed slice. *)

val slices : seeds:int list -> shards:int -> int list list
(** Partition [seeds] into exactly [shards] contiguous slices, in order,
    sizes differing by at most one (later slices may be empty when
    [shards > length seeds]).
    @raise Invalid_argument when [shards < 1]. *)

type worker = {
  argv : string array;  (** Fresh launch; must write [journal]. *)
  resume_argv : string array;
      (** Re-launch after a death; must skip the seeds already in
          [journal] (e.g. the same command plus [--resume]). *)
  journal : string;  (** The shard's own journal path. *)
  seeds : int list;  (** The slice this worker owns. *)
}

type shard_report = {
  shard : int;
  owned : int;  (** Seeds in the slice. *)
  launches : int;  (** 1 + re-spawns. *)
  recovered : int list;
      (** Seeds that were unjournaled at a worker death and re-run by a
          re-spawn (empty for a clean shard). *)
  abandoned_early : int;
      (** Merged records of this shard matching [run]'s [?abandoned]
          predicate — seeds whose run gave up early (stalled-out
          certificate, supervisor abandonment) and handed budget back. *)
}

type report = {
  shards : shard_report list;
  merged : (int * Netcore.Json.t) list;  (** One record per seed, seed order. *)
}

val run :
  ?max_respawns:int ->
  ?abandoned:(Netcore.Json.t -> bool) ->
  workers:worker list ->
  unit ->
  (report, string) result
(** Launch every worker, wait for all of them, re-spawn dead shards (at
    most [max_respawns] times each, default 2) with their resume argv, then
    merge. [Error] when a shard still exits nonzero with its budget spent,
    or when the merged journals do not cover every owned seed. Worker
    stdout is discarded (the journal is the data channel); stderr is
    inherited so journal notices and crash reports stay visible.
    [?abandoned] classifies a merged journal record as an early-abandoned
    run for the per-shard [abandoned_early] counter (default: none are) —
    the module stays CLI-agnostic by not knowing the record codec. *)

val write_merged : path:string -> (int * Netcore.Json.t) list -> unit
(** Write merged records as a fresh journal at [path] — the same line
    format the workers wrote, so [cmp] against a sequential run's journal
    is a meaningful byte-identity check. *)
