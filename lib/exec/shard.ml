let slices ~seeds ~shards =
  if shards < 1 then invalid_arg "Shard.slices: shards must be >= 1";
  let n = List.length seeds in
  let base = n / shards and extra = n mod shards in
  (* Contiguous slices, sizes differing by at most one: slice i gets
     [base + 1] seeds while [i < extra]. Contiguity is what lets a worker
     be launched as "--seed <first> --runs <len>". *)
  let rec take k xs =
    if k = 0 then ([], xs)
    else
      match xs with
      | [] -> ([], [])
      | x :: rest ->
          let hd, tl = take (k - 1) rest in
          (x :: hd, tl)
  in
  let rec go i xs =
    if i = shards then []
    else
      let k = base + if i < extra then 1 else 0 in
      let slice, rest = take k xs in
      slice :: go (i + 1) rest
  in
  go 0 seeds

type worker = {
  argv : string array;
  resume_argv : string array;
  journal : string;
  seeds : int list;
}

type shard_report = {
  shard : int;
  owned : int;
  launches : int;
  recovered : int list;
  abandoned_early : int;
}

type report = {
  shards : shard_report list;
  merged : (int * Netcore.Json.t) list;
}

(* Worker stdout is discarded: the journal is the data channel, and letting
   N workers interleave progress lines into the coordinator's stdout would
   destroy the byte-identity the merge is meant to guarantee. *)
let spawn argv =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close devnull)
    (fun () -> Unix.create_process argv.(0) argv Unix.stdin devnull Unix.stderr)

let status_to_string = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n

let journaled_seeds w =
  List.filter_map
    (fun (seed, _) -> if List.mem seed w.seeds then Some seed else None)
    (Checkpoint.load w.journal)

let run ?(max_respawns = 2) ?(abandoned = fun _ -> false) ~workers () =
  let workers = Array.of_list workers in
  let launches = Array.make (Array.length workers) 0 in
  let recovered = Array.make (Array.length workers) [] in
  (* One launch round: spawn every pending shard, wait for all of them,
     return the ones that died. Waiting for the whole round before
     re-spawning keeps the process count bounded by the shard count. *)
  let launch_round pending =
    let pids =
      List.map
        (fun (i, argv) ->
          launches.(i) <- launches.(i) + 1;
          (i, spawn argv))
        pending
    in
    List.filter_map
      (fun (i, pid) ->
        let _, st = Unix.waitpid [] pid in
        match st with Unix.WEXITED 0 -> None | st -> Some (i, st))
      pids
  in
  let rec rounds attempt pending =
    match launch_round pending with
    | [] -> Ok ()
    | failed when attempt >= max_respawns ->
        Error
          (String.concat "; "
             (List.map
                (fun (i, st) ->
                  Printf.sprintf "shard %d still failing after %d launch(es): %s"
                    i launches.(i) (status_to_string st))
                failed))
    | failed ->
        let respawn =
          List.map
            (fun (i, st) ->
              let w = workers.(i) in
              let done_ = journaled_seeds w in
              let missing =
                List.filter (fun s -> not (List.mem s done_)) w.seeds
              in
              Printf.eprintf
                "shard %d: worker %s with %d/%d seed(s) journaled; re-running %d\n%!"
                i (status_to_string st) (List.length done_) (List.length w.seeds)
                (List.length missing);
              recovered.(i) <-
                List.sort_uniq compare (recovered.(i) @ missing);
              (i, w.resume_argv))
            failed
        in
        rounds (attempt + 1) respawn
  in
  let fresh =
    Array.to_list (Array.mapi (fun i w -> (i, w.argv)) workers)
  in
  match rounds 0 fresh with
  | Error e -> Error e
  | Ok () -> (
      (* Merge: per-shard last-write-wins load, restricted to the seeds the
         shard owns (a record for a foreign seed would be a worker bug and
         must not shadow the owner's result), then a global seed-order
         sort. *)
      let merged =
        Array.to_list workers
        |> List.concat_map (fun w ->
               List.filter
                 (fun (seed, _) -> List.mem seed w.seeds)
                 (Checkpoint.load w.journal))
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let expected =
        List.sort compare (List.concat_map (fun w -> w.seeds) (Array.to_list workers))
      in
      let missing =
        List.filter (fun s -> not (List.mem_assoc s merged)) expected
      in
      match missing with
      | _ :: _ ->
          Error
            (Printf.sprintf "merged journals are missing %d seed(s): %s"
               (List.length missing)
               (String.concat ", " (List.map string_of_int missing)))
      | [] ->
          let shards =
            Array.to_list
              (Array.mapi
                 (fun i w ->
                   (* Counted over the merged (last-write-wins) records the
                      shard owns, so a seed re-run by a respawn is judged
                      by its surviving record only. *)
                   let abandoned_early =
                     List.length
                       (List.filter
                          (fun (seed, payload) ->
                            List.mem seed w.seeds && abandoned payload)
                          merged)
                   in
                   {
                     shard = i;
                     owned = List.length w.seeds;
                     launches = launches.(i);
                     recovered = recovered.(i);
                     abandoned_early;
                   })
                 workers)
          in
          Ok { shards; merged })

let write_merged ~path records =
  let t = Checkpoint.open_ ~truncate:true path in
  Fun.protect
    ~finally:(fun () -> Checkpoint.close t)
    (fun () ->
      List.iter (fun (seed, payload) -> Checkpoint.record t ~seed payload) records)
