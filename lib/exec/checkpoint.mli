(** An fsync'd append-only journal of completed seeded runs, on the one
    checksummed {!Durable.Store}.

    One CRC-framed line per completed run — payload
    [{"seed": N, "summary": <json>}] — written and [fsync]'d under a mutex
    before {!record} returns, so concurrent writers never interleave
    within a line and a crash at any instant leaves at most one torn
    trailing line. {!load} tolerates exactly that and worse: torn,
    bit-flipped or truncated lines fail the store's CRC check and are
    skipped (and counted — {!Durable.Store.corrupt_seen}), wrong-shaped
    records are skipped, and when a seed appears twice the later record
    wins. Journals written before the framing existed (bare-JSON lines)
    still load. *)

type t

val open_ : ?truncate:bool -> string -> t
(** Open [path] for appending, creating it if needed. [~truncate:true]
    discards any existing contents (a fresh, non-resumed sweep). *)

val record : t -> seed:int -> Netcore.Json.t -> unit
(** Append one journal line and [fsync] it. Thread-safe.
    @raise Invalid_argument after {!close}. *)

val load : string -> (int * Netcore.Json.t) list
(** Replay a journal: [(seed, summary)] in first-completion order, partial
    or malformed lines skipped, later duplicates superseding earlier ones.
    A missing file is an empty journal. *)

val close : t -> unit
(** Flush and close the underlying channel. Idempotent. *)

val compact : string -> int * int
(** Rewrite a journal keeping only the lines {!load} would return: the
    last record per seed, malformed and partial lines dropped. Crash-safe —
    the survivors are written to a temp file and atomically renamed over
    the original. Returns [(dropped, kept)] line counts. A missing file
    compacts to an empty journal (0 dropped, 0 kept). *)
