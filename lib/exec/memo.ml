type stats = { hits : int; misses : int; entries : int; evictions : int }

let lock = Mutex.create ()

let table :
    ( Batfish.Parse_check.dialect * string,
      Policy.Config_ir.t * Netcore.Diag.t list )
    Hashtbl.t =
  Hashtbl.create 512

(* Insertion order of the live keys, oldest first — the eviction queue. An
   entry is only ever removed by eviction or [reset], so the queue and the
   table stay in lockstep (every queued key is live, every live key queued
   exactly once). *)
let order : (Batfish.Parse_check.dialect * string) Queue.t = Queue.create ()
let hits = ref 0
let misses = ref 0
let evictions = ref 0

(* Drafts are bounded in practice (a handful of live faults over one oracle
   config), but a long sweep over many topologies could still accumulate;
   cap the table rather than grow without bound. *)
let max_entries = 16_384

(* When the cap is hit, drop the oldest eighth of the table instead of the
   whole thing: a full [Hashtbl.reset] craters the hit rate mid-sweep (and
   would do so repeatedly in a warm long-lived server), while a bounded
   batch keeps the ~recent 7/8 of the working set hot. Batch size >= 1 so
   the insert below always fits. Caller holds [lock]. *)
let evict_batch () =
  let batch = max 1 (max_entries / 8) in
  for _ = 1 to batch do
    match Queue.take_opt order with
    | None -> ()
    | Some k ->
        Hashtbl.remove table k;
        incr evictions
  done

(* The table is success-only: a result is cached only when [parse] returns
   [Ok]. A verifier failure (a crash, a flake, a truncated response injected
   by the resilience layer) bypasses the table entirely, so a transient
   fault can never be memoized as truth. *)
let check_result dialect text ~parse =
  let key = (dialect, text) in
  Mutex.lock lock;
  match Hashtbl.find_opt table key with
  | Some r ->
      incr hits;
      Mutex.unlock lock;
      Ok r
  | None ->
      incr misses;
      Mutex.unlock lock;
      (match parse () with
      | Error _ as e -> e
      | Ok r ->
          Mutex.lock lock;
          if not (Hashtbl.mem table key) then begin
            if Hashtbl.length table >= max_entries then evict_batch ();
            Hashtbl.add table key r;
            Queue.push key order
          end;
          Mutex.unlock lock;
          Ok r)

let check dialect text =
  match
    check_result dialect text ~parse:(fun () ->
        Ok (Batfish.Parse_check.check dialect text))
  with
  | Ok r -> r
  | Error (_ : unit) -> assert false

let stats () =
  Mutex.lock lock;
  let s =
    {
      hits = !hits;
      misses = !misses;
      entries = Hashtbl.length table;
      evictions = !evictions;
    }
  in
  Mutex.unlock lock;
  s

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Queue.clear order;
  hits := 0;
  misses := 0;
  evictions := 0;
  Mutex.unlock lock

let reset_stats () =
  Mutex.lock lock;
  hits := 0;
  misses := 0;
  Mutex.unlock lock

(* A scope is just the counter values at its creation; its stats are the
   deltas since. Scopes nest and overlap freely, and unlike [reset_stats]
   they cannot disturb a concurrent phase's accounting. *)
type scope = { hits0 : int; misses0 : int }

let scope () =
  let s = stats () in
  { hits0 = s.hits; misses0 = s.misses }

let scope_stats sc =
  let s = stats () in
  { s with hits = s.hits - sc.hits0; misses = s.misses - sc.misses0 }
