type stats = { hits : int; misses : int; entries : int }

let lock = Mutex.create ()

let table :
    ( Batfish.Parse_check.dialect * string,
      Policy.Config_ir.t * Netcore.Diag.t list )
    Hashtbl.t =
  Hashtbl.create 512

let hits = ref 0
let misses = ref 0

(* Drafts are bounded in practice (a handful of live faults over one oracle
   config), but a long sweep over many topologies could still accumulate;
   cap the table rather than grow without bound. *)
let max_entries = 16_384

let check dialect text =
  let key = (dialect, text) in
  Mutex.lock lock;
  match Hashtbl.find_opt table key with
  | Some r ->
      incr hits;
      Mutex.unlock lock;
      r
  | None ->
      incr misses;
      Mutex.unlock lock;
      let r = Batfish.Parse_check.check dialect text in
      Mutex.lock lock;
      if Hashtbl.length table >= max_entries then Hashtbl.reset table;
      if not (Hashtbl.mem table key) then Hashtbl.add table key r;
      Mutex.unlock lock;
      r

let stats () =
  Mutex.lock lock;
  let s = { hits = !hits; misses = !misses; entries = Hashtbl.length table } in
  Mutex.unlock lock;
  s

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  hits := 0;
  misses := 0;
  Mutex.unlock lock
