type stats = { hits : int; misses : int; entries : int }

let lock = Mutex.create ()

let table :
    ( Batfish.Parse_check.dialect * string,
      Policy.Config_ir.t * Netcore.Diag.t list )
    Hashtbl.t =
  Hashtbl.create 512

let hits = ref 0
let misses = ref 0

(* Drafts are bounded in practice (a handful of live faults over one oracle
   config), but a long sweep over many topologies could still accumulate;
   cap the table rather than grow without bound. *)
let max_entries = 16_384

(* The table is success-only: a result is cached only when [parse] returns
   [Ok]. A verifier failure (a crash, a flake, a truncated response injected
   by the resilience layer) bypasses the table entirely, so a transient
   fault can never be memoized as truth. *)
let check_result dialect text ~parse =
  let key = (dialect, text) in
  Mutex.lock lock;
  match Hashtbl.find_opt table key with
  | Some r ->
      incr hits;
      Mutex.unlock lock;
      Ok r
  | None ->
      incr misses;
      Mutex.unlock lock;
      (match parse () with
      | Error _ as e -> e
      | Ok r ->
          Mutex.lock lock;
          if Hashtbl.length table >= max_entries then Hashtbl.reset table;
          if not (Hashtbl.mem table key) then Hashtbl.add table key r;
          Mutex.unlock lock;
          Ok r)

let check dialect text =
  match
    check_result dialect text ~parse:(fun () ->
        Ok (Batfish.Parse_check.check dialect text))
  with
  | Ok r -> r
  | Error (_ : unit) -> assert false

let stats () =
  Mutex.lock lock;
  let s = { hits = !hits; misses = !misses; entries = Hashtbl.length table } in
  Mutex.unlock lock;
  s

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  hits := 0;
  misses := 0;
  Mutex.unlock lock

let reset_stats () =
  Mutex.lock lock;
  hits := 0;
  misses := 0;
  Mutex.unlock lock

(* A scope is just the counter values at its creation; its stats are the
   deltas since. Scopes nest and overlap freely, and unlike [reset_stats]
   they cannot disturb a concurrent phase's accounting. *)
type scope = { hits0 : int; misses0 : int }

let scope () =
  let s = stats () in
  { hits0 = s.hits; misses0 = s.misses }

let scope_stats sc =
  let s = stats () in
  { hits = s.hits - sc.hits0; misses = s.misses - sc.misses0; entries = s.entries }
