let max_frame_bytes = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let write_all fd buf =
  let len = Bytes.length buf in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd buf !off (len - !off)
  done

(* Read exactly [len] bytes; [`Eof] only when the stream ends before the
   first byte — an end-of-stream mid-buffer is a truncated frame. *)
let read_exactly fd len =
  let buf = Bytes.create len in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < len do
    match Unix.read fd buf !off (len - !off) with
    | 0 -> eof := true
    | n -> off := !off + n
  done;
  if !off = len then `Ok buf else if !off = 0 then `Eof else `Truncated !off

let write_frame fd json =
  let payload = Bytes.of_string (Netcore.Json.to_string json) in
  let len = Bytes.length payload in
  let header = Bytes.create 4 in
  Bytes.set_uint8 header 0 ((len lsr 24) land 0xff);
  Bytes.set_uint8 header 1 ((len lsr 16) land 0xff);
  Bytes.set_uint8 header 2 ((len lsr 8) land 0xff);
  Bytes.set_uint8 header 3 (len land 0xff);
  write_all fd header;
  write_all fd payload

let read_frame fd =
  match read_exactly fd 4 with
  | `Eof -> None
  | `Truncated n -> failwith (Printf.sprintf "truncated frame header (%d/4 bytes)" n)
  | `Ok header -> (
      let len =
        (Bytes.get_uint8 header 0 lsl 24)
        lor (Bytes.get_uint8 header 1 lsl 16)
        lor (Bytes.get_uint8 header 2 lsl 8)
        lor Bytes.get_uint8 header 3
      in
      if len > max_frame_bytes then
        failwith (Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" len max_frame_bytes);
      match read_exactly fd len with
      | `Eof | `Truncated _ -> failwith "truncated frame payload"
      | `Ok payload -> (
          match Netcore.Json.of_string (Bytes.to_string payload) with
          | Ok json -> Some json
          | Error e -> failwith ("malformed frame payload: " ^ e)))

(* ------------------------------------------------------------------ *)
(* Server loop                                                         *)
(* ------------------------------------------------------------------ *)

type reply =
  | Reply of Netcore.Json.t
  | Drain of Netcore.Json.t
  | Final of Netcore.Json.t

let default_drain_reject _req =
  Netcore.Json.Obj
    [
      ("ok", Netcore.Json.Bool false);
      ("error", Netcore.Json.String "server draining");
      ("draining", Netcore.Json.Bool true);
    ]

let serve ~socket_path ~handle ?(backlog = 16) ?(io_timeout_ms = 30_000)
    ?(drain_grace_ms = 1_000) ?(drain_reject = default_drain_reject)
    ?(handle_signals = false) ?(on_drain = fun () -> ())
    ?(on_ready = fun () -> ()) ?on_reload () =
  if Sys.file_exists socket_path then Unix.unlink socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd backlog;
  (* Lifecycle state. [draining] stops accepting but keeps answering
     already-connected clients (with reject frames) for the grace window;
     [stopping] (the [Final] path) ends client loops at their next slice.
     Either way, shutting the listening socket down is what breaks the
     blocked [accept] on the main thread — including when the flip happens
     inside a signal handler. *)
  let state_m = Mutex.create () in
  let draining = ref false in
  let stopping = ref false in
  let drain_started = ref None in
  let locked f =
    Mutex.lock state_m;
    let v = f () in
    Mutex.unlock state_m;
    v
  in
  let request_drain () =
    let first =
      locked (fun () ->
          let first = (not !draining) && not !stopping in
          if first then begin
            draining := true;
            drain_started := Some (Unix.gettimeofday ())
          end;
          first)
    in
    if first then begin
      (try Unix.shutdown listen_fd Unix.SHUTDOWN_ALL with _ -> ());
      on_drain ()
    end
  in
  let request_stop () =
    let first =
      locked (fun () ->
          let first = not !stopping in
          stopping := true;
          if !drain_started = None then
            drain_started := Some (Unix.gettimeofday ());
          first)
    in
    if first then (try Unix.shutdown listen_fd Unix.SHUTDOWN_ALL with _ -> ())
  in
  (* Hot reload (SIGHUP): the handler only flips an atomic flag — the
     callback itself runs on whichever serving loop notices the flag next
     (the accept loop's EINTR wakes it; an idle client thread's select
     slice is at most 50 ms away), never inside the signal handler where a
     lock-taking callback would deadlock. *)
  let reload_flag = Atomic.make false in
  let maybe_reload () =
    if Atomic.exchange reload_flag false then
      match on_reload with Some f -> ( try f () with _ -> ()) | None -> ()
  in
  let old_hup =
    match on_reload with
    | Some _ ->
        Some
          (Sys.signal Sys.sighup
             (Sys.Signal_handle (fun _ -> Atomic.set reload_flag true)))
    | None -> None
  in
  let threads = ref [] in
  let threads_m = Mutex.create () in
  let next_client = ref 0 in
  let client_loop client fd =
    (* Slow-peer protection: a peer that stalls mid-frame, or never drains
       our writes, cannot pin this thread past the io timeout. *)
    if io_timeout_ms > 0 then begin
      let s = float_of_int io_timeout_ms /. 1000. in
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s with _ -> ());
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO s with _ -> ())
    end;
    let continue = ref true in
    (try
       while !continue do
         maybe_reload ();
         (* Wait for readability in short slices so a drain or stop begun
            while this client sits idle closes the connection at the grace
            deadline instead of stranding a blocked read forever. *)
         let readable =
           try
             match Unix.select [ fd ] [] [] 0.05 with
             | [], _, _ -> false
             | _ -> true
           with Unix.Unix_error (Unix.EINTR, _, _) -> false
         in
         let close_now =
           locked (fun () ->
               !stopping
               ||
               match !drain_started with
               | None -> false
               | Some t0 ->
                   Unix.gettimeofday () -. t0
                   >= float_of_int drain_grace_ms /. 1000.)
         in
         if close_now then continue := false
         else if readable then begin
           match read_frame fd with
           | None -> continue := false
           | Some req ->
               if locked (fun () -> !draining) then
                 (* Mid-drain requests get a structured reject until the
                    grace window ends — never a hang, never a bare close
                    with a request outstanding. *)
                 write_frame fd (drain_reject req)
               else (
                 let reply =
                   try handle ~client req
                   with e ->
                     (* The handler is supposed to be total (the service
                        layer wraps it in Resilience.Guard); this is the
                        transport's own last line — a handler bug answers
                        as an error frame instead of hanging the client. *)
                     Reply
                       (Netcore.Json.Obj
                          [
                            ("ok", Netcore.Json.Bool false);
                            ("error", Netcore.Json.String (Printexc.to_string e));
                          ])
                 in
                 match reply with
                 | Reply json -> write_frame fd json
                 | Drain json ->
                     write_frame fd json;
                     request_drain ()
                 | Final json ->
                     write_frame fd json;
                     continue := false;
                     request_stop ())
         end
       done
     with _ -> ());
    (* A framing error or a peer that vanished drops this client only. *)
    try Unix.close fd with _ -> ()
  in
  let old_handlers =
    if handle_signals then
      List.map
        (fun s ->
          (s, Sys.signal s (Sys.Signal_handle (fun _ -> request_drain ()))))
        [ Sys.sigterm; Sys.sigint ]
    else []
  in
  on_ready ();
  (try
     while not (locked (fun () -> !draining || !stopping)) do
       maybe_reload ();
       match Unix.accept listen_fd with
       | fd, _ ->
           let client = !next_client in
           incr next_client;
           let t = Thread.create (fun () -> client_loop client fd) () in
           Mutex.lock threads_m;
           threads := t :: !threads;
           Mutex.unlock threads_m
       | exception
           Unix.Unix_error
             ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED | Unix.EINTR), _, _)
         ->
           (* The listening socket was shut down under us (the drain/stop
              path), or a signal landed on this thread; the loop condition
              decides. *)
           ()
     done
   with Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _) ->
     ());
  Mutex.lock threads_m;
  let ts = !threads in
  Mutex.unlock threads_m;
  List.iter Thread.join ts;
  List.iter (fun (s, h) -> try Sys.set_signal s h with _ -> ()) old_handlers;
  (match old_hup with
  | Some h -> ( try Sys.set_signal Sys.sighup h with _ -> ())
  | None -> ());
  (try Unix.close listen_fd with _ -> ());
  if Sys.file_exists socket_path then Unix.unlink socket_path;
  locked (fun () -> !draining && not !stopping)

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)
(* ------------------------------------------------------------------ *)

exception Server_overloaded of { retry_after_ms : int }

let () =
  Printexc.register_printer (function
    | Server_overloaded { retry_after_ms } ->
        Some
          (Printf.sprintf "Server_overloaded (retry_after_ms %d)" retry_after_ms)
    | _ -> None)

let connect ?(total_budget_ms = 1_000) ~socket_path () =
  let deadline =
    Unix.gettimeofday () +. (float_of_int (max 0 total_budget_ms) /. 1000.)
  in
  (* Exponential backoff from 1 ms, capped at 200 ms per sleep: a daemon
     that binds quickly is caught within a few milliseconds, while a slow
     one (supervisor respawn, cold pool spawn) is polled gently instead of
     50 times at a fixed cadence. *)
  let rec go delay_ms =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
        (try Unix.close fd with _ -> ());
        let remaining = deadline -. Unix.gettimeofday () in
        Unix.sleepf
          (Float.min (float_of_int delay_ms /. 1000.) (Float.max remaining 0.001));
        go (min (delay_ms * 2) 200)
    | exception e ->
        (try Unix.close fd with _ -> ());
        raise e
  in
  try go 1
  with Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
    failwith (Printf.sprintf "no server listening on %s" socket_path)

let request fd json =
  write_frame fd json;
  match read_frame fd with
  | None -> failwith "server closed the connection without replying"
  | Some reply -> (
      match
        Option.bind (Netcore.Json.member "shed" reply) Netcore.Json.to_bool
      with
      | Some true ->
          let retry_after_ms =
            Option.value ~default:0
              (Option.bind
                 (Netcore.Json.member "retry_after_ms" reply)
                 Netcore.Json.to_int)
          in
          raise (Server_overloaded { retry_after_ms })
      | _ -> reply)

let with_connection ?total_budget_ms ~socket_path f =
  let fd = connect ?total_budget_ms ~socket_path () in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) (fun () -> f fd)
