let max_frame_bytes = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let write_all fd buf =
  let len = Bytes.length buf in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd buf !off (len - !off)
  done

(* Read exactly [len] bytes; [`Eof] only when the stream ends before the
   first byte — an end-of-stream mid-buffer is a truncated frame. *)
let read_exactly fd len =
  let buf = Bytes.create len in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < len do
    match Unix.read fd buf !off (len - !off) with
    | 0 -> eof := true
    | n -> off := !off + n
  done;
  if !off = len then `Ok buf else if !off = 0 then `Eof else `Truncated !off

let write_frame fd json =
  let payload = Bytes.of_string (Netcore.Json.to_string json) in
  let len = Bytes.length payload in
  let header = Bytes.create 4 in
  Bytes.set_uint8 header 0 ((len lsr 24) land 0xff);
  Bytes.set_uint8 header 1 ((len lsr 16) land 0xff);
  Bytes.set_uint8 header 2 ((len lsr 8) land 0xff);
  Bytes.set_uint8 header 3 (len land 0xff);
  write_all fd header;
  write_all fd payload

let read_frame fd =
  match read_exactly fd 4 with
  | `Eof -> None
  | `Truncated n -> failwith (Printf.sprintf "truncated frame header (%d/4 bytes)" n)
  | `Ok header -> (
      let len =
        (Bytes.get_uint8 header 0 lsl 24)
        lor (Bytes.get_uint8 header 1 lsl 16)
        lor (Bytes.get_uint8 header 2 lsl 8)
        lor Bytes.get_uint8 header 3
      in
      if len > max_frame_bytes then
        failwith (Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" len max_frame_bytes);
      match read_exactly fd len with
      | `Eof | `Truncated _ -> failwith "truncated frame payload"
      | `Ok payload -> (
          match Netcore.Json.of_string (Bytes.to_string payload) with
          | Ok json -> Some json
          | Error e -> failwith ("malformed frame payload: " ^ e)))

(* ------------------------------------------------------------------ *)
(* Server loop                                                         *)
(* ------------------------------------------------------------------ *)

type reply = Reply of Netcore.Json.t | Final of Netcore.Json.t

let serve ~socket_path ~handle ?(backlog = 16) ?(on_ready = fun () -> ()) () =
  if Sys.file_exists socket_path then Unix.unlink socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd backlog;
  (* [stop] is flipped by the client thread that handled the [Final]
     request; closing the listening socket is what actually breaks the
     blocked [accept] on the main thread. *)
  let stop = ref false in
  let stop_m = Mutex.create () in
  let request_stop () =
    Mutex.lock stop_m;
    let first = not !stop in
    stop := true;
    Mutex.unlock stop_m;
    if first then (try Unix.shutdown listen_fd Unix.SHUTDOWN_ALL with _ -> ())
  in
  let threads = ref [] in
  let threads_m = Mutex.create () in
  let next_client = ref 0 in
  let client_loop client fd =
    let continue = ref true in
    (try
       while !continue do
         match read_frame fd with
         | None -> continue := false
         | Some req -> (
             let reply =
               try handle ~client req
               with e ->
                 (* The handler is supposed to be total (the CLI wraps it
                    in Resilience.Guard); this is the transport's own last
                    line — a handler bug answers as an error frame instead
                    of hanging the client. *)
                 Reply
                   (Netcore.Json.Obj
                      [
                        ("ok", Netcore.Json.Bool false);
                        ("error", Netcore.Json.String (Printexc.to_string e));
                      ])
             in
             match reply with
             | Reply json -> write_frame fd json
             | Final json ->
                 write_frame fd json;
                 continue := false;
                 request_stop ())
       done
     with _ -> ());
    (* A framing error or a peer that vanished drops this client only. *)
    try Unix.close fd with _ -> ()
  in
  on_ready ();
  (try
     while not !stop do
       let fd, _ = Unix.accept listen_fd in
       let client = !next_client in
       incr next_client;
       let t = Thread.create (fun () -> client_loop client fd) () in
       Mutex.lock threads_m;
       threads := t :: !threads;
       Mutex.unlock threads_m
     done
   with Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _) ->
     (* The listening socket was shut down under us: the stop path. *)
     ());
  Mutex.lock threads_m;
  let ts = !threads in
  Mutex.unlock threads_m;
  List.iter Thread.join ts;
  (try Unix.close listen_fd with _ -> ());
  if Sys.file_exists socket_path then Unix.unlink socket_path

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)
(* ------------------------------------------------------------------ *)

let connect ?(retries = 50) ~socket_path () =
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempt < retries ->
        (try Unix.close fd with _ -> ());
        (* The daemon may still be binding its socket. *)
        Unix.sleepf 0.02;
        go (attempt + 1)
    | exception e ->
        (try Unix.close fd with _ -> ());
        raise e
  in
  try go 0
  with Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
    failwith (Printf.sprintf "no server listening on %s" socket_path)

let request fd json =
  write_frame fd json;
  match read_frame fd with
  | Some reply -> reply
  | None -> failwith "server closed the connection without replying"

let with_connection ?retries ~socket_path f =
  let fd = connect ?retries ~socket_path () in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) (fun () -> f fd)
