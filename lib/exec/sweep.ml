let seeds ~base ~n = List.init n (fun i -> base + i)

type 'a journal = {
  ck : Checkpoint.t;
  encode : 'a -> Netcore.Json.t;
  decode : Netcore.Json.t -> 'a option;
  resumed : (int * Netcore.Json.t) list;
}

(* Replay resolution is last-write-wins, enforced here as well as in
   [Checkpoint.load]: a resumed sweep that re-ran a seed (stale codec,
   mid-write crash) appends a superseding line, and [run_seeds]'s
   [List.assoc_opt] lookup must never see the stale first line — that would
   re-pick the stale record on every resume, re-run the seed, and append
   yet another line: a journal that grows forever and a resume that never
   converges. Deduping the loaded list keeps the invariant local to the
   sweep instead of an implicit contract with the loader. *)
let dedupe_last entries =
  List.rev
    (List.fold_left
       (fun acc (seed, payload) ->
         (seed, payload) :: List.remove_assoc seed acc)
       [] entries)

let journal ?(resume = false) ~path ~encode ~decode () =
  let resumed = if resume then dedupe_last (Checkpoint.load path) else [] in
  { ck = Checkpoint.open_ ~truncate:(not resume) path; encode; decode; resumed }

let journaled_seeds j = List.map fst j.resumed
let journal_close j = Checkpoint.close j.ck

let run_seeds ?pool ?journal ~seeds f =
  match journal with
  | None -> (
      match pool with None -> Pool.map_seq f seeds | Some p -> Pool.map p f seeds)
  | Some j ->
      (* Replayed seeds are decoded from their journal line instead of
         re-run; a line that no longer decodes (stale codec) falls through
         to a fresh run whose record is appended and — because replay is
         last-write-wins — supersedes the stale line on every later resume,
         so the seed is re-run exactly once and the journal size is stable
         from then on ([Checkpoint.compact] reclaims the dead line). Fresh
         runs journal their line (mutex-guarded, fsync'd) the moment they
         complete, so an interrupt loses only the runs still in flight. The
         result list is in seed order either way, identical to the
         unjournaled sweep. *)
      let run seed =
        let cached =
          Option.bind (List.assoc_opt seed j.resumed) (fun json -> j.decode json)
        in
        match cached with
        | Some v -> v
        | None ->
            let v = f seed in
            Checkpoint.record j.ck ~seed (j.encode v);
            v
      in
      (match pool with
      | None -> Pool.map_seq run seeds
      | Some p -> Pool.map p run seeds)

(* ------------------------------------------------------------------ *)
(* Certificate-aware budgeted scheduling                               *)
(* ------------------------------------------------------------------ *)

type budget_outcome = { spent : int; abandoned : bool }

type budget_stats = {
  budget : int;
  spent : int;
  abandoned_early : int;
  reclaimed : int;
}

(* Sequential by construction: seed k's allocation depends on what seeds
   0..k-1 actually spent, so there is no pool variant — the point is
   budget reuse, not wall-clock. Fair-share allocation (remaining budget
   over remaining seeds) with a floor of 1 keeps every seed runnable even
   after earlier seeds overspent their share. *)
let run_seeds_budgeted ~budget ~seeds f =
  let budget = max 0 budget in
  let remaining = ref budget in
  let spent_total = ref 0 in
  let abandoned_early = ref 0 in
  let reclaimed = ref 0 in
  let rec go k acc = function
    | [] -> List.rev acc
    | seed :: rest ->
        let alloc = max 1 (!remaining / k) in
        let v, (o : budget_outcome) = f ~seed ~max_prompts:alloc in
        (* Clamp: a run reporting more than its allocation (a driver bug)
           must not push [remaining] negative and starve later seeds. *)
        let spent = min (max 0 o.spent) alloc in
        remaining := !remaining - spent;
        spent_total := !spent_total + spent;
        if o.abandoned then begin
          incr abandoned_early;
          reclaimed := !reclaimed + (alloc - spent)
        end;
        go (k - 1) (v :: acc) rest
  in
  let out = go (List.length seeds) [] seeds in
  ( out,
    {
      budget;
      spent = !spent_total;
      abandoned_early = !abandoned_early;
      reclaimed = !reclaimed;
    } )

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
