let seeds ~base ~n = List.init n (fun i -> base + i)

type 'a journal = {
  ck : Checkpoint.t;
  encode : 'a -> Netcore.Json.t;
  decode : Netcore.Json.t -> 'a option;
  resumed : (int * Netcore.Json.t) list;
}

let journal ?(resume = false) ~path ~encode ~decode () =
  let resumed = if resume then Checkpoint.load path else [] in
  { ck = Checkpoint.open_ ~truncate:(not resume) path; encode; decode; resumed }

let journaled_seeds j = List.map fst j.resumed
let journal_close j = Checkpoint.close j.ck

let run_seeds ?pool ?journal ~seeds f =
  match journal with
  | None -> (
      match pool with None -> Pool.map_seq f seeds | Some p -> Pool.map p f seeds)
  | Some j ->
      (* Replayed seeds are decoded from their journal line instead of
         re-run; a line that no longer decodes (stale codec) falls through
         to a fresh run. Fresh runs journal their line (mutex-guarded,
         fsync'd) the moment they complete, so an interrupt loses only the
         runs still in flight. The result list is in seed order either
         way, identical to the unjournaled sweep. *)
      let run seed =
        let cached =
          Option.bind (List.assoc_opt seed j.resumed) (fun json -> j.decode json)
        in
        match cached with
        | Some v -> v
        | None ->
            let v = f seed in
            Checkpoint.record j.ck ~seed (j.encode v);
            v
      in
      (match pool with
      | None -> Pool.map_seq run seeds
      | Some p -> Pool.map p run seeds)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
