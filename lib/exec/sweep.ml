let seeds ~base ~n = List.init n (fun i -> base + i)

let run_seeds ?pool ~seeds f =
  match pool with None -> Pool.map_seq f seeds | Some p -> Pool.map p f seeds

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
