(** A fixed-size Domain-based worker pool with deterministic result
    ordering.

    Jobs submitted through {!map} run on worker domains (OCaml 5 [Domain]s
    coordinated with a [Mutex]/[Condition] work queue); results are
    returned in submission order regardless of which worker finished
    first, so a parallel map is observably identical to [List.map] as long
    as the job function itself is deterministic and the jobs are
    data-independent.

    The caller of {!map} helps drain the queue while waiting, so nested
    [map] calls from inside a job (e.g. a seeded sweep whose body
    parallelizes per-router synthesis on the same pool) cannot deadlock
    even when every worker is busy. *)

type t

val create : ?domains:int -> unit -> t
(** Spawn a pool of [domains] workers (default {!default_size}). A pool
    with [domains = 0] executes every job on the calling domain — the
    sequential baseline with the same API. *)

val default_size : unit -> int
(** The [COSYNTH_POOL_SIZE] environment variable when set ([0] forces the
    sequential pool), otherwise [Domain.recommended_domain_count () - 1]
    clamped to [\[1, 8\]]. *)

val size : t -> int
(** Number of worker domains (0 for a sequential pool). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] runs [f] on every element, in parallel up to [size t],
    and returns the results in input order. The first job exception (in
    input order) is re-raised after all jobs settle. *)

val map_seq : ('a -> 'b) -> 'a list -> 'b list
(** [List.map] with the same exception behavior as {!map}; the reference
    implementation parallel runs must match bit-for-bit. *)

val lose_current_worker : t -> unit
(** Simulate the loss of the worker domain executing the current job (the
    {!Supervisor}'s chaos hook). After the job settles, the flagged domain
    exits its loop and a replacement is spawned in its place — a real
    domain restart, counted in {!stats}. When the job ran on the calling
    domain (a stolen job, or a sequential pool) the loss is absorbed as an
    instantaneous restart: the caller owns the map and cannot die. Result
    ordering and values are unaffected — only scheduling and the restart
    counter observe the loss. *)

(** {2 Utilization statistics} *)

type stats = {
  domains : int;  (** Worker count. *)
  jobs_completed : int;  (** Jobs finished since creation (all maps). *)
  busy_s : float;  (** Summed per-worker seconds spent inside jobs. *)
  wall_s : float;  (** Seconds since the pool was created. *)
  restarts : int;
      (** Worker domains lost and replaced ({!lose_current_worker}). *)
}

val stats : t -> stats

val utilization : stats -> float
(** [busy / (wall * domains)] in [0, 1]; 0 for a sequential pool. *)

val shutdown : t -> unit
(** Stop accepting work and join every worker. Idempotent; outstanding
    jobs finish first. *)
