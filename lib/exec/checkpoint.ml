type t = {
  oc : out_channel;
  fd : Unix.file_descr;
  m : Mutex.t;
  mutable closed : bool;
}

let open_ ?(truncate = false) path =
  let flags =
    [ Open_wronly; Open_creat; (if truncate then Open_trunc else Open_append) ]
  in
  let oc = open_out_gen flags 0o644 path in
  { oc; fd = Unix.descr_of_out_channel oc; m = Mutex.create (); closed = false }

let record t ~seed payload =
  let line =
    Netcore.Json.to_string
      (Netcore.Json.Obj [ ("seed", Netcore.Json.Int seed); ("summary", payload) ])
  in
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      if t.closed then invalid_arg "Checkpoint.record: journal is closed";
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc;
      (* The line is durable before the run counts as completed: a journal
         replay after a crash only ever sees whole, fsync'd records. *)
      Unix.fsync t.fd)

let close t =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        close_out t.oc
      end)

(* A journal written by a process that died mid-[record] can end in a
   partial line; anything that fails to parse (or lacks the expected shape)
   is skipped rather than poisoning the replay. Later records win so a
   re-run that re-completed a seed supersedes the older line. *)
let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let entries = ref [] in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match Netcore.Json.of_string line with
           | Error _ -> ()
           | Ok json -> (
               match
                 ( Option.bind (Netcore.Json.member "seed" json) Netcore.Json.to_int,
                   Netcore.Json.member "summary" json )
               with
               | Some seed, Some payload ->
                   entries := (seed, payload) :: List.remove_assoc seed !entries
               | _ -> ())
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries
  end

(* Compaction is load + rewrite: the surviving lines are written to a
   sibling temp file, fsync'd, then renamed over the original — the journal
   is never in a half-rewritten state, a crash leaves either the old file
   or the new one. *)
let compact path =
  let entries = load path in
  let kept = List.length entries in
  let before =
    if Sys.file_exists path then
      let ic = open_in_bin path in
      let n = ref 0 in
      (try
         while true do
           if String.trim (input_line ic) <> "" then incr n
         done
       with End_of_file -> ());
      close_in ic;
      !n
    else 0
  in
  let tmp = path ^ ".compact.tmp" in
  let t = open_ ~truncate:true tmp in
  List.iter (fun (seed, payload) -> record t ~seed payload) entries;
  close t;
  Sys.rename tmp path;
  (before - kept, kept)
