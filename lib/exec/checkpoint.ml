(* The sweep journal, riding the one checksummed store. Everything
   durability-related — CRC framing, fsync ordering, torn-tail sealing,
   fault injection — lives in Durable.Store; this module only owns the
   record shape ({"seed": N, "summary": ...}) and the last-write-wins
   replay semantics. *)

type t = Durable.Store.t

let open_ ?truncate path = Durable.Store.open_ ?truncate path

let record t ~seed payload =
  let json =
    Netcore.Json.Obj [ ("seed", Netcore.Json.Int seed); ("summary", payload) ]
  in
  (* A [false] append (injected write/fsync fault) simply leaves the line
     out of the journal: the run is not durably completed, so a resume
     re-runs the seed — the exact contract record-then-complete exists
     to provide. Nothing to do here but not crash. *)
  ignore (Durable.Store.append t json : bool)

let close t = Durable.Store.close t

(* A journal written by a process that died mid-[record] can end in a
   torn line, and a bit-flipped or truncated line can appear anywhere;
   the store counts and skips those. Records that decode but lack the
   expected shape are skipped here. Later records win so a re-run that
   re-completed a seed supersedes the older line. *)
let load path =
  let records, _stats = Durable.Store.read path in
  let entries = ref [] in
  List.iter
    (fun json ->
      match
        ( Option.bind (Netcore.Json.member "seed" json) Netcore.Json.to_int,
          Netcore.Json.member "summary" json )
      with
      | Some seed, Some payload ->
          entries := (seed, payload) :: List.remove_assoc seed !entries
      | _ -> ())
    records;
  List.rev !entries

(* Compaction is load + atomic rewrite (temp file, fsync, rename): the
   journal is never in a half-rewritten state — a crash leaves either the
   old file or the new one. *)
let compact path =
  let entries = load path in
  let kept = List.length entries in
  let _, stats = Durable.Store.read path in
  let lines =
    List.map
      (fun (seed, payload) ->
        Netcore.Json.Obj
          [ ("seed", Netcore.Json.Int seed); ("summary", payload) ])
      entries
  in
  if Durable.Store.rewrite path lines then
    (stats.Durable.Store.lines - kept, kept)
  else (* An injected fault aborted the rewrite; the file is untouched. *)
    (0, kept)
