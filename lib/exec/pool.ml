type t = {
  m : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  domains : int;
  mutable jobs_completed : int;
  mutable busy_s : float;
  mutable restarts : int;
  created_at : float;
}

type stats = {
  domains : int;
  jobs_completed : int;
  busy_s : float;
  wall_s : float;
  restarts : int;
}

(* Set by [lose_current_worker] on the domain running the current job;
   checked (and cleared) after every job. A flagged worker domain exits its
   loop and a replacement is spawned — a genuine domain restart, not just a
   counter. The flag is domain-local so a loss on one worker never leaks
   into a sibling. *)
let lost_flag : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let default_size () =
  match Sys.getenv_opt "COSYNTH_POOL_SIZE" with
  | Some s when int_of_string_opt (String.trim s) <> None ->
      Stdlib.max 0 (Option.get (int_of_string_opt (String.trim s)))
  | _ -> Stdlib.max 1 (Stdlib.min 8 (Domain.recommended_domain_count () - 1))

let size (t : t) = t.domains

let rec worker_loop (t : t) =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.nonempty t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* stopping and drained *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.m;
    let t0 = Unix.gettimeofday () in
    job ();
    let dt = Unix.gettimeofday () -. t0 in
    let lost = Domain.DLS.get lost_flag in
    let died = !lost in
    lost := false;
    Mutex.lock t.m;
    t.jobs_completed <- t.jobs_completed + 1;
    t.busy_s <- t.busy_s +. dt;
    if died then begin
      t.restarts <- t.restarts + 1;
      (* A replacement takes this worker's place unless the pool is already
         shutting down; the dead domain's handle stays in [workers] so
         [shutdown] still joins it (a finished domain joins instantly). *)
      if not t.stopping then
        t.workers <- Domain.spawn (fun () -> worker_loop t) :: t.workers
    end;
    Mutex.unlock t.m;
    if not died then worker_loop t
  end

let lose_current_worker (t : t) =
  if t.domains = 0 then begin
    (* A sequential pool has no worker domain to kill; the loss is absorbed
       as an instantaneous restart so the counters still tell the story. *)
    Mutex.lock t.m;
    t.restarts <- t.restarts + 1;
    Mutex.unlock t.m
  end
  else Domain.DLS.get lost_flag := true

let create ?domains () =
  let domains = match domains with Some d -> Stdlib.max 0 d | None -> default_size () in
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
      domains;
      jobs_completed = 0;
      busy_s = 0.;
      restarts = 0;
      created_at = Unix.gettimeofday ();
    }
  in
  t.workers <- List.init domains (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

(* Evaluate strictly left-to-right so a sequential map raises the first
   failing element's exception, matching [map]'s input-order re-raise. *)
let map_seq f xs = List.rev (List.fold_left (fun acc x -> f x :: acc) [] xs)

let map (t : t) f xs =
  if t.domains = 0 then map_seq f xs
  else
    match xs with
    | [] -> []
    | xs ->
        let arr = Array.of_list xs in
        let n = Array.length arr in
        let results = Array.make n None in
        let done_m = Mutex.create () in
        let done_c = Condition.create () in
        let completed = ref 0 in
        let task i () =
          let r =
            try Ok (f arr.(i)) with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          Mutex.lock done_m;
          results.(i) <- Some r;
          incr completed;
          Condition.broadcast done_c;
          Mutex.unlock done_m
        in
        Mutex.lock t.m;
        if t.stopping then begin
          Mutex.unlock t.m;
          invalid_arg "Pool.map: pool is shut down"
        end;
        for i = 0 to n - 1 do
          Queue.push (task i) t.queue
        done;
        Condition.broadcast t.nonempty;
        Mutex.unlock t.m;
        (* Help drain the queue while waiting: a job may itself call [map]
           on this pool, and if every worker were blocked the same way the
           nested jobs would never run. *)
        let rec wait () =
          Mutex.lock done_m;
          let finished = !completed = n in
          Mutex.unlock done_m;
          if not finished then begin
            Mutex.lock t.m;
            let stolen =
              if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)
            in
            Mutex.unlock t.m;
            (match stolen with
            | Some job ->
                job ();
                (* The caller domain cannot be killed — it owns the map. A
                   loss signalled from a stolen job is absorbed as an
                   instant restart, mirroring the sequential pool. *)
                let lost = Domain.DLS.get lost_flag in
                let died = !lost in
                lost := false;
                Mutex.lock t.m;
                t.jobs_completed <- t.jobs_completed + 1;
                if died then t.restarts <- t.restarts + 1;
                Mutex.unlock t.m
            | None ->
                Mutex.lock done_m;
                if !completed < n then Condition.wait done_c done_m;
                Mutex.unlock done_m);
            wait ()
          end
        in
        wait ();
        Array.to_list
          (Array.map
             (function
               | Some (Ok v) -> v
               | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
               | None -> assert false)
             results)

let stats (t : t) =
  Mutex.lock t.m;
  let s =
    {
      domains = t.domains;
      jobs_completed = t.jobs_completed;
      busy_s = t.busy_s;
      wall_s = Unix.gettimeofday () -. t.created_at;
      restarts = t.restarts;
    }
  in
  Mutex.unlock t.m;
  s

let utilization s =
  if s.domains = 0 || s.wall_s <= 0. then 0.
  else Stdlib.min 1. (s.busy_s /. (s.wall_s *. float_of_int s.domains))

let shutdown (t : t) =
  Mutex.lock t.m;
  let workers = t.workers in
  t.stopping <- true;
  t.workers <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  List.iter Domain.join workers
