(** Supervised execution over a {!Pool}: worker-domain fault tolerance for
    seeded sweeps.

    {!Pool.map} is fail-stop: the first task exception kills the whole map
    and every completed result with it, and a lost worker domain is not a
    concept it has. The supervisor adds the missing boundary. Every task
    runs under an exception/chaos boundary with a bounded per-task retry
    budget:

    - a {e worker-domain loss} (drawn from a seeded, deterministic [plan] —
      see [Resilience.Chaos.worker_plan]) burns the attempt — before the
      body runs ({!At_dispatch}) or after it, losing only the result
      ({!In_flight}) — really kills the worker domain when a pool is
      present ({!Pool.lose_current_worker}; a replacement is spawned), and
      re-dispatches the task;
    - a {e task exception} is caught at the boundary and the task is
      re-dispatched;
    - a task that exhausts its budget is recorded as {!Abandoned} — data,
      not an exception, so one poisoned seed can no longer destroy a
      20-seed sweep's completed work.

    Determinism: results come back in input order, the loss plan is keyed
    on a caller-chosen stable index (not on scheduling), and with no plan
    and no exceptions [map f xs] is exactly
    [List.map (fun x -> Completed (f x)) xs] on the same pool — so rate-0
    supervised sweeps are byte-identical to the raw {!Pool.map} output. *)

type 'b outcome =
  | Completed of 'b
  | Abandoned of { attempts : int; reason : string }
      (** The retry budget is spent; [reason] is the last loss or the
          printed exception. *)

val completed : 'b outcome -> 'b option
val abandoned : 'b outcome -> bool

type policy = { max_attempts : int  (** Dispatches per task, >= 1. *) }

val default_policy : policy
(** 4 attempts: survives three consecutive losses of the same task, which
    at the C2 acceptance rate (0.2 per dispatch) makes abandonment a
    sub-percent event per task. *)

type loss =
  | At_dispatch
      (** The domain dies before the task body runs: the attempt costs
          nothing but the dispatch. *)
  | In_flight
      (** The domain dies mid-task: the body runs to completion (side
          effects included, exceptions swallowed) but its result is lost
          with the domain. The retry re-runs work that already happened —
          the at-least-once delivery case every checkpoint codec must
          tolerate. *)

type plan = index:int -> attempt:int -> loss option
(** [plan ~index ~attempt] decides whether — and how — the worker domain
    dispatching attempt [attempt] (1-based) of task [index] is lost
    ([None] = survives). Must be pure and order-independent — it is
    consulted from worker domains in whatever order the pool schedules. *)

val run_one :
  ?pool:Pool.t -> ?plan:plan -> ?policy:policy -> index:int -> (unit -> 'b) ->
  'b outcome
(** Supervise a single task (the sequential seed loops of the CLI). *)

val map :
  ?pool:Pool.t ->
  ?plan:plan ->
  ?policy:policy ->
  ?index_of:('a -> int) ->
  ('a -> 'b) ->
  'a list ->
  'b outcome list
(** Supervised {!Pool.map}: input order preserved, never raises from a task.
    [index_of] gives each task its stable plan index (default: its list
    position); sweeps pass the seed itself so a resumed sweep draws the
    same schedule for the seeds it re-runs. *)

(** {2 Process-wide counters}

    Global atomics like [Resilience.Stats]: they aggregate across every
    supervised map and every worker domain since the last {!reset}, feed
    [Cosynth.Metrics.perf], and never influence control flow. *)

type counters = {
  dispatched : int;  (** Task dispatches, including re-dispatches. *)
  completed : int;  (** Tasks that returned a value. *)
  losses : int;  (** Worker-domain losses drawn from the plan. *)
  requeues : int;  (** Re-dispatches after a loss or an exception. *)
  task_exceptions : int;  (** Exceptions caught at the boundary. *)
  abandoned : int;  (** Tasks that exhausted their budget. *)
}

val zero : counters
val stats : unit -> counters
val diff : counters -> counters -> counters
(** [diff before after]: the deltas for a measured section. *)

val reset : unit -> unit
