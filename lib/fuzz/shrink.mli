(** Greedy delta-debugging minimizer for failing fuzz inputs. *)

val minimize : ?max_checks:int -> still_failing:(string -> bool) -> string -> string
(** [minimize ~still_failing input] removes ever-smaller chunks (whole
    lines, then characters) while [still_failing] holds, calling the
    predicate at most [max_checks] (default 2000) times. The result is
    1-minimal at the character level when the budget suffices: removing any
    single remaining character makes the failure disappear. Returns [input]
    unchanged if it does not fail to begin with. *)
