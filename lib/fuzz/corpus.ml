(* The seed corpus: well-formed configurations in both dialects plus the
   llmsim's faulty drafts — the realistic starting points an LLM actually
   emits, which the mutator then pushes into adversarial territory. *)

type dialect = Cisco | Junos

let dialect_name = function Cisco -> "cisco" | Junos -> "junos"

let border_ir = lazy (fst (Cisco.Parser.parse Cisco.Samples.border_router))
let junos_ir = lazy (Juniper.Translate.of_cisco_ir (Lazy.force border_ir))

(* One faulty draft per fault opportunity, capped: each is the correct
   artifact with exactly one of the llmsim's Table 2 mistakes applied. *)
let faulty_drafts fault_dialect ir ~cap =
  let opportunities = Llmsim.Fault.opportunities fault_dialect ir in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | f :: rest -> Llmsim.Fault.render fault_dialect ir [ f ] :: take (n - 1) rest
  in
  take cap opportunities

let cisco_texts =
  lazy
    ([ Cisco.Samples.border_router; Cisco.Samples.minimal; Cisco.Samples.edge_router ]
    @ faulty_drafts Llmsim.Fault.Cisco_cfg (Lazy.force border_ir) ~cap:8)

let junos_texts =
  lazy
    (Juniper.Printer.print (Lazy.force junos_ir)
     :: faulty_drafts Llmsim.Fault.Junos_cfg (Lazy.force junos_ir) ~cap:8)

let texts = function
  | Cisco -> Lazy.force cisco_texts
  | Junos -> Lazy.force junos_texts

(* Stock reference IRs the property driver diffs fuzzed parses against. *)
let reference_ir = function
  | Cisco -> Lazy.force border_ir
  | Junos -> Lazy.force junos_ir
