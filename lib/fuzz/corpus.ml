(* The seed corpus: well-formed configurations in both dialects plus the
   llmsim's faulty drafts — the realistic starting points an LLM actually
   emits, which the mutator then pushes into adversarial territory. *)

type dialect = Cisco | Junos

let dialect_name = function Cisco -> "cisco" | Junos -> "junos"

let border_ir = lazy (fst (Cisco.Parser.parse Cisco.Samples.border_router))
let junos_ir = lazy (Juniper.Translate.of_cisco_ir (Lazy.force border_ir))

(* One faulty draft per fault opportunity, capped: each is the correct
   artifact with exactly one of the llmsim's Table 2 mistakes applied. *)
let faulty_drafts fault_dialect ir ~cap =
  let opportunities = Llmsim.Fault.opportunities fault_dialect ir in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | f :: rest -> Llmsim.Fault.render fault_dialect ir [ f ] :: take (n - 1) rest
  in
  take cap opportunities

let cisco_texts =
  lazy
    ([ Cisco.Samples.border_router; Cisco.Samples.minimal; Cisco.Samples.edge_router ]
    @ faulty_drafts Llmsim.Fault.Cisco_cfg (Lazy.force border_ir) ~cap:8)

let junos_texts =
  lazy
    (Juniper.Printer.print (Lazy.force junos_ir)
     :: faulty_drafts Llmsim.Fault.Junos_cfg (Lazy.force junos_ir) ~cap:8)

let texts = function
  | Cisco -> Lazy.force cisco_texts
  | Junos -> Lazy.force junos_texts

(* Stock reference IRs the property driver diffs fuzzed parses against. *)
let reference_ir = function
  | Cisco -> Lazy.force border_ir
  | Junos -> Lazy.force junos_ir

(* Topology dictionaries: the JSON the topology verifier consumes. Seeds
   are well-formed (the star generator at two sizes, one empty dictionary,
   one compact hand-written single-router file) — the mutator supplies the
   damage, starting from text a user or LLM could plausibly have
   produced. *)
let topology_texts =
  lazy
    (let star n =
       Netcore.Json.to_string ~pretty:true
         (Netcore.Star.to_json (Netcore.Star.make ~routers:n))
     in
     [
       star 3;
       star 5;
       {|{"routers":[],"links":[]}|};
       {|{"routers":[{"name":"R1","as":65001,"router_id":"10.0.0.1","interfaces":[{"interface":"GigabitEthernet0/0","address":"10.0.12.1","subnet":"10.0.12.0/30"}],"stub_networks":["10.1.0.0/16"]}],"links":[]}|};
     ])

(* Local-policy fragments: route maps with their prefix/community lists in
   the Cisco dialect, the text the semantic verifier's specs are written
   against. Kept fragment-sized so a 1–4-op mutation lands inside the
   policy rather than in unrelated stanzas. *)
let policy_texts =
  lazy
    [
      String.concat "\n"
        [
          "ip prefix-list private-ips seq 5 permit 10.0.0.0/8 le 32";
          "ip prefix-list our-networks seq 5 permit 1.2.3.0/24 ge 24";
          "route-map from_customer deny 100";
          " match ip address prefix-list private-ips";
          "route-map from_customer permit 200";
          " match ip address prefix-list our-networks";
        ];
      String.concat "\n"
        [
          "ip community-list standard cust-comm permit 100:1";
          "route-map to_provider permit 100";
          " match community cust-comm";
          " set community 100:2 additive";
          "route-map to_provider deny 200";
        ];
      String.concat "\n"
        [
          "ip prefix-list default-route seq 5 permit 0.0.0.0/0";
          "route-map from_provider permit 100";
          " match ip address prefix-list default-route";
          " set local-preference 90";
        ];
    ]

let topology_seeds () = Lazy.force topology_texts
let policy_seeds () = Lazy.force policy_texts
