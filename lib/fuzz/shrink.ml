(* Greedy delta-debugging minimizer: remove ever-smaller chunks (lines
   first, then characters) while the caller's predicate still fails. The
   predicate runs the crashing pipeline stage, so every probe is bounded by
   [max_checks] — minimization must never cost more than the fuzz run that
   found the crash. *)

let remove_slice l start len =
  List.filteri (fun i _ -> i < start || i >= start + len) l

(* One granularity pass: try deleting each chunk of [chunk] units, keeping
   any deletion under which the input still fails. Returns the reduced list
   and whether anything was removed. *)
let pass budget still_failing join units chunk =
  let removed = ref false in
  let rec go units start =
    if start >= List.length units || !budget <= 0 then units
    else begin
      let candidate = remove_slice units start chunk in
      decr budget;
      if candidate <> [] && still_failing (join candidate) then begin
        removed := true;
        (* The chunk at [start] is now different material; retry in place. *)
        go candidate start
      end
      else go units (start + chunk)
    end
  in
  let units = go units 0 in
  (units, !removed)

let shrink_units budget still_failing join units =
  let rec at_granularity units chunk =
    if chunk < 1 || !budget <= 0 then units
    else
      let units, removed = pass budget still_failing join units chunk in
      if removed then at_granularity units chunk
      else at_granularity units (chunk / 2)
  in
  let n = List.length units in
  if n <= 1 then units else at_granularity units (max 1 (n / 2))

let explode s = List.init (String.length s) (String.get s)

let implode cs =
  let b = Buffer.create (List.length cs) in
  List.iter (Buffer.add_char b) cs;
  Buffer.contents b

(* Character-level shrinking is quadratic in the candidate length; past
   this size the line-level result is already the useful artifact. *)
let char_stage_max = 4096

let minimize ?(max_checks = 2000) ~still_failing input =
  if not (still_failing input) then input
  else begin
    let budget = ref max_checks in
    let ls =
      shrink_units budget still_failing
        (String.concat "\n")
        (String.split_on_char '\n' input)
    in
    let by_lines = String.concat "\n" ls in
    if String.length by_lines > char_stage_max then by_lines
    else implode (shrink_units budget still_failing implode (explode by_lines))
  end
