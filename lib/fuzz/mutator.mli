(** Seeded deterministic mutation over config text.

    Every mutant is a pure function of [(seed, round, corpus)]: the fuzzer
    reports crashes as two integers, and replaying them regenerates the
    exact input. Operators model realistic LLM damage (truncation,
    duplicated/dropped lines, swapped lines, interleaved prose/CLI noise,
    pathological numbers, cross-config splices) plus raw bitflips. *)

val max_mutant_bytes : int
(** Mutants are clipped to this size so a runaway splice chain cannot turn
    the fuzz budget into an allocation benchmark. *)

val mutate : Llmsim.Rng.t -> corpus:string list -> string -> string
(** Apply one randomly chosen operator. Total: never raises, any input. *)

val mutant : seed:int -> round:int -> corpus:string list -> string
(** The deterministic entry point: pick a corpus base and apply 1–4
    operators, all drawn from the [(seed, round)] stream (disjoint by
    construction from every {!Resilience.Chaos} stream). *)
