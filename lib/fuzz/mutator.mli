(** Seeded deterministic mutation over config text.

    Every mutant is a pure function of [(seed, round, corpus)]: the fuzzer
    reports crashes as two integers, and replaying them regenerates the
    exact input. Operators model realistic LLM damage (truncation,
    duplicated/dropped lines, swapped lines, interleaved prose/CLI noise,
    pathological numbers, cross-config splices) plus raw bitflips. *)

val max_mutant_bytes : int
(** Mutants are clipped to this size so a runaway splice chain cannot turn
    the fuzz budget into an allocation benchmark. *)

val mutate : Llmsim.Rng.t -> corpus:string list -> string -> string
(** Apply one randomly chosen operator. Total: never raises, any input. *)

val mutant : seed:int -> round:int -> corpus:string list -> string
(** The deterministic entry point: pick a corpus base and apply 1–4
    operators, all drawn from the [(seed, round)] stream (disjoint by
    construction from every {!Resilience.Chaos} stream). *)

(** {2 Weighted scheduling}

    Coverage-guided operator bias for a fuzz campaign: operators that
    participated in crashing inputs (especially ones that opened a
    previously unseen crash bucket) are drawn more often. Weights have a
    floor of 1, so no operator is ever starved. Mutants remain a pure
    function of [(seed, round, corpus)] {e given the history so far} —
    replaying a campaign from its seed list regenerates identical inputs
    and scores. *)

val n_ops : int
(** Number of operators, splice included. *)

val op_name : int -> string

type history
(** Mutable per-operator scores for one campaign. *)

val history : unit -> history
(** A fresh all-zero history (uniform schedule). *)

val reward : history -> op:int -> int -> unit
(** Add points to an operator's score (the fuzz driver pays 1 per crashing
    input an operator touched, 2 when it opened a new crash bucket). *)

val score : history -> op:int -> int

val weighted_mutant :
  seed:int -> round:int -> corpus:string list -> history:history -> string * int list
(** Like {!mutant} but drawing operators from the weighted schedule;
    returns the mutant plus the operator indices applied, in order, so the
    driver can reward them. *)
