(* Seeded deterministic mutation: every mutant is a pure function of
   (seed, round, corpus), so any crash the fuzzer finds is replayable from
   two integers. The operators mirror how LLM drafts actually go wrong —
   truncated output, duplicated/dropped stanzas, swapped tokens, stray CLI
   noise, absurd numbers — plus raw bitflips for the adversarial tail. *)

let max_mutant_bytes = 65_536

(* Stray tokens an LLM plausibly interleaves with config text: prose, CLI
   prompt echoes, stray braces and delimiters, pathological numbers. *)
let dictionary =
  [
    "!";
    "{";
    "}";
    "}\n}";
    "{ {";
    ";";
    "#";
    "<<<<<<<";
    "Sure, here is the configuration:";
    "```";
    "end";
    "exit";
    "configure terminal";
    "router bgp";
    "neighbor";
    "route-map";
    "permit";
    "deny";
    "ip prefix-list";
    "set community";
    "match ip address";
    "interface";
    "0.0.0.0";
    "255.255.255.255";
    "999999999999999999";
    "-1";
    "4294967296";
    "/33";
    "/0";
    "\xff\xfe";
    "\x00";
    "\t\t\t";
  ]

let clip s =
  if String.length s <= max_mutant_bytes then s else String.sub s 0 max_mutant_bytes

let lines s = String.split_on_char '\n' s
let unlines ls = String.concat "\n" ls

(* Uniform index into a non-empty list/string; callers guard emptiness. *)
let pick rng n = Llmsim.Rng.int rng (max 1 n)

let bitflip rng s =
  if s = "" then s
  else begin
    let b = Bytes.of_string s in
    let i = pick rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl pick rng 8)));
    Bytes.to_string b
  end

let truncate rng s = if s = "" then s else String.sub s 0 (pick rng (String.length s))

let dup_line rng s =
  let ls = lines s in
  let n = List.length ls in
  let i = pick rng n in
  let reps = 1 + pick rng 3 in
  unlines
    (List.concat
       (List.mapi
          (fun j l -> if j = i then List.init (reps + 1) (fun _ -> l) else [ l ])
          ls))

let del_line rng s =
  let ls = lines s in
  match ls with
  | [] | [ _ ] -> s
  | _ ->
      let i = pick rng (List.length ls) in
      unlines (List.filteri (fun j _ -> j <> i) ls)

let token_swap rng s =
  let ls = lines s in
  let n = List.length ls in
  if n < 2 then s
  else begin
    let i = pick rng n and j = pick rng n in
    unlines
      (List.mapi
         (fun k l -> if k = i then List.nth ls j else if k = j then List.nth ls i else l)
         ls)
  end

let splice rng ~corpus s =
  match corpus with
  | [] -> s
  | _ ->
      let other = List.nth corpus (pick rng (List.length corpus)) in
      if s = "" || other = "" then s ^ other
      else
        let keep = pick rng (String.length s) in
        let cut = pick rng (String.length other) in
        String.sub s 0 keep ^ String.sub other cut (String.length other - cut)

let insert_noise rng s =
  let tok = List.nth dictionary (pick rng (List.length dictionary)) in
  if s = "" then tok
  else
    let i = pick rng (String.length s + 1) in
    String.sub s 0 i ^ tok ^ String.sub s i (String.length s - i)

(* Replace one digit run with a pathological number. *)
let num_extreme rng s =
  let extremes = [ "0"; "-1"; "4294967296"; "999999999999999999"; "65536"; "033" ] in
  let n = String.length s in
  let rec first_digit i = if i >= n then None else if s.[i] >= '0' && s.[i] <= '9' then Some i else first_digit (i + 1) in
  (* Start the scan at a random offset so different rounds hit different
     numbers in the same base text. *)
  match first_digit (pick rng (max 1 n)) with
  | None -> s
  | Some i ->
      let j = ref i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      String.sub s 0 i
      ^ List.nth extremes (pick rng (List.length extremes))
      ^ String.sub s !j (n - !j)

let ops =
  [ bitflip; truncate; dup_line; del_line; token_swap; insert_noise; num_extreme ]

(* The splice operator lives at index [List.length ops] — it has a
   different shape (needs the corpus), so it sits past the plain ops. *)
let n_ops = List.length ops + 1

let op_names =
  [|
    "bitflip"; "truncate"; "dup-line"; "del-line"; "token-swap"; "insert-noise";
    "num-extreme"; "splice";
  |]

let op_name k = if k >= 0 && k < n_ops then op_names.(k) else "?"

let apply rng ~corpus k s =
  clip (if k = List.length ops then splice rng ~corpus s else (List.nth ops k) rng s)

let mutate rng ~corpus s = apply rng ~corpus (Llmsim.Rng.int rng n_ops) s

(* The (seed, round) stream: a distinct odd multiplier pair keeps it
   disjoint from every chaos/jitter/worker stream in Resilience.Chaos. *)
let stream_seed ~seed ~round = (seed * 2_654_435_761) + (round * 40_503) + 19

let mutant ~seed ~round ~corpus =
  let rng = Llmsim.Rng.make (stream_seed ~seed ~round) in
  match corpus with
  | [] -> ""
  | _ ->
      let base = List.nth corpus (pick rng (List.length corpus)) in
      let n_ops = 1 + Llmsim.Rng.int rng 4 in
      let rec go n s = if n = 0 then s else go (n - 1) (mutate rng ~corpus s) in
      go n_ops base

(* ------------------------------------------------------------------ *)
(* Weighted scheduling                                                  *)
(* ------------------------------------------------------------------ *)

(* Coverage-guided operator bias: the campaign keeps a score per operator,
   bumped when an operator participated in a crashing input (more for one
   that opened a previously unseen crash bucket). Operator k is drawn with
   weight [1 + score k] — the +1 floor keeps every operator live, so the
   bias can never starve an operator out of the schedule entirely.

   The draws still come from the same [(seed, round)] stream, so a mutant
   is a pure function of (seed, round, corpus, history-so-far): replaying a
   campaign from its seed list regenerates the identical inputs, scores and
   crashes. *)

type history = { scores : int array }

let history () = { scores = Array.make n_ops 0 }
let reward h ~op points = if op >= 0 && op < n_ops then h.scores.(op) <- h.scores.(op) + points
let score h ~op = if op >= 0 && op < n_ops then h.scores.(op) else 0

let weighted_pick rng h =
  let total = Array.fold_left (fun acc s -> acc + 1 + s) 0 h.scores in
  let r = Llmsim.Rng.int rng total in
  let rec go k acc =
    let acc = acc + 1 + h.scores.(k) in
    if r < acc || k = n_ops - 1 then k else go (k + 1) acc
  in
  go 0 0

let weighted_mutant ~seed ~round ~corpus ~history =
  let rng = Llmsim.Rng.make (stream_seed ~seed ~round) in
  match corpus with
  | [] -> ("", [])
  | _ ->
      let base = List.nth corpus (pick rng (List.length corpus)) in
      let rounds = 1 + Llmsim.Rng.int rng 4 in
      let rec go n s applied =
        if n = 0 then (s, List.rev applied)
        else
          let k = weighted_pick rng history in
          go (n - 1) (apply rng ~corpus k s) (k :: applied)
      in
      go rounds base []
