(* The totality properties: every stage of the pipeline, run on arbitrary
   mutated config text behind the Guard firewall. Any [Error] from Guard —
   or a broken print/parse fixpoint — is an escape the F1 gate fails on. *)

type violation = {
  property : string;
  stage : string;
  constructor : string;
  detail : string;
}

type escape = {
  dialect : Corpus.dialect;
  violation : violation;
  fingerprint : string;
  seed : int;  (** [-1] for corpus replays. *)
  round : int;
  input : string;
  minimized : string;
}

let escape_to_string e =
  Printf.sprintf "[%s] %s: %s in %s (%s) seed=%d round=%d input=%s (%dB, min %dB)"
    (Corpus.dialect_name e.dialect)
    e.violation.property e.violation.constructor e.violation.stage
    e.violation.detail e.seed e.round e.fingerprint (String.length e.input)
    (String.length e.minimized)

let parse_fn = function
  | Corpus.Cisco -> Cisco.Parser.parse
  | Corpus.Junos -> Juniper.Parser.parse

let print_fn = function
  | Corpus.Cisco -> Cisco.Printer.print
  | Corpus.Junos -> Juniper.Printer.print

let guard ~label ~input f =
  Resilience.Guard.run ~label
    ~fingerprint:(Resilience.Guard.fingerprint_string input)
    f

(* The sims run the fuzzed parse as one spoke of a 3-router star, with the
   stock reference as the hub — arbitrary configs inside a well-formed
   topology, which is exactly what the VPP global phase feeds them. *)
let sim_net ir =
  let star = Netcore.Star.make ~routers:3 in
  {
    Batfish.Net.topology = star.Netcore.Star.topology;
    configs = [ (star.Netcore.Star.hub, Corpus.reference_ir Corpus.Cisco); ("R2", ir) ];
  }

let check dialect s =
  let dname = Corpus.dialect_name dialect in
  let violations = ref [] in
  let fail property stage constructor detail =
    violations := { property; stage; constructor; detail } :: !violations
  in
  let crash property (c : Resilience.Guard.crash) =
    fail property c.Resilience.Guard.stage c.Resilience.Guard.constructor
      c.Resilience.Guard.message
  in
  (match guard ~label:(dname ^ "-parse") ~input:s (fun () -> parse_fn dialect s) with
  | Error c -> crash "total-parse" c
  | Ok (ir, diags) ->
      (* Round trip: print the parse, reparse, reprint — the two printed
         forms must agree when the first parse was clean (parse∘print is a
         fixpoint on the parser's own output). *)
      (if not (List.exists Netcore.Diag.is_error diags) then
         match guard ~label:(dname ^ "-print") ~input:s (fun () -> print_fn dialect ir) with
         | Error c -> crash "total-print" c
         | Ok printed -> (
             match
               guard ~label:(dname ^ "-reparse") ~input:printed (fun () ->
                   parse_fn dialect printed)
             with
             | Error c -> crash "print-reparse" c
             | Ok (ir2, _) -> (
                 match
                   guard ~label:(dname ^ "-reprint") ~input:printed (fun () ->
                       print_fn dialect ir2)
                 with
                 | Error c -> crash "print-reparse" c
                 | Ok printed2 ->
                     if printed2 <> printed then
                       fail "print-fixpoint" (dname ^ "-print") "Fixpoint_violation"
                         (Printf.sprintf
                            "print/reparse/print drifted (%dB vs %dB)"
                            (String.length printed) (String.length printed2)))));
      (* The differ must accept any guarded parse on either side. *)
      let reference = Corpus.reference_ir dialect in
      (match
         guard ~label:"campion-diff" ~input:s (fun () ->
             ignore (Campion.Differ.compare ~original:reference ~translation:ir);
             ignore (Campion.Differ.compare ~original:ir ~translation:reference))
       with
      | Error c -> crash "total-differ" c
      | Ok () -> ());
      (* Both sims must converge (or reject structurally) on any guarded
         parse placed into a well-formed topology. *)
      let net = sim_net ir in
      (match guard ~label:"bgp-sim" ~input:s (fun () -> ignore (Batfish.Bgp_sim.run net)) with
      | Error c -> crash "total-bgp-sim" c
      | Ok () -> ());
      match guard ~label:"ospf-sim" ~input:s (fun () -> ignore (Batfish.Ospf_sim.run net)) with
      | Error c -> crash "total-ospf-sim" c
      | Ok () -> ());
  List.rev !violations

(* Minimize against "the same property still fails at the same stage". *)
let still_failing_pred dialect (v : violation) s =
  List.exists
    (fun v' -> v'.property = v.property && v'.stage = v.stage)
    (check dialect s)

let finalize ?(minimize = true) ?(max_checks = 800) dialect ~seed ~round input v =
  {
    dialect;
    violation = v;
    fingerprint = Resilience.Guard.fingerprint_string input;
    seed;
    round;
    input;
    minimized =
      (if minimize then
         Shrink.minimize ~max_checks ~still_failing:(still_failing_pred dialect v) input
       else input);
  }

type report = { dialect : Corpus.dialect; inputs : int; escapes : escape list }

(* Only the first few escapes get the (expensive) minimizer; the rest are
   reported raw — by then the gate has already failed. *)
let minimize_cap = 5

(* The campaign loop, generic over the checker and corpus so the topology
   and policy targets reuse it. With [?schedule] the mutants come from the
   weighted schedule and each crashing input pays its operators: 1 point
   each, 2 when the input opened a (stage, constructor) bucket this
   campaign had not seen. Without a schedule the loop is exactly the
   uniform fuzzer. *)
let run_campaign ?schedule dialect ~checker ~corpus ~seeds ~mutations =
  let inputs = ref 0 and escapes = ref [] and minimized = ref 0 in
  let seen_buckets = Hashtbl.create 16 in
  let still_failing (v : violation) s =
    List.exists (fun v' -> v'.property = v.property && v'.stage = v.stage) (checker s)
  in
  let finalize_v ~seed ~round m v =
    let do_min = !minimized < minimize_cap in
    if do_min then incr minimized;
    {
      dialect;
      violation = v;
      fingerprint = Resilience.Guard.fingerprint_string m;
      seed;
      round;
      input = m;
      minimized =
        (if do_min then Shrink.minimize ~max_checks:800 ~still_failing:(still_failing v) m
         else m);
    }
  in
  List.iter
    (fun seed ->
      for round = 0 to mutations - 1 do
        incr inputs;
        let m, ops_used =
          match schedule with
          | None -> (Mutator.mutant ~seed ~round ~corpus, [])
          | Some h -> Mutator.weighted_mutant ~seed ~round ~corpus ~history:h
        in
        let vs = checker m in
        (match (schedule, vs) with
        | Some h, _ :: _ ->
            let fresh =
              List.exists
                (fun (v : violation) ->
                  let key = (v.stage, v.constructor) in
                  if Hashtbl.mem seen_buckets key then false
                  else begin
                    Hashtbl.replace seen_buckets key ();
                    true
                  end)
                vs
            in
            List.iter (fun op -> Mutator.reward h ~op (if fresh then 2 else 1)) ops_used
        | _ -> ());
        List.iter (fun v -> escapes := finalize_v ~seed ~round m v :: !escapes) vs
      done)
    seeds;
  { dialect; inputs = !inputs; escapes = List.rev !escapes }

let run ?schedule dialect ~seeds ~mutations =
  run_campaign ?schedule dialect ~checker:(check dialect) ~corpus:(Corpus.texts dialect)
    ~seeds ~mutations

(* ------------------------------------------------------------------ *)
(* Structured-text targets: topology dictionaries, policy fragments     *)
(* ------------------------------------------------------------------ *)

let crash_violation property (c : Resilience.Guard.crash) =
  {
    property;
    stage = c.Resilience.Guard.stage;
    constructor = c.Resilience.Guard.constructor;
    detail = c.Resilience.Guard.message;
  }

(* The topology verifier consumes an arbitrary JSON text: a parse failure
   must come back as [Error], a parseable dictionary must verify (or
   structurally reject) any router against any config, and neither step may
   raise. *)
let check_topology s =
  let violations = ref [] in
  let crash property c = violations := crash_violation property c :: !violations in
  (match guard ~label:"topology-json" ~input:s (fun () -> Netcore.Json.of_string s) with
  | Error c -> crash "total-topology-json" c
  | Ok (Error _) -> ()
  | Ok (Ok json) -> (
      let ir = Corpus.reference_ir Corpus.Cisco in
      match
        guard ~label:"topology-verify" ~input:s (fun () ->
            ignore (Topoverify.Verifier.check_from_json json ~router:"R1" ir);
            ignore (Topoverify.Verifier.check_from_json json ~router:"R9" ir))
      with
      | Error c -> crash "total-topoverify" c
      | Ok () -> ()));
  List.rev !violations

(* Specs for the policy target: written against the route maps in
   {!Corpus.policy_seeds}, but total against whatever the mutant actually
   parses to — a renamed map is just [Policy_missing]. *)
let policy_specs =
  lazy
    (List.map
       (fun (policy, requirement) ->
         {
           Batfish.Search_route_policies.policy;
           space = Symbolic.Pred.full;
           requirement;
           description = "any route";
         })
       [
         ("from_customer", Batfish.Search_route_policies.Permits);
         ("to_provider", Batfish.Search_route_policies.Denies);
         ("from_provider", Batfish.Search_route_policies.Permits);
       ])

let check_policy s =
  let violations = ref [] in
  let crash property c = violations := crash_violation property c :: !violations in
  (match guard ~label:"policy-parse" ~input:s (fun () -> Cisco.Parser.parse s) with
  | Error c -> crash "total-policy-parse" c
  | Ok (ir, _) -> (
      match
        guard ~label:"policy-check" ~input:s (fun () ->
            ignore (Batfish.Search_route_policies.check_all ir (Lazy.force policy_specs)))
      with
      | Error c -> crash "total-policy-check" c
      | Ok () -> ()));
  List.rev !violations

let run_topology ?schedule ~seeds ~mutations () =
  run_campaign ?schedule Corpus.Cisco ~checker:check_topology
    ~corpus:(Corpus.topology_seeds ()) ~seeds ~mutations

let run_policy ?schedule ~seeds ~mutations () =
  run_campaign ?schedule Corpus.Cisco ~checker:check_policy
    ~corpus:(Corpus.policy_seeds ()) ~seeds ~mutations

(* ------------------------------------------------------------------ *)
(* Loop-level totality: corrupted findings, the full loop under attack  *)
(* ------------------------------------------------------------------ *)

(* Realistic humanizer outputs the corruption layer then mangles — the
   mutator starts from text shaped like what the drivers actually emit. *)
let finding_messages =
  [
    "There is a syntax error: 'route-map from_customer permit'";
    "The route-map to_provider permits routes that have the community 100:1. \
     However, they should be denied.";
    "The interface GigabitEthernet0/0 has address 10.0.12.1 but the topology \
     dictionary specifies 10.0.12.2.";
    "The neighbor 10.0.12.2 is missing from the BGP configuration.";
    "[human] Rewrite the to_provider route map from scratch.";
  ]

let fuzz_corrupted_findings ~mode ~seed ~cases =
  let config =
    Adversary.Findings.with_rate (Adversary.Findings.make ~seed ()) mode 1.0
  in
  let fsim = Adversary.Findings.create config in
  let junos_ir = Corpus.reference_ir Corpus.Junos in
  let refs =
    match Llmsim.Fault.opportunities Llmsim.Fault.Junos_cfg junos_ir with
    | [] -> []
    | f :: _ -> [ f ]
  in
  let violations = ref [] in
  let crash property c = violations := crash_violation property c :: !violations in
  for round = 0 to cases - 1 do
    let text = Mutator.mutant ~seed ~round ~corpus:finding_messages in
    let pairs =
      match
        guard ~label:"findings-corrupt" ~input:text (fun () ->
            Adversary.Findings.corrupt fsim ~text ~refs)
      with
      | Error c ->
          crash "total-corrupt" c;
          []
      | Ok pairs -> pairs
    in
    List.iter
      (fun (text', refs') ->
        (* The humanizer templates must accept a garbled diagnostic. *)
        (match
           guard ~label:"humanizer-of-diag" ~input:text' (fun () ->
               ignore (Cosynth.Humanizer.of_diag (Netcore.Diag.error text')))
         with
        | Error c -> crash "total-humanizer" c
        | Ok () -> ());
        (* And the chat (the loop's consumer) must absorb the corrupted
           prompt without raising. *)
        match
          guard ~label:"chat-respond" ~input:text' (fun () ->
              let chat =
                Llmsim.Chat.start ~seed Llmsim.Fault.Junos_cfg ~correct:junos_ir
              in
              Llmsim.Chat.respond chat
                { Llmsim.Chat.text = text'; refs = refs'; strength = Llmsim.Chat.Auto })
        with
        | Error c -> crash "total-chat-respond" c
        | Ok () -> ())
      pairs
  done;
  List.rev !violations

let loop_budget = 40

let fuzz_loop ~mode ~seed ~rate =
  let llm = Adversary.Llm.with_rate (Adversary.Llm.make ~seed ()) mode rate in
  let adversary = Adversary.Spec.make ~llm () in
  match
    Resilience.Guard.run ~label:"vpp-loop" ~fingerprint:(string_of_int seed) (fun () ->
        Cosynth.Driver.run_translation ~seed ~max_prompts:loop_budget ~adversary
          ~cisco_text:Cisco.Samples.border_router ())
  with
  | Error c -> [ crash_violation "total-loop" c ]
  | Ok r ->
      let t = r.Cosynth.Driver.transcript in
      let violations = ref [] in
      let fail property detail =
        violations :=
          { property; stage = "vpp-loop"; constructor = "Invariant"; detail }
          :: !violations
      in
      let prompts = t.Cosynth.Driver.auto_prompts + t.Cosynth.Driver.human_prompts in
      if prompts > loop_budget then
        fail "loop-budget"
          (Printf.sprintf "%d prompts exceed max_prompts=%d" prompts loop_budget);
      (match (Adversary.Spec.is_none adversary, t.Cosynth.Driver.certificate) with
      | false, None ->
          fail "loop-certificate" "hardened run produced no convergence certificate"
      | true, Some _ ->
          fail "loop-certificate" "rate-0 run produced a certificate (identity broken)"
      | _ -> ());
      List.rev !violations

(* ------------------------------------------------------------------ *)
(* Regression corpus replay                                            *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let dialect_of_filename name =
  if String.length name >= 6 && String.sub name 0 6 = "junos-" then Corpus.Junos
  else Corpus.Cisco

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* A promoted crasher's name, modulo the dialect prefix replay keys on. *)
let is_promoted_filename name =
  let base =
    if starts_with "junos-" name then String.sub name 6 (String.length name - 6)
    else name
  in
  starts_with "promoted-" base

let replay_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    let all =
      Sys.readdir dir |> Array.to_list |> List.sort compare
      |> List.filter (fun f -> Filename.check_suffix f ".txt")
    in
    (* Promoted entries replay first: the youngest regressions are the most
       likely to resurface, so a broken gate fails on them before spending
       the budget on the long-stable hand-written seeds. *)
    let promoted, stable = List.partition is_promoted_filename all in
    promoted @ stable
    |> List.map (fun f ->
           let s = read_file (Filename.concat dir f) in
           let dialect = dialect_of_filename f in
           let escapes =
             List.map
               (fun v -> finalize ~minimize:false dialect ~seed:(-1) ~round:(-1) s v)
               (check dialect s)
           in
           (f, escapes))

(* ------------------------------------------------------------------ *)
(* Corpus promotion                                                    *)
(* ------------------------------------------------------------------ *)

(* One file per (stage, constructor) triage bucket, the bucket slug baked
   into the filename so promotion stays idempotent across campaigns without
   replaying the directory to find out what it already covers. *)
let bucket_slug (v : violation) =
  let slug s =
    String.concat "-"
      (List.filter
         (fun part -> part <> "")
         (String.split_on_char '-'
            (String.map
               (fun c ->
                 match Char.lowercase_ascii c with
                 | ('a' .. 'z' | '0' .. '9') as c -> c
                 | _ -> '-')
               s)))
  in
  slug (v.stage ^ "-" ^ v.constructor)

let promoted_filename (e : escape) =
  let prefix = match e.dialect with Corpus.Junos -> "junos-" | Corpus.Cisco -> "" in
  prefix ^ "promoted-" ^ bucket_slug e.violation ^ ".txt"

let promote ~dir escapes =
  if escapes <> [] && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let covered = Hashtbl.create 16 in
  (if Sys.file_exists dir && Sys.is_directory dir then
     Array.iter
       (fun f ->
         if is_promoted_filename f && Filename.check_suffix f ".txt" then
           let base =
             if starts_with "junos-" f then String.sub f 6 (String.length f - 6)
             else f
           in
           Hashtbl.replace covered (Filename.chop_suffix base ".txt") ())
       (Sys.readdir dir));
  List.filter_map
    (fun e ->
      let key = "promoted-" ^ bucket_slug e.violation in
      if Hashtbl.mem covered key then None
      else begin
        let name = promoted_filename e in
        (* Atomic (temp + fsync + rename): a crash mid-promotion leaves
           either no file or the whole crasher, never a truncated seed
           F1 would then replay as a bogus corpus entry. The leftover
           [*.tmp] a crash can leave is invisible to [replay_dir] (no
           [.txt] suffix). The bucket is marked covered only on success,
           so a failed write retries on the campaign's next escape. *)
        if Resilience.Store.write_atomic (Filename.concat dir name) e.minimized
        then begin
          Hashtbl.replace covered key ();
          Some (name, e)
        end
        else None
      end)
    escapes

(* ------------------------------------------------------------------ *)
(* The planted-bug canary                                              *)
(* ------------------------------------------------------------------ *)

(* A deliberately buggy parser front end: raises on any non-ASCII byte.
   The fuzzer must find it, the shrinker must reduce the trigger to a
   handful of bytes, and the report must carry stage + constructor +
   fingerprint — the end-to-end demonstration that a real parser bug
   cannot hide. *)
let planted_parse s =
  if String.exists (fun c -> Char.code c >= 0x80) s then
    failwith "planted parser bug: choked on a non-ASCII byte"
  else ignore (Cisco.Parser.parse s)

let canary ?(max_rounds = 2000) () =
  let corpus = Corpus.texts Corpus.Cisco in
  let crashes s =
    match
      guard ~label:"cisco-parse/planted" ~input:s (fun () -> planted_parse s)
    with
    | Ok () -> None
    | Error c -> Some c
  in
  let rec hunt round =
    if round >= max_rounds then None
    else
      let m = Mutator.mutant ~seed:1 ~round ~corpus in
      match crashes m with Some c -> Some (round, m, c) | None -> hunt (round + 1)
  in
  match hunt 0 with
  | None -> Error "canary: planted bug never triggered within the budget"
  | Some (round, input, c) ->
      let minimized =
        Shrink.minimize ~still_failing:(fun s -> crashes s <> None) input
      in
      Ok
        {
          dialect = Corpus.Cisco;
          violation =
            {
              property = "canary";
              stage = c.Resilience.Guard.stage;
              constructor = c.Resilience.Guard.constructor;
              detail = c.Resilience.Guard.message;
            };
          fingerprint = c.Resilience.Guard.fingerprint;
          seed = 1;
          round;
          input;
          minimized;
        }
