(* The totality properties: every stage of the pipeline, run on arbitrary
   mutated config text behind the Guard firewall. Any [Error] from Guard —
   or a broken print/parse fixpoint — is an escape the F1 gate fails on. *)

type violation = {
  property : string;
  stage : string;
  constructor : string;
  detail : string;
}

type escape = {
  dialect : Corpus.dialect;
  violation : violation;
  fingerprint : string;
  seed : int;  (** [-1] for corpus replays. *)
  round : int;
  input : string;
  minimized : string;
}

let escape_to_string e =
  Printf.sprintf "[%s] %s: %s in %s (%s) seed=%d round=%d input=%s (%dB, min %dB)"
    (Corpus.dialect_name e.dialect)
    e.violation.property e.violation.constructor e.violation.stage
    e.violation.detail e.seed e.round e.fingerprint (String.length e.input)
    (String.length e.minimized)

let parse_fn = function
  | Corpus.Cisco -> Cisco.Parser.parse
  | Corpus.Junos -> Juniper.Parser.parse

let print_fn = function
  | Corpus.Cisco -> Cisco.Printer.print
  | Corpus.Junos -> Juniper.Printer.print

let guard ~label ~input f =
  Resilience.Guard.run ~label
    ~fingerprint:(Resilience.Guard.fingerprint_string input)
    f

(* The sims run the fuzzed parse as one spoke of a 3-router star, with the
   stock reference as the hub — arbitrary configs inside a well-formed
   topology, which is exactly what the VPP global phase feeds them. *)
let sim_net ir =
  let star = Netcore.Star.make ~routers:3 in
  {
    Batfish.Net.topology = star.Netcore.Star.topology;
    configs = [ (star.Netcore.Star.hub, Corpus.reference_ir Corpus.Cisco); ("R2", ir) ];
  }

let check dialect s =
  let dname = Corpus.dialect_name dialect in
  let violations = ref [] in
  let fail property stage constructor detail =
    violations := { property; stage; constructor; detail } :: !violations
  in
  let crash property (c : Resilience.Guard.crash) =
    fail property c.Resilience.Guard.stage c.Resilience.Guard.constructor
      c.Resilience.Guard.message
  in
  (match guard ~label:(dname ^ "-parse") ~input:s (fun () -> parse_fn dialect s) with
  | Error c -> crash "total-parse" c
  | Ok (ir, diags) ->
      (* Round trip: print the parse, reparse, reprint — the two printed
         forms must agree when the first parse was clean (parse∘print is a
         fixpoint on the parser's own output). *)
      (if not (List.exists Netcore.Diag.is_error diags) then
         match guard ~label:(dname ^ "-print") ~input:s (fun () -> print_fn dialect ir) with
         | Error c -> crash "total-print" c
         | Ok printed -> (
             match
               guard ~label:(dname ^ "-reparse") ~input:printed (fun () ->
                   parse_fn dialect printed)
             with
             | Error c -> crash "print-reparse" c
             | Ok (ir2, _) -> (
                 match
                   guard ~label:(dname ^ "-reprint") ~input:printed (fun () ->
                       print_fn dialect ir2)
                 with
                 | Error c -> crash "print-reparse" c
                 | Ok printed2 ->
                     if printed2 <> printed then
                       fail "print-fixpoint" (dname ^ "-print") "Fixpoint_violation"
                         (Printf.sprintf
                            "print/reparse/print drifted (%dB vs %dB)"
                            (String.length printed) (String.length printed2)))));
      (* The differ must accept any guarded parse on either side. *)
      let reference = Corpus.reference_ir dialect in
      (match
         guard ~label:"campion-diff" ~input:s (fun () ->
             ignore (Campion.Differ.compare ~original:reference ~translation:ir);
             ignore (Campion.Differ.compare ~original:ir ~translation:reference))
       with
      | Error c -> crash "total-differ" c
      | Ok () -> ());
      (* Both sims must converge (or reject structurally) on any guarded
         parse placed into a well-formed topology. *)
      let net = sim_net ir in
      (match guard ~label:"bgp-sim" ~input:s (fun () -> ignore (Batfish.Bgp_sim.run net)) with
      | Error c -> crash "total-bgp-sim" c
      | Ok () -> ());
      match guard ~label:"ospf-sim" ~input:s (fun () -> ignore (Batfish.Ospf_sim.run net)) with
      | Error c -> crash "total-ospf-sim" c
      | Ok () -> ());
  List.rev !violations

(* Minimize against "the same property still fails at the same stage". *)
let still_failing_pred dialect (v : violation) s =
  List.exists
    (fun v' -> v'.property = v.property && v'.stage = v.stage)
    (check dialect s)

let finalize ?(minimize = true) ?(max_checks = 800) dialect ~seed ~round input v =
  {
    dialect;
    violation = v;
    fingerprint = Resilience.Guard.fingerprint_string input;
    seed;
    round;
    input;
    minimized =
      (if minimize then
         Shrink.minimize ~max_checks ~still_failing:(still_failing_pred dialect v) input
       else input);
  }

type report = { dialect : Corpus.dialect; inputs : int; escapes : escape list }

(* Only the first few escapes get the (expensive) minimizer; the rest are
   reported raw — by then the gate has already failed. *)
let minimize_cap = 5

let run dialect ~seeds ~mutations =
  let corpus = Corpus.texts dialect in
  let inputs = ref 0 and escapes = ref [] and minimized = ref 0 in
  List.iter
    (fun seed ->
      for round = 0 to mutations - 1 do
        incr inputs;
        let m = Mutator.mutant ~seed ~round ~corpus in
        List.iter
          (fun v ->
            let do_min = !minimized < minimize_cap in
            if do_min then incr minimized;
            escapes := finalize ~minimize:do_min dialect ~seed ~round m v :: !escapes)
          (check dialect m)
      done)
    seeds;
  { dialect; inputs = !inputs; escapes = List.rev !escapes }

(* ------------------------------------------------------------------ *)
(* Regression corpus replay                                            *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let dialect_of_filename name =
  if String.length name >= 6 && String.sub name 0 6 = "junos-" then Corpus.Junos
  else Corpus.Cisco

let replay_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter (fun f -> Filename.check_suffix f ".txt")
    |> List.map (fun f ->
           let s = read_file (Filename.concat dir f) in
           let dialect = dialect_of_filename f in
           let escapes =
             List.map
               (fun v -> finalize ~minimize:false dialect ~seed:(-1) ~round:(-1) s v)
               (check dialect s)
           in
           (f, escapes))

(* ------------------------------------------------------------------ *)
(* The planted-bug canary                                              *)
(* ------------------------------------------------------------------ *)

(* A deliberately buggy parser front end: raises on any non-ASCII byte.
   The fuzzer must find it, the shrinker must reduce the trigger to a
   handful of bytes, and the report must carry stage + constructor +
   fingerprint — the end-to-end demonstration that a real parser bug
   cannot hide. *)
let planted_parse s =
  if String.exists (fun c -> Char.code c >= 0x80) s then
    failwith "planted parser bug: choked on a non-ASCII byte"
  else ignore (Cisco.Parser.parse s)

let canary ?(max_rounds = 2000) () =
  let corpus = Corpus.texts Corpus.Cisco in
  let crashes s =
    match
      guard ~label:"cisco-parse/planted" ~input:s (fun () -> planted_parse s)
    with
    | Ok () -> None
    | Error c -> Some c
  in
  let rec hunt round =
    if round >= max_rounds then None
    else
      let m = Mutator.mutant ~seed:1 ~round ~corpus in
      match crashes m with Some c -> Some (round, m, c) | None -> hunt (round + 1)
  in
  match hunt 0 with
  | None -> Error "canary: planted bug never triggered within the budget"
  | Some (round, input, c) ->
      let minimized =
        Shrink.minimize ~still_failing:(fun s -> crashes s <> None) input
      in
      Ok
        {
          dialect = Corpus.Cisco;
          violation =
            {
              property = "canary";
              stage = c.Resilience.Guard.stage;
              constructor = c.Resilience.Guard.constructor;
              detail = c.Resilience.Guard.message;
            };
          fingerprint = c.Resilience.Guard.fingerprint;
          seed = 1;
          round;
          input;
          minimized;
        }
