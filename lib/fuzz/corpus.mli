(** The fuzz seed corpus: sample configurations and llmsim faulty drafts in
    both dialects. *)

type dialect = Cisco | Junos

val dialect_name : dialect -> string

val texts : dialect -> string list
(** The seed texts for a dialect: the committed samples (Cisco) or the
    printed reference translation (Junos), plus up to eight single-fault
    llmsim drafts each. *)

val reference_ir : dialect -> Policy.Config_ir.t
(** The stock parsed reference the property driver diffs fuzzed parses
    against. *)
