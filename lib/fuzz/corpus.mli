(** The fuzz seed corpus: sample configurations and llmsim faulty drafts in
    both dialects. *)

type dialect = Cisco | Junos

val dialect_name : dialect -> string

val texts : dialect -> string list
(** The seed texts for a dialect: the committed samples (Cisco) or the
    printed reference translation (Junos), plus up to eight single-fault
    llmsim drafts each. *)

val reference_ir : dialect -> Policy.Config_ir.t
(** The stock parsed reference the property driver diffs fuzzed parses
    against. *)

val topology_seeds : unit -> string list
(** Topology-dictionary JSON seed texts for fuzzing the topology verifier:
    the star generator at two sizes plus hand-written minimal files. *)

val policy_seeds : unit -> string list
(** Cisco local-policy fragments (route maps with their prefix/community
    lists) for fuzzing the policy parser and semantic checker. *)
