(** The fuzz property drivers: totality of every pipeline stage on
    arbitrary mutated config text, checked behind the {!Resilience.Guard}
    firewall. *)

type violation = {
  property : string;
      (** Which property broke: ["total-parse"], ["total-print"],
          ["print-reparse"], ["print-fixpoint"], ["total-differ"],
          ["total-bgp-sim"], ["total-ospf-sim"], or ["canary"]. *)
  stage : string;  (** The Guard label of the crashing stage. *)
  constructor : string;  (** Exception constructor (or synthetic tag). *)
  detail : string;
}

type escape = {
  dialect : Corpus.dialect;
  violation : violation;
  fingerprint : string;
  seed : int;  (** [-1] for corpus replays. *)
  round : int;
  input : string;
  minimized : string;  (** Shrunk trigger (or [input] when not minimized). *)
}

val escape_to_string : escape -> string

val check : Corpus.dialect -> string -> violation list
(** Run every property on one input: guarded parse; guarded
    print → reparse → reprint with the printed forms compared (the
    parse∘print fixpoint, checked only when the first parse is clean);
    guarded differ against the stock reference in both directions; guarded
    BGP and OSPF simulation with the parse embedded in a well-formed
    3-router star. Empty list = all properties hold. *)

type report = { dialect : Corpus.dialect; inputs : int; escapes : escape list }

val run : Corpus.dialect -> seeds:int list -> mutations:int -> report
(** The fuzz loop: for every seed, [mutations] deterministic mutants of the
    dialect corpus, each run through {!check}. The first few escapes are
    minimized by {!Shrink.minimize}. *)

val replay_dir : string -> (string * escape list) list
(** Replay every [*.txt] file in a regression-corpus directory (files named
    [junos-*] are parsed as Junos, everything else as Cisco), sorted by
    filename. Missing directory = empty list. *)

val canary : ?max_rounds:int -> unit -> (escape, string) result
(** Fuzz a deliberately planted parser bug (raises on non-ASCII bytes)
    until the mutator triggers it, then minimize the crasher — the
    demonstration that the pipeline catches, shrinks and attributes a real
    bug. [Error] only if the budget (default 2000 rounds) never hits it. *)
