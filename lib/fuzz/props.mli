(** The fuzz property drivers: totality of every pipeline stage on
    arbitrary mutated config text, checked behind the {!Resilience.Guard}
    firewall. *)

type violation = {
  property : string;
      (** Which property broke: ["total-parse"], ["total-print"],
          ["print-reparse"], ["print-fixpoint"], ["total-differ"],
          ["total-bgp-sim"], ["total-ospf-sim"], or ["canary"]. *)
  stage : string;  (** The Guard label of the crashing stage. *)
  constructor : string;  (** Exception constructor (or synthetic tag). *)
  detail : string;
}

type escape = {
  dialect : Corpus.dialect;
  violation : violation;
  fingerprint : string;
  seed : int;  (** [-1] for corpus replays. *)
  round : int;
  input : string;
  minimized : string;  (** Shrunk trigger (or [input] when not minimized). *)
}

val escape_to_string : escape -> string

val check : Corpus.dialect -> string -> violation list
(** Run every property on one input: guarded parse; guarded
    print → reparse → reprint with the printed forms compared (the
    parse∘print fixpoint, checked only when the first parse is clean);
    guarded differ against the stock reference in both directions; guarded
    BGP and OSPF simulation with the parse embedded in a well-formed
    3-router star. Empty list = all properties hold. *)

type report = { dialect : Corpus.dialect; inputs : int; escapes : escape list }

val run : ?schedule:Mutator.history -> Corpus.dialect -> seeds:int list -> mutations:int -> report
(** The fuzz loop: for every seed, [mutations] deterministic mutants of the
    dialect corpus, each run through {!check}. The first few escapes are
    minimized by {!Shrink.minimize}. With [schedule] the mutants come from
    {!Mutator.weighted_mutant} and crashing inputs reward their operators
    (1 point each, 2 when the input opened an unseen (stage, constructor)
    bucket), biasing later rounds toward productive operators. *)

val check_topology : string -> violation list
(** Totality of the topology verifier on an arbitrary JSON text: parse
    failures must be structured [Error]s, a parseable dictionary must
    verify (or structurally reject) any router without raising. *)

val check_policy : string -> violation list
(** Totality of the Cisco parse + semantic route-policy check
    ({!Batfish.Search_route_policies.check_all} against the full symbolic
    space) on an arbitrary policy fragment. *)

val run_topology :
  ?schedule:Mutator.history -> seeds:int list -> mutations:int -> unit -> report
(** {!run} over {!Corpus.topology_seeds} with {!check_topology}. The
    report's [dialect] is [Cisco] (the field keys replay only). *)

val run_policy :
  ?schedule:Mutator.history -> seeds:int list -> mutations:int -> unit -> report
(** {!run} over {!Corpus.policy_seeds} with {!check_policy}. *)

val fuzz_corrupted_findings :
  mode:Adversary.Findings.mode -> seed:int -> cases:int -> violation list
(** Loop-level totality of the feedback path: mutate realistic finding
    texts, pass each through {!Adversary.Findings.corrupt} at rate 1 for
    the given mode, and require the humanizer and the chat's prompt
    consumer to absorb every corrupted delivery without raising. *)

val fuzz_loop : mode:Adversary.Llm.mode -> seed:int -> rate:float -> violation list
(** One full translation loop under the given Byzantine-LLM mode at the
    given rate, behind the Guard firewall. Violations: the loop raised, the
    transcript exceeded its prompt budget, a hardened run carried no
    convergence certificate, or a rate-0 run carried one. *)

val replay_dir : string -> (string * escape list) list
(** Replay every [*.txt] file in a regression-corpus directory (files named
    [junos-*] are parsed as Junos, everything else as Cisco). Promoted
    entries ([promoted-*] / [junos-promoted-*], see {!promote}) replay
    first — the youngest regressions fail the gate before budget goes to
    the long-stable seeds — each group sorted by filename. Missing
    directory = empty list. *)

val promote : dir:string -> escape list -> (string * escape) list
(** Promote crashers into a regression corpus: each escape whose
    (stage, constructor) triage bucket is not yet covered gets its
    minimized trigger written to [dir] as
    [promoted-<stage>-<constructor>.txt] (prefixed [junos-] for Junos
    inputs so {!replay_dir} replays it under the right dialect). The
    bucket slug is baked into the filename, so a bucket promoted by an
    earlier campaign — or earlier in the same list — is skipped:
    promotion is idempotent. Returns the (filename, escape) pairs
    actually written; creates [dir] when something needs writing. *)

val canary : ?max_rounds:int -> unit -> (escape, string) result
(** Fuzz a deliberately planted parser bug (raises on non-ASCII bytes)
    until the mutator triggers it, then minimize the crasher — the
    demonstration that the pipeline catches, shrinks and attributes a real
    bug. [Error] only if the budget (default 2000 rounds) never hits it. *)
