(** The hardened synthesis daemon: admission control, per-request
    deadlines, graceful drain, and health reporting over the
    {!Exec.Serve} transport.

    {!Exec.Serve} is deliberately policy-free; this module is the policy —
    one shared implementation of the daemon's job handler used by the
    [cosynth serve] CLI, the S2 overload bench gate, and the drain-path
    tests, so what CI exercises is byte-for-byte what the CLI ships.

    Jobs: [ping], [stats], [health], [drain], [shutdown] are control-plane
    and always answered immediately. [parse], [translate], [synth],
    [repair] are work jobs: each must win an {!Resilience.Admission}
    ticket (or is shed with a structured
    [{"ok": false, "shed": true, "retry_after_ms": ...}] frame) and runs
    under a wall-clock deadline — the client's [deadline_ms] clamped to
    the server cap — enforced by {!Resilience.Guard.run_deadline}, so an
    expired job answers with a structured
    [{"ok": false, "timeout": true, ...}] frame, never a hung connection.
    With [debug_jobs] two more are enabled for harness use: [sleep]
    (an admitted, deadline-bounded delay — the load generator) and
    [crash] (ack, then [exit 70] — the supervisor's test subject).

    The unloaded single-client contract: with no concurrent load, every
    reply of the PR 6 job set ([ping]/[parse]/[translate]/[synth]/
    [repair]/[stats]/[shutdown]) is byte-identical to the pre-hardening
    daemon's — admission and deadlines only add frames on the overload and
    expiry paths, never fields on the happy path. *)

type config = {
  domains : int option;
      (** Pool size ([None] = [Exec.Pool.create]'s default). *)
  round_budget_cap : int;  (** Cap on the per-request verifier budget. *)
  stage_budget_cap : int;  (** Per-stage tick watchdog. *)
  admission : Resilience.Admission.config;
  admission_file : string option;
      (** SIGHUP hot reload: re-read the admission caps from this JSON
          file ([{"max_in_flight": ..., "max_queue": ...}]; missing keys
          keep their current values) and swap them in without a drain —
          queued waiters re-evaluate immediately, running jobs keep their
          tickets. The file is validated strictly (see
          {!parse_admission_caps}): an unreadable, half-written, malformed
          or out-of-range file keeps {e all} the caps in force and bumps
          the [reload_rejected] counter reported by [health] and [stats].
          Every SIGHUP bumps the [reloads] counter, whether or not a file
          is configured. *)
  io_timeout_ms : int;  (** Socket read/write timeout; [0] disables. *)
  drain_grace_ms : int;  (** Reject window between drain and close. *)
  handle_signals : bool;  (** SIGTERM/SIGINT trigger a drain. *)
  debug_jobs : bool;  (** Enable [sleep] and [crash]. *)
  triage : string option;
      (** Append Guard crash buckets (timeouts included) to this JSONL
          file at drain/shutdown, timestamped for [cosynth triage]'s
          first/last-seen columns. Resets the Guard registry at startup so
          the rows cover this daemon run only. *)
  restarts : int;
      (** How often a supervisor has respawned this daemon; reported in
          [stats] and [health]. *)
  trust_ledger : string option;
      (** Persistent trust ledger ({!Resilience.Trust.Ledger_store}):
          loaded once at startup (quarantine recorded before a restart —
          or by a sweep sharing the file — is in force for the first
          request) and appended to, one fsync'd line per trust-armed work
          job. While set, [translate]/[synth]/[repair] run under the trust
          layer and serialize on an internal mutex (the ledger threads
          state from job to job exactly like a sequential sweep), [health]
          gains a compact [trust] object (quarantined kinds, oracle
          quarantine, lie/collusion totals) and [stats] a full counter
          one. [None] (the default) leaves every code path and frame shape
          byte-identical to the trust-free daemon. *)
}

val parse_admission_caps :
  current:Resilience.Admission.config ->
  string ->
  (Resilience.Admission.config, string) result
(** Validate the text of an [admission_file] against the caps currently in
    force. All-or-nothing: the result is either a complete, in-range
    configuration (missing keys filled from [current], unknown keys
    ignored) or a reason to reject — a truncated write, a non-object, a
    non-integer value, or a value below its floor ([max_in_flight],
    [max_per_client], [max_deadline_ms] >= 1; [max_queue],
    [retry_after_ms] >= 0) never half-applies. Exposed (pure) so the
    reload path's validation is unit-testable without a daemon. *)

val default_config : config
(** PR 6's budget caps (64/32), {!Resilience.Admission.default_config},
    30 s io timeout, 1 s drain grace, no signal handling, no debug jobs,
    no triage, 0 restarts. *)

type summary = {
  served : int;  (** Requests answered (rejects and sheds included). *)
  shed : int;  (** Admission rejections (capacity + per-client). *)
  timed_out : int;  (** Work jobs that hit their deadline. *)
  drained : bool;  (** Wound down via drain rather than [shutdown]. *)
}

val serve :
  ?on_ready:(domains:int -> unit) ->
  socket_path:string ->
  config ->
  summary
(** Run the daemon until a [shutdown] job, a [drain] job, or (with
    [handle_signals]) a SIGTERM/SIGINT. Owns the worker pool for its whole
    lifetime (created before binding, shut down after the socket is
    unlinked). [on_ready] fires once listening, with the pool size. *)
