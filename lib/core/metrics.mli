(** Leverage statistics over many seeded runs, plus the performance
    instrumentation (wall clock, verifier-memo hit rates, pool
    utilization) the bench harness reports alongside them. *)

type summary = {
  runs : int;
  converged : int;
  mean_auto : float;
  mean_human : float;
  mean_leverage : float;  (** Over the finite-leverage runs only. *)
  stddev_leverage : float;  (** Over the finite-leverage runs only. *)
  min_leverage : float;
  max_leverage : float;
  infinite_leverage : int;
      (** Runs with zero human prompts ({!Driver.leverage} is infinite);
          excluded from the mean/stddev/range instead of poisoning them. *)
  stalled : int;
      (** Hardened runs whose certificate is [Stalled_out] (watchdog,
          budget or give-up); 0 on plain sweeps. *)
  oscillating : int;
      (** Hardened runs whose certificate is [Oscillating]; 0 on plain
          sweeps. *)
}

val summarize : Driver.transcript list -> summary

val translation_summary :
  ?runs:int -> ?base_seed:int -> ?pool:Exec.Pool.t -> cisco_text:string -> unit -> summary

val no_transit_summary :
  ?runs:int ->
  ?base_seed:int ->
  ?use_iips:bool ->
  ?pool:Exec.Pool.t ->
  routers:int ->
  unit ->
  summary
(** Both summaries fan their seeded runs across [pool] when given
    ({!Exec.Sweep.run_seeds}); the seeds, and therefore the transcripts and
    every statistic, are identical with or without the pool. *)

val pp_summary : Format.formatter -> summary -> unit
(** One line; stalled/oscillating counts are appended only when nonzero, so
    plain-sweep output is unchanged from the pre-adversary format. *)

val certificates : Driver.transcript list -> (string * int) list
(** Tally of {!Driver.certificate_to_string} over a sweep, first-seen
    order; transcripts without a certificate count under ["(none)"]. *)

(** {2 Performance instrumentation} *)

type perf = {
  wall_s : float;  (** Wall-clock seconds for the measured section. *)
  pool_size : int;  (** Worker domains used; 0 = sequential. *)
  memo_hits : int;  (** {!Exec.Memo} hits during the section. *)
  memo_misses : int;
  pool_utilization : float;
      (** Worker busy time / (wall * workers) during the section, in
          [0, 1]; 0 when sequential. *)
  verifier : (Resilience.Verifier.kind * Resilience.Stats.counters) list;
      (** Per-verifier resilience counter deltas ({!Resilience.Stats})
          during the section, in {!Resilience.Verifier.all_kinds} order. *)
  supervisor : Exec.Supervisor.counters;
      (** Supervised-execution deltas (worker losses, requeues, abandoned
          tasks) during the section; all zero without a supervisor. *)
  trust : Resilience.Trust.snapshot;
      (** Per-verifier trust-layer deltas (cross-checks, detected lies,
          quarantines) during the section; all zero without a [?trust]
          ledger armed. *)
  quorum : Resilience.Trust.quorum_counters;
      (** Quorum-audit deltas (audits, overruled collusions, oracle
          quarantines/restores) during the section; all zero without a
          trust ledger, and zero under honest verifiers even with one. *)
}

val measure : ?pool:Exec.Pool.t -> (unit -> 'a) -> 'a * perf
(** Run the thunk and capture wall clock plus memo/pool/resilience counter
    deltas. *)

val memo_hit_rate : perf -> float

val verifier_totals : perf -> Resilience.Stats.counters
(** Sum of the per-verifier deltas. *)

val verifier_rows : perf -> string list list
(** Rows for {!Report.table} under {!verifier_header}, one per verifier
    kind that saw any activity during the section (all-zero kinds are
    dropped so a chaos-free run renders an empty table). *)

val verifier_header : string list

val trust_totals : perf -> Resilience.Trust.counters
(** Sum of the per-kind trust deltas. *)

val trust_rows : perf -> string list list
(** Rows for {!Report.table} under {!trust_header}, one per verifier kind
    with any cross-check or probation activity (all-zero kinds dropped, so
    a trust-off run renders an empty table). *)

val trust_header : string list

val pp_perf : Format.formatter -> perf -> unit
(** One line; the verifier totals, trust totals and the supervisor's
    loss/requeue/abandoned deltas are appended only when any such activity
    happened, so chaos-free output is unchanged. *)
