(** Plain-text table rendering for the benchmark harness and examples. *)

val table :
  ?footer:string list -> title:string -> header:string list ->
  string list list -> string
(** Aligned columns, a rule under the header, the title above. [footer]
    (e.g. a totals row) is set off below the body by a second rule. *)

val kv : title:string -> (string * string) list -> string
(** A two-column key/value block. *)

val counts : title:string -> (string * int) list -> string
(** {!kv} with integer values — e.g. a {!Metrics.certificates} tally. *)
