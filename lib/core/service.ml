(* The hardened daemon behind `cosynth serve`: Exec.Serve supplies the
   transport and lifecycle mechanics; this module supplies the policy —
   job dispatch, admission, deadlines, budget clamping, health/triage.
   The CLI, the S2 overload bench gate and the drain tests all run this
   exact handler, so the hardening that CI gates is the hardening that
   ships. *)

module J = Netcore.Json

type config = {
  domains : int option;
  round_budget_cap : int;
  stage_budget_cap : int;
  admission : Resilience.Admission.config;
  admission_file : string option;
  io_timeout_ms : int;
  drain_grace_ms : int;
  handle_signals : bool;
  debug_jobs : bool;
  triage : string option;
  restarts : int;
  trust_ledger : string option;
}

let default_config =
  {
    domains = None;
    round_budget_cap = 64;
    stage_budget_cap = 32;
    admission = Resilience.Admission.default_config;
    admission_file = None;
    io_timeout_ms = 30_000;
    drain_grace_ms = 1_000;
    handle_signals = false;
    debug_jobs = false;
    triage = None;
    restarts = 0;
    trust_ledger = None;
  }

type summary = { served : int; shed : int; timed_out : int; drained : bool }

let ok fields = J.Obj (("ok", J.Bool true) :: fields)
let fail msg = J.Obj [ ("ok", J.Bool false); ("error", J.String msg) ]
let jstr name req = Option.bind (J.member name req) J.to_str
let jint name req = Option.bind (J.member name req) J.to_int

(* Strict validation for a SIGHUP admission-caps reload. The file is
   typically rewritten by an operator or a config pusher moments before
   the signal lands, so "half-written" is a live failure mode, not a
   theoretical one: reject anything that does not parse, is not an
   object, or carries a non-integer / out-of-range value — the caller
   keeps the caps in force. Missing keys keep their current values (a
   partial file adjusts one cap); unknown keys are ignored. *)
let parse_admission_caps ~(current : Resilience.Admission.config) text =
  match J.of_string text with
  | Error e -> Error ("malformed JSON: " ^ e)
  | Ok json -> (
      match J.to_obj json with
      | None -> Error "not a JSON object"
      | Some _ -> (
          let field name ~min default =
            match J.member name json with
            | None -> Ok default
            | Some v -> (
                match J.to_int v with
                | Some n when n >= min -> Ok n
                | Some n ->
                    Error
                      (Printf.sprintf "%s: %d out of range (min %d)" name n min)
                | None -> Error (name ^ ": not an integer"))
          in
          let ( let* ) = Result.bind in
          let* max_in_flight =
            field "max_in_flight" ~min:1 current.Resilience.Admission.max_in_flight
          in
          let* max_queue =
            field "max_queue" ~min:0 current.Resilience.Admission.max_queue
          in
          let* max_per_client =
            field "max_per_client" ~min:1
              current.Resilience.Admission.max_per_client
          in
          let* max_deadline_ms =
            field "max_deadline_ms" ~min:1
              current.Resilience.Admission.max_deadline_ms
          in
          let* retry_after_ms =
            field "retry_after_ms" ~min:0
              current.Resilience.Admission.retry_after_ms
          in
          Ok
            {
              Resilience.Admission.max_in_flight;
              max_queue;
              max_per_client;
              max_deadline_ms;
              retry_after_ms;
            }))

let shed_frame ~retry_after_ms ~reason =
  J.Obj
    [
      ("ok", J.Bool false);
      ( "error",
        J.String ("overloaded: " ^ Resilience.Admission.reason_to_string reason)
      );
      ("shed", J.Bool true);
      ("retry_after_ms", J.Int retry_after_ms);
    ]

let timeout_frame ~deadline_ms crash =
  J.Obj
    [
      ("ok", J.Bool false);
      ("error", J.String (Resilience.Guard.crash_to_string crash));
      ("timeout", J.Bool true);
      ("deadline_ms", J.Int deadline_ms);
    ]

let serve ?(on_ready = fun ~domains:_ -> ()) ~socket_path cfg =
  if cfg.triage <> None then Resilience.Guard.reset ();
  (* The whole point of the daemon: pay for domain spawn once, then keep
     the pool, the parse-check memo and the verifier machinery warm across
     every request of every client. *)
  let pool =
    match cfg.domains with
    | Some d -> Exec.Pool.create ~domains:d ()
    | None -> Exec.Pool.create ()
  in
  let adm = Resilience.Admission.create cfg.admission in
  (* The daemon's persistent trust layer: the ledger is loaded once at
     start (a quarantine earned before a restart — or recorded by a sweep
     that shares the file — is in force for the first request) and every
     trust-armed work job appends one fsync'd line. Trust-armed synthesis
     jobs serialize on [trust_m]: the ledger threads state from job to job
     exactly like a sequential sweep, and the process-global counter
     deltas each line carries stay attributable to one job. Control-plane
     jobs, [parse] and [sleep] are untouched, as is everything when no
     ledger is configured — the unloaded reply frames then stay
     byte-identical to the trust-free daemon's. *)
  let trust_m = Mutex.create () in
  let ledger_state =
    ref
      (Option.join
         (Option.map Resilience.Trust.Ledger_store.load cfg.trust_ledger))
  in
  let ledger_handle =
    Option.map
      (fun path ->
        (match !ledger_state with
        | None -> Printf.eprintf "trust-ledger: recording to %s\n%!" path
        | Some _ ->
            Printf.eprintf "trust-ledger: resuming trust state from %s\n%!" path);
        Resilience.Trust.Ledger_store.open_ ~truncate:false path)
      cfg.trust_ledger
  in
  (* Run one synthesis job under the ledger: the driver gets a trust
     instance seeded from the cumulative state, and the evolved state plus
     this job's counter deltas land as one ledger line keyed on the
     request seed. *)
  let with_trust ~seed f =
    match ledger_handle with
    | None -> f None
    | Some h ->
        Mutex.lock trust_m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock trust_m)
          (fun () ->
            let t =
              match !ledger_state with
              | Some e ->
                  Resilience.Trust.create_from Resilience.Trust.default_config e
              | None -> Resilience.Trust.create Resilience.Trust.default_config
            in
            let t0 = Resilience.Trust.snapshot () in
            let q0 = Resilience.Trust.quorum_snapshot () in
            let r = f (Some t) in
            let counters =
              Resilience.Trust.totals
                (Resilience.Trust.diff (Resilience.Trust.snapshot ()) t0)
            in
            let quorum =
              Resilience.Trust.diff_quorum (Resilience.Trust.quorum_snapshot ()) q0
            in
            let e = Resilience.Trust.state_of t ~counters ~quorum in
            Resilience.Trust.Ledger_store.record h ~seed e;
            ledger_state :=
              Some
                (match !ledger_state with
                | None -> e
                | Some a -> Resilience.Trust.Ledger_store.merge a e);
            r)
  in
  let t0 = Unix.gettimeofday () in
  let m = Mutex.create () in
  let served = ref 0 in
  let timed_out = ref 0 in
  let reloads = ref 0 in
  let reload_rejected = ref 0 in
  let accepting = ref true in
  let drained = ref false in
  let locked f =
    Mutex.lock m;
    let v = f () in
    Mutex.unlock m;
    v
  in
  (* Per-client tick budgets: a request may lower the resilience round /
     stage budget below the server's cap, never raise it — one greedy
     client cannot buy itself an unbounded verifier loop. *)
  let resilience_of req =
    let rb =
      match jint "budget" req with
      | Some b -> max 1 (min b cfg.round_budget_cap)
      | None -> cfg.round_budget_cap
    in
    Resilience.Runtime.config ~round_budget:rb
      ~stage_budget:(min cfg.stage_budget_cap rb) ()
  in
  let work_fields job req =
    match job with
    | "sleep" ->
        (* Debug-only: an admitted, deadline-bounded delay — the load the
           overload gate and the drain tests saturate the daemon with. *)
        let ms = Option.value ~default:100 (jint "ms" req) in
        Thread.delay (float_of_int (max 0 ms) /. 1000.);
        [ ("slept_ms", J.Int ms) ]
    | "parse" ->
        let dialect =
          match jstr "dialect" req with
          | Some ("junos" | "juniper") -> Batfish.Parse_check.Junos
          | _ -> Batfish.Parse_check.Cisco_ios
        in
        let text = Option.value ~default:"" (jstr "text" req) in
        let _, diags = Exec.Memo.check dialect text in
        [
          ( "errors",
            J.Int (List.length (List.filter Netcore.Diag.is_error diags)) );
          ( "diags",
            J.List (List.map (fun d -> J.String (Netcore.Diag.to_string d)) diags)
          );
        ]
    | "translate" ->
        let seed = Option.value ~default:42 (jint "seed" req) in
        let text =
          Option.value ~default:Cisco.Samples.border_router (jstr "text" req)
        in
        let r =
          with_trust ~seed (fun trust_ledger ->
              Driver.run_translation ~seed ?trust_ledger
                ~resilience:(resilience_of req) ~cisco_text:text ())
        in
        let t = r.Driver.transcript in
        [
          ("auto", J.Int t.Driver.auto_prompts);
          ("human", J.Int t.Driver.human_prompts);
          ("rounds", J.Int t.Driver.rounds);
          ("converged", J.Bool t.Driver.converged);
          ("verified", J.Bool r.Driver.verified);
        ]
    | "synth" ->
        let seed = Option.value ~default:42 (jint "seed" req) in
        let routers = Option.value ~default:7 (jint "routers" req) in
        let r =
          with_trust ~seed (fun trust_ledger ->
              Driver.run_no_transit ~seed ~pool ?trust_ledger
                ~resilience:(resilience_of req) ~routers ())
        in
        let t = r.Driver.transcript in
        [
          ("auto", J.Int t.Driver.auto_prompts);
          ("human", J.Int t.Driver.human_prompts);
          ("rounds", J.Int t.Driver.rounds);
          ("converged", J.Bool t.Driver.converged);
          ("global_ok", J.Bool r.Driver.global_ok);
        ]
    | _ ->
        (* repair: the incremental policy-addition loop — start from the
           verified network, add the prepend policy, repair any
           interference the verifiers catch. *)
        let seed = Option.value ~default:42 (jint "seed" req) in
        let routers = Option.value ~default:5 (jint "routers" req) in
        let r =
          with_trust ~seed (fun trust_ledger ->
              Driver.run_incremental ~seed ?trust_ledger
                ~resilience:(resilience_of req) ~routers ())
        in
        let t = r.Driver.inc_transcript in
        [
          ("auto", J.Int t.Driver.auto_prompts);
          ("human", J.Int t.Driver.human_prompts);
          ("rounds", J.Int t.Driver.rounds);
          ("converged", J.Bool t.Driver.converged);
          ("specs_hold", J.Bool r.Driver.specs_hold);
          ("global_ok", J.Bool r.Driver.global_ok);
          ("interference_caught", J.Bool r.Driver.interference_caught);
        ]
  in
  let admitted_work ~client job req =
    let name =
      match jstr "client" req with
      | Some c -> c
      | None -> "conn-" ^ string_of_int client
    in
    match Resilience.Admission.admit adm ~client:name with
    | Resilience.Admission.Shed { retry_after_ms; reason } ->
        Exec.Serve.Reply (shed_frame ~retry_after_ms ~reason)
    | Resilience.Admission.Admitted ticket -> (
        (* The caps in force, not the boot-time ones: a SIGHUP reload that
           raised max_deadline_ms must govern the very next request. *)
        let deadline_ms =
          Resilience.Admission.clamp_deadline (Resilience.Admission.config adm)
            (jint "deadline_ms" req)
        in
        (* The Guard is the crash boundary and the deadline is enforced on
           its watchdog: a bug or an overrun anywhere in the loop answers
           this one request with an error/timeout frame; the daemon and
           its warm state survive. The admission slot is released in
           [on_settled] — the only point that is reached exactly once
           whether the job completed in time or was abandoned past its
           deadline. *)
        match
          Resilience.Guard.run_deadline ~deadline_ms ~fingerprint:name
            ~on_settled:(fun () -> Resilience.Admission.release adm ticket)
            ~label:("serve:" ^ job)
            (fun () -> work_fields job req)
        with
        | Ok fields -> Exec.Serve.Reply (ok fields)
        | Error c when c.Resilience.Guard.constructor = "Deadline_exceeded" ->
            locked (fun () -> incr timed_out);
            Exec.Serve.Reply (timeout_frame ~deadline_ms c)
        | Error c -> Exec.Serve.Reply (fail (Resilience.Guard.crash_to_string c)))
  in
  (* SIGHUP: re-read the admission caps from [admission_file] and swap them
     in without draining (queued waiters re-evaluate against the new caps
     immediately; running jobs keep their tickets). Missing keys keep their
     current values, so a partial file adjusts one cap. An unreadable,
     half-written or otherwise invalid file keeps the caps in force — a
     bad reload must never degrade a healthy daemon — but still counts as
     a reload (so operators can see their signal arrived) and bumps
     [reload_rejected] in health/stats (so they can see it was refused
     rather than silently half-applied). *)
  let reload_admission () =
    locked (fun () -> incr reloads);
    match cfg.admission_file with
    | None -> ()
    | Some path -> (
        let reject why =
          locked (fun () -> incr reload_rejected);
          Printf.eprintf "reload: %s: %s; keeping current caps\n%!" path why
        in
        match
          try Ok (In_channel.with_open_bin path In_channel.input_all)
          with Sys_error e -> Error e
        with
        | Error e -> reject ("cannot read: " ^ e)
        | Ok text -> (
            match
              parse_admission_caps ~current:(Resilience.Admission.config adm)
                text
            with
            | Error why -> reject why
            | Ok caps -> Resilience.Admission.set_caps adm caps))
  in
  (* Trust state for the health/stats frames — present only when a ledger
     is configured, so unconfigured daemons keep their exact frame shape.
     Health gets the operator's triage view (who is quarantined right
     now); stats gets the full cumulative counters. *)
  let trust_state () =
    Mutex.lock trust_m;
    let v = !ledger_state in
    Mutex.unlock trust_m;
    v
  in
  let trust_health_fields () =
    match cfg.trust_ledger with
    | None -> []
    | Some _ ->
        let quarantined, oracle_q, lies, collusions =
          match trust_state () with
          | None -> ([], false, 0, 0)
          | Some e ->
              ( List.filter_map
                  (fun (k, (c : Resilience.Trust.Ledger_store.cell_state)) ->
                    if c.Resilience.Trust.Ledger_store.s_quarantined then
                      Some (J.String (Resilience.Verifier.kind_name k))
                    else None)
                  e.Resilience.Trust.Ledger_store.kinds,
                e.Resilience.Trust.Ledger_store.oracle
                  .Resilience.Trust.Ledger_store.s_quarantined,
                e.Resilience.Trust.Ledger_store.counters
                  .Resilience.Trust.disagreements,
                e.Resilience.Trust.Ledger_store.quorum.Resilience.Trust.overruled )
        in
        [
          ( "trust",
            J.Obj
              [
                ("quarantined", J.List quarantined);
                ("oracle_quarantined", J.Bool oracle_q);
                ("lies_detected", J.Int lies);
                ("collusions_detected", J.Int collusions);
              ] );
        ]
  in
  let trust_stats_fields () =
    match cfg.trust_ledger with
    | None -> []
    | Some _ ->
        let c, q, oracle_q =
          match trust_state () with
          | None ->
              (Resilience.Trust.zero, Resilience.Trust.zero_quorum, false)
          | Some e ->
              ( e.Resilience.Trust.Ledger_store.counters,
                e.Resilience.Trust.Ledger_store.quorum,
                e.Resilience.Trust.Ledger_store.oracle
                  .Resilience.Trust.Ledger_store.s_quarantined )
        in
        [
          ( "trust",
            J.Obj
              [
                ("checks", J.Int c.Resilience.Trust.cross_checks);
                ("lies_detected", J.Int c.Resilience.Trust.disagreements);
                ("quarantines", J.Int c.Resilience.Trust.quarantines);
                ("restores", J.Int c.Resilience.Trust.restores);
                ("audits", J.Int q.Resilience.Trust.audits);
                ("collusions_detected", J.Int q.Resilience.Trust.overruled);
                ( "oracle_quarantines",
                  J.Int q.Resilience.Trust.oracle_quarantines );
                ("oracle_restores", J.Int q.Resilience.Trust.oracle_restores);
                ("oracle_quarantined", J.Bool oracle_q);
              ] );
        ]
  in
  let handle ~client req =
    locked (fun () -> incr served);
    let job = Option.value ~default:"" (jstr "job" req) in
    match job with
    | "ping" ->
        Exec.Serve.Reply (ok [ ("pong", J.Bool true); ("client", J.Int client) ])
    | "shutdown" ->
        Exec.Serve.Final (ok [ ("served", J.Int (locked (fun () -> !served))) ])
    | "drain" ->
        Exec.Serve.Drain
          (ok
             [
               ("draining", J.Bool true);
               ("served", J.Int (locked (fun () -> !served)));
             ])
    | "health" ->
        let a = Resilience.Admission.stats adm in
        Exec.Serve.Reply
          (ok
             ([
               ("accepting", J.Bool (locked (fun () -> !accepting)));
               ("in_flight", J.Int a.Resilience.Admission.in_flight);
               ("queued", J.Int a.Resilience.Admission.queued);
               ( "shed",
                 J.Int
                   (a.Resilience.Admission.shed_capacity
                   + a.Resilience.Admission.shed_per_client) );
               ("timed_out", J.Int (locked (fun () -> !timed_out)));
               ("served", J.Int (locked (fun () -> !served)));
               ("reloads", J.Int (locked (fun () -> !reloads)));
               ("reload_rejected", J.Int (locked (fun () -> !reload_rejected)));
               ("restarts", J.Int cfg.restarts);
             ]
             @ trust_health_fields ()))
    | "stats" ->
        let mm = Exec.Memo.stats () in
        let p = Exec.Pool.stats pool in
        let a = Resilience.Admission.stats adm in
        let caps = Resilience.Admission.config adm in
        Exec.Serve.Reply
          (ok
             ([
               ("served", J.Int (locked (fun () -> !served)));
               ("uptime_s", J.Float (Unix.gettimeofday () -. t0));
               ( "memo",
                 J.Obj
                   [
                     ("hits", J.Int mm.Exec.Memo.hits);
                     ("misses", J.Int mm.Exec.Memo.misses);
                     ("entries", J.Int mm.Exec.Memo.entries);
                     ("evictions", J.Int mm.Exec.Memo.evictions);
                     ("hit_rate", J.Float (Exec.Memo.hit_rate mm));
                   ] );
               ( "pool",
                 J.Obj
                   [
                     ("domains", J.Int p.Exec.Pool.domains);
                     ("jobs_completed", J.Int p.Exec.Pool.jobs_completed);
                     ("restarts", J.Int p.Exec.Pool.restarts);
                   ] );
               ( "admission",
                 J.Obj
                   [
                     ("admitted", J.Int a.Resilience.Admission.admitted);
                     ("released", J.Int a.Resilience.Admission.released);
                     ( "shed_capacity",
                       J.Int a.Resilience.Admission.shed_capacity );
                     ( "shed_per_client",
                       J.Int a.Resilience.Admission.shed_per_client );
                     ("in_flight", J.Int a.Resilience.Admission.in_flight);
                     ("queued", J.Int a.Resilience.Admission.queued);
                     ( "peak_in_flight",
                       J.Int a.Resilience.Admission.peak_in_flight );
                     ("peak_queued", J.Int a.Resilience.Admission.peak_queued);
                     ( "max_in_flight",
                       J.Int caps.Resilience.Admission.max_in_flight );
                     ("max_queue", J.Int caps.Resilience.Admission.max_queue);
                     ( "max_per_client",
                       J.Int caps.Resilience.Admission.max_per_client );
                   ] );
               ("timed_out", J.Int (locked (fun () -> !timed_out)));
               ("reloads", J.Int (locked (fun () -> !reloads)));
               ("reload_rejected", J.Int (locked (fun () -> !reload_rejected)));
               ("restarts", J.Int cfg.restarts);
               ("crashes", J.Int (Resilience.Guard.total ()));
             ]
             @ trust_stats_fields ()))
    | "crash" when cfg.debug_jobs ->
        (* Ack first, then die from a detached thread: the supervisor
           smoke needs the reply flushed before the process vanishes. *)
        ignore
          (Thread.create
             (fun () ->
               Thread.delay 0.05;
               exit 70)
             ()
            : Thread.t);
        Exec.Serve.Reply (ok [ ("crashing", J.Bool true) ])
    | "parse" | "translate" | "synth" | "repair" -> admitted_work ~client job req
    | "sleep" when cfg.debug_jobs -> admitted_work ~client job req
    | "" -> Exec.Serve.Reply (fail "missing \"job\" field")
    | other -> Exec.Serve.Reply (fail (Printf.sprintf "unknown job %S" other))
  in
  let drain_reject _req =
    J.Obj
      [
        ("ok", J.Bool false);
        ("error", J.String "server draining");
        ("draining", J.Bool true);
        ( "retry_after_ms",
          J.Int
            (Resilience.Admission.config adm).Resilience.Admission.retry_after_ms
        );
      ]
  in
  let was_drain =
    Exec.Serve.serve ~socket_path ~handle ~io_timeout_ms:cfg.io_timeout_ms
      ~drain_grace_ms:cfg.drain_grace_ms ~drain_reject
      ~handle_signals:cfg.handle_signals
      ~on_drain:(fun () ->
        locked (fun () ->
            accepting := false;
            drained := true))
      ~on_ready:(fun () -> on_ready ~domains:(Exec.Pool.size pool))
      ~on_reload:reload_admission ()
  in
  Exec.Pool.shutdown pool;
  (* Every ledger line is already fsync'd; the close just guarantees a
     drained/shut-down daemon leaves no open handle. *)
  Option.iter Resilience.Trust.Ledger_store.close ledger_handle;
  (match cfg.triage with
  | Some path ->
      Resilience.Triage.record ~ts:(Unix.gettimeofday ()) ~path
        ~seed:cfg.restarts ()
  | None -> ());
  let a = Resilience.Admission.stats adm in
  {
    served = locked (fun () -> !served);
    shed =
      a.Resilience.Admission.shed_capacity
      + a.Resilience.Admission.shed_per_client;
    timed_out = locked (fun () -> !timed_out);
    drained = was_drain || locked (fun () -> !drained);
  }
