open Policy

type origin = Auto | Human | Degraded | Stalled | Crosscheck

(* The convergence certificate a hardened (adversary-on) run attaches to
   its transcript. [None] on the unhardened path, so plain runs serialize
   and render byte-identically to before the certificate existed. *)
type certificate = Converged | Stalled_out of string | Oscillating of int

type event = { origin : origin; prompt : string; note : string }

type transcript = {
  events : event list;
  human_prompts : int;
  auto_prompts : int;
  converged : bool;
  rounds : int;
  certificate : certificate option;
}

let certificate_to_string = function
  | Converged -> "converged"
  | Stalled_out reason -> "stalled: " ^ reason
  | Oscillating period -> Printf.sprintf "oscillating (period %d)" period

(* Zero human prompts is a genuinely different regime, not "one human
   prompt": every automated prompt came for free. Report it as infinite
   leverage (and 0 for an empty transcript) rather than conflating
   "20 auto / 0 human" with "20 auto / 1 human". *)
let leverage t =
  if t.human_prompts = 0 then if t.auto_prompts > 0 then Float.infinity else 0.
  else float_of_int t.auto_prompts /. float_of_int t.human_prompts

let transcript_to_markdown ~title t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "# %s\n\n" title);
  Buffer.add_string buf
    (Printf.sprintf
       "%d automated prompts, %d human prompts — leverage %.1fx; converged: %b\n\n"
       t.auto_prompts t.human_prompts (leverage t) t.converged);
  (* Certificate line only when present, so unhardened transcripts stay
     byte-identical to the pre-certificate format. *)
  (match t.certificate with
  | None -> ()
  | Some c ->
      Buffer.add_string buf
        (Printf.sprintf "convergence certificate: %s\n\n" (certificate_to_string c)));
  List.iteri
    (fun i (e : event) ->
      let who =
        match e.origin with
        | Auto -> "automated"
        | Human -> "HUMAN"
        | Degraded -> "degraded"
        | Stalled -> "STALLED"
        | Crosscheck -> "cross-check"
      in
      Buffer.add_string buf (Printf.sprintf "## %d. [%s] (%s)\n\n" (i + 1) who e.note);
      Buffer.add_string buf (String.trim e.prompt);
      Buffer.add_string buf "\n\n")
    t.events;
  Buffer.contents buf

(* Full-fidelity transcript (de)serialization, for journaled bench sweeps:
   a resumed sweep must reprint the replayed transcript byte-identically,
   so every event field round-trips. *)
let origin_to_string = function
  | Auto -> "auto"
  | Human -> "human"
  | Degraded -> "degraded"
  | Stalled -> "stalled"
  | Crosscheck -> "crosscheck"

let origin_of_string = function
  | "auto" -> Auto
  | "human" -> Human
  | "degraded" -> Degraded
  | "stalled" -> Stalled
  | "crosscheck" -> Crosscheck
  | s -> invalid_arg ("Driver.origin_of_string: " ^ s)

let certificate_to_json = function
  | Converged -> Netcore.Json.Obj [ ("k", Netcore.Json.String "converged") ]
  | Stalled_out reason ->
      Netcore.Json.Obj
        [ ("k", Netcore.Json.String "stalled"); ("reason", Netcore.Json.String reason) ]
  | Oscillating period ->
      Netcore.Json.Obj
        [ ("k", Netcore.Json.String "oscillating"); ("period", Netcore.Json.Int period) ]

let certificate_of_json j =
  let open Netcore.Json in
  match str_exn (member_exn "k" j) with
  | "converged" -> Converged
  | "stalled" -> Stalled_out (str_exn (member_exn "reason" j))
  | "oscillating" -> Oscillating (int_exn (member_exn "period" j))
  | s -> invalid_arg ("Driver.certificate_of_json: " ^ s)

let transcript_to_json t =
  Netcore.Json.Obj
    ([
       ("human", Netcore.Json.Int t.human_prompts);
       ("auto", Netcore.Json.Int t.auto_prompts);
       ("converged", Netcore.Json.Bool t.converged);
       ("rounds", Netcore.Json.Int t.rounds);
     ]
    (* The field is emitted only when present: unhardened journals keep the
       exact pre-certificate shape, and old journals decode to [None]. *)
    @ (match t.certificate with
      | None -> []
      | Some c -> [ ("cert", certificate_to_json c) ])
    @ [
      ( "events",
        Netcore.Json.List
          (List.map
             (fun e ->
               Netcore.Json.Obj
                 [
                   ("o", Netcore.Json.String (origin_to_string e.origin));
                   ("p", Netcore.Json.String e.prompt);
                   ("n", Netcore.Json.String e.note);
                 ])
             t.events) );
    ])

let transcript_of_json j =
  let open Netcore.Json in
  {
    human_prompts = int_exn (member_exn "human" j);
    auto_prompts = int_exn (member_exn "auto" j);
    converged = (match to_bool (member_exn "converged" j) with
      | Some b -> b
      | None -> invalid_arg "Driver.transcript_of_json: converged");
    rounds = int_exn (member_exn "rounds" j);
    certificate = Option.map certificate_of_json (member "cert" j);
    events =
      List.map
        (fun e ->
          {
            origin = origin_of_string (str_exn (member_exn "o" e));
            prompt = str_exn (member_exn "p" e);
            note = str_exn (member_exn "n" e);
          })
        (list_exn (member_exn "events" j));
  }

(* Per-loop adversary state: the Byzantine-LLM wrapper, the findings
   corruption layer, and the two convergence monitors. Present only when a
   non-trivial spec was passed — every [None] check below is the rate-0
   byte-identity switch. *)
type adv = {
  spec : Adversary.Spec.t;
  llm : Adversary.Llm.t;
  corruption : Adversary.Findings.t;
  lies : Adversary.Verifier.t;  (* Byzantine-verifier lie engine *)
  colluders : Adversary.Collusion.t;  (* colluding coalition (+ oracle) *)
  osc : Adversary.Watch.osc;
  prog : Adversary.Watch.progress;
  mutable escalate : int option;  (* pending oscillation period *)
  mutable escalations : int;
}

(* Mutable loop bookkeeping shared by both use cases. *)
type loop_state = {
  mutable events : event list;  (* reversed *)
  mutable human : int;
  mutable auto : int;
  mutable rounds : int;
  mutable stalls : (string * int) list;  (* prompt text -> attempts *)
  max_prompts : int;
  stall_threshold : int;
  mutable certificate : certificate option;
  adversary : adv option;
  trust : Resilience.Trust.t option;
}

let adv_of_spec ?(salt = 0) spec =
  match spec with
  | None -> None
  | Some s when Adversary.Spec.is_none s -> None
  | Some s ->
      Some
        {
          spec = s;
          llm = Adversary.Llm.create ~salt s.Adversary.Spec.llm;
          corruption = Adversary.Findings.create ~salt s.Adversary.Spec.findings;
          lies = Adversary.Verifier.create ~salt s.Adversary.Spec.verifier;
          colluders = Adversary.Collusion.create ~salt s.Adversary.Spec.collusion;
          osc = Adversary.Watch.osc ~repeat_threshold:s.Adversary.Spec.osc_repeat ();
          prog = Adversary.Watch.progress ~rounds:s.Adversary.Spec.watchdog_rounds;
          escalate = None;
          escalations = 0;
        }

(* An independent adversary state for fan-out task [idx], mirroring
   [Resilience.Runtime.derive]: disjoint streams, fresh monitors. *)
let adv_derive adversary idx =
  Option.map
    (fun a ->
      {
        a with
        llm = Adversary.Llm.derive a.llm idx;
        corruption = Adversary.Findings.derive a.corruption idx;
        lies = Adversary.Verifier.derive a.lies idx;
        colluders = Adversary.Collusion.derive a.colluders idx;
        osc = Adversary.Watch.osc ~repeat_threshold:a.spec.Adversary.Spec.osc_repeat ();
        prog = Adversary.Watch.progress ~rounds:a.spec.Adversary.Spec.watchdog_rounds;
        escalate = None;
        escalations = 0;
      })
    adversary

let new_loop ?adversary ?trust ~max_prompts ~stall_threshold () =
  {
    events = [];
    human = 0;
    auto = 0;
    rounds = 0;
    stalls = [];
    max_prompts;
    stall_threshold;
    certificate = None;
    adversary = (match adversary with Some a -> a | None -> None);
    trust = (match trust with Some t -> t | None -> None);
  }

let budget_left st = st.auto + st.human < st.max_prompts

(* Fold a per-router loop state into the shared one. Both event lists are
   reversed (newest first), so the sub-run's events go in front. Used when
   the per-router synthesis tasks run independently (possibly on a pool)
   and join back into the run-wide transcript. *)
let absorb st sub =
  st.events <- sub.events @ st.events;
  st.human <- st.human + sub.human;
  st.auto <- st.auto + sub.auto;
  st.rounds <- st.rounds + sub.rounds;
  st.stalls <- sub.stalls @ st.stalls;
  (* The first non-converged sub-certificate wins: one stalled router is
     enough to disqualify the merged run's convergence. *)
  (match (st.certificate, sub.certificate) with
  | None, Some _ | Some Converged, Some (Stalled_out _ | Oscillating _) ->
      st.certificate <- sub.certificate
  | _ -> ())

let record st origin prompt note =
  st.events <- { origin; prompt; note } :: st.events;
  match origin with
  | Auto -> st.auto <- st.auto + 1
  | Human -> st.human <- st.human + 1
  | Degraded | Stalled | Crosscheck -> ()  (* transcript annotations, not prompts *)

(* Chat access routed through the Byzantine wrapper when one is armed; the
   [None] arms are exactly the pre-adversary code path. *)
let adv_draft st chat =
  match st.adversary with
  | None -> Llmsim.Chat.draft chat
  | Some a -> Adversary.Llm.draft a.llm chat

let adv_respond st chat prompt =
  match st.adversary with
  | None -> Llmsim.Chat.respond chat prompt
  | Some a -> Adversary.Llm.respond a.llm chat prompt

(* Send a humanized prompt; escalate to a human prompt after
   [stall_threshold] automated attempts at the same prompt text. Returns the
   origin used, or [None] when the finding has no actionable reference and
   has stalled (the loop should give up on it). *)
let send st (chat : Llmsim.Chat.t) (prompt : Humanizer.prompt) ~note =
  let attempts = Option.value ~default:0 (List.assoc_opt prompt.Humanizer.text st.stalls) in
  if attempts >= st.stall_threshold then
    if prompt.Humanizer.refs = [] then None
    else begin
      let human_text = "[human] " ^ prompt.Humanizer.text in
      adv_respond st chat
        { Llmsim.Chat.text = human_text; refs = prompt.Humanizer.refs; strength = Llmsim.Chat.Human };
      record st Human human_text note;
      st.stalls <- List.remove_assoc prompt.Humanizer.text st.stalls;
      Some Human
    end
  else begin
    adv_respond st chat
      {
        Llmsim.Chat.text = prompt.Humanizer.text;
        refs = prompt.Humanizer.refs;
        strength = Llmsim.Chat.Auto;
      };
    record st Auto prompt.Humanizer.text note;
    st.stalls <-
      (prompt.Humanizer.text, attempts + 1) :: List.remove_assoc prompt.Humanizer.text st.stalls;
    Some Auto
  end

(* Send a finding straight to the (simulated) human — the escalation path
   when a verifier stage has degraded and the human ran the check by hand.
   No stall bookkeeping: the human prompt is authoritative. Returns [None]
   when the finding carries no actionable reference (same give-up contract
   as [send]). *)
let send_human st (chat : Llmsim.Chat.t) (prompt : Humanizer.prompt) ~note =
  if prompt.Humanizer.refs = [] then None
  else begin
    let human_text = "[human] " ^ prompt.Humanizer.text in
    adv_respond st chat
      { Llmsim.Chat.text = human_text; refs = prompt.Humanizer.refs; strength = Llmsim.Chat.Human };
    record st Human human_text note;
    st.stalls <- List.remove_assoc prompt.Humanizer.text st.stalls;
    Some Human
  end

(* ------------------------------------------------------------------ *)
(* Byzantine-verifier lenses                                           *)
(* ------------------------------------------------------------------ *)

(* One lens per verifier output type: how the lying wrapper forges each of
   its three modes. Fabricated findings are plausible but fictitious;
   mutations keep a real finding and misplace it (wrong direction, wrong
   neighbor, wrong line) — the "right diagnosis, wrong router" attack.
   The lenses live here, not in [Adversary.Verifier], because only the
   driver layer sees every typed finding. *)

let parse_lens =
  {
    Adversary.Verifier.dirty =
      (fun (_, diags) -> List.exists Netcore.Diag.is_error diags);
    clean = (fun (ir, diags) -> (ir, List.filter (fun d -> not (Netcore.Diag.is_error d)) diags));
    fabricate =
      (fun (ir, diags) ->
        (ir, diags @ [ Netcore.Diag.error ~line:1 "unexpected token at top of file" ]));
    mutate =
      (fun (ir, diags) ->
        ( ir,
          List.map
            (fun d ->
              if Netcore.Diag.is_error d then
                {
                  d with
                  Netcore.Diag.line = 0;
                  message = "in a later stanza: " ^ d.Netcore.Diag.message;
                }
              else d)
            diags ));
  }

let campion_lens =
  let open Campion.Differ in
  let flip = function Import -> Export | Export -> Import in
  let twist = function
    | Structural (Missing_policy m) ->
        Structural (Missing_policy { m with direction = flip m.direction })
    | Structural (Missing_neighbor m) ->
        Structural
          (Missing_neighbor { m with missing_in_translation = not m.missing_in_translation })
    | Structural (Missing_acl_attachment m) ->
        Structural (Missing_acl_attachment { m with direction = flip m.direction })
    | Structural _ as f -> f
    | Attribute a ->
        Attribute
          { a with original_value = a.translated_value; translated_value = a.original_value }
    | Behavior b -> Behavior { b with direction = flip b.direction }
    | Acl_behavior b -> Acl_behavior { b with acl_direction = flip b.acl_direction }
  in
  {
    Adversary.Verifier.dirty = (fun findings -> findings <> []);
    clean = (fun _ -> []);
    fabricate =
      (fun findings ->
        Structural
          (Missing_policy
             {
               neighbor = Netcore.Ipv4.of_octets 203 0 113 199;
               direction = Import;
               missing_in_translation = true;
             })
        :: findings);
    mutate = (function [] -> [] | f :: rest -> twist f :: rest);
  }

let topology_lens =
  {
    Adversary.Verifier.dirty = (fun findings -> findings <> []);
    clean = (fun _ -> []);
    fabricate =
      (fun findings ->
        {
          Topoverify.Verifier.kind = Topoverify.Verifier.Local_as_mismatch;
          message = "local AS mismatch: configured AS disagrees with the topology dictionary";
          iface = None;
          peer = None;
          network = None;
        }
        :: findings);
    mutate =
      (function
      | [] -> []
      | f :: rest ->
          {
            f with
            Topoverify.Verifier.message =
              "on a different router: " ^ f.Topoverify.Verifier.message;
            iface = None;
            peer = None;
            network = None;
          }
          :: rest);
  }

let route_policies_lens =
  let open Batfish.Search_route_policies in
  let is_violated (_, outcome) =
    match outcome with Violated _ -> true | Holds | Policy_missing -> false
  in
  {
    Adversary.Verifier.dirty = (fun outcomes -> List.exists is_violated outcomes);
    clean =
      List.map (fun (s, o) -> match o with Violated _ -> (s, Holds) | _ -> (s, o));
    fabricate =
      (function
      | [] -> []
      | (s, _) :: rest ->
          ( s,
            Violated
              {
                spec = s;
                example = Netcore.Route.make (Netcore.Prefix.of_string_exn "198.51.100.0/24");
                got_action = Action.Deny;
                at_seq = None;
                replaced_communities = false;
              } )
          :: rest);
    mutate =
      List.map (fun (s, o) ->
          match o with
          | Violated v ->
              (s, Violated { v with spec = { v.spec with policy = v.spec.policy ^ "-other" } })
          | _ -> (s, o));
  }

(* Arm the lying schedules on a wrapped suite. A no-op without an adversary
   or with every lie rate 0 — the schedules stay exactly as chaos left
   them, preserving rate-0 byte-identity. *)
let arm_suite_lies adversary (suite : Resilience.Suite.t) =
  match adversary with
  | None -> ()
  | Some a ->
      Adversary.Verifier.arm a.lies ~lens:parse_lens suite.Resilience.Suite.parse;
      Adversary.Verifier.arm a.lies ~lens:campion_lens suite.Resilience.Suite.campion;
      Adversary.Verifier.arm a.lies ~lens:topology_lens suite.Resilience.Suite.topology;
      Adversary.Verifier.arm a.lies ~lens:route_policies_lens
        suite.Resilience.Suite.route_policies;
      (* The coalition arms over whatever the lie engine installed, and —
         when it owns the oracle — as the cross-check oracle service too. *)
      Adversary.Collusion.arm a.colluders ~lens:parse_lens suite.Resilience.Suite.parse;
      Adversary.Collusion.arm a.colluders ~lens:campion_lens suite.Resilience.Suite.campion;
      Adversary.Collusion.arm a.colluders ~lens:topology_lens suite.Resilience.Suite.topology;
      Adversary.Collusion.arm a.colluders ~lens:route_policies_lens
        suite.Resilience.Suite.route_policies

let arm_verifier_lies adversary ~lens v =
  match adversary with
  | None -> ()
  | Some a ->
      Adversary.Verifier.arm a.lies ~lens v;
      Adversary.Collusion.arm a.colluders ~lens v

(* ------------------------------------------------------------------ *)
(* Resilient verifier stages                                           *)
(* ------------------------------------------------------------------ *)

(* One verifier stage run through the resilience runtime. [Checked] is the
   normal automated path. When the call degrades (breaker open, retries
   exhausted), a [Degraded] event lands in the transcript and the simulated
   human runs the check by hand: [Hand_checked] carries the oracle's
   answer, and the caller must escalate any finding to the human — a
   verifier outage shows up as reduced leverage, not a hang or a crash.
   [Crashed_stage] is the third outcome: the oracle itself raised on this
   input (caught by the {!Resilience.Guard} firewall even when the human
   re-ran it by hand), so there is no answer at all — the caller must turn
   the crash into a rewrite prompt and move on. *)
type 'a stage_result =
  | Checked of 'a
  | Hand_checked of 'a
  | Crashed_stage of Resilience.Guard.crash

let stage_value = function
  | Checked v | Hand_checked v -> v
  | Crashed_stage c ->
      invalid_arg
        ("Driver.stage_value: crashed stage " ^ Resilience.Guard.crash_to_string c)

let stage_degraded = function Checked _ -> false | Hand_checked _ | Crashed_stage _ -> true

let run_stage st rt (v : _ Resilience.Verifier.t) input =
  let kind = Resilience.Verifier.kind v in
  let kname = Resilience.Verifier.kind_name kind in
  (* The hand check consults the raw oracle — bypassing every installed
     schedule, chaos faults, lies and compromised oracle services alike —
     which on an adversarial draft can raise the very exception that
     degraded the automated path; the firewall keeps the loop alive either
     way. *)
  let hand_check () = Resilience.Verifier.hand_run v input in
  let degraded reason =
    record st Degraded
      (Printf.sprintf
         "[degraded] %s verifier unavailable: %s. The human operator runs this check \
          by hand; its findings arrive as human prompts."
         kname reason)
      "degraded";
    match hand_check () with
    | Ok r -> Hand_checked r
    | Error crash -> Crashed_stage crash
  in
  let automated () =
    match Resilience.Runtime.call rt v input with
    | Ok r -> `Ok r
    | Error { Resilience.Runtime.kind = _; reason } -> `Degraded (degraded reason)
  in
  match st.trust with
  | None -> (
      (* No trust ledger: the exact pre-Byzantine code path. *)
      match automated () with `Ok r -> Checked r | `Degraded res -> res)
  | Some ledger when Resilience.Trust.quarantined ledger kind -> (
      (* Quarantined kind: the hand-run oracle is authoritative and its
         findings escalate to the human (the PR 2 degradation path). The
         suspect schedule still runs as a probation re-run — enough
         consecutive agreements lift the quarantine. *)
      match hand_check () with
      | Error crash -> Crashed_stage crash
      | Ok honest ->
          Resilience.Trust.note_truth ledger kind
            ~dirty:(Resilience.Verifier.dirty v honest);
          (match Resilience.Verifier.run v input with
          | Ok suspect -> (
              match Resilience.Trust.probation ledger kind ~agree:(suspect = honest) with
              | `Restored streak ->
                  record st Crosscheck
                    (Printf.sprintf
                       "[probation] the %s verifier matched the hand-run check %d consecutive \
                        times; trust restored and quarantine lifted."
                       kname streak)
                    "probation"
              | `Still -> ())
          | Error _ -> ());
          (* an injected fault is not a lie: probation streak unchanged *)
          Hand_checked honest)
  | Some ledger -> (
      match automated () with
      | `Degraded res -> res
      | `Ok r ->
          let dirty_r = Resilience.Verifier.dirty v r in
          (* Shared disagreement machinery: [honest] is authoritative (a
             hand-run, or an oracle service that is only consulted while
             untainted), the suspect is debited. Exactly the PR 8 path. *)
          let caught_lying honest =
            (* The suspect's (possibly lying) dirtiness went into
               [should_check]; re-anchor the trigger to the truth so a
               caught false negative cannot launder the kind's history and
               slip its next fake clean pass through. *)
            Resilience.Trust.note_truth ledger kind
              ~dirty:(Resilience.Verifier.dirty v honest);
            record st Crosscheck
              (Printf.sprintf
                 "[cross-check] the %s verifier's answer disagrees with an independent \
                  oracle re-run; using the oracle's answer and debiting the verifier's \
                  trust."
                 kname)
              "cross-check";
            (match Resilience.Trust.disagree ledger kind with
            | `Quarantined ->
                record st Crosscheck
                  (Printf.sprintf
                     "[quarantine] the %s verifier fell below the trust threshold; its \
                      checks are now hand-run and its findings escalate to human \
                      prompts until probation clears."
                     kname)
                  "quarantine"
            | `Ok -> ());
            Hand_checked honest
          in
          if Resilience.Trust.should_check ledger kind ~dirty:dirty_r then
            if Resilience.Trust.oracle_quarantined ledger then (
              (* A quarantined oracle drops out of cross-checks: the
                 hand-run answer is authoritative, and the oracle service
                 rides along on probation — enough consecutive matches
                 against the hand-run answer restore it. *)
              match hand_check () with
              | Error crash -> Crashed_stage crash
              | Ok honest ->
                  (match Resilience.Verifier.oracle_run v input with
                  | Error _ -> ()
                  | Ok osvc -> (
                      match
                        Resilience.Trust.oracle_probation ledger ~agree:(osvc = honest)
                      with
                      | `Restored streak ->
                          record st Crosscheck
                            (Printf.sprintf
                               "[oracle-probation] the cross-check oracle matched the \
                                hand-run check %d consecutive times; oracle trust restored."
                               streak)
                            "oracle-probation"
                      | `Still -> ()));
                  if honest = r then begin
                    Resilience.Trust.agree ledger kind;
                    Checked r
                  end
                  else caught_lying honest)
            else (
              match Resilience.Verifier.oracle_run v input with
              | Error crash -> Crashed_stage crash
              | Ok honest ->
                  if honest = r then begin
                    Resilience.Trust.agree ledger kind;
                    (* The collusion signature: suspect and oracle agree on
                       a CLEAN answer. A budgeted quorum audit hand-runs
                       the check as referee votes; in honest runs the
                       referee is the very call that just agreed, so the
                       audit is silent and rate-0 byte-identity holds. *)
                    if (not dirty_r) && Resilience.Trust.should_audit ledger kind then (
                      match hand_check () with
                      | Error crash -> Crashed_stage crash
                      | Ok referee ->
                          if referee = r then Checked r
                          else (
                            match Resilience.Trust.quorum_verdict ledger kind with
                            | `Outvoted ->
                                record st Crosscheck
                                  (Printf.sprintf
                                     "[quorum] a hand-run referee disputes the clean pass \
                                      the %s verifier and the cross-check oracle agree on, \
                                      but their combined trust outvotes the quorum; the \
                                      clean pass stands."
                                     kname)
                                  "quorum-outvoted";
                                Checked r
                            | `Overruled (kind_quarantined, oracle_quarantined) ->
                                Resilience.Trust.note_truth ledger kind
                                  ~dirty:(Resilience.Verifier.dirty v referee);
                                record st Crosscheck
                                  (Printf.sprintf
                                     "[quorum] the %s verifier and the cross-check oracle \
                                      agree on a clean pass, but the hand-run quorum \
                                      referees overrule them: collusion detected — using \
                                      the referee's findings and debiting both."
                                     kname)
                                  "quorum";
                                if kind_quarantined then
                                  record st Crosscheck
                                    (Printf.sprintf
                                       "[quarantine] the %s verifier fell below the trust \
                                        threshold; its checks are now hand-run and its \
                                        findings escalate to human prompts until probation \
                                        clears."
                                       kname)
                                    "quarantine";
                                if oracle_quarantined then
                                  record st Crosscheck
                                    "[oracle-quarantine] the cross-check oracle fell below \
                                     the trust threshold; cross-checks now consult the \
                                     hand-run check directly until oracle probation clears."
                                    "oracle-quarantine";
                                Hand_checked referee))
                    else Checked r
                  end
                  else caught_lying honest)
          else Checked r)

(* Deliver a finding down the channel the stage earned: the automated
   prompt (with stall escalation) when the verifier answered, the human
   directly when the stage was hand-checked. *)
let dispatch st chat ~degraded prompt ~note =
  if degraded then send_human st chat prompt ~note else send st chat prompt ~note

(* ------------------------------------------------------------------ *)
(* Convergence hardening (adversary-on runs only)                      *)
(* ------------------------------------------------------------------ *)

(* Observe the round's draft. [true] = the oscillation detector has fired
   more times than the escalation allowance: the loop must end with an
   [Oscillating] certificate instead of burning more budget. A first or
   second detection instead arms [escalate], which forces the next finding
   down the human path. *)
let max_oscillation_escalations = 2

let observe_draft st draft =
  match st.adversary with
  | None -> false
  | Some a -> (
      match Adversary.Watch.observe a.osc draft with
      | None -> false
      | Some period ->
          if a.escalations >= max_oscillation_escalations then begin
            st.certificate <- Some (Oscillating period);
            record st Stalled
              (Printf.sprintf
                 "[oscillation] the drafts cycle with period %d despite human \
                  escalation; ending the loop with an oscillation verdict."
                 period)
              "oscillation";
            true
          end
          else begin
            a.escalations <- a.escalations + 1;
            a.escalate <- Some period;
            false
          end)

(* Observe the round's outstanding finding count for the stage that
   produced it. [true] = the progress watchdog fired: K consecutive rounds
   without a shrinking finding set — the loop must end with a [Stalled_out]
   certificate rather than an uncaught budget exhaustion. *)
let observe_findings st ~stage ~findings =
  match st.adversary with
  | None -> false
  | Some a ->
      if Adversary.Watch.step a.prog ~stage ~findings then begin
        st.certificate <-
          Some
            (Stalled_out
               (Printf.sprintf "no progress for %d rounds (last stage: %s, %d findings)"
                  a.spec.Adversary.Spec.watchdog_rounds stage findings));
        record st Stalled
          (Printf.sprintf
             "[watchdog] %d consecutive rounds without a shrinking finding set at \
              the %s stage; ending the loop with a stalled verdict."
             a.spec.Adversary.Spec.watchdog_rounds stage)
          "watchdog";
        true
      end
      else false

(* Deliver a finding through the (possibly corrupted) feedback channel.
   [`Sent] — at least one prompt went out, continue the loop. [`Dropped] —
   the corruption swallowed the finding; the loop continues and the
   watchdog bounds repeated drops (they consume no prompt budget).
   [`Gave_up] — every delivery stalled out with no actionable reference. *)
let deliver st chat ~degraded (prompt : Humanizer.prompt) ~note =
  match st.adversary with
  | None -> (
      match dispatch st chat ~degraded prompt ~note with
      | Some origin -> `Sent origin
      | None -> `Gave_up)
  | Some a -> (
      match a.escalate with
      | Some period -> (
          (* A detected oscillation bypasses stall bookkeeping and the
             corruption layer: the human breaks the cycle directly. *)
          a.escalate <- None;
          match
            send_human st chat (Humanizer.of_oscillation ~period prompt) ~note:"oscillation"
          with
          | Some origin -> `Sent origin
          | None -> `Gave_up)
      | None -> (
          match
            Adversary.Findings.corrupt a.corruption ~text:prompt.Humanizer.text
              ~refs:prompt.Humanizer.refs
          with
          | [] -> `Dropped
          | pieces -> (
              let sent =
                List.filter_map
                  (fun (text, refs) ->
                    dispatch st chat ~degraded { Humanizer.text; refs } ~note)
                  pieces
              in
              match sent with [] -> `Gave_up | origin :: _ -> `Sent origin)))

(* A crashed stage yields no finding, only a rewrite instruction. [k]
   continues the loop once the prompt is delivered; [stop] ends it when the
   crasher has stalled out (the prompt carries no refs, so [send] gives up
   after [stall_threshold] identical attempts — a persistent crasher bounds
   the transcript instead of spinning). *)
let on_crash st chat crash ~k ~stop =
  match send st chat (Humanizer.of_crash crash) ~note:"crash" with
  | Some _ -> k ()
  | None -> stop ()

let finish st converged =
  (* A hardened run always carries a verdict; the unhardened path carries
     none (and therefore serializes byte-identically to before). *)
  (match (st.adversary, st.certificate) with
  | Some _, None ->
      st.certificate <-
        Some
          (if converged then Converged
           else if budget_left st then
             Stalled_out "gave up: finding with no actionable reference"
           else Stalled_out "prompt budget exhausted")
  | _ -> ());
  {
    events = List.rev st.events;
    human_prompts = st.human;
    auto_prompts = st.auto;
    converged;
    rounds = st.rounds;
    certificate = st.certificate;
  }

(* ------------------------------------------------------------------ *)
(* Class outcome tracking (Table 2)                                    *)
(* ------------------------------------------------------------------ *)

type class_outcome = {
  class_ : Llmsim.Error_class.t;
  fixed_by_generated_prompt : bool;
}

type tracker = {
  mutable seen : Llmsim.Error_class.t list;
  mutable tainted : Llmsim.Error_class.t list;
      (* needed a human prompt, or morphed into another class *)
}

let track_seen tr (chat : Llmsim.Chat.t) =
  List.iter
    (fun (f : Llmsim.Fault.t) ->
      if not (List.mem f.Llmsim.Fault.class_ tr.seen) then
        tr.seen <- tr.seen @ [ f.Llmsim.Fault.class_ ])
    (Llmsim.Chat.live_faults chat)

let taint tr cls = if not (List.mem cls tr.tainted) then tr.tainted <- tr.tainted @ [ cls ]

let outcomes_of tr (chat : Llmsim.Chat.t) =
  let still_live cls =
    List.exists
      (fun (f : Llmsim.Fault.t) -> Llmsim.Error_class.equal f.Llmsim.Fault.class_ cls)
      (Llmsim.Chat.live_faults chat)
  in
  List.map
    (fun cls ->
      {
        class_ = cls;
        fixed_by_generated_prompt =
          (not (List.mem cls tr.tainted))
          && (Llmsim.Error_class.profile cls).Llmsim.Error_class.successor = None
          && not (still_live cls);
      })
    tr.seen

(* A morphing class (successor present) never counts as fixed by its own
   generated prompt; mark it tainted as soon as it is seen. *)
let pre_taint tr =
  List.iter
    (fun cls ->
      if (Llmsim.Error_class.profile cls).Llmsim.Error_class.successor <> None then taint tr cls)
    tr.seen

(* ------------------------------------------------------------------ *)
(* Use case 1: translation                                             *)
(* ------------------------------------------------------------------ *)

type translation_result = {
  transcript : transcript;
  final_text : string;
  outcomes : class_outcome list;
  verified : bool;
}

let first_error diags = List.find_opt Netcore.Diag.is_error diags

let run_translation ?(seed = 42) ?(force_faults = []) ?(suppress_random = false)
    ?(max_prompts = 200) ?(stall_threshold = 4) ?(quality = 0.0)
    ?(resilience = Resilience.Runtime.default_config) ?adversary ?trust ?trust_ledger
    ~cisco_text () =
  let cisco_ir, _ = Cisco.Parser.parse cisco_text in
  let correct = Juniper.Translate.of_cisco_ir cisco_ir in
  let chat =
    Llmsim.Chat.start ~seed ~force_faults ~suppress_random ~regression_rate:0.2 ~quality
      Llmsim.Fault.Junos_cfg ~correct
  in
  let rt = Resilience.Runtime.create ~salt:seed resilience in
  let suite = Resilience.Suite.make rt in
  let adv = adv_of_spec adversary in
  arm_suite_lies adv suite;
  let st =
    new_loop ~adversary:adv
      ~trust:
        (match trust_ledger with
        | Some _ -> trust_ledger
        | None -> Option.map Resilience.Trust.create trust)
      ~max_prompts ~stall_threshold ()
  in
  let tr = { seen = []; tainted = [] } in
  (* The initial task prompt ("translate the configuration into an
     equivalent Juniper configuration") is the first human prompt. *)
  record st Human "Translate the configuration into an equivalent Juniper configuration."
    "initial task prompt";
  track_seen tr chat;
  let taint_refs origin (prompt : Humanizer.prompt) =
    List.iter
      (fun (f : Llmsim.Fault.t) -> if origin = Human then taint tr f.Llmsim.Fault.class_)
      prompt.Humanizer.refs
  in
  let rec loop () =
    st.rounds <- st.rounds + 1;
    track_seen tr chat;
    if not (budget_left st) then finish st false
    else begin
      Resilience.Runtime.new_round rt;
      let draft = adv_draft st chat in
      let give_up () = finish st false in
      if observe_draft st draft then finish st false
      else
      match run_stage st rt suite.Resilience.Suite.parse (Batfish.Parse_check.Junos, draft) with
      | Crashed_stage crash -> on_crash st chat crash ~k:loop ~stop:give_up
      | (Checked _ | Hand_checked _) as parsed -> (
          let ir, diags = stage_value parsed in
          match first_error diags with
          | Some diag ->
              let n_errors = List.length (List.filter Netcore.Diag.is_error diags) in
              if observe_findings st ~stage:"syntax" ~findings:n_errors then finish st false
              else
                let prompt = Humanizer.of_diag diag in
                (match deliver st chat ~degraded:(stage_degraded parsed) prompt ~note:"syntax" with
                | `Sent origin ->
                    taint_refs origin prompt;
                    loop ()
                | `Dropped -> loop ()
                | `Gave_up -> finish st false)
          | None -> (
              match run_stage st rt suite.Resilience.Suite.campion (cisco_ir, ir) with
              | Crashed_stage crash -> on_crash st chat crash ~k:loop ~stop:give_up
              | (Checked _ | Hand_checked _) as diffed -> (
                  match stage_value diffed with
                  | [] -> finish st true
                  | finding :: _ as findings ->
                      if
                        observe_findings st ~stage:"campion"
                          ~findings:(List.length findings)
                      then finish st false
                      else
                        let prompt = Humanizer.of_campion finding in
                        (match
                           deliver st chat ~degraded:(stage_degraded diffed) prompt
                             ~note:"campion"
                         with
                        | `Sent origin ->
                            taint_refs origin prompt;
                            loop ()
                        | `Dropped -> loop ()
                        | `Gave_up -> finish st false))))
    end
  in
  let transcript = loop () in
  pre_taint tr;
  let final_text = Llmsim.Chat.draft chat in
  let verified =
    transcript.converged
    &&
    let ir, diags = Exec.Memo.check Batfish.Parse_check.Junos final_text in
    first_error diags = None && Campion.Differ.compare ~original:cisco_ir ~translation:ir = []
  in
  { transcript; final_text; outcomes = outcomes_of tr chat; verified }

let table2_faults ~cisco_text =
  let cisco_ir, _ = Cisco.Parser.parse cisco_text in
  let correct = Juniper.Translate.of_cisco_ir cisco_ir in
  let opportunities = Llmsim.Fault.opportunities Llmsim.Fault.Junos_cfg correct in
  let first cls =
    List.find_opt
      (fun (f : Llmsim.Fault.t) -> Llmsim.Error_class.equal f.Llmsim.Fault.class_ cls)
      opportunities
  in
  List.filter_map first
    [
      Llmsim.Error_class.Missing_local_as;
      Llmsim.Error_class.Missing_import_policy;
      Llmsim.Error_class.Missing_export_policy;
      Llmsim.Error_class.Ospf_cost_wrong;
      Llmsim.Error_class.Ospf_passive_wrong;
      Llmsim.Error_class.Wrong_med;
      Llmsim.Error_class.Prefix_range_dropped;
      Llmsim.Error_class.Redistribution_unscoped;
    ]

(* ------------------------------------------------------------------ *)
(* Use case 2: no-transit synthesis                                    *)
(* ------------------------------------------------------------------ *)

type final_check = Simulate | Prove | Both

type synthesis_result = {
  transcript : transcript;
  configs : (string * Config_ir.t) list;
  per_router_verified : (string * bool) list;
  global_ok : bool;
  global_violations : string list;
  proof : Lightyear.result option;
}

let run_no_transit ?(seed = 42) ?(use_iips = true) ?(max_prompts = 400)
    ?(stall_threshold = 2) ?(final_check = Simulate) ?pool ?tasks:tasks_override
    ?(force_hub_faults = []) ?(resilience = Resilience.Runtime.default_config)
    ?adversary ?trust ?trust_ledger ~routers () =
  let star = Netcore.Star.make ~routers in
  let tasks =
    match tasks_override with Some ts -> ts | None -> Modularizer.plan star
  in
  let iips = if use_iips then Iip.ids Iip.defaults else [] in
  let rt_main = Resilience.Runtime.create ~salt:seed resilience in
  let suite_main = Resilience.Suite.make rt_main in
  let adv_main = adv_of_spec adversary in
  arm_suite_lies adv_main suite_main;
  let st =
    new_loop ~adversary:adv_main
      ~trust:
        (match trust_ledger with
        | Some _ -> trust_ledger
        | None -> Option.map Resilience.Trust.create trust)
      ~max_prompts ~stall_threshold ()
  in
  record st Human
    (Printf.sprintf
       "Make a %d-router star network follow the no-transit policy: no two ISPs \
        should be able to reach each other, but all ISPs should reach the \
        CUSTOMER and vice versa."
       routers)
    "initial task prompt";
  (* One local verification pass for a router: syntax, then topology, then
     local policy semantics. [st] is the loop state charged for the prompts:
     the run-wide one during the global phase, a per-router one during the
     fan-out (merged back on join so the accounting is identical whether
     the routers run sequentially or on a pool). *)
  let local_loop st (suite : Resilience.Suite.t) (task : Modularizer.router_task) chat =
    let rt = suite.Resilience.Suite.runtime in
    let rec loop () =
      st.rounds <- st.rounds + 1;
      if not (budget_left st) then (Llmsim.Chat.draft chat, false)
      else begin
        Resilience.Runtime.new_round rt;
        let draft = adv_draft st chat in
        let give_up () = (draft, false) in
        if observe_draft st draft then (draft, false)
        else
        match
          run_stage st rt suite.Resilience.Suite.parse (Batfish.Parse_check.Cisco_ios, draft)
        with
        | Crashed_stage crash -> on_crash st chat crash ~k:loop ~stop:give_up
        | (Checked _ | Hand_checked _) as parsed -> (
            let ir, diags = stage_value parsed in
            match first_error diags with
            | Some diag ->
                let n_errors = List.length (List.filter Netcore.Diag.is_error diags) in
                if observe_findings st ~stage:"syntax" ~findings:n_errors then (draft, false)
                else (
                  match
                    deliver st chat ~degraded:(stage_degraded parsed) (Humanizer.of_diag diag)
                      ~note:"syntax"
                  with
                  | `Sent _ | `Dropped -> loop ()
                  | `Gave_up -> (draft, false))
            | None -> (
                match
                  run_stage st rt suite.Resilience.Suite.topology
                    (star.Netcore.Star.topology, task.Modularizer.router, ir)
                with
                | Crashed_stage crash -> on_crash st chat crash ~k:loop ~stop:give_up
                | (Checked _ | Hand_checked _) as topo -> (
                    match stage_value topo with
                    | finding :: _ as findings ->
                        if
                          observe_findings st ~stage:"topology"
                            ~findings:(List.length findings)
                        then (draft, false)
                        else (
                          match
                            deliver st chat ~degraded:(stage_degraded topo)
                              (Humanizer.of_topology finding) ~note:"topology"
                          with
                          | `Sent _ | `Dropped -> loop ()
                          | `Gave_up -> (draft, false))
                    | [] -> (
                        match
                          run_stage st rt suite.Resilience.Suite.route_policies
                            (ir, task.Modularizer.specs)
                        with
                        | Crashed_stage crash -> on_crash st chat crash ~k:loop ~stop:give_up
                        | (Checked _ | Hand_checked _) as semantics -> (
                            let violations =
                              List.filter_map
                                (fun (_, outcome) ->
                                  match outcome with
                                  | Batfish.Search_route_policies.Violated v -> Some v
                                  | Batfish.Search_route_policies.Holds
                                  | Batfish.Search_route_policies.Policy_missing ->
                                      None)
                                (stage_value semantics)
                            in
                            match violations with
                            | [] -> (draft, true)
                            | v :: _ ->
                                if
                                  observe_findings st ~stage:"semantic"
                                    ~findings:(List.length violations)
                                then (draft, false)
                                else (
                                  match
                                    deliver st chat ~degraded:(stage_degraded semantics)
                                      (Humanizer.of_violation v) ~note:"semantic"
                                  with
                                  | `Sent _ | `Dropped -> loop ()
                                  | `Gave_up -> (draft, false)))))))
      end
    in
    loop ()
  in
  (* Each router is an independent task: its own chat, its own derived seed,
     its own loop state (budget = what is left after the initial prompt).
     That makes the fan-out embarrassingly parallel — Lightyear's
     observation about per-router checks — while the join below merges the
     accounting in task order, so pool and sequential runs are
     bit-identical. *)
  (* The remaining budget is split evenly across the fan-out: each router
     task loops against its own share, so even under an injected fault
     schedule that burns prompts on every router the merged transcript can
     never exceed [max_prompts] (the termination invariant the chaos sweep
     enforces). In fault-free runs a share is an order of magnitude more
     than any router uses, so transcripts are unchanged. *)
  let router_budget =
    if tasks = [] then 0
    else max 0 ((max_prompts - (st.auto + st.human)) / List.length tasks)
  in
  let synthesize_router (idx, (task : Modularizer.router_task)) =
    let sub =
      new_loop
        ~adversary:(adv_derive adv_main idx)
        ~trust:(Option.map Resilience.Trust.derive st.trust)
        ~max_prompts:router_budget ~stall_threshold ()
    in
    let force_faults =
      if task.Modularizer.router = star.Netcore.Star.hub then force_hub_faults
      else []
    in
    let chat =
      Llmsim.Chat.start ~seed:(seed + (idx * 7919)) ~iips ~force_faults
        Llmsim.Fault.Cisco_cfg ~correct:task.Modularizer.correct
    in
    (* Each task gets an independent derived resilience context (fresh
       clock, breakers, fault streams) so the fan-out is deterministic on a
       pool and one router's outage never trips a sibling's breaker. *)
    let suite = Resilience.Suite.make (Resilience.Runtime.derive rt_main idx) in
    arm_suite_lies sub.adversary suite;
    (* The modularizer's per-router prompt is machine-generated: automated.
       Recorded only while the share has budget, so a starved fan-out still
       respects the run-wide prompt ceiling. *)
    if budget_left sub then
      record sub Auto task.Modularizer.prompt
        (Printf.sprintf "modularizer prompt for %s" task.Modularizer.router);
    let final_draft, ok = local_loop sub suite task chat in
    let ir, _ = Cisco.Parser.parse final_draft in
    (task.Modularizer.router, chat, ir, ok, sub)
  in
  let indexed = List.mapi (fun i t -> (i, t)) tasks in
  let fanned =
    match pool with
    | Some p -> Exec.Pool.map p synthesize_router indexed
    | None -> Exec.Pool.map_seq synthesize_router indexed
  in
  List.iter (fun (_, _, _, _, sub) -> absorb st sub) fanned;
  let results = List.map (fun (name, chat, ir, ok, _) -> (name, chat, ir, ok)) fanned in
  let all_ok = List.for_all (fun (_, _, _, ok) -> ok) results in
  let configs_of results = List.map (fun (name, _, ir, _) -> (name, ir)) results in
  let check_global configs =
    let sim () = Modularizer.no_transit_holds star configs in
    let prove () = Lightyear.prove_no_transit star configs in
    let describe = function
      | Lightyear.Proved -> []
      | Lightyear.Refuted r ->
          [
            Printf.sprintf "modular proof refuted: a route from %s can reach %s"
              r.Lightyear.from_spoke r.Lightyear.to_spoke;
          ]
      | Lightyear.Inapplicable why -> [ "proof inapplicable: " ^ why ]
    in
    match final_check with
    | Simulate -> (sim (), None)
    | Prove ->
        let p = prove () in
        ((p = Lightyear.Proved, describe p), Some p)
    | Both ->
        let ok_sim, v_sim = sim () in
        let p = prove () in
        ((ok_sim && p = Lightyear.Proved, v_sim @ describe p), Some p)
  in
  (* Global phase: when every router verifies locally but the whole-network
     check fails, feed the counterexample back to the hub conversation
     (crossed attachments are the only fault that survives local
     verification) and re-verify the hub locally after each prompt. *)
  (* The hub is looked up by name, not by position: the modularizer
     currently plans it first, but the feedback must keep firing (and fail
     loudly, not silently return) if the plan is ever reordered. *)
  let hub_name = star.Netcore.Star.hub in
  let hub_task_exn () =
    match
      List.find_opt
        (fun (t : Modularizer.router_task) -> t.Modularizer.router = hub_name)
        tasks
    with
    | Some t -> t
    | None ->
        invalid_arg
          (Printf.sprintf "Driver.run_no_transit: hub %s missing from the task plan"
             hub_name)
  in
  let hub_chat_exn results =
    match List.find_opt (fun (name, _, _, _) -> name = hub_name) results with
    | Some (_, chat, _, _) -> chat
    | None ->
        invalid_arg
          (Printf.sprintf
             "Driver.run_no_transit: hub %s missing from the synthesis results"
             hub_name)
  in
  (* The whole-network check (the paper's Minesweeper-style global
     verifier) is itself wrapped: when it degrades, the human runs the
     simulation by hand and the counterexample feedback arrives as a human
     prompt. *)
  let global_verifier =
    Resilience.Runtime.arm rt_main
      (Resilience.Verifier.wrap
         ~dirty:(fun ((ok, _), _) -> not ok)
         Resilience.Verifier.Bgp_sim check_global)
  in
  arm_verifier_lies adv_main global_verifier
    ~lens:
      {
        Adversary.Verifier.dirty = (fun ((ok, _), _) -> not ok);
        clean = (fun ((_, _), proof) -> ((true, []), proof));
        fabricate =
          (fun ((_, violations), proof) ->
            ((false, violations @ [ "a route from ISP-1 can reach ISP-2" ]), proof));
        mutate =
          (fun ((ok, violations), proof) ->
            ( (ok, List.map (fun v -> "between a different pair of spokes: " ^ v) violations),
              proof ));
      };
  let rec global_phase results rounds =
    Resilience.Runtime.new_round rt_main;
    match run_stage st rt_main global_verifier (configs_of results) with
    | Crashed_stage crash ->
        (* The whole-network check aborted on these configs: surface the
           crash to the hub conversation as a rewrite prompt and re-check,
           within the same round bound as ordinary counterexamples. *)
        let crashed () =
          (results, false, [ Resilience.Guard.crash_to_string crash ], None)
        in
        if rounds = 0 || not (budget_left st) then crashed ()
        else
          on_crash st (hub_chat_exn results) crash
            ~k:(fun () -> global_phase results (rounds - 1))
            ~stop:crashed
    | (Checked _ | Hand_checked _) as checked -> (
    let (ok, violations), proof = stage_value checked in
    if ok || rounds = 0 || not (budget_left st) then (results, ok, violations, proof)
    else if observe_findings st ~stage:"global" ~findings:(List.length violations) then
      (results, ok, violations, proof)
    else
      let hub_task = hub_task_exn () in
      let hub_chat = hub_chat_exn results in
      let prompt = Humanizer.of_global_violations ~hub:hub_name violations in
      let resynthesize () =
        let draft, local_ok = local_loop st suite_main hub_task hub_chat in
        let ir, _ = Cisco.Parser.parse draft in
        let results =
          List.map
            (fun ((name, chat, _, _) as r) ->
              if name = hub_name then (name, chat, ir, local_ok) else r)
            results
        in
        global_phase results (rounds - 1)
      in
      match
        deliver st hub_chat ~degraded:(stage_degraded checked) prompt ~note:"global"
      with
      | `Gave_up -> (results, ok, violations, proof)
      | `Sent _ -> resynthesize ()
      | `Dropped ->
          (* The counterexample never reached the hub: nothing changed, so
             re-checking without re-synthesis just burns a round. *)
          global_phase results (rounds - 1))
  in
  let results, global_ok, global_violations, proof =
    if all_ok then global_phase results 12
    else (results, false, [ "per-router verification incomplete" ], None)
  in
  let per_router_verified = List.map (fun (name, _, _, ok) -> (name, ok)) results in
  {
    transcript = finish st (List.for_all snd per_router_verified && global_ok);
    configs = configs_of results;
    per_router_verified;
    global_ok;
    global_violations;
    proof;
  }

(* ------------------------------------------------------------------ *)
(* Extension: incremental policy addition                              *)
(* ------------------------------------------------------------------ *)

type incremental_result = {
  inc_transcript : transcript;
  hub_config : Config_ir.t;
  specs_hold : bool;
  global_ok : bool;
  interference_caught : bool;
}

let run_incremental ?(seed = 42) ?(max_prompts = 100) ?(stall_threshold = 2)
    ?(target = "R2") ?(prepend = [ 1; 1 ])
    ?(resilience = Resilience.Runtime.default_config) ?adversary ?trust ?trust_ledger
    ~routers () =
  let star = Netcore.Star.make ~routers in
  let rt = Resilience.Runtime.create ~salt:seed resilience in
  let suite = Resilience.Suite.make rt in
  let adv = adv_of_spec adversary in
  arm_suite_lies adv suite;
  let task = Modularizer.prepend_task star ~target ~prepend in
  let base_configs =
    List.map
      (fun (t : Modularizer.router_task) -> (t.Modularizer.router, t.Modularizer.correct))
      (Modularizer.plan star)
  in
  let st =
    new_loop ~adversary:adv
      ~trust:
        (match trust_ledger with
        | Some _ -> trust_ledger
        | None -> Option.map Resilience.Trust.create trust)
      ~max_prompts ~stall_threshold ()
  in
  let interference = ref false in
  record st Human task.Modularizer.prompt "incremental task prompt";
  (* The LLM edits an already-correct configuration: only the edit-related
     mistake classes apply. *)
  let edit_classes cls =
    match cls with
    | Llmsim.Error_class.Policy_inserted_early | Llmsim.Error_class.Wrong_policy_modified ->
        true
    | _ -> false
  in
  let chat =
    Llmsim.Chat.start ~seed ~class_filter:edit_classes Llmsim.Fault.Cisco_cfg
      ~correct:task.Modularizer.correct
  in
  let rec loop () =
    st.rounds <- st.rounds + 1;
    if not (budget_left st) then false
    else begin
      Resilience.Runtime.new_round rt;
      let draft = adv_draft st chat in
      let give_up () = false in
      if observe_draft st draft then false
      else
      match
        run_stage st rt suite.Resilience.Suite.parse (Batfish.Parse_check.Cisco_ios, draft)
      with
      | Crashed_stage crash -> on_crash st chat crash ~k:loop ~stop:give_up
      | (Checked _ | Hand_checked _) as parsed -> (
      let ir, diags = stage_value parsed in
      match first_error diags with
      | Some diag ->
          let n_errors = List.length (List.filter Netcore.Diag.is_error diags) in
          if observe_findings st ~stage:"syntax" ~findings:n_errors then false
          else (
            match
              deliver st chat ~degraded:(stage_degraded parsed) (Humanizer.of_diag diag)
                ~note:"syntax"
            with
            | `Sent _ | `Dropped -> loop ()
            | `Gave_up -> false)
      | None -> (
          match
            run_stage st rt suite.Resilience.Suite.route_policies (ir, task.Modularizer.specs)
          with
          | Crashed_stage crash -> on_crash st chat crash ~k:loop ~stop:give_up
          | (Checked _ | Hand_checked _) as semantics -> (
          let violations =
            List.filter_map
              (fun (_, outcome) ->
                match outcome with
                | Batfish.Search_route_policies.Violated v -> Some v
                | Batfish.Search_route_policies.Holds
                | Batfish.Search_route_policies.Policy_missing ->
                    None)
              (stage_value semantics)
          in
          match violations with
          | [] -> true
          | v :: _ ->
              (match v.Batfish.Search_route_policies.spec.Batfish.Search_route_policies.requirement with
              | Batfish.Search_route_policies.Denies
              | Batfish.Search_route_policies.Permits
              | Batfish.Search_route_policies.Adds_community _ ->
                  (* A pre-existing local policy broke: the verifier caught
                     interference with the verified configuration. *)
                  interference := true
              | Batfish.Search_route_policies.Prepends _ -> ());
              if observe_findings st ~stage:"semantic" ~findings:(List.length violations)
              then false
              else (
                match
                  deliver st chat ~degraded:(stage_degraded semantics)
                    (Humanizer.of_violation v) ~note:"semantic"
                with
                | `Sent _ | `Dropped -> loop ()
                | `Gave_up -> false))))
    end
  in
  let specs_hold = loop () in
  let hub_config, _ = Cisco.Parser.parse (Llmsim.Chat.draft chat) in
  let configs =
    (star.Netcore.Star.hub, hub_config)
    :: List.remove_assoc star.Netcore.Star.hub base_configs
  in
  (* The closing whole-network check runs under the same resilience
     boundary as the no-transit driver's global phase: a crashed BGP sim
     degrades to the human running it by hand (a [Degraded] event), never
     an unchecked exception. The short-circuit stays — when the specs
     already failed there is nothing worth simulating. *)
  let global_verifier =
    Resilience.Runtime.arm rt
      (Resilience.Verifier.wrap
         ~dirty:(fun (ok, _) -> not ok)
         Resilience.Verifier.Bgp_sim
         (fun configs -> Modularizer.no_transit_holds star configs))
  in
  arm_verifier_lies adv global_verifier
    ~lens:
      {
        Adversary.Verifier.dirty = (fun (ok, _) -> not ok);
        clean = (fun (_, _) -> (true, []));
        fabricate =
          (fun (_, violations) ->
            (false, violations @ [ "a route from ISP-1 can reach ISP-2" ]));
        mutate =
          (fun (ok, violations) ->
            (ok, List.map (fun v -> "between a different pair of spokes: " ^ v) violations));
      };
  let global_ok =
    specs_hold
    &&
    (Resilience.Runtime.new_round rt;
     match run_stage st rt global_verifier configs with
     | Crashed_stage crash ->
         (* No re-synthesis loop here: the closing check aborting on these
            configs is a failed verification, recorded as such. *)
         ignore (send st chat (Humanizer.of_crash crash) ~note:"crash");
         false
     | (Checked _ | Hand_checked _) as checked -> fst (stage_value checked))
  in
  {
    inc_transcript = finish st (specs_hold && global_ok);
    hub_config;
    specs_hold;
    global_ok;
    interference_caught = !interference;
  }
