type summary = {
  runs : int;
  converged : int;
  mean_auto : float;
  mean_human : float;
  mean_leverage : float;
  stddev_leverage : float;
  min_leverage : float;
  max_leverage : float;
  infinite_leverage : int;
  stalled : int;
  oscillating : int;
}

let summarize transcripts =
  let n = List.length transcripts in
  if n = 0 then
    {
      runs = 0;
      converged = 0;
      mean_auto = 0.;
      mean_human = 0.;
      mean_leverage = 0.;
      stddev_leverage = 0.;
      min_leverage = 0.;
      max_leverage = 0.;
      infinite_leverage = 0;
      stalled = 0;
      oscillating = 0;
    }
  else
    let fn = float_of_int n in
    let leverages = List.map Driver.leverage transcripts in
    (* A zero-human transcript has infinite leverage (see
       {!Driver.leverage}); the mean/stddev/range are over the finite runs
       only, with the infinite ones counted separately rather than silently
       turning every aggregate into nan/inf. *)
    let finite = List.filter Float.is_finite leverages in
    let n_finite = List.length finite in
    let infinite_leverage = n - n_finite in
    let mean_leverage =
      if n_finite = 0 then 0.
      else List.fold_left ( +. ) 0. finite /. float_of_int n_finite
    in
    let stddev_leverage =
      if n_finite = 0 then 0.
      else
        sqrt
          (List.fold_left (fun acc l -> acc +. ((l -. mean_leverage) ** 2.)) 0. finite
          /. float_of_int n_finite)
    in
    {
      runs = n;
      converged =
        List.length (List.filter (fun (t : Driver.transcript) -> t.Driver.converged) transcripts);
      mean_auto =
        List.fold_left (fun acc (t : Driver.transcript) -> acc +. float_of_int t.Driver.auto_prompts) 0. transcripts
        /. fn;
      mean_human =
        List.fold_left (fun acc (t : Driver.transcript) -> acc +. float_of_int t.Driver.human_prompts) 0. transcripts
        /. fn;
      mean_leverage;
      stddev_leverage;
      min_leverage = (if n_finite = 0 then 0. else List.fold_left min infinity finite);
      max_leverage = (if n_finite = 0 then 0. else List.fold_left max neg_infinity finite);
      infinite_leverage;
      stalled =
        List.length
          (List.filter
             (fun (t : Driver.transcript) ->
               match t.Driver.certificate with
               | Some (Driver.Stalled_out _) -> true
               | _ -> false)
             transcripts);
      oscillating =
        List.length
          (List.filter
             (fun (t : Driver.transcript) ->
               match t.Driver.certificate with
               | Some (Driver.Oscillating _) -> true
               | _ -> false)
             transcripts);
    }

let translation_summary ?(runs = 20) ?(base_seed = 1000) ?pool ~cisco_text () =
  let transcripts =
    Exec.Sweep.run_seeds ?pool ~seeds:(Exec.Sweep.seeds ~base:base_seed ~n:runs)
      (fun seed -> (Driver.run_translation ~seed ~cisco_text ()).Driver.transcript)
  in
  summarize transcripts

let no_transit_summary ?(runs = 20) ?(base_seed = 2000) ?(use_iips = true) ?pool
    ~routers () =
  let transcripts =
    Exec.Sweep.run_seeds ?pool ~seeds:(Exec.Sweep.seeds ~base:base_seed ~n:runs)
      (fun seed -> (Driver.run_no_transit ~seed ~use_iips ~routers ()).Driver.transcript)
  in
  summarize transcripts

let pp_summary ppf s =
  Format.fprintf ppf
    "runs=%d converged=%d auto=%.1f human=%.1f leverage=%.1fx +/- %.1f (min %.1f, max %.1f)"
    s.runs s.converged s.mean_auto s.mean_human s.mean_leverage s.stddev_leverage
    s.min_leverage s.max_leverage;
  if s.infinite_leverage > 0 then
    Format.fprintf ppf " [%d runs with infinite leverage]" s.infinite_leverage;
  if s.stalled > 0 then Format.fprintf ppf " [%d stalled]" s.stalled;
  if s.oscillating > 0 then Format.fprintf ppf " [%d oscillating]" s.oscillating

(* Tally of convergence certificates over a hardened sweep, for the A1
   bench table: one row per distinct certificate string, counted, in
   first-seen order. Plain transcripts (no certificate) tally under
   "(none)". *)
let certificates transcripts =
  let order = ref [] in
  let counts = Hashtbl.create 7 in
  List.iter
    (fun (t : Driver.transcript) ->
      let key =
        match t.Driver.certificate with
        | None -> "(none)"
        | Some c -> Driver.certificate_to_string c
      in
      if not (Hashtbl.mem counts key) then order := key :: !order;
      Hashtbl.replace counts key (1 + try Hashtbl.find counts key with Not_found -> 0))
    transcripts;
  List.rev_map (fun key -> (key, Hashtbl.find counts key)) !order

(* ------------------------------------------------------------------ *)
(* Performance instrumentation                                         *)
(* ------------------------------------------------------------------ *)

type perf = {
  wall_s : float;
  pool_size : int;
  memo_hits : int;
  memo_misses : int;
  pool_utilization : float;
  verifier : (Resilience.Verifier.kind * Resilience.Stats.counters) list;
  supervisor : Exec.Supervisor.counters;
  trust : Resilience.Trust.snapshot;
  quorum : Resilience.Trust.quorum_counters;
}

let verifier_totals p =
  List.fold_left
    (fun acc (_, c) -> Resilience.Stats.add acc c)
    Resilience.Stats.zero p.verifier

let verifier_rows p =
  List.filter_map
    (fun ((k : Resilience.Verifier.kind), (c : Resilience.Stats.counters)) ->
      if c.Resilience.Stats.attempts = 0 && c.Resilience.Stats.degraded = 0 then
        None
      else
        Some
          [
            Resilience.Verifier.kind_name k;
            string_of_int c.Resilience.Stats.attempts;
            string_of_int c.Resilience.Stats.retries;
            string_of_int c.Resilience.Stats.failures;
            string_of_int c.Resilience.Stats.breaker_trips;
            string_of_int c.Resilience.Stats.degraded;
            string_of_int c.Resilience.Stats.max_attempts;
          ])
    p.verifier

let verifier_header =
  [ "verifier"; "attempts"; "retries"; "failures"; "trips"; "degraded"; "max att" ]

let trust_totals p = Resilience.Trust.totals p.trust

let trust_rows p =
  List.filter_map
    (fun ((k : Resilience.Verifier.kind), (c : Resilience.Trust.counters)) ->
      if c.Resilience.Trust.cross_checks = 0 && c.Resilience.Trust.probation_runs = 0 then
        None
      else
        Some
          [
            Resilience.Verifier.kind_name k;
            string_of_int c.Resilience.Trust.cross_checks;
            string_of_int c.Resilience.Trust.agreements;
            string_of_int c.Resilience.Trust.disagreements;
            string_of_int c.Resilience.Trust.quarantines;
            string_of_int c.Resilience.Trust.restores;
            string_of_int c.Resilience.Trust.probation_runs;
          ])
    p.trust

let trust_header =
  [ "verifier"; "checks"; "agree"; "lies"; "quarantines"; "restores"; "probation" ]

let memo_hit_rate p =
  let total = p.memo_hits + p.memo_misses in
  if total = 0 then 0. else float_of_int p.memo_hits /. float_of_int total

let measure ?pool f =
  let m0 = Exec.Memo.stats () in
  let v0 = Resilience.Stats.snapshot () in
  let t0 = Resilience.Trust.snapshot () in
  let q0 = Resilience.Trust.quorum_snapshot () in
  let s0 = Exec.Supervisor.stats () in
  let p0 = Option.map Exec.Pool.stats pool in
  let r, wall_s = Exec.Sweep.timed f in
  let m1 = Exec.Memo.stats () in
  let v1 = Resilience.Stats.snapshot () in
  let utilization =
    match (pool, p0) with
    | Some p, Some s0 ->
        let s1 = Exec.Pool.stats p in
        let busy = s1.Exec.Pool.busy_s -. s0.Exec.Pool.busy_s in
        let denom = wall_s *. float_of_int s1.Exec.Pool.domains in
        if denom <= 0. then 0. else Float.min 1. (busy /. denom)
    | _ -> 0.
  in
  ( r,
    {
      wall_s;
      pool_size = (match pool with Some p -> Exec.Pool.size p | None -> 0);
      memo_hits = m1.Exec.Memo.hits - m0.Exec.Memo.hits;
      memo_misses = m1.Exec.Memo.misses - m0.Exec.Memo.misses;
      pool_utilization = utilization;
      verifier = Resilience.Stats.diff v0 v1;
      supervisor = Exec.Supervisor.diff s0 (Exec.Supervisor.stats ());
      trust = Resilience.Trust.diff (Resilience.Trust.snapshot ()) t0;
      quorum = Resilience.Trust.diff_quorum (Resilience.Trust.quorum_snapshot ()) q0;
    } )

let pp_perf ppf p =
  Format.fprintf ppf
    "wall %.3fs, pool size %d (utilization %.0f%%), memo %d hits / %d misses (%.0f%% hit rate)"
    p.wall_s p.pool_size (100. *. p.pool_utilization) p.memo_hits p.memo_misses
    (100. *. memo_hit_rate p);
  let t = verifier_totals p in
  if t.Resilience.Stats.attempts > 0 || t.Resilience.Stats.degraded > 0 then
    Format.fprintf ppf
      ", verifiers %d attempts / %d retries / %d trips / %d degraded"
      t.Resilience.Stats.attempts t.Resilience.Stats.retries
      t.Resilience.Stats.breaker_trips t.Resilience.Stats.degraded;
  let tr = trust_totals p in
  if tr.Resilience.Trust.cross_checks > 0 || tr.Resilience.Trust.probation_runs > 0 then
    Format.fprintf ppf ", trust %d checks / %d lies / %d quarantines"
      tr.Resilience.Trust.cross_checks tr.Resilience.Trust.disagreements
      tr.Resilience.Trust.quarantines;
  (* Quorum activity prints only when the collusion defense actually moved,
     so every pre-collusion perf line stays byte-identical. *)
  if Resilience.Trust.quorum_active p.quorum then
    Format.fprintf ppf ", quorum %d audits / %d overruled / %d oracle quarantines"
      p.quorum.Resilience.Trust.audits p.quorum.Resilience.Trust.overruled
      p.quorum.Resilience.Trust.oracle_quarantines;
  let sup = p.supervisor in
  if sup.Exec.Supervisor.losses > 0 || sup.Exec.Supervisor.abandoned > 0 then
    Format.fprintf ppf
      ", supervisor %d losses / %d requeues / %d abandoned"
      sup.Exec.Supervisor.losses sup.Exec.Supervisor.requeues
      sup.Exec.Supervisor.abandoned
