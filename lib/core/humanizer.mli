(** The humanizer: "simple code ... that converts the feedback to natural
    language prompts that are given to GPT-4".

    Each verifier's findings are rendered with the formulaic templates of
    Tables 1 and 3 (fixed text plus fields from the verifier), paired with
    the structured fault reference the simulated LLM consumes. *)

open Netcore

type prompt = { text : string; refs : Llmsim.Fault.t list }

val of_diag : Diag.t -> prompt
(** Syntax errors: "There is a syntax error: '...'" with a class inferred
    from the targeted parser messages. *)

val of_campion : Campion.Differ.finding -> prompt
(** Structural mismatch / attribute difference / policy behavior difference
    templates of Table 1. *)

val of_topology : Topoverify.Verifier.finding -> prompt
(** Table 3 topology messages pass through with their location attached. *)

val of_violation : Batfish.Search_route_policies.violation -> prompt
(** Table 3 semantic template: "The route-map X permits routes that have the
    community C. However, they should be denied." *)

val of_crash : Resilience.Guard.crash -> prompt
(** A stage that crashed outright (the {!Resilience.Guard} firewall caught
    an exception from a parser/differ/sim): a rewrite-from-scratch
    instruction naming the stage, exception constructor and input
    fingerprint. Carries no fault refs, so a persistent crasher stalls out
    and bounds the loop rather than spinning. *)

val of_oscillation : period:int -> prompt -> prompt
(** Reframe a finding for the human after the driver's oscillation detector
    fired: the drafts are cycling with the given period, so the automated
    template is replaced by a break-the-cycle instruction carrying the same
    fault refs. *)

val of_global_violations : hub:string -> string list -> prompt
(** A whole-network counterexample ("as would be provided by a 'global'
    network verifier like Minesweeper") — the feedback the paper found
    GPT-4 handles poorly. Carries a crossed-attachment reference since a
    network whose routers all verify locally can only fail globally through
    mis-attachment. *)
