open Netcore

type prompt = { text : string; refs : Llmsim.Fault.t list }

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* First whitespace-delimited token following [after] in [s]. *)
let token_after ~after s =
  let rec find i =
    if i + String.length after > String.length s then None
    else if String.sub s i (String.length after) = after then
      Some (i + String.length after)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let rest = String.sub s start (String.length s - start) in
      let rest = String.trim rest in
      let stop =
        match String.index_opt rest ' ' with Some i -> i | None -> String.length rest
      in
      let tok = String.sub rest 0 stop in
      let tok =
        (* Strip trailing punctuation from prose. *)
        let n = String.length tok in
        if n > 0 && (tok.[n - 1] = '\'' || tok.[n - 1] = ':' || tok.[n - 1] = ';') then
          String.sub tok 0 (n - 1)
        else tok
      in
      if tok = "" then None else Some tok

let fault = Llmsim.Fault.make

let infer_syntax_refs message =
  let open Llmsim in
  if contains ~sub:"no local AS" message || contains ~sub:"local-as" message then
    [ fault Error_class.Missing_local_as Fault.Whole_config ]
  else if
    contains ~sub:"not valid Juniper syntax" message
    || contains ~sub:"route-filter" message && contains ~sub:"not valid syntax" message
  then
    match token_after ~after:"prefix-list " message with
    | Some name -> [ fault Error_class.Bad_prefix_list_syntax (Fault.Named_list name) ]
    | None -> [ fault Error_class.Bad_prefix_list_syntax Fault.Whole_config ]
  else if contains ~sub:"interactive CLI command" message then
    [ fault Error_class.Cli_keywords Fault.Whole_config ]
  else if contains ~sub:"'match community" message && contains ~sub:"is invalid" message
  then [ fault Error_class.Match_community_literal Fault.Whole_config ]
  else if contains ~sub:"only valid inside a 'router bgp'" message then
    match token_after ~after:"neighbor " message with
    | Some addr -> (
        match Ipv4.of_string addr with
        | Some a -> [ fault Error_class.Neighbor_outside_bgp (Fault.Neighbor a) ]
        | None -> [ fault Error_class.Neighbor_outside_bgp Fault.Whole_config ])
    | None -> [ fault Error_class.Neighbor_outside_bgp Fault.Whole_config ]
  else []

let of_diag (d : Diag.t) =
  {
    text = Printf.sprintf "There is a syntax error: '%s'" d.Diag.message;
    refs = infer_syntax_refs d.Diag.message;
  }

(* ------------------------------------------------------------------ *)
(* Campion findings -> Table 1 templates                               *)
(* ------------------------------------------------------------------ *)

let of_campion (f : Campion.Differ.finding) =
  let open Llmsim in
  match f with
  | Campion.Differ.Structural s -> (
      match s with
      | Campion.Differ.Missing_policy { neighbor; direction; missing_in_translation } ->
          let dir = Campion.Differ.direction_to_string direction in
          let text =
            if missing_in_translation then
              Printf.sprintf
                "In the original configuration, there is an %s route map for bgp \
                 neighbor %s, but in the translation, there is no corresponding \
                 route map"
                dir (Ipv4.to_string neighbor)
            else
              Printf.sprintf
                "In the translation, there is an %s route map for bgp neighbor %s, \
                 but in the original configuration, there is no corresponding route \
                 map; remove it or align it with the original"
                dir (Ipv4.to_string neighbor)
          in
          let cls =
            match direction with
            | Campion.Differ.Import -> Error_class.Missing_import_policy
            | Campion.Differ.Export -> Error_class.Missing_export_policy
          in
          { text; refs = [ fault cls (Fault.Neighbor neighbor) ] }
      | Campion.Differ.Missing_acl_attachment _ as other ->
          {
            text = Campion.Differ.finding_to_string (Campion.Differ.Structural other);
            refs = [];
          }
      | other ->
          { text = Campion.Differ.finding_to_string (Campion.Differ.Structural other); refs = [] })
  | Campion.Differ.Attribute a ->
      let text =
        Printf.sprintf
          "In the original configuration, the %s has %s set to %s, but in the \
           translation, the corresponding link to %s has %s set to %s"
          a.Campion.Differ.component a.Campion.Differ.attribute
          a.Campion.Differ.original_value a.Campion.Differ.translated_component
          a.Campion.Differ.attribute a.Campion.Differ.translated_value
      in
      let refs =
        let iface_of_component () =
          Option.bind
            (token_after ~after:"OSPF link for " a.Campion.Differ.component)
            Iface.of_cisco
        in
        match a.Campion.Differ.attribute with
        | "cost" -> (
            match iface_of_component () with
            | Some i -> [ fault Error_class.Ospf_cost_wrong (Fault.Interface i) ]
            | None -> [ fault Error_class.Ospf_cost_wrong Fault.Whole_config ])
        | "passive interface" -> (
            match iface_of_component () with
            | Some i -> [ fault Error_class.Ospf_passive_wrong (Fault.Interface i) ]
            | None -> [ fault Error_class.Ospf_passive_wrong Fault.Whole_config ])
        | _ -> []
      in
      { text; refs }
  | Campion.Differ.Behavior b ->
      let action a = String.uppercase_ascii (Policy.Action.to_string a) in
      let neighbor =
        match b.Campion.Differ.neighbor with
        | Some n -> Printf.sprintf " for BGP neighbor %s" (Ipv4.to_string n)
        | None -> ""
      in
      let dir =
        match b.Campion.Differ.direction with
        | Campion.Differ.Import -> "import"
        | Campion.Differ.Export -> "export"
      in
      let base =
        Printf.sprintf
          "In the original configuration, for the prefix %s, the BGP %s policy %s%s \
           performs the following action: %s. But, in the translation, the \
           corresponding BGP %s policy %s performs the following action: %s"
          (Prefix.to_string b.Campion.Differ.example.Route.prefix)
          dir b.Campion.Differ.policy neighbor
          (action b.Campion.Differ.original_action)
          dir b.Campion.Differ.policy
          (action b.Campion.Differ.translated_action)
      in
      let text =
        match b.Campion.Differ.effect_detail with
        | [] ->
            if b.Campion.Differ.is_redistribution then
              base
              ^ Printf.sprintf " (the example route was learned from %s, not BGP)"
                  (Route.source_to_string b.Campion.Differ.example.Route.source)
            else base
        | fields ->
            base ^ ", with "
            ^ String.concat ", "
                (List.map
                   (fun (attr, o, t) ->
                     Printf.sprintf "%s %s in the original but %s in the translation"
                       attr o t)
                   fields)
      in
      (* A behavior difference can stem from several latent mistakes (a
         dropped prefix range shifts regions and shows up as a MED or
         redistribution difference), so the prompt carries every plausible
         class; the conversation resolves whichever is actually present. *)
      let refs =
        if b.Campion.Differ.is_redistribution then
          [
            fault Error_class.Redistribution_unscoped Fault.Whole_config;
            fault Error_class.Prefix_range_dropped Fault.Whole_config;
          ]
        else if
          List.exists (fun (attr, _, _) -> attr = "MED") b.Campion.Differ.effect_detail
        then
          [
            fault Error_class.Wrong_med (Fault.Policy b.Campion.Differ.policy);
            fault Error_class.Prefix_range_dropped Fault.Whole_config;
          ]
        else
          [
            fault Error_class.Prefix_range_dropped Fault.Whole_config;
            fault Error_class.Wrong_med (Fault.Policy b.Campion.Differ.policy);
          ]
      in
      { text; refs }
  | Campion.Differ.Acl_behavior a ->
      let action x = String.uppercase_ascii (Policy.Action.to_string x) in
      let text =
        Printf.sprintf
          "In the original configuration, the access list %s applied %s on \
           interface %s performs the following action on the packet [%s]: %s. \
           But, in the translation, the corresponding firewall filter performs \
           the following action: %s"
          a.Campion.Differ.acl
          (Campion.Differ.direction_to_string a.Campion.Differ.acl_direction)
          (Iface.cisco_name a.Campion.Differ.iface)
          (Packet.to_string a.Campion.Differ.packet)
          (action a.Campion.Differ.original_packet_action)
          (action a.Campion.Differ.translated_packet_action)
      in
      let refs =
        [
          fault Error_class.Acl_action_flipped (Fault.Named_list a.Campion.Differ.acl);
          fault Error_class.Acl_entry_dropped (Fault.Named_list a.Campion.Differ.acl);
          fault Error_class.Acl_wrong_port (Fault.Named_list a.Campion.Differ.acl);
        ]
      in
      { text; refs }

(* ------------------------------------------------------------------ *)
(* Topology verifier findings -> Table 3                               *)
(* ------------------------------------------------------------------ *)

let of_topology (f : Topoverify.Verifier.finding) =
  let open Llmsim in
  let refs =
    match f.Topoverify.Verifier.kind with
    | Topoverify.Verifier.Interface_address_mismatch
    | Topoverify.Verifier.Missing_interface -> (
        match f.Topoverify.Verifier.iface with
        | Some i -> [ fault Error_class.Wrong_interface_ip (Fault.Interface i) ]
        | None -> [ fault Error_class.Wrong_interface_ip Fault.Whole_config ])
    | Topoverify.Verifier.Local_as_mismatch ->
        [ fault Error_class.Wrong_local_as Fault.Whole_config ]
    | Topoverify.Verifier.Router_id_mismatch ->
        [ fault Error_class.Wrong_router_id Fault.Whole_config ]
    | Topoverify.Verifier.Neighbor_not_declared -> (
        match f.Topoverify.Verifier.peer with
        | Some p -> [ fault Error_class.Missing_neighbor_decl (Fault.Neighbor p) ]
        | None -> [ fault Error_class.Missing_neighbor_decl Fault.Whole_config ])
    | Topoverify.Verifier.Incorrect_neighbor ->
        [ fault Error_class.Extra_neighbor_decl Fault.Whole_config ]
    | Topoverify.Verifier.Network_not_declared -> (
        match f.Topoverify.Verifier.network with
        | Some n -> [ fault Error_class.Missing_network_decl (Fault.Network n) ]
        | None -> [ fault Error_class.Missing_network_decl Fault.Whole_config ])
    | Topoverify.Verifier.Incorrect_network ->
        [ fault Error_class.Extra_network_decl Fault.Whole_config ]
    | Topoverify.Verifier.No_bgp_process -> []
  in
  { text = f.Topoverify.Verifier.message; refs }

(* ------------------------------------------------------------------ *)
(* Search-route-policies violations -> Table 3 semantic template       *)
(* ------------------------------------------------------------------ *)

let of_violation (v : Batfish.Search_route_policies.violation) =
  let open Llmsim in
  let spec = v.Batfish.Search_route_policies.spec in
  let comms = v.Batfish.Search_route_policies.example.Route.communities in
  let comm_text =
    if Community.Set.is_empty comms then "no communities"
    else Printf.sprintf "the community %s" (Community.Set.to_string comms)
  in
  match spec.Batfish.Search_route_policies.requirement with
  | Batfish.Search_route_policies.Denies ->
      {
        text =
          Printf.sprintf
            "The route-map %s permits routes that have %s. However, they should be \
             denied."
            spec.Batfish.Search_route_policies.policy comm_text;
        refs =
          (* The two ways a deny requirement breaks: AND/OR confusion, or an
             incrementally inserted term that bypasses the deny stanzas. *)
          [
            fault Error_class.And_or_confusion
              (Fault.Policy spec.Batfish.Search_route_policies.policy);
            fault Error_class.Policy_inserted_early
              (Fault.Policy spec.Batfish.Search_route_policies.policy);
          ];
      }
  | Batfish.Search_route_policies.Permits ->
      {
        text =
          Printf.sprintf
            "The route-map %s denies routes that have %s. However, they should be \
             permitted."
            spec.Batfish.Search_route_policies.policy comm_text;
        refs =
          [
            fault Error_class.And_or_confusion
              (Fault.Policy spec.Batfish.Search_route_policies.policy);
          ];
      }
  | Batfish.Search_route_policies.Prepends asns ->
      {
        text =
          Printf.sprintf
            "The route-map %s should prepend %s to the AS path of every route it \
             accepts, but for the route %s it does not; apply the prepend in this \
             route-map's final accepting term, after the existing deny stanzas."
            spec.Batfish.Search_route_policies.policy
            (String.concat " " (List.map string_of_int asns))
            (Prefix.to_string v.Batfish.Search_route_policies.example.Route.prefix);
        refs =
          [
            fault Error_class.Wrong_policy_modified
              (Fault.Policy spec.Batfish.Search_route_policies.policy);
            fault Error_class.Policy_inserted_early
              (Fault.Policy spec.Batfish.Search_route_policies.policy);
          ];
      }
  | Batfish.Search_route_policies.Adds_community c ->
      let detail =
        if v.Batfish.Search_route_policies.replaced_communities then
          "it replaces the communities already on the route instead of adding to \
           them; use the 'additive' keyword"
        else if v.Batfish.Search_route_policies.got_action = Policy.Action.Deny then
          "it denies the route instead"
        else "the community is not added"
      in
      {
        text =
          Printf.sprintf
            "The route-map %s should add the community %s to every route it accepts, \
             but for the route %s, %s."
            spec.Batfish.Search_route_policies.policy (Community.to_string c)
            (Prefix.to_string v.Batfish.Search_route_policies.example.Route.prefix)
            detail;
        refs =
          [
            fault Error_class.Community_not_additive
              (Fault.Policy spec.Batfish.Search_route_policies.policy);
          ];
      }

(* ------------------------------------------------------------------ *)
(* Whole-network counterexamples                                       *)
(* ------------------------------------------------------------------ *)

(* A guarded pipeline crash: the stage aborted on the draft itself (the
   parser, differ or sim raised), so there is no structured finding to
   template — the only sensible instruction is a rewrite. No fault refs:
   after [stall_threshold] identical attempts the loop gives up, so a
   persistent crasher bounds the transcript instead of spinning. *)
let of_crash (c : Resilience.Guard.crash) =
  {
    text =
      Printf.sprintf
        "The %s check could not process this configuration at all (internal \
         %s on input %s). The draft is malformed beyond analysis; discard it \
         and rewrite the configuration from scratch, keeping only well-formed \
         stanzas."
        c.Resilience.Guard.stage c.Resilience.Guard.constructor
        c.Resilience.Guard.fingerprint;
    refs = [];
  }

(* An oscillation escalation: the driver detected that the drafts are
   cycling and routes the current finding straight to the human, framed so
   the (simulated) operator breaks the cycle rather than replaying the
   same automated template. The original refs are kept — the cycle is the
   LLM's, not the finding's. *)
let of_oscillation ~period (p : prompt) =
  {
    text =
      Printf.sprintf
        "The conversation is going in circles: the last drafts repeat with \
         period %d instead of converging. Do not regenerate the previous \
         configuration; address this finding directly: %s"
        period p.text;
    refs = p.refs;
  }

let of_global_violations ~hub violations =
  let open Llmsim in
  let detail = match violations with v :: _ -> v | [] -> "the global policy fails" in
  {
    text =
      Printf.sprintf
        "The network-wide check failed: %s. Every router's configuration passes \
         its local checks, so re-examine which route-maps are attached to which \
         BGP neighbors on %s: the ingress route-map for each ISP must be the one \
         that adds that ISP's own community."
        detail hub;
    refs = [ fault Error_class.Crossed_policy_attachment Fault.Whole_config ];
  }
