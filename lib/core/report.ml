let widths header rows =
  let cols = List.length header in
  let all = header :: rows in
  List.init cols (fun i ->
      List.fold_left
        (fun acc row ->
          match List.nth_opt row i with
          | Some cell -> max acc (String.length cell)
          | None -> acc)
        0 all)

let pad s w = s ^ String.make (max 0 (w - String.length s)) ' '

let table ?footer ~title ~header rows =
  let ws = widths header (rows @ Option.to_list footer) in
  let line = String.concat "  " (List.map (fun w -> String.make w '-') ws) in
  let render row =
    String.concat "  " (List.mapi (fun i c -> pad c (List.nth ws i)) row)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (render header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf line;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render row);
      Buffer.add_char buf '\n')
    rows;
  (match footer with
  | None -> ()
  | Some row ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (render row);
      Buffer.add_char buf '\n');
  Buffer.contents buf

let kv ~title pairs =
  let w = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs in
  let buf = Buffer.create 128 in
  Buffer.add_string buf (title ^ "\n");
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %s : %s\n" (pad k w) v)) pairs;
  Buffer.contents buf

let counts ~title pairs =
  kv ~title (List.map (fun (k, n) -> (k, string_of_int n)) pairs)
