(** The Verified Prompt Programming loops (Figure 3).

    Both use cases share the shape: the LLM drafts, the verifier suite finds
    problems in a fixed order (syntax, then structure/topology, then
    semantics), the humanizer turns the first outstanding finding into an
    automated prompt, and the loop repeats. A finding that survives
    [stall_threshold] automated prompts escalates to a (simulated) human
    prompt — the slow manual loop of Figure 2. Leverage is the ratio of
    automated to human prompts. *)

open Policy

type origin =
  | Auto
  | Human
  | Degraded
      (** Not a prompt: a transcript annotation that a verifier stage was
          unavailable (breaker open or retries exhausted) and the human ran
          the check by hand. Counts toward neither prompt total. *)
  | Stalled
      (** Not a prompt: a transcript annotation that the hardened loop's
          progress watchdog or oscillation detector ended the run. Counts
          toward neither prompt total; only emitted on adversary-on runs. *)
  | Crosscheck
      (** Not a prompt: a transcript annotation from the trust layer — a
          cross-check caught a verifier answer disagreeing with the oracle,
          a kind entered quarantine, or probation lifted one. Counts toward
          neither prompt total; only emitted when a [?trust] ledger is
          armed, so plain transcripts are unchanged. *)

(** The convergence verdict a hardened run attaches to its transcript:
    the loop converged, stalled (watchdog fired, budget exhausted, or it
    gave up on an unactionable finding — the reason says which), or was
    caught cycling with the given period. *)
type certificate = Converged | Stalled_out of string | Oscillating of int

val certificate_to_string : certificate -> string

type event = { origin : origin; prompt : string; note : string }

type transcript = {
  events : event list;
  human_prompts : int;  (** Includes the initial task prompt. *)
  auto_prompts : int;
  converged : bool;
  rounds : int;  (** Verifier passes executed. *)
  certificate : certificate option;
      (** [Some] exactly when the run was hardened (a non-trivial
          [?adversary] spec was passed); [None] keeps plain transcripts —
          markdown and JSON — byte-identical to the pre-certificate
          format. *)
}

val leverage : transcript -> float
(** [auto / human]. A transcript with zero human prompts has
    [Float.infinity] leverage when any automated prompt was sent and [0.]
    otherwise (it never happens in the standard loops, which count the
    initial task prompt as human — but summaries must not silently absorb
    the infinity; see {!Metrics.summarize}). *)

val transcript_to_markdown : title:string -> transcript -> string
(** The conversation as a markdown document: one section per prompt, tagged
    automated/human with the verifier stage that produced it. *)

val transcript_to_json : transcript -> Netcore.Json.t

val transcript_of_json : Netcore.Json.t -> transcript
(** Full-fidelity inverse of {!transcript_to_json} (every event field
    round-trips, so a journaled bench sweep reprints replayed transcripts
    byte-identically). Raises [Invalid_argument] on shape mismatch. *)

(** {2 Use case 1: Cisco → Juniper translation} *)

type class_outcome = {
  class_ : Llmsim.Error_class.t;
  fixed_by_generated_prompt : bool;
      (** False when the class needed a human prompt or first morphed into a
          different error (the paper's Table 2 "No" rows). *)
}

type translation_result = {
  transcript : transcript;
  final_text : string;  (** The last Juniper draft. *)
  outcomes : class_outcome list;  (** Per error class seen during the run. *)
  verified : bool;  (** Batfish and Campion both clean at the end. *)
}

val run_translation :
  ?seed:int ->
  ?force_faults:Llmsim.Fault.t list ->
  ?suppress_random:bool ->
  ?max_prompts:int ->
  ?stall_threshold:int ->
  ?quality:float ->
  ?resilience:Resilience.Runtime.config ->
  ?adversary:Adversary.Spec.t ->
  ?trust:Resilience.Trust.config ->
  ?trust_ledger:Resilience.Trust.t ->
  cisco_text:string ->
  unit ->
  translation_result
(** [quality] (default 0) simulates a better future LLM; see
    {!Llmsim.Chat.start}.

    [resilience] (default {!Resilience.Runtime.default_config}: no chaos)
    drives every verifier call through retry/backoff, a per-verifier
    circuit breaker and a per-round tick deadline. When a stage stays down,
    the loop records a [Degraded] event and the simulated human runs the
    check by hand, so its findings arrive as human prompts — an outage
    shows up as reduced leverage, never as a hang or an exception. Under
    any fault schedule the loop terminates with [converged = true] or an
    explicit non-converged transcript within [max_prompts]. With every
    chaos rate 0 the transcript is byte-identical to the unwrapped loop.

    [adversary] (default: none) arms the Byzantine layer: the LLM's drafts
    and responses pass through {!Adversary.Llm}, verifier findings pass
    through {!Adversary.Findings}, and the loop is hardened with an
    oscillation detector (a detected cycle escalates to a human prompt,
    repeated cycles end the run), a progress watchdog (K rounds with no
    shrinking finding set end the run) and a convergence {!certificate} on
    the transcript. Under any adversary rates in [0, 1] the loop terminates
    within [max_prompts]; a spec with every rate 0 is treated exactly like
    no spec, keeping transcripts byte-identical.

    The spec's [verifier] field arms the Byzantine-{e verifier} layer: each
    wrapped checker's successful answers pass through a seeded lying
    schedule ({!Adversary.Verifier}) that can swallow real findings,
    fabricate fake ones, or misplace a real finding — installed under the
    chaos schedule, so lies ride the retry/breaker machinery as healthy
    responses.

    [trust] (default: none) arms the {!Resilience.Trust} defense: the
    driver spends a bounded cross-check budget re-running suspicious
    answers (findings, and clean passes right after dirty ones) against
    the raw oracle; a disagreement is a detected lie — the oracle's answer
    is used (its findings escalate to the human) and the kind's trust is
    debited; below the threshold the kind is quarantined, its checks
    hand-run until probation re-runs restore it. Cross-check, quarantine
    and probation outcomes land in the transcript as [Crosscheck]
    annotations. With honest verifiers the ledger changes no transcript
    bytes — cross-checks that agree are silent.

    The cross-check oracle is no longer unconditional ground truth: a
    clean answer the oracle {e agrees} with may still be a coalition lie
    (the spec's [collusion] field arms {!Adversary.Collusion}, optionally
    compromising the oracle itself), so the trust layer spends a separate
    audit budget hand-running such agreements as quorum referees — an
    overruled agreement debits the kind {e and} the oracle, and a
    quarantined oracle drops out of cross-checks (hand-run answers are
    authoritative) until oracle probation restores it. In honest runs the
    referee is the very call that just agreed, so audits are silent and
    byte-identity holds.

    [trust_ledger] passes an existing {!Resilience.Trust.t} instance
    instead of a fresh [create] — the persistence hook: the caller seeds it
    from {!Resilience.Trust.Ledger_store} state and reads the evolved state
    back after the run, so quarantine survives kill/resume cycles. Takes
    precedence over [trust]. *)

val table2_faults : cisco_text:string -> Llmsim.Fault.t list
(** One representative fault per Table 2 row, targeted at the reference
    config — used to pin the Table 2 reproduction. *)

(** {2 Use case 2: no-transit on a star network} *)

type final_check = Simulate | Prove | Both
(** How the global no-transit policy is checked once every router verifies
    locally: the paper's whole-network BGP simulation, the Lightyear-style
    modular proof, or both (they must agree — the proof is sound). *)

type synthesis_result = {
  transcript : transcript;
  configs : (string * Config_ir.t) list;
  per_router_verified : (string * bool) list;
  global_ok : bool;
  global_violations : string list;
  proof : Lightyear.result option;  (** Set when [final_check] involves the proof. *)
}

val run_no_transit :
  ?seed:int ->
  ?use_iips:bool ->
  ?max_prompts:int ->
  ?stall_threshold:int ->
  ?final_check:final_check ->
  ?pool:Exec.Pool.t ->
  ?tasks:Modularizer.router_task list ->
  ?force_hub_faults:Llmsim.Fault.t list ->
  ?resilience:Resilience.Runtime.config ->
  ?adversary:Adversary.Spec.t ->
  ?trust:Resilience.Trust.config ->
  ?trust_ledger:Resilience.Trust.t ->
  routers:int ->
  unit ->
  synthesis_result
(** [use_iips] defaults to true (the paper supplies the IIPs); switching it
    off is the S1 ablation. [final_check] defaults to [Simulate].

    Each router's synthesis is an independent task (own chat, own derived
    seed, own prompt accounting merged back in task order), so passing
    [pool] fans the routers across worker domains with bit-identical
    results to the sequential run. [tasks] overrides the modularizer's plan
    (testing/ablation hook — the driver locates the hub by name and raises
    [Invalid_argument] if it is absent). [force_hub_faults] injects faults
    into the hub's chat on top of the seeded sample, e.g. a crossed policy
    attachment to deterministically exercise the global phase.

    Faults that pass every local check (crossed policy attachments) surface
    only in the global phase; the driver then feeds a whole-network
    counterexample prompt back to the hub's chat — the "global feedback"
    the paper found far less actionable than local findings — escalating to
    the human as usual.

    [resilience] wraps every checker (syntax, topology, route policies and
    the whole-network check itself) as for {!run_translation}; each router
    task runs under an independent derived context so pooled fan-out stays
    bit-identical and one router's outage cannot trip a sibling's breaker.
    The remaining prompt budget is split evenly across the fan-out, so even
    a fault schedule that burns prompts on every router keeps the merged
    transcript within [max_prompts]. *)

(** {2 Extension: incremental policy addition}

    The paper's closing question: "Can GPT-4 add a new policy incrementally
    without interfering with existing verified policy?" Starting from the
    verified no-transit network, the hub is asked to prepend the AS path on
    routes exported to one ISP; the simulated LLM's edit-specific mistakes
    (inserting the new term before the verified deny stanzas, or editing the
    wrong route map) are caught by the same local specs plus the new prepend
    requirement. *)

type incremental_result = {
  inc_transcript : transcript;
  hub_config : Config_ir.t;
  specs_hold : bool;  (** Old specs and the new one, at the end. *)
  global_ok : bool;  (** No-transit still holds network-wide. *)
  interference_caught : bool;
      (** A violation of the {e pre-existing} policy was raised (and
          repaired) during the run — the verifier protecting the verified
          configuration. *)
}

val run_incremental :
  ?seed:int ->
  ?max_prompts:int ->
  ?stall_threshold:int ->
  ?target:string ->
  ?prepend:int list ->
  ?resilience:Resilience.Runtime.config ->
  ?adversary:Adversary.Spec.t ->
  ?trust:Resilience.Trust.config ->
  ?trust_ledger:Resilience.Trust.t ->
  routers:int ->
  unit ->
  incremental_result
(** Defaults: [target] = "R2", [prepend] = the hub AS twice. [resilience]
    as for {!run_translation} — it covers every stage end to end, the
    closing whole-network BGP check included: under chaos that check can
    degrade to a hand-run simulation ([Degraded] event), never an
    unchecked exception. *)
