(** A per-verifier-kind reputation ledger, the defense against Byzantine
    (lying) verifiers.

    The chaos layer models verifiers that {e fail}; the Byzantine layer
    models verifiers that {e lie} — a swallowed finding produces a fake
    clean pass the loop happily converges on, and PR 5's headline already
    showed that leverage alone cannot detect a poisoned feedback signal.
    This module keeps one trust score per {!Verifier.kind}, fed by
    cross-check outcomes: the driver spends a bounded budget re-running
    suspicious answers against the raw oracle ({!Verifier.oracle}, which
    bypasses every installed schedule); a disagreement debits trust, and a
    kind that falls below the threshold is {e quarantined} — its checks are
    hand-run and its findings escalate to human prompts, exactly the PR 2
    degradation path — until enough consecutive agreeing probation re-runs
    restore it.

    What counts as suspicious: any answer carrying findings, and a clean
    pass immediately after a dirty one (the false-negative signature — the
    draft just changed, so "suddenly clean" deserves a second opinion). A
    kind's very first clean pass is suspicious too, so a round-one false
    negative cannot slip through unchecked. *)

type config = {
  initial : float;  (** Starting (and maximum) trust score. *)
  debit : float;  (** Subtracted on each cross-check disagreement. *)
  credit : float;  (** Added (capped at [initial]) on each agreement. *)
  threshold : float;  (** Quarantine when the score falls below this. *)
  probation : int;
      (** Consecutive agreeing probation re-runs required to lift a
          quarantine (clamped to >= 1, so quarantine exit is always
          reachable under honest behavior). *)
  check_budget : int;
      (** Maximum voluntary cross-checks per ledger instance; probation
          re-runs ride on calls the quarantined path makes anyway and are
          not charged against it. *)
  quorum : int;
      (** Quorum size K for collusion audits (clamped to >= 2): the suspect
          and the oracle service are two members, the hand-run referee
          stands in for the remaining [max 1 (K-2)] independent members.
          The default 4 defeats a fresh two-party coalition; 3 is the
          deliberately-too-small knob the bench sweeps. *)
  audit_budget : int;
      (** Maximum quorum audits per ledger instance (clamped to >= 0),
          charged separately from [check_budget] so PR 8 trust
          trajectories are untouched. 0 restores oracle-as-ground-truth. *)
}

val default_config : config
(** Score 1.0, debit 0.4, credit 0.02, threshold 0.5, probation 3,
    budget 16 — two disagreements quarantine a kind — plus quorum 4 and
    audit budget 8 for the collusion defense. *)

type t
(** One ledger per driver loop (mirroring {!Runtime.create}): fan-out
    tasks get independent {!derive}d ledgers so pooled runs stay
    deterministic. *)

val create : config -> t
val derive : t -> t
(** A fresh ledger with the same configuration (fan-out tasks). *)

val config_of : t -> config

val quarantined : t -> Verifier.kind -> bool
val score : t -> Verifier.kind -> float
val checks_spent : t -> int
val lies_detected : t -> int
val quarantine_count : t -> int
val restore_count : t -> int

val should_check : t -> Verifier.kind -> dirty:bool -> bool
(** Should the driver spend a cross-check on this answer? True when the
    answer is suspicious (see above), the kind is not already quarantined,
    and budget remains — in which case one unit of budget is consumed.
    While the {e oracle} is quarantined the ledger is in alert mode:
    every answer from a non-quarantined kind is suspicious (a compromised
    oracle proves a coalition with unknown membership) and the check is
    free — the budget bounds voluntary oracle-service calls, and alert-mode
    checks resolve against the hand-run fallback the quarantine mandates
    anyway. *)

val note_truth : t -> Verifier.kind -> dirty:bool -> unit
(** Re-anchor the suspicious-clean trigger to the {e oracle}'s answer after
    a cross-check. {!should_check} records the suspect's dirtiness, so
    without this a caught false negative would launder the kind's history:
    the lie reads clean, the next fake clean pass is no longer suspicious,
    and the swallowed findings converge unchecked. The driver calls this
    with the oracle's dirtiness whenever it has one (cross-checks and
    quarantine hand-runs). *)

val agree : t -> Verifier.kind -> unit
(** Record a cross-check that matched the oracle. *)

val disagree : t -> Verifier.kind -> [ `Ok | `Quarantined ]
(** Record a detected lie. [`Quarantined] exactly when this disagreement
    pushed the kind below the threshold (the caller records the transcript
    event once, on entry). *)

val probation : t -> Verifier.kind -> agree:bool -> [ `Still | `Restored of int ]
(** Record a probation re-run of a quarantined kind. [`Restored n] after
    [n] consecutive agreements; a disagreement resets the streak. No-op
    ([`Still]) when the kind is not quarantined. *)

(** {2 Quorum cross-checks}

    The collusion defense. PR 8 treated the cross-check oracle as
    unconditional ground truth; a coalition that owns the oracle makes
    every cross-check agree with the lie. The quorum layer audits exactly
    that signature — a suspicious answer the oracle {e agrees} is clean —
    by hand-running the pristine check as referee votes in a K-member
    weighted quorum. An overruled agreement debits both the suspect kind
    and the oracle itself; a quarantined oracle drops out of cross-checks
    entirely (hand-run answers become authoritative) until its own
    probation clears. *)

val oracle_quarantined : t -> bool
val oracle_score : t -> float
val audits_spent : t -> int

val collusions_detected : t -> int
(** Overruled clean-agreements (the collusion signature), this ledger. *)

val should_audit : t -> Verifier.kind -> bool
(** Should the driver spend a quorum audit on this clean agreement? True
    when audit budget remains, neither the kind nor the oracle is
    quarantined, and the kind's trust-weighted share of the budget is not
    exhausted — in which case one audit is consumed. Trust-informed
    scheduling: shares are proportional to current scores (ceiling
    division, floor 1), so audit budget concentrates on the high-trust
    kinds whose lies would do the most damage. *)

val quorum_verdict : t -> Verifier.kind -> [ `Overruled of bool * bool | `Outvoted ]
(** Resolve an audit where the hand-run referee {e disagreed} with the
    suspect+oracle clean camp. [`Overruled (kind_quarantined,
    oracle_quarantined)] when the referee votes carry the quorum: the kind
    is debited via {!disagree} and the oracle debited alongside (the two
    booleans flag threshold crossings on this call), and the audit charge
    is refunded — the budget bounds what auditing {e honest} agreements may
    cost, never the pursuit of a proven coalition (refunds are bounded
    because two overrules quarantine the oracle, which stops all audits).
    [`Outvoted] when the camp's combined trust outweighs the referees
    (quorum too small — the K=3 failure mode the bench pins). *)

val oracle_probation : t -> agree:bool -> [ `Still | `Restored of int ]
(** Record a probation comparison of the (quarantined) oracle service
    against a hand-run answer; mirrors {!probation}. *)

(** {2 Global counters}

    Process-wide per-kind tallies in the {!Stats} idiom, so the bench
    harness and CLI can report cross-check activity as snapshot diffs
    around a measured section. *)

type counters = {
  cross_checks : int;
  agreements : int;
  disagreements : int;  (** Detected lies. *)
  quarantines : int;
  restores : int;
  probation_runs : int;
}

val zero : counters
val add : counters -> counters -> counters

type snapshot = (Verifier.kind * counters) list

val snapshot : unit -> snapshot
val diff : snapshot -> snapshot -> snapshot
(** [diff after before]. *)

val totals : snapshot -> counters
val reset_globals : unit -> unit

type quorum_counters = {
  audits : int;
  overruled : int;  (** Audits where the referee carried the quorum. *)
  outvoted : int;  (** Audits lost to the camp's combined trust. *)
  oracle_quarantines : int;
  oracle_restores : int;
  oracle_probations : int;
}

val zero_quorum : quorum_counters
val add_quorum : quorum_counters -> quorum_counters -> quorum_counters
val diff_quorum : quorum_counters -> quorum_counters -> quorum_counters
(** [diff_quorum after before]. *)

val quorum_snapshot : unit -> quorum_counters
(** Process-wide quorum tallies (one cell, not per-kind: the oracle is a
    single shared service). Kept separate from the PR 8 counters so
    collusion-free runs report byte-identical trust lines. *)

val quorum_active : quorum_counters -> bool
(** Any field nonzero — gates the new report/CLI lines so they only appear
    when the quorum layer actually did something. *)

(** {2 Persistent trust ledger}

    An fsync'd JSONL store in the {!Exec.Checkpoint} discipline: one
    last-write-wins line per seed carrying the cumulative trust state
    after that seed plus the per-seed counter deltas. Loaded at
    sweep/shard/serve start and persisted as runs complete, so quarantine
    survives kill/resume cycles and shard workers inherit the
    coordinator's ledger. *)

module Ledger_store : sig
  type cell_state = { s_score : float; s_quarantined : bool }

  type entry = {
    kinds : (Verifier.kind * cell_state) list;
    oracle : cell_state;
    counters : counters;  (** Per-run delta of the PR 8 counters. *)
    quorum : quorum_counters;  (** Per-run delta of the quorum counters. *)
  }

  val entry_to_json : entry -> Netcore.Json.t
  val entry_of_json : Netcore.Json.t -> entry option

  val merge : entry -> entry -> entry
  (** Commutative, associative: quarantine ORs, scores take the minimum,
      counter deltas sum — per-shard ledger deltas merge deterministically
      regardless of arrival order within a seed tier. *)

  type handle

  val open_ : ?truncate:bool -> string -> handle
  val record : handle -> seed:int -> entry -> unit
  (** Append one fsync'd line (thread-safe, last-write-wins by seed). *)

  val close : handle -> unit

  val load : string -> entry option
  (** Fold the surviving lines in seed order with {!merge}; [None] for a
      missing/empty/unparseable file. *)
end

val state_of : t -> counters:counters -> quorum:quorum_counters -> Ledger_store.entry
(** This ledger's current state as a persistable entry; the caller supplies
    the per-run counter deltas (global snapshot diffs around the run). *)

val create_from : config -> Ledger_store.entry -> t
(** A fresh ledger seeded from persisted state: scores and quarantine flags
    are restored (scores capped at [initial]); probation streaks, budgets
    and suspicion history start fresh. [create_from cfg] of an
    all-initial-scores entry behaves identically to [create cfg]. *)
