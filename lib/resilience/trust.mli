(** A per-verifier-kind reputation ledger, the defense against Byzantine
    (lying) verifiers.

    The chaos layer models verifiers that {e fail}; the Byzantine layer
    models verifiers that {e lie} — a swallowed finding produces a fake
    clean pass the loop happily converges on, and PR 5's headline already
    showed that leverage alone cannot detect a poisoned feedback signal.
    This module keeps one trust score per {!Verifier.kind}, fed by
    cross-check outcomes: the driver spends a bounded budget re-running
    suspicious answers against the raw oracle ({!Verifier.oracle}, which
    bypasses every installed schedule); a disagreement debits trust, and a
    kind that falls below the threshold is {e quarantined} — its checks are
    hand-run and its findings escalate to human prompts, exactly the PR 2
    degradation path — until enough consecutive agreeing probation re-runs
    restore it.

    What counts as suspicious: any answer carrying findings, and a clean
    pass immediately after a dirty one (the false-negative signature — the
    draft just changed, so "suddenly clean" deserves a second opinion). A
    kind's very first clean pass is suspicious too, so a round-one false
    negative cannot slip through unchecked. *)

type config = {
  initial : float;  (** Starting (and maximum) trust score. *)
  debit : float;  (** Subtracted on each cross-check disagreement. *)
  credit : float;  (** Added (capped at [initial]) on each agreement. *)
  threshold : float;  (** Quarantine when the score falls below this. *)
  probation : int;
      (** Consecutive agreeing probation re-runs required to lift a
          quarantine (clamped to >= 1, so quarantine exit is always
          reachable under honest behavior). *)
  check_budget : int;
      (** Maximum voluntary cross-checks per ledger instance; probation
          re-runs ride on calls the quarantined path makes anyway and are
          not charged against it. *)
}

val default_config : config
(** Score 1.0, debit 0.4, credit 0.02, threshold 0.5, probation 3,
    budget 16 — two disagreements quarantine a kind. *)

type t
(** One ledger per driver loop (mirroring {!Runtime.create}): fan-out
    tasks get independent {!derive}d ledgers so pooled runs stay
    deterministic. *)

val create : config -> t
val derive : t -> t
(** A fresh ledger with the same configuration (fan-out tasks). *)

val config_of : t -> config

val quarantined : t -> Verifier.kind -> bool
val score : t -> Verifier.kind -> float
val checks_spent : t -> int
val lies_detected : t -> int
val quarantine_count : t -> int
val restore_count : t -> int

val should_check : t -> Verifier.kind -> dirty:bool -> bool
(** Should the driver spend a cross-check on this answer? True when the
    answer is suspicious (see above), the kind is not already quarantined,
    and budget remains — in which case one unit of budget is consumed. *)

val note_truth : t -> Verifier.kind -> dirty:bool -> unit
(** Re-anchor the suspicious-clean trigger to the {e oracle}'s answer after
    a cross-check. {!should_check} records the suspect's dirtiness, so
    without this a caught false negative would launder the kind's history:
    the lie reads clean, the next fake clean pass is no longer suspicious,
    and the swallowed findings converge unchecked. The driver calls this
    with the oracle's dirtiness whenever it has one (cross-checks and
    quarantine hand-runs). *)

val agree : t -> Verifier.kind -> unit
(** Record a cross-check that matched the oracle. *)

val disagree : t -> Verifier.kind -> [ `Ok | `Quarantined ]
(** Record a detected lie. [`Quarantined] exactly when this disagreement
    pushed the kind below the threshold (the caller records the transcript
    event once, on entry). *)

val probation : t -> Verifier.kind -> agree:bool -> [ `Still | `Restored of int ]
(** Record a probation re-run of a quarantined kind. [`Restored n] after
    [n] consecutive agreements; a disagreement resets the streak. No-op
    ([`Still]) when the kind is not quarantined. *)

(** {2 Global counters}

    Process-wide per-kind tallies in the {!Stats} idiom, so the bench
    harness and CLI can report cross-check activity as snapshot diffs
    around a measured section. *)

type counters = {
  cross_checks : int;
  agreements : int;
  disagreements : int;  (** Detected lies. *)
  quarantines : int;
  restores : int;
  probation_runs : int;
}

val zero : counters
val add : counters -> counters -> counters

type snapshot = (Verifier.kind * counters) list

val snapshot : unit -> snapshot
val diff : snapshot -> snapshot -> snapshot
(** [diff after before]. *)

val totals : snapshot -> counters
val reset_globals : unit -> unit
