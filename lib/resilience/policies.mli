(** Per-verifier-kind resilience policies.

    One retry budget and one breaker policy do not fit a suite whose
    checkers differ by orders of magnitude in cost: a flaked parse check
    costs microseconds to retry, while a flaked whole-network BGP
    simulation burns a meaningful slice of the round's tick budget. A
    [table] maps each {!Verifier.kind} to its own knobs; {!for_kind} is the
    default table the runtime uses:

    - {b Parse_check}: 4 attempts, fast backoff (base 1, cap 8), breaker
      threshold 4 with a 12-tick cooldown — cheap to retry, quick to
      re-probe.
    - {b Campion}, {b Topology}, {b Route_policies}: the library defaults
      (3 attempts, base 2/cap 16, threshold 3, cooldown 24).
    - {b Bgp_sim}: 2 attempts, slow backoff (base 4, cap 32), breaker
      threshold 2 with a 48-tick cooldown — expensive to retry, slow to
      re-probe, so the budget goes to the human path instead.

    (Named [Policies] rather than [Policy] because the router-config
    [Policy] library is already in scope throughout this library.) *)

type t = { retry : Retry.policy; breaker : Breaker.policy }

type table = Verifier.kind -> t
(** Must be pure: the runtime consults it once per kind at context
    creation. *)

val default : t
(** {!Retry.default} + {!Breaker.default}. *)

val for_kind : table
(** The graduated default table described above. *)

val uniform : t -> table
(** The same policy for every kind — how [?retry]/[?breaker] overrides
    keep their historical meaning. *)

val describe : table -> string
(** One line, e.g. ["parse: 4 att, thr 4/cd 12; ..."]. *)
