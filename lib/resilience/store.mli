(** The checksummed append-only record store, re-exported from
    {!Durable.Store} under the resilience umbrella where the rest of the
    fault-tolerance toolkit lives. ({!Durable} is a bottom-layer library
    so {!Exec.Checkpoint} can ride the same store without a dependency
    cycle — [resilience] depends on [exec].) *)

include module type of struct
  include Durable.Store
end
