type config = {
  initial : float;
  debit : float;
  credit : float;
  threshold : float;
  probation : int;
  check_budget : int;
}

let default_config =
  { initial = 1.0; debit = 0.4; credit = 0.02; threshold = 0.5; probation = 3; check_budget = 16 }

let clamp_config c =
  {
    initial = Float.max 0.0 c.initial;
    debit = Float.max 0.0 c.debit;
    credit = Float.max 0.0 c.credit;
    threshold = Float.max 0.0 c.threshold;
    probation = max 1 c.probation;
    check_budget = max 0 c.check_budget;
  }

(* ------------------------------------------------------------------ *)
(* Global counters (Stats idiom): per-kind atomics, read by the bench   *)
(* harness and the CLI via snapshot diffs.                             *)
(* ------------------------------------------------------------------ *)

type counters = {
  cross_checks : int;
  agreements : int;
  disagreements : int;
  quarantines : int;
  restores : int;
  probation_runs : int;
}

let zero =
  {
    cross_checks = 0;
    agreements = 0;
    disagreements = 0;
    quarantines = 0;
    restores = 0;
    probation_runs = 0;
  }

let add a b =
  {
    cross_checks = a.cross_checks + b.cross_checks;
    agreements = a.agreements + b.agreements;
    disagreements = a.disagreements + b.disagreements;
    quarantines = a.quarantines + b.quarantines;
    restores = a.restores + b.restores;
    probation_runs = a.probation_runs + b.probation_runs;
  }

let diff_counters a b =
  {
    cross_checks = a.cross_checks - b.cross_checks;
    agreements = a.agreements - b.agreements;
    disagreements = a.disagreements - b.disagreements;
    quarantines = a.quarantines - b.quarantines;
    restores = a.restores - b.restores;
    probation_runs = a.probation_runs - b.probation_runs;
  }

type global_cell = {
  g_checks : int Atomic.t;
  g_agree : int Atomic.t;
  g_disagree : int Atomic.t;
  g_quarantines : int Atomic.t;
  g_restores : int Atomic.t;
  g_probation : int Atomic.t;
}

let n_kinds = List.length Verifier.all_kinds

let globals =
  Array.init n_kinds (fun _ ->
      {
        g_checks = Atomic.make 0;
        g_agree = Atomic.make 0;
        g_disagree = Atomic.make 0;
        g_quarantines = Atomic.make 0;
        g_restores = Atomic.make 0;
        g_probation = Atomic.make 0;
      })

let bump cell = Atomic.incr cell

type snapshot = (Verifier.kind * counters) list

let snapshot () : snapshot =
  List.map
    (fun kind ->
      let g = globals.(Verifier.kind_index kind) in
      ( kind,
        {
          cross_checks = Atomic.get g.g_checks;
          agreements = Atomic.get g.g_agree;
          disagreements = Atomic.get g.g_disagree;
          quarantines = Atomic.get g.g_quarantines;
          restores = Atomic.get g.g_restores;
          probation_runs = Atomic.get g.g_probation;
        } ))
    Verifier.all_kinds

let diff (after : snapshot) (before : snapshot) : snapshot =
  List.map2
    (fun (k, a) (k', b) ->
      assert (k = k');
      (k, diff_counters a b))
    after before

let totals (s : snapshot) = List.fold_left (fun acc (_, c) -> add acc c) zero s

let reset_globals () =
  Array.iter
    (fun g ->
      Atomic.set g.g_checks 0;
      Atomic.set g.g_agree 0;
      Atomic.set g.g_disagree 0;
      Atomic.set g.g_quarantines 0;
      Atomic.set g.g_restores 0;
      Atomic.set g.g_probation 0)
    globals

(* ------------------------------------------------------------------ *)
(* Per-run ledger                                                      *)
(* ------------------------------------------------------------------ *)

type cell = {
  mutable score : float;
  mutable quarantined : bool;
  mutable streak : int;  (* consecutive agreeing probation re-runs *)
  mutable last_dirty : bool;
}

type t = {
  cfg : config;
  cells : cell array;
  mutable checks_spent : int;
  mutable lies_detected : int;
  mutable quarantine_count : int;
  mutable restore_count : int;
}

let create cfg =
  let cfg = clamp_config cfg in
  {
    cfg;
    cells =
      Array.init n_kinds (fun _ ->
          (* [last_dirty] starts true: an unvetted kind's first clean pass
             is itself suspicious — a first-round false negative must not
             slip through unchecked. *)
          { score = cfg.initial; quarantined = false; streak = 0; last_dirty = true });
    checks_spent = 0;
    lies_detected = 0;
    quarantine_count = 0;
    restore_count = 0;
  }

let config_of t = t.cfg
let derive t = create t.cfg
let cell t kind = t.cells.(Verifier.kind_index kind)
let quarantined t kind = (cell t kind).quarantined
let score t kind = (cell t kind).score
let checks_spent t = t.checks_spent
let lies_detected t = t.lies_detected
let quarantine_count t = t.quarantine_count
let restore_count t = t.restore_count

let should_check t kind ~dirty =
  let c = cell t kind in
  let suspicious = dirty || c.last_dirty in
  c.last_dirty <- dirty;
  if c.quarantined then false
  else if suspicious && t.checks_spent < t.cfg.check_budget then begin
    t.checks_spent <- t.checks_spent + 1;
    bump globals.(Verifier.kind_index kind).g_checks;
    true
  end
  else false

let note_truth t kind ~dirty = (cell t kind).last_dirty <- dirty

let agree t kind =
  let c = cell t kind in
  c.score <- Float.min t.cfg.initial (c.score +. t.cfg.credit);
  bump globals.(Verifier.kind_index kind).g_agree

let disagree t kind =
  let c = cell t kind in
  t.lies_detected <- t.lies_detected + 1;
  bump globals.(Verifier.kind_index kind).g_disagree;
  c.score <- c.score -. t.cfg.debit;
  if (not c.quarantined) && c.score < t.cfg.threshold then begin
    c.quarantined <- true;
    c.streak <- 0;
    t.quarantine_count <- t.quarantine_count + 1;
    bump globals.(Verifier.kind_index kind).g_quarantines;
    `Quarantined
  end
  else `Ok

let probation t kind ~agree =
  let c = cell t kind in
  bump globals.(Verifier.kind_index kind).g_probation;
  if not c.quarantined then `Still
  else if agree then begin
    c.streak <- c.streak + 1;
    if c.streak >= t.cfg.probation then begin
      c.quarantined <- false;
      c.score <- t.cfg.initial;
      c.streak <- 0;
      t.restore_count <- t.restore_count + 1;
      bump globals.(Verifier.kind_index kind).g_restores;
      `Restored t.cfg.probation
    end
    else `Still
  end
  else begin
    c.streak <- 0;
    `Still
  end
