type config = {
  initial : float;
  debit : float;
  credit : float;
  threshold : float;
  probation : int;
  check_budget : int;
  quorum : int;
  audit_budget : int;
}

let default_config =
  {
    initial = 1.0;
    debit = 0.4;
    credit = 0.02;
    threshold = 0.5;
    probation = 3;
    check_budget = 16;
    quorum = 4;
    audit_budget = 8;
  }

let clamp_config c =
  {
    initial = Float.max 0.0 c.initial;
    debit = Float.max 0.0 c.debit;
    credit = Float.max 0.0 c.credit;
    threshold = Float.max 0.0 c.threshold;
    probation = max 1 c.probation;
    check_budget = max 0 c.check_budget;
    quorum = max 2 c.quorum;
    audit_budget = max 0 c.audit_budget;
  }

(* ------------------------------------------------------------------ *)
(* Global counters (Stats idiom): per-kind atomics, read by the bench   *)
(* harness and the CLI via snapshot diffs.                             *)
(* ------------------------------------------------------------------ *)

type counters = {
  cross_checks : int;
  agreements : int;
  disagreements : int;
  quarantines : int;
  restores : int;
  probation_runs : int;
}

let zero =
  {
    cross_checks = 0;
    agreements = 0;
    disagreements = 0;
    quarantines = 0;
    restores = 0;
    probation_runs = 0;
  }

let add a b =
  {
    cross_checks = a.cross_checks + b.cross_checks;
    agreements = a.agreements + b.agreements;
    disagreements = a.disagreements + b.disagreements;
    quarantines = a.quarantines + b.quarantines;
    restores = a.restores + b.restores;
    probation_runs = a.probation_runs + b.probation_runs;
  }

let diff_counters a b =
  {
    cross_checks = a.cross_checks - b.cross_checks;
    agreements = a.agreements - b.agreements;
    disagreements = a.disagreements - b.disagreements;
    quarantines = a.quarantines - b.quarantines;
    restores = a.restores - b.restores;
    probation_runs = a.probation_runs - b.probation_runs;
  }

type global_cell = {
  g_checks : int Atomic.t;
  g_agree : int Atomic.t;
  g_disagree : int Atomic.t;
  g_quarantines : int Atomic.t;
  g_restores : int Atomic.t;
  g_probation : int Atomic.t;
}

let n_kinds = List.length Verifier.all_kinds

let globals =
  Array.init n_kinds (fun _ ->
      {
        g_checks = Atomic.make 0;
        g_agree = Atomic.make 0;
        g_disagree = Atomic.make 0;
        g_quarantines = Atomic.make 0;
        g_restores = Atomic.make 0;
        g_probation = Atomic.make 0;
      })

let bump cell = Atomic.incr cell

type snapshot = (Verifier.kind * counters) list

let snapshot () : snapshot =
  List.map
    (fun kind ->
      let g = globals.(Verifier.kind_index kind) in
      ( kind,
        {
          cross_checks = Atomic.get g.g_checks;
          agreements = Atomic.get g.g_agree;
          disagreements = Atomic.get g.g_disagree;
          quarantines = Atomic.get g.g_quarantines;
          restores = Atomic.get g.g_restores;
          probation_runs = Atomic.get g.g_probation;
        } ))
    Verifier.all_kinds

let diff (after : snapshot) (before : snapshot) : snapshot =
  List.map2
    (fun (k, a) (k', b) ->
      assert (k = k');
      (k, diff_counters a b))
    after before

let totals (s : snapshot) = List.fold_left (fun acc (_, c) -> add acc c) zero s

(* Quorum activity is tallied separately from the PR 8 counters above so
   that runs without collusion keep the historical trust rows and summary
   lines byte-identical. One process-wide cell (not per-kind): the oracle
   is a single shared service. *)

type quorum_counters = {
  audits : int;
  overruled : int;
  outvoted : int;
  oracle_quarantines : int;
  oracle_restores : int;
  oracle_probations : int;
}

let zero_quorum =
  {
    audits = 0;
    overruled = 0;
    outvoted = 0;
    oracle_quarantines = 0;
    oracle_restores = 0;
    oracle_probations = 0;
  }

let add_quorum a b =
  {
    audits = a.audits + b.audits;
    overruled = a.overruled + b.overruled;
    outvoted = a.outvoted + b.outvoted;
    oracle_quarantines = a.oracle_quarantines + b.oracle_quarantines;
    oracle_restores = a.oracle_restores + b.oracle_restores;
    oracle_probations = a.oracle_probations + b.oracle_probations;
  }

let diff_quorum a b =
  {
    audits = a.audits - b.audits;
    overruled = a.overruled - b.overruled;
    outvoted = a.outvoted - b.outvoted;
    oracle_quarantines = a.oracle_quarantines - b.oracle_quarantines;
    oracle_restores = a.oracle_restores - b.oracle_restores;
    oracle_probations = a.oracle_probations - b.oracle_probations;
  }

let q_audits = Atomic.make 0
let q_overruled = Atomic.make 0
let q_outvoted = Atomic.make 0
let q_oracle_quarantines = Atomic.make 0
let q_oracle_restores = Atomic.make 0
let q_oracle_probations = Atomic.make 0

let quorum_snapshot () =
  {
    audits = Atomic.get q_audits;
    overruled = Atomic.get q_overruled;
    outvoted = Atomic.get q_outvoted;
    oracle_quarantines = Atomic.get q_oracle_quarantines;
    oracle_restores = Atomic.get q_oracle_restores;
    oracle_probations = Atomic.get q_oracle_probations;
  }

let quorum_active c =
  c.audits <> 0 || c.overruled <> 0 || c.outvoted <> 0 || c.oracle_quarantines <> 0
  || c.oracle_restores <> 0 || c.oracle_probations <> 0

let reset_globals () =
  Array.iter
    (fun g ->
      Atomic.set g.g_checks 0;
      Atomic.set g.g_agree 0;
      Atomic.set g.g_disagree 0;
      Atomic.set g.g_quarantines 0;
      Atomic.set g.g_restores 0;
      Atomic.set g.g_probation 0)
    globals;
  Atomic.set q_audits 0;
  Atomic.set q_overruled 0;
  Atomic.set q_outvoted 0;
  Atomic.set q_oracle_quarantines 0;
  Atomic.set q_oracle_restores 0;
  Atomic.set q_oracle_probations 0

(* ------------------------------------------------------------------ *)
(* Per-run ledger                                                      *)
(* ------------------------------------------------------------------ *)

type cell = {
  mutable score : float;
  mutable quarantined : bool;
  mutable streak : int;  (* consecutive agreeing probation re-runs *)
  mutable last_dirty : bool;
}

type t = {
  cfg : config;
  cells : cell array;
  (* The cross-check oracle's own pseudo-cell: debited alongside every
     overruled colluder, quarantined below the threshold like any kind. *)
  oracle_cell : cell;
  audits_by_kind : int array;
  mutable audits_spent : int;
  mutable collusions_detected : int;
  mutable oracle_quarantine_count : int;
  mutable oracle_restore_count : int;
  mutable checks_spent : int;
  mutable lies_detected : int;
  mutable quarantine_count : int;
  mutable restore_count : int;
}

let create cfg =
  let cfg = clamp_config cfg in
  {
    cfg;
    cells =
      Array.init n_kinds (fun _ ->
          (* [last_dirty] starts true: an unvetted kind's first clean pass
             is itself suspicious — a first-round false negative must not
             slip through unchecked. *)
          { score = cfg.initial; quarantined = false; streak = 0; last_dirty = true });
    oracle_cell = { score = cfg.initial; quarantined = false; streak = 0; last_dirty = true };
    audits_by_kind = Array.make n_kinds 0;
    audits_spent = 0;
    collusions_detected = 0;
    oracle_quarantine_count = 0;
    oracle_restore_count = 0;
    checks_spent = 0;
    lies_detected = 0;
    quarantine_count = 0;
    restore_count = 0;
  }

let config_of t = t.cfg
let derive t = create t.cfg
let cell t kind = t.cells.(Verifier.kind_index kind)
let quarantined t kind = (cell t kind).quarantined
let score t kind = (cell t kind).score
let checks_spent t = t.checks_spent
let lies_detected t = t.lies_detected
let quarantine_count t = t.quarantine_count
let restore_count t = t.restore_count
let oracle_quarantined t = t.oracle_cell.quarantined
let oracle_score t = t.oracle_cell.score
let audits_spent t = t.audits_spent
let collusions_detected t = t.collusions_detected

let should_check t kind ~dirty =
  let c = cell t kind in
  let suspicious = dirty || c.last_dirty in
  c.last_dirty <- dirty;
  if c.quarantined then false
  else if t.oracle_cell.quarantined then begin
    (* Alert mode: a quarantined oracle is categorical evidence of an
       active coalition with unknown membership, so every answer is
       suspicious — and free: the check budget bounds voluntary calls into
       the oracle service, while these checks resolve against the hand-run
       fallback the quarantine mandates anyway. Honest runs never
       quarantine the oracle, so the peacetime path is untouched. *)
    bump globals.(Verifier.kind_index kind).g_checks;
    true
  end
  else if suspicious && t.checks_spent < t.cfg.check_budget then begin
    t.checks_spent <- t.checks_spent + 1;
    bump globals.(Verifier.kind_index kind).g_checks;
    true
  end
  else false

let note_truth t kind ~dirty = (cell t kind).last_dirty <- dirty

let agree t kind =
  let c = cell t kind in
  c.score <- Float.min t.cfg.initial (c.score +. t.cfg.credit);
  bump globals.(Verifier.kind_index kind).g_agree

let disagree t kind =
  let c = cell t kind in
  t.lies_detected <- t.lies_detected + 1;
  bump globals.(Verifier.kind_index kind).g_disagree;
  c.score <- c.score -. t.cfg.debit;
  if (not c.quarantined) && c.score < t.cfg.threshold then begin
    c.quarantined <- true;
    c.streak <- 0;
    t.quarantine_count <- t.quarantine_count + 1;
    bump globals.(Verifier.kind_index kind).g_quarantines;
    `Quarantined
  end
  else `Ok

let probation t kind ~agree =
  let c = cell t kind in
  bump globals.(Verifier.kind_index kind).g_probation;
  if not c.quarantined then `Still
  else if agree then begin
    c.streak <- c.streak + 1;
    if c.streak >= t.cfg.probation then begin
      c.quarantined <- false;
      c.score <- t.cfg.initial;
      c.streak <- 0;
      t.restore_count <- t.restore_count + 1;
      bump globals.(Verifier.kind_index kind).g_restores;
      `Restored t.cfg.probation
    end
    else `Still
  end
  else begin
    c.streak <- 0;
    `Still
  end

(* ------------------------------------------------------------------ *)
(* Quorum cross-checks (the collusion defense)                         *)
(* ------------------------------------------------------------------ *)

let should_audit t kind =
  let c = cell t kind in
  if
    t.cfg.audit_budget <= 0
    || t.audits_spent >= t.cfg.audit_budget
    || t.oracle_cell.quarantined || c.quarantined
  then false
  else begin
    (* Trust-informed scheduling: each kind's share of the audit budget is
       proportional to its current trust weight, with a floor of one and a
       ceiling division — a full-trust kind among five gets
       ceil(8 * 1.0 / 5.0) = 2 audits, the two needed to quarantine a
       colluder at the default debit/threshold. *)
    let sum = Array.fold_left (fun acc c -> acc +. Float.max 0.0 c.score) 0.0 t.cells in
    let share =
      if sum <= 0.0 then t.cfg.audit_budget
      else
        max 1
          (int_of_float
             (Float.ceil (float_of_int t.cfg.audit_budget *. Float.max 0.0 c.score /. sum)))
    in
    let ix = Verifier.kind_index kind in
    if t.audits_by_kind.(ix) >= share then false
    else begin
      t.audits_by_kind.(ix) <- t.audits_by_kind.(ix) + 1;
      t.audits_spent <- t.audits_spent + 1;
      bump q_audits;
      true
    end
  end

let quorum_verdict t kind =
  (* Weighted vote over a K-member quorum: the suspect kind and the oracle
     service form the lie camp (they just agreed); the hand-run referee
     answer stands in for the quorum's max 1 (K-2) remaining independent
     members, each voting with full weight. Referees win ties — agreement
     between two already-suspect parties must not outrank an independent
     hand re-run of equal weight. *)
  let camp = Float.max 0.0 (score t kind) +. Float.max 0.0 t.oracle_cell.score in
  let referees = float_of_int (max 1 (t.cfg.quorum - 2)) in
  if referees >= camp then begin
    bump q_overruled;
    t.collusions_detected <- t.collusions_detected + 1;
    (* Refund the audit: the budget bounds what auditing *honest*
       agreements may cost, and an overrule just proved this one was
       collusion — detection pressure must not exhaust itself while the
       lies continue. Refunds cannot run away: two overrules quarantine
       the oracle, and a quarantined oracle stops every audit. *)
    t.audits_spent <- max 0 (t.audits_spent - 1);
    let ix = Verifier.kind_index kind in
    t.audits_by_kind.(ix) <- max 0 (t.audits_by_kind.(ix) - 1);
    let kind_quarantined = disagree t kind = `Quarantined in
    let o = t.oracle_cell in
    (* The oracle is debited at double weight: a kind's lie is a single
       noisy signal, but an overruled clean-agreement is corroborated by
       the whole referee quorum — categorical evidence the service every
       cross-check trusts has vouched for a lie. At the default
       debit/threshold one proven collusion quarantines it. *)
    o.score <- o.score -. (2. *. t.cfg.debit);
    let oracle_quarantined =
      if (not o.quarantined) && o.score < t.cfg.threshold then begin
        o.quarantined <- true;
        o.streak <- 0;
        t.oracle_quarantine_count <- t.oracle_quarantine_count + 1;
        bump q_oracle_quarantines;
        true
      end
      else false
    in
    `Overruled (kind_quarantined, oracle_quarantined)
  end
  else begin
    bump q_outvoted;
    `Outvoted
  end

let oracle_probation t ~agree =
  bump q_oracle_probations;
  let o = t.oracle_cell in
  if not o.quarantined then `Still
  else if agree then begin
    o.streak <- o.streak + 1;
    if o.streak >= t.cfg.probation then begin
      o.quarantined <- false;
      o.score <- t.cfg.initial;
      o.streak <- 0;
      t.oracle_restore_count <- t.oracle_restore_count + 1;
      bump q_oracle_restores;
      `Restored t.cfg.probation
    end
    else `Still
  end
  else begin
    o.streak <- 0;
    `Still
  end

(* ------------------------------------------------------------------ *)
(* Persistent trust ledger (Exec.Checkpoint discipline)                *)
(* ------------------------------------------------------------------ *)

module Ledger_store = struct
  type cell_state = { s_score : float; s_quarantined : bool }

  type entry = {
    kinds : (Verifier.kind * cell_state) list;
    oracle : cell_state;
    counters : counters;
    quorum : quorum_counters;
  }

  let cell_state_to_json (c : cell_state) : Netcore.Json.t =
    Obj [ ("score", Float c.s_score); ("quarantined", Bool c.s_quarantined) ]

  let cell_state_of_json j =
    match (Netcore.Json.member "score" j, Netcore.Json.member "quarantined" j) with
    | Some s, Some q -> (
        match (Netcore.Json.to_float s, Netcore.Json.to_bool q) with
        | Some s_score, Some s_quarantined -> Some { s_score; s_quarantined }
        | _ -> None)
    | _ -> None

  let counters_to_json (c : counters) : Netcore.Json.t =
    Obj
      [
        ("checks", Int c.cross_checks);
        ("agree", Int c.agreements);
        ("disagree", Int c.disagreements);
        ("quarantines", Int c.quarantines);
        ("restores", Int c.restores);
        ("probation", Int c.probation_runs);
      ]

  let counters_of_json j =
    let f k = Option.bind (Netcore.Json.member k j) Netcore.Json.to_int in
    match (f "checks", f "agree", f "disagree", f "quarantines", f "restores", f "probation")
    with
    | Some cross_checks, Some agreements, Some disagreements, Some quarantines, Some restores,
      Some probation_runs ->
        Some { cross_checks; agreements; disagreements; quarantines; restores; probation_runs }
    | _ -> None

  let quorum_to_json (q : quorum_counters) : Netcore.Json.t =
    Obj
      [
        ("audits", Int q.audits);
        ("overruled", Int q.overruled);
        ("outvoted", Int q.outvoted);
        ("oracle_quarantines", Int q.oracle_quarantines);
        ("oracle_restores", Int q.oracle_restores);
        ("oracle_probations", Int q.oracle_probations);
      ]

  let quorum_of_json j =
    let f k = Option.bind (Netcore.Json.member k j) Netcore.Json.to_int in
    match
      ( f "audits",
        f "overruled",
        f "outvoted",
        f "oracle_quarantines",
        f "oracle_restores",
        f "oracle_probations" )
    with
    | Some audits, Some overruled, Some outvoted, Some oracle_quarantines, Some oracle_restores,
      Some oracle_probations ->
        Some
          {
            audits;
            overruled;
            outvoted;
            oracle_quarantines;
            oracle_restores;
            oracle_probations;
          }
    | _ -> None

  let entry_to_json (e : entry) : Netcore.Json.t =
    Obj
      [
        ( "kinds",
          Netcore.Json.Obj
            (List.map (fun (k, c) -> (Verifier.kind_name k, cell_state_to_json c)) e.kinds) );
        ("oracle", cell_state_to_json e.oracle);
        ("counters", counters_to_json e.counters);
        ("quorum", quorum_to_json e.quorum);
      ]

  let entry_of_json j =
    match
      ( Option.bind (Netcore.Json.member "kinds" j) Netcore.Json.to_obj,
        Option.bind (Netcore.Json.member "oracle" j) cell_state_of_json,
        Option.bind (Netcore.Json.member "counters" j) counters_of_json,
        Option.bind (Netcore.Json.member "quorum" j) quorum_of_json )
    with
    | Some fields, Some oracle, Some counters, Some quorum ->
        let kinds =
          List.filter_map
            (fun (name, cj) ->
              match (Verifier.kind_of_name name, cell_state_of_json cj) with
              | Some k, Some c -> Some (k, c)
              | _ -> None)
            fields
        in
        if List.length kinds = List.length fields then Some { kinds; oracle; counters; quorum }
        else None
    | _ -> None

  (* Commutative, associative state merge: a kind quarantined in either
     entry stays quarantined, scores take the minimum — the conservative
     fold that makes per-shard ledger deltas order-insensitive within a
     seed tier. Counters sum (they are per-run deltas). *)
  let merge_cell a b =
    { s_score = Float.min a.s_score b.s_score; s_quarantined = a.s_quarantined || b.s_quarantined }

  let merge a b =
    {
      kinds =
        List.filter_map
          (fun k ->
            match (List.assoc_opt k a.kinds, List.assoc_opt k b.kinds) with
            | Some ca, Some cb -> Some (k, merge_cell ca cb)
            | (Some _ as c), None | None, (Some _ as c) -> Option.map (fun c -> (k, c)) c
            | None, None -> None)
          Verifier.all_kinds;
      oracle = merge_cell a.oracle b.oracle;
      counters = add a.counters b.counters;
      quorum = add_quorum a.quorum b.quorum;
    }

  type handle = Exec.Checkpoint.t

  let open_ ?truncate path : handle = Exec.Checkpoint.open_ ?truncate path
  let record (h : handle) ~seed e = Exec.Checkpoint.record h ~seed (entry_to_json e)
  let close (h : handle) = Exec.Checkpoint.close h

  (* Fold the surviving (last-write-wins) lines in seed order: states merge
     conservatively, per-seed counter deltas sum — so a resumed sweep can
     reprint the exact trust summary of an uninterrupted one. *)
  let load path =
    Exec.Checkpoint.load path
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
    |> List.fold_left
         (fun acc (_, j) ->
           match entry_of_json j with
           | None -> acc
           | Some e -> Some (match acc with None -> e | Some a -> merge a e))
         None
end

let state_of t ~counters ~quorum : Ledger_store.entry =
  {
    kinds =
      List.map
        (fun k ->
          let c = cell t k in
          (k, { Ledger_store.s_score = c.score; s_quarantined = c.quarantined }))
        Verifier.all_kinds;
    oracle =
      { Ledger_store.s_score = t.oracle_cell.score; s_quarantined = t.oracle_cell.quarantined };
    counters;
    quorum;
  }

let create_from cfg (e : Ledger_store.entry) =
  let t = create cfg in
  List.iter
    (fun (k, (s : Ledger_store.cell_state)) ->
      let c = cell t k in
      c.score <- Float.min t.cfg.initial s.Ledger_store.s_score;
      c.quarantined <- s.Ledger_store.s_quarantined;
      (* Probation streaks deliberately do not persist: a restart restarts
         probation from zero, quarantine itself survives. *)
      c.streak <- 0)
    e.Ledger_store.kinds;
  t.oracle_cell.score <- Float.min t.cfg.initial e.Ledger_store.oracle.Ledger_store.s_score;
  t.oracle_cell.quarantined <- e.Ledger_store.oracle.Ledger_store.s_quarantined;
  t.oracle_cell.streak <- 0;
  t
