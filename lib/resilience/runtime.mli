(** The per-run resilience context: one simulated clock, one breaker per
    verifier kind, one backoff-jitter stream, and a per-VPP-round tick
    deadline, all driven by one configuration.

    A context is single-threaded by construction. For a parallel fan-out
    (one synthesis task per router), {!derive} builds an independent child
    context from the configuration and a salt alone — never from the
    parent's mutable state — so pooled and sequential runs stay
    bit-identical. *)

type config = {
  chaos : Chaos.config;
  policies : Policies.table;
      (** Per-verifier-kind retry and breaker knobs; breakers are
          instantiated from this table at context creation. *)
  round_budget : int;
      (** Tick deadline per VPP round: once a round has burned this many
          ticks (calls, timeouts, backoff), further retries are abandoned
          and the stage degrades. *)
  stage_budget : int;
      (** Per-{e stage} tick watchdog: one {!call} may burn at most this
          many ticks across its own attempts before the stage is cancelled
          and degraded, even when the round as a whole still has budget —
          a single hung verifier can no longer eat the entire round. *)
}

val default_config : config
(** No chaos, {!Policies.for_kind} (the expensive BGP sim gets fewer
    retries and a slower breaker than the cheap parse check), round budget
    64, stage budget 32. With this config every {!call} is exactly
    [Ok (oracle input)]. *)

val config :
  ?chaos:Chaos.config ->
  ?policies:Policies.table ->
  ?retry:Retry.policy ->
  ?breaker:Breaker.policy ->
  ?round_budget:int ->
  ?stage_budget:int ->
  unit ->
  config
(** [?policies] defaults to {!Policies.for_kind}. [?retry]/[?breaker] keep
    their historical uniform meaning: either one overrides that dimension
    of the table for {e every} kind. *)

type t

val create : ?salt:int -> config -> t
(** [salt] (default 0) is mixed into every chaos/jitter stream; the driver
    passes the run seed so a seed sweep explores distinct fault schedules
    under one configuration. *)

val derive : t -> int -> t
(** [derive t i]: an independent child context (fresh clock, breakers and
    streams) for sub-task [i], deterministic in the configuration, the
    parent salt and [i] only. *)

val arm : t -> ('i, 'o) Verifier.t -> ('i, 'o) Verifier.t
(** Install this context's chaos schedule on the verifier (no-op without
    chaos) and return it. *)

val new_round : t -> unit
(** Start a VPP round: reset the round's tick deadline. *)

type degraded = { kind : Verifier.kind; reason : string }
(** A call that gave up: the breaker was open, or retries were exhausted
    (attempts, round deadline, or a trip mid-retry). *)

val call : t -> ('i, 'o) Verifier.t -> 'i -> ('o, degraded) result
(** Run the verifier through retry/backoff under its breaker and the round
    deadline. [Error] means the stage is degraded for this round; the
    caller should consult {!Verifier.oracle} and escalate findings to the
    human. Counters land in {!Stats}. *)

val clock : t -> Clock.t
val breaker_state : t -> Verifier.kind -> Breaker.state
val breaker_trips : t -> Verifier.kind -> int
val chaos_active : t -> bool
