(* The exception firewall: one total boundary between the pipeline and any
   OCaml code that may raise. *)

type crash = {
  stage : string;
  constructor : string;
  message : string;
  backtrace_digest : string;
  fingerprint : string;
}

exception Stage_timeout of int

(* Backtrace recording must be on for the digest to carry information; the
   runtime flag only affects exception-raise bookkeeping, never output. *)
let () = Printexc.record_backtrace true

let crash_to_string c =
  Printf.sprintf "%s raised %s (%s) [bt %s, input %s]" c.stage c.constructor
    c.message c.backtrace_digest c.fingerprint

(* Global crash registry: (stage, constructor) -> count.  Mutex-guarded so
   pooled domains can record concurrently; read out for report footers. *)
let registry : (string * string, int) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let record c =
  Mutex.lock registry_mutex;
  let key = (c.stage, c.constructor) in
  let n = try Hashtbl.find registry key with Not_found -> 0 in
  Hashtbl.replace registry key (n + 1);
  Mutex.unlock registry_mutex

let crashes () =
  Mutex.lock registry_mutex;
  let rows = Hashtbl.fold (fun (s, c) n acc -> (s, c, n) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort compare rows

let total () = List.fold_left (fun acc (_, _, n) -> acc + n) 0 (crashes ())

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.reset registry;
  Mutex.unlock registry_mutex

let short_digest s = String.sub (Digest.to_hex (Digest.string s)) 0 8
let fingerprint_string s = short_digest s
let fingerprint_value v = Printf.sprintf "%08x" (Hashtbl.hash v)

let constructor_of exn =
  match exn with
  | Stage_timeout _ -> "Stage_timeout"
  | Failure _ -> "Failure"
  | Invalid_argument _ -> "Invalid_argument"
  | Not_found -> "Not_found"
  | _ -> (
      try Printexc.exn_slot_name exn
      with _ -> (
        (* exn_slot_name can itself misbehave on exotic extension
           constructors; fall back to the printed form's head word. *)
        match String.split_on_char ' ' (Printexc.to_string exn) with
        | head :: _ -> head
        | [] -> "<unknown>"))

(* Wall-clock watchdog, used by the fuzz drivers (the driver-loop watchdog is
   tick-based and lives in Runtime).  SIGALRM-based, so only one may be armed
   at a time; fuzzing is single-threaded so that is fine. *)
let with_timeout_ms ms f =
  let old =
    Sys.signal Sys.sigalrm
      (Sys.Signal_handle (fun _ -> raise (Stage_timeout ms)))
  in
  let disarm () =
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_interval = 0.; it_value = 0. });
    Sys.set_signal Sys.sigalrm old
  in
  ignore
    (Unix.setitimer Unix.ITIMER_REAL
       { Unix.it_interval = 0.; it_value = float_of_int ms /. 1000. });
  Fun.protect ~finally:disarm f

let run ?timeout_ms ?fingerprint ~label f =
  let body () = match timeout_ms with None -> f () | Some ms -> with_timeout_ms ms f in
  match body () with
  | v -> Ok v
  | exception exn ->
      let raw_backtrace = Printexc.get_backtrace () in
      let c =
        {
          stage = label;
          constructor = constructor_of exn;
          message = Printexc.to_string exn;
          backtrace_digest = short_digest raw_backtrace;
          fingerprint =
            (match fingerprint with Some fp -> fp | None -> "-");
        }
      in
      record c;
      Error c

(* Thread-based deadline, for the multi-threaded daemon where the SIGALRM
   watchdog above is off limits. OCaml threads cannot be killed, so an
   expired thunk is *abandoned*, not stopped: the caller gets its timeout
   crash immediately while the worker thread runs to completion in the
   background and then fires [on_settled] — which is why resources the
   thunk holds (an admission slot, say) must be released there, not on the
   caller's return path. *)
let run_deadline ~deadline_ms ?(poll_ms = 5) ?fingerprint
    ?(on_settled = fun () -> ()) ~label f =
  let cell_m = Mutex.create () in
  let cell = ref None in
  let worker () =
    let r = run ?fingerprint ~label f in
    Mutex.lock cell_m;
    cell := Some r;
    Mutex.unlock cell_m;
    on_settled ()
  in
  ignore (Thread.create worker () : Thread.t);
  let deadline =
    Unix.gettimeofday () +. (float_of_int (max 1 deadline_ms) /. 1000.)
  in
  let rec wait () =
    Mutex.lock cell_m;
    let r = !cell in
    Mutex.unlock cell_m;
    match r with
    | Some r -> r
    | None ->
        if Unix.gettimeofday () >= deadline then begin
          let c =
            {
              stage = label;
              constructor = "Deadline_exceeded";
              message = Printf.sprintf "deadline of %d ms exceeded" deadline_ms;
              backtrace_digest = "-";
              fingerprint = (match fingerprint with Some fp -> fp | None -> "-");
            }
          in
          record c;
          Error c
        end
        else begin
          Thread.delay (float_of_int (max 1 poll_ms) /. 1000.);
          wait ()
        end
  in
  wait ()
