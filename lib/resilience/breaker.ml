type policy = { failure_threshold : int; cooldown : int }

let default = { failure_threshold = 3; cooldown = 24 }

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type t = {
  policy : policy;
  mutable state : state;
  mutable streak : int;  (* consecutive failures *)
  mutable opened_at : int;
  mutable trips : int;
}

let create policy = { policy; state = Closed; streak = 0; opened_at = 0; trips = 0 }
let state t = t.state

let acquire t ~now =
  match t.state with
  | Closed | Half_open -> `Proceed
  | Open ->
      if now - t.opened_at >= t.policy.cooldown then begin
        t.state <- Half_open;
        `Proceed
      end
      else `Reject

let cooldown_left t ~now =
  match t.state with
  | Open -> max 0 (t.policy.cooldown - (now - t.opened_at))
  | Closed | Half_open -> 0

let record_success t =
  t.state <- Closed;
  t.streak <- 0

let trip t ~now =
  t.state <- Open;
  t.opened_at <- now;
  t.trips <- t.trips + 1;
  true

let record_failure t ~now =
  t.streak <- t.streak + 1;
  match t.state with
  | Half_open -> trip t ~now
  | Closed when t.streak >= t.policy.failure_threshold -> trip t ~now
  | Closed | Open -> false

let trips t = t.trips
