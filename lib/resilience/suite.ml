type t = {
  runtime : Runtime.t;
  parse :
    ( Batfish.Parse_check.dialect * string,
      Policy.Config_ir.t * Netcore.Diag.t list )
    Verifier.t;
  campion :
    (Policy.Config_ir.t * Policy.Config_ir.t, Campion.Differ.finding list) Verifier.t;
  topology :
    ( Netcore.Topology.t * string * Policy.Config_ir.t,
      Topoverify.Verifier.finding list )
    Verifier.t;
  route_policies :
    ( Policy.Config_ir.t * Batfish.Search_route_policies.spec list,
      (Batfish.Search_route_policies.spec * Batfish.Search_route_policies.outcome) list
    )
    Verifier.t;
}

let make runtime =
  let arm ~dirty kind oracle = Runtime.arm runtime (Verifier.wrap ~dirty kind oracle) in
  {
    runtime;
    parse =
      arm Verifier.Parse_check
        ~dirty:(fun (_, diags) -> List.exists Netcore.Diag.is_error diags)
        (fun (dialect, text) -> Exec.Memo.check dialect text);
    campion =
      arm Verifier.Campion
        ~dirty:(fun findings -> findings <> [])
        (fun (original, translation) -> Campion.Differ.compare ~original ~translation);
    topology =
      arm Verifier.Topology
        ~dirty:(fun findings -> findings <> [])
        (fun (topo, router, ir) -> Topoverify.Verifier.check topo ~router ir);
    route_policies =
      arm Verifier.Route_policies
        ~dirty:
          (List.exists (fun (_, outcome) ->
               match outcome with
               | Batfish.Search_route_policies.Violated _ -> true
               | Batfish.Search_route_policies.Holds
               | Batfish.Search_route_policies.Policy_missing ->
                   false))
        (fun (ir, specs) -> Batfish.Search_route_policies.check_all ir specs);
  }
