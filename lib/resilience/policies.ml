type t = { retry : Retry.policy; breaker : Breaker.policy }

type table = Verifier.kind -> t

let default = { retry = Retry.default; breaker = Breaker.default }

(* The knobs scale with what a retry costs and what a trip protects. The
   parse check is microseconds of pure OCaml: retrying it is nearly free,
   so it gets the deepest budget and the twitchiest recovery (short
   cooldown — a flaky parser is worth re-probing early). The BGP simulation
   is the expensive end of the suite: burning attempts on a crashed sim
   wastes the round's tick budget, so it gets the shallowest budget, the
   slowest backoff, and a breaker that trips after two failures and stays
   open long past a typical outage window. The structural checkers sit at
   the defaults between those poles. *)
let for_kind : table = function
  | Verifier.Parse_check ->
      {
        retry =
          { Retry.max_attempts = 4; base_backoff = 1; max_backoff = 8; jitter = 0.5 };
        breaker = { Breaker.failure_threshold = 4; cooldown = 12 };
      }
  | Verifier.Bgp_sim ->
      {
        retry =
          { Retry.max_attempts = 2; base_backoff = 4; max_backoff = 32; jitter = 0.5 };
        breaker = { Breaker.failure_threshold = 2; cooldown = 48 };
      }
  | Verifier.Campion | Verifier.Topology | Verifier.Route_policies -> default

let uniform p : table = fun _ -> p

let describe (tbl : table) =
  String.concat "; "
    (List.map
       (fun k ->
         let p = tbl k in
         Printf.sprintf "%s: %d att, thr %d/cd %d" (Verifier.kind_name k)
           p.retry.Retry.max_attempts p.breaker.Breaker.failure_threshold
           p.breaker.Breaker.cooldown)
       Verifier.all_kinds)
