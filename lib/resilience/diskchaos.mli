(** Seeded disk-fault injection, re-exported from {!Durable.Diskchaos} —
    the {!Chaos} discipline applied to the filesystem: short writes, torn
    writes, [EIO]/[ENOSPC], fsync failures and crash-after-N schedules,
    drawn deterministically from [(seed, salt, path)] and honored by
    every write {!Store} makes. *)

include module type of struct
  include Durable.Diskchaos
end
