include Durable.Store
