include Durable.Diskchaos
