(** The unified verifier interface.

    Every checker the VPP loop calls — the Batfish-style syntax check, the
    Campion-style differ, the topology verifier, Search Route Policies, and
    the whole-network BGP simulation — is wrapped as a [('input, 'output) t]
    behind one {!run} entry point returning [(findings, failure) result].

    In the paper's deployment these are external Java/Scala tools that
    crash, time out and flake; here the wrapped [oracle] is a pure OCaml
    function, and {!Chaos} can install a seeded fault schedule on top of it.
    Without an installed schedule, {!run} is exactly [Ok (oracle input)] —
    the resilience machinery is pay-for-what-you-use. *)

type kind =
  | Parse_check  (** {!Batfish.Parse_check} (via {!Exec.Memo}). *)
  | Campion  (** {!Campion.Differ.compare}. *)
  | Topology  (** {!Topoverify.Verifier.check}. *)
  | Route_policies  (** {!Batfish.Search_route_policies.check_all}. *)
  | Bgp_sim  (** The global no-transit check (simulation and/or proof). *)

val all_kinds : kind list

val kind_index : kind -> int
(** Dense index, [0 .. length all_kinds - 1]. *)

val kind_name : kind -> string

val kind_of_name : string -> kind option
(** Inverse of {!kind_name} (CLI [--collude] parsing, ledger decode). *)

type failure =
  | Crashed of { down_ticks : int }
      (** The verifier process died; it stays down for [down_ticks]. *)
  | Timed_out of { ticks : int }
      (** The call burned [ticks] waiting before giving up. *)
  | Flaked  (** A transient error; an immediate retry may succeed. *)
  | Truncated
      (** The response arrived garbled/truncated and was discarded — a
          truncated findings list must never be mistaken for a clean pass. *)
  | Faulted of Guard.crash
      (** A {e real} exception escaped the oracle and was converted by the
          {!Guard} firewall — unlike the injected variants above, this one
          reports an actual pipeline bug or adversarial input. *)

val failure_to_string : failure -> string

type ('i, 'o) t

val wrap : ?dirty:('o -> bool) -> kind -> ('i -> 'o) -> ('i, 'o) t
(** [dirty] classifies an output as carrying findings (default:
    [fun _ -> false]). The trust layer uses it to decide which answers
    warrant a cross-check — a finding, or a clean pass right after a dirty
    one, is suspicious. *)

val kind : ('i, 'o) t -> kind

val dirty : ('i, 'o) t -> 'o -> bool
(** Does this output carry findings, per the predicate given to {!wrap}? *)

val run : ('i, 'o) t -> 'i -> ('o, failure) result
(** The one entry point. [run_oracle t input] when no fault schedule is
    installed; otherwise the schedule decides (with {!run_oracle} as its
    success path, so the firewall also backs chaos runs). *)

val run_oracle : ('i, 'o) t -> 'i -> ('o, failure) result
(** The oracle behind the {!Guard} firewall: [Ok (oracle input)] unless the
    oracle raises, in which case the escape is [Error (Faulted crash)]. *)

val oracle : ('i, 'o) t -> 'i -> 'o
(** The unperturbed checker — what the simulated human consults when the
    automated path has degraded. *)

val install : ('i, 'o) t -> ('i -> ('o, failure) result) -> unit
(** Install a fault schedule (used by {!Chaos}). *)

val runner : ('i, 'o) t -> 'i -> ('o, failure) result
(** The effective runner at the moment of the call — what {!run} would
    invoke right now ({!run_oracle} when no schedule is installed). Lets an
    outer wrapper (the Byzantine-verifier adversary) capture and compose
    with an already-armed fault schedule instead of replacing it. *)

(** {2 The cross-check oracle as a service}

    PR 8's trust layer consulted {!oracle} directly, making the raw oracle
    unconditional ground truth — a single point of failure a colluding
    coalition can own. The cross-check oracle is now itself a replaceable
    {e service}: {!oracle_run} is what the trust layer consults, and the
    collusion adversary can {!install_oracle} a compromised one. The
    hand-run path ({!hand_run}) always bypasses it — the simulated human's
    own run cannot be compromised, only budgeted. *)

val hand_run : ('i, 'o) t -> 'i -> ('o, Guard.crash) result
(** The pristine oracle behind the {!Guard} firewall, labelled
    ["<kind>/hand-check"] — the simulated human running the check by hand.
    Bypasses both the fault schedule and any installed oracle service. *)

val install_oracle : ('i, 'o) t -> ('i -> ('o, Guard.crash) result) -> unit
(** Replace the cross-check oracle service (the collusion adversary). *)

val oracle_run : ('i, 'o) t -> 'i -> ('o, Guard.crash) result
(** What a trust cross-check consults: the installed oracle service, or
    {!hand_run} when none is installed — so an unarmed run is byte-identical
    to consulting the raw oracle. *)

val oracle_runner : ('i, 'o) t -> 'i -> ('o, Guard.crash) result
(** The effective cross-check oracle at the moment of the call, for outer
    wrappers that compose with an already-installed service. *)
