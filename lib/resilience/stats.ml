type counters = {
  attempts : int;
  retries : int;
  failures : int;
  breaker_trips : int;
  degraded : int;
}

let zero = { attempts = 0; retries = 0; failures = 0; breaker_trips = 0; degraded = 0 }

let add a b =
  {
    attempts = a.attempts + b.attempts;
    retries = a.retries + b.retries;
    failures = a.failures + b.failures;
    breaker_trips = a.breaker_trips + b.breaker_trips;
    degraded = a.degraded + b.degraded;
  }

let n_kinds = List.length Verifier.all_kinds
let cell () = Array.init n_kinds (fun _ -> Atomic.make 0)
let attempts = cell ()
let retries = cell ()
let failures = cell ()
let trips = cell ()
let degraded = cell ()

let bump arr kind = Atomic.incr arr.(Verifier.kind_index kind)

let record_attempt = bump attempts
let record_retry = bump retries
let record_failure = bump failures
let record_trip = bump trips
let record_degraded = bump degraded

let read kind =
  let i = Verifier.kind_index kind in
  {
    attempts = Atomic.get attempts.(i);
    retries = Atomic.get retries.(i);
    failures = Atomic.get failures.(i);
    breaker_trips = Atomic.get trips.(i);
    degraded = Atomic.get degraded.(i);
  }

let snapshot () = List.map (fun k -> (k, read k)) Verifier.all_kinds

let totals () =
  List.fold_left (fun acc (_, c) -> add acc c) zero (snapshot ())

let diff before after =
  List.map
    (fun (k, a) ->
      let b = try List.assoc k before with Not_found -> zero in
      ( k,
        {
          attempts = a.attempts - b.attempts;
          retries = a.retries - b.retries;
          failures = a.failures - b.failures;
          breaker_trips = a.breaker_trips - b.breaker_trips;
          degraded = a.degraded - b.degraded;
        } ))
    after

let reset () =
  List.iter
    (fun arr -> Array.iter (fun a -> Atomic.set a 0) arr)
    [ attempts; retries; failures; trips; degraded ]
