type counters = {
  attempts : int;
  retries : int;
  failures : int;
  breaker_trips : int;
  degraded : int;
  max_attempts : int;
}

let zero =
  {
    attempts = 0;
    retries = 0;
    failures = 0;
    breaker_trips = 0;
    degraded = 0;
    max_attempts = 0;
  }

let add a b =
  {
    attempts = a.attempts + b.attempts;
    retries = a.retries + b.retries;
    failures = a.failures + b.failures;
    breaker_trips = a.breaker_trips + b.breaker_trips;
    degraded = a.degraded + b.degraded;
    max_attempts = Stdlib.max a.max_attempts b.max_attempts;
  }

let n_kinds = List.length Verifier.all_kinds
let cell () = Array.init n_kinds (fun _ -> Atomic.make 0)
let attempts = cell ()
let retries = cell ()
let failures = cell ()
let trips = cell ()
let degraded = cell ()
let max_att = cell ()

let bump arr kind = Atomic.incr arr.(Verifier.kind_index kind)

let record_attempt = bump attempts
let record_retry = bump retries
let record_failure = bump failures
let record_trip = bump trips
let record_degraded = bump degraded

(* A high-water gauge, not a counter: the deepest single call (in attempts)
   seen for this kind since the last [reset]. CAS max keeps it exact under
   parallel sweeps. *)
let record_call_attempts kind n =
  let a = max_att.(Verifier.kind_index kind) in
  let rec update () =
    let cur = Atomic.get a in
    if n > cur && not (Atomic.compare_and_set a cur n) then update ()
  in
  update ()

let read kind =
  let i = Verifier.kind_index kind in
  {
    attempts = Atomic.get attempts.(i);
    retries = Atomic.get retries.(i);
    failures = Atomic.get failures.(i);
    breaker_trips = Atomic.get trips.(i);
    degraded = Atomic.get degraded.(i);
    max_attempts = Atomic.get max_att.(i);
  }

let snapshot () = List.map (fun k -> (k, read k)) Verifier.all_kinds

let totals () =
  List.fold_left (fun acc (_, c) -> add acc c) zero (snapshot ())

let diff before after =
  List.map
    (fun (k, a) ->
      let b = try List.assoc k before with Not_found -> zero in
      ( k,
        {
          attempts = a.attempts - b.attempts;
          retries = a.retries - b.retries;
          failures = a.failures - b.failures;
          breaker_trips = a.breaker_trips - b.breaker_trips;
          degraded = a.degraded - b.degraded;
          (* A gauge cannot be differenced; the section's high-water mark
             is the global one whenever the section recorded anything. *)
          max_attempts = (if a.attempts > b.attempts then a.max_attempts else 0);
        } ))
    after

let reset () =
  List.iter
    (fun arr -> Array.iter (fun a -> Atomic.set a 0) arr)
    [ attempts; retries; failures; trips; degraded; max_att ]
