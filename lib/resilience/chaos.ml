type config = {
  seed : int;
  crash_rate : float;
  timeout_rate : float;
  flake_rate : float;
  truncate_rate : float;
  worker_loss_rate : float;
}

let none =
  {
    seed = 0;
    crash_rate = 0.;
    timeout_rate = 0.;
    flake_rate = 0.;
    truncate_rate = 0.;
    worker_loss_rate = 0.;
  }

let clamp r = Float.min 1. (Float.max 0. r)

let make ?(crash_rate = 0.) ?(timeout_rate = 0.) ?(flake_rate = 0.) ?(truncate_rate = 0.)
    ?(worker_loss_rate = 0.) ~seed () =
  {
    seed;
    crash_rate = clamp crash_rate;
    timeout_rate = clamp timeout_rate;
    flake_rate = clamp flake_rate;
    truncate_rate = clamp truncate_rate;
    worker_loss_rate = clamp worker_loss_rate;
  }

(* The verifier-level rates, which gate [arm]: a worker-loss-only config
   must leave every verifier on its fast [Ok (oracle input)] path. *)
let verifier_rates_zero c =
  c.crash_rate = 0. && c.timeout_rate = 0. && c.flake_rate = 0. && c.truncate_rate = 0.

let is_none c = verifier_rates_zero c && c.worker_loss_rate = 0.

let describe c =
  if is_none c then "no faults"
  else
    let parts =
      List.filter_map
        (fun (name, r) -> if r > 0. then Some (Printf.sprintf "%s %.2f" name r) else None)
        [
          ("crash", c.crash_rate);
          ("timeout", c.timeout_rate);
          ("flake", c.flake_rate);
          ("truncate", c.truncate_rate);
          ("worker-loss", c.worker_loss_rate);
        ]
    in
    Printf.sprintf "%s (seed %d)" (String.concat ", " parts) c.seed

let timeout_ticks = 4

(* Outage windows are drawn in [8, 24] ticks: long enough to outlast the
   default retry backoff (so crashes trip the breaker) but short enough
   that a breaker cooldown gives the verifier a realistic chance to have
   restarted by half-open time. *)
let outage rng = 8 + Llmsim.Rng.int rng 17

(* Distinct large odd multipliers keep the (seed, salt, kind) streams
   disjoint under splitmix64's additive-gamma construction. *)
let stream_seed c ~salt kind =
  c.seed + (salt * 1_000_003) + ((Verifier.kind_index kind + 1) * 7_368_787)

let arm c ~salt ~clock v =
  if verifier_rates_zero c then ()
  else begin
    let rng = Llmsim.Rng.make (stream_seed c ~salt (Verifier.kind v)) in
    let down_until = ref 0 in
    Verifier.install v (fun input ->
        let now = Clock.now clock in
        if now < !down_until then
          Error (Verifier.Crashed { down_ticks = !down_until - now })
        else if Llmsim.Rng.bernoulli rng c.crash_rate then begin
          let d = outage rng in
          down_until := now + d;
          Error (Verifier.Crashed { down_ticks = d })
        end
        else if Llmsim.Rng.bernoulli rng c.timeout_rate then begin
          Clock.advance clock timeout_ticks;
          Error (Verifier.Timed_out { ticks = timeout_ticks })
        end
        else if Llmsim.Rng.bernoulli rng c.flake_rate then Error Verifier.Flaked
        else if Llmsim.Rng.bernoulli rng c.truncate_rate then Error Verifier.Truncated
        else Verifier.run_oracle v input)
  end

(* Worker losses must be drawn order-independently: the supervisor consults
   the plan from whatever domain dispatches the task, so a sequential
   stream would make the schedule depend on pool scheduling. Instead every
   (task index, attempt) pair seeds its own one-draw splitmix64 stream,
   disjoint from the verifier and jitter streams by its own pair of large
   odd multipliers. *)
let worker_plan ?(in_flight = 0.) c ~salt : Exec.Supervisor.plan =
  let in_flight = Float.min 1. (Float.max 0. in_flight) in
  fun ~index ~attempt ->
    if c.worker_loss_rate <= 0. then None
    else
      let rng =
        Llmsim.Rng.make
          (c.seed + (salt * 1_000_003) + (index * 9_368_843) + (attempt * 5_754_853))
      in
      if not (Llmsim.Rng.bernoulli rng c.worker_loss_rate) then None
        (* The mode draw comes from the same stream, after the loss draw —
           it never perturbs the loss schedule itself. *)
      else if in_flight > 0. && Llmsim.Rng.bernoulli rng in_flight then
        Some Exec.Supervisor.In_flight
      else Some Exec.Supervisor.At_dispatch
