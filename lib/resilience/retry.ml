type policy = {
  max_attempts : int;
  base_backoff : int;
  max_backoff : int;
  jitter : float;
}

let default = { max_attempts = 3; base_backoff = 2; max_backoff = 16; jitter = 0.5 }

let backoff p rng ~failures =
  let failures = max 1 failures in
  (* Shift capped at 20 so the intermediate never overflows before the cap
     applies. *)
  let exp = p.base_backoff * (1 lsl min (failures - 1) 20) in
  let capped = max 0 (min p.max_backoff exp) in
  let jitter_bound = int_of_float (p.jitter *. float_of_int capped) in
  let jitter = if jitter_bound <= 0 then 0 else Llmsim.Rng.int rng (jitter_bound + 1) in
  capped + jitter
