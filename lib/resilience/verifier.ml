type kind = Parse_check | Campion | Topology | Route_policies | Bgp_sim

let all_kinds = [ Parse_check; Campion; Topology; Route_policies; Bgp_sim ]

let kind_index = function
  | Parse_check -> 0
  | Campion -> 1
  | Topology -> 2
  | Route_policies -> 3
  | Bgp_sim -> 4

let kind_name = function
  | Parse_check -> "parse-check"
  | Campion -> "campion"
  | Topology -> "topology"
  | Route_policies -> "route-policies"
  | Bgp_sim -> "bgp-sim"

let kind_of_name = function
  | "parse-check" -> Some Parse_check
  | "campion" -> Some Campion
  | "topology" -> Some Topology
  | "route-policies" -> Some Route_policies
  | "bgp-sim" -> Some Bgp_sim
  | _ -> None

type failure =
  | Crashed of { down_ticks : int }
  | Timed_out of { ticks : int }
  | Flaked
  | Truncated
  | Faulted of Guard.crash

let failure_to_string = function
  | Crashed { down_ticks } -> Printf.sprintf "crashed (down for %d ticks)" down_ticks
  | Timed_out { ticks } -> Printf.sprintf "timed out after %d ticks" ticks
  | Flaked -> "transient failure"
  | Truncated -> "truncated response discarded"
  | Faulted c ->
      Printf.sprintf "stage %s aborted on %s (input %s)" c.Guard.stage
        c.Guard.constructor c.Guard.fingerprint

type ('i, 'o) t = {
  kind : kind;
  oracle : 'i -> 'o;
  dirty : 'o -> bool;
  mutable schedule : ('i -> ('o, failure) result) option;
  mutable oracle_service : ('i -> ('o, Guard.crash) result) option;
}

let wrap ?(dirty = fun _ -> false) kind oracle =
  { kind; oracle; dirty; schedule = None; oracle_service = None }

let kind t = t.kind
let dirty t o = t.dirty o

let run_oracle t input =
  match
    Guard.run ~label:(kind_name t.kind)
      ~fingerprint:(Guard.fingerprint_value input) (fun () -> t.oracle input)
  with
  | Ok v -> Ok v
  | Error crash -> Error (Faulted crash)

let run t input =
  match t.schedule with None -> run_oracle t input | Some f -> f input

let oracle t input = t.oracle input
let install t f = t.schedule <- Some f

let runner t = match t.schedule with None -> run_oracle t | Some f -> f

(* The hand-run check: the simulated human consults the pristine oracle
   directly, bypassing the fault schedule AND any installed cross-check
   oracle service. The label matches the historical driver-side hand check
   so crash records stay byte-identical. *)
let hand_run t input =
  Guard.run ~label:(kind_name t.kind ^ "/hand-check")
    ~fingerprint:(Guard.fingerprint_value input)
    (fun () -> t.oracle input)

let install_oracle t f = t.oracle_service <- Some f
let oracle_run t input = match t.oracle_service with None -> hand_run t input | Some f -> f input
let oracle_runner t = match t.oracle_service with None -> hand_run t | Some f -> f
