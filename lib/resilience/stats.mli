(** Process-wide per-verifier resilience counters.

    Like {!Exec.Memo.stats}, these are global atomics: they aggregate across
    every run (and every worker domain) since the last {!reset}, so a
    parallel sweep reports the same totals as its sequential twin. They feed
    {!Cosynth.Metrics.perf} and the bench report; they never influence
    control flow, so transcripts stay bit-reproducible. *)

type counters = {
  attempts : int;  (** Verifier invocations, including retries. *)
  retries : int;  (** Attempts after a failure (attempt 2 and later). *)
  failures : int;  (** Failed attempts (injected or short-circuited). *)
  breaker_trips : int;  (** Transitions to the open state. *)
  degraded : int;  (** Calls that gave up and degraded to the human path. *)
  max_attempts : int;
      (** High-water gauge: the deepest single call, in attempts, since the
          last {!reset} — the observable face of the per-kind retry caps
          ({!Policies}). [add] and {!diff} treat it as a gauge: [add] takes
          the max, [diff] reports the section's mark (the global mark when
          the section recorded any attempt, 0 otherwise). *)
}

val zero : counters
val add : counters -> counters -> counters

val record_attempt : Verifier.kind -> unit
val record_retry : Verifier.kind -> unit
val record_failure : Verifier.kind -> unit
val record_trip : Verifier.kind -> unit
val record_degraded : Verifier.kind -> unit

val record_call_attempts : Verifier.kind -> int -> unit
(** Record that one {!Runtime.call} used this many attempts (CAS max). *)

val snapshot : unit -> (Verifier.kind * counters) list
(** One row per kind, in {!Verifier.all_kinds} order. *)

val totals : unit -> counters

val diff : (Verifier.kind * counters) list -> (Verifier.kind * counters) list ->
  (Verifier.kind * counters) list
(** [diff before after]: per-kind deltas. *)

val reset : unit -> unit
