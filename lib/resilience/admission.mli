(** Admission control for the service daemon: bounded in-flight work,
    a bounded wait queue, and per-client concurrency caps.

    The daemon's whole value is warm state amortized across requests — but
    an unbounded accept policy converts an overload into unbounded queueing,
    and every queued request eventually times out at once (the
    leverage-is-not-health lesson from the adversary sweeps, applied to
    capacity). This module makes saturation a {e structured} outcome
    instead: a request either gets an admission ticket (possibly after a
    bounded wait behind the in-flight limit) or is {e shed} immediately
    with a retry hint, so the client can back off deliberately rather than
    hang. All state is one mutex + condition variable; [admit]/[release]
    are safe from any number of handler threads. *)

type config = {
  max_in_flight : int;  (** Jobs running concurrently (clamped to >= 1). *)
  max_queue : int;
      (** Requests allowed to wait for a slot; one more is shed
          (clamped to >= 0). *)
  max_per_client : int;
      (** Concurrent jobs (running or queued) per client identity; beyond
          it the request is shed without queueing (clamped to >= 1). *)
  max_deadline_ms : int;
      (** Server-side cap a request's [deadline_ms] is clamped to. *)
  retry_after_ms : int;  (** Back-off hint carried in shed frames. *)
}

val default_config : config
(** 8 in flight, 16 queued, 4 per client, 60 s deadline cap, 50 ms retry
    hint. *)

type t

val create : config -> t

type shed_reason =
  | Capacity  (** In-flight and queue limits both full. *)
  | Per_client  (** This client alone is at its concurrency cap. *)

val reason_to_string : shed_reason -> string

type ticket
(** Proof of admission. Hold it for the duration of the job and
    {!release} it exactly once ([release] is idempotent, so releasing on
    both the completion and the abandonment path is safe). *)

type decision =
  | Admitted of ticket
  | Shed of { retry_after_ms : int; reason : shed_reason }

val admit : t -> client:string -> decision
(** Try to start a job on behalf of [client]. Per-client cap violations
    shed immediately; at global capacity the caller waits (blocking its
    handler thread — requests on one connection are serial anyway) while
    the queue has room, and is shed once the queue is full too. *)

val release : t -> ticket -> unit
(** Return the slot and wake queued waiters. Idempotent. *)

val set_caps : t -> config -> unit
(** Hot-reload the caps without draining: the new configuration (clamped
    as by {!create}) takes effect under the lock and every queued waiter
    is woken to re-evaluate against it — a raised in-flight limit admits
    them immediately, a lowered one binds as running jobs release their
    slots (tickets already issued are never revoked). *)

val config : t -> config
(** The caps currently in force (consistent read under the lock). *)

val clamp_deadline : config -> int option -> int
(** The effective deadline for a request: the client's ask clamped to
    [1 .. max_deadline_ms], or the cap itself when the client sent none. *)

type stats = {
  admitted : int;  (** Tickets ever issued. *)
  released : int;
  shed_capacity : int;
  shed_per_client : int;
  in_flight : int;  (** Right now. *)
  queued : int;  (** Right now. *)
  peak_in_flight : int;
  peak_queued : int;
}

val stats : t -> stats
(** A consistent snapshot (taken under the lock). *)
