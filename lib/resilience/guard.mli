(** The exception firewall.

    The paper's premise is that the LLM emits arbitrary, frequently broken
    config text; every parser, printer, differ and sim the VPP loop consults
    must therefore be {e total} — malformed input yields structured findings
    or a structured {!crash}, never a process abort.  [Guard.run] is the one
    boundary enforcing that: any exception escaping the thunk becomes a
    {!crash} record (stage label, exception constructor, backtrace digest,
    input fingerprint), is counted in a global registry, and is returned as
    [Error] for the caller to surface — in the driver it becomes a
    {!Verifier.failure} and ultimately a humanized correction prompt. *)

type crash = {
  stage : string;  (** Which pipeline stage raised (e.g. ["cisco-parse"]). *)
  constructor : string;  (** Exception constructor name ([Failure], ...). *)
  message : string;  (** [Printexc.to_string] of the exception. *)
  backtrace_digest : string;  (** Short digest of the raw backtrace. *)
  fingerprint : string;  (** Short fingerprint of the offending input. *)
}

exception Stage_timeout of int
(** Raised inside the thunk when the optional wall-clock watchdog fires;
    caught by [run] itself, so callers only ever see it as a [crash] with
    constructor ["Stage_timeout"]. *)

val run :
  ?timeout_ms:int ->
  ?fingerprint:string ->
  label:string ->
  (unit -> 'a) ->
  ('a, crash) result
(** [run ~label f] is [Ok (f ())] unless [f] raises, in which case the
    exception is converted to a [crash], recorded in the registry, and
    returned as [Error].  [?timeout_ms] arms a SIGALRM wall-clock watchdog
    around the call (used by the fuzz drivers; single-threaded use only —
    the driver loop's watchdog is the tick-based one in {!Runtime}).
    [?fingerprint] identifies the offending input (default ["-"]). *)

val run_deadline :
  deadline_ms:int ->
  ?poll_ms:int ->
  ?fingerprint:string ->
  ?on_settled:(unit -> unit) ->
  label:string ->
  (unit -> 'a) ->
  ('a, crash) result
(** Like {!run}, but bounded by a wall-clock deadline and safe in a
    multi-threaded process (the daemon): the thunk runs on a fresh thread
    while the caller polls (every [poll_ms], default 5). Past the deadline
    the caller gets [Error] with constructor ["Deadline_exceeded"]
    (recorded in the registry like any crash) — but since OCaml threads
    cannot be killed, the thunk is {e abandoned}, not stopped: it keeps
    running and [on_settled] fires (on the worker thread) when it actually
    finishes, whether that is before or after the deadline. Release any
    resource the job holds — e.g. its {!Admission} ticket — in
    [on_settled], never on the caller's return path, or an abandoned job
    would leak its slot. *)

val crash_to_string : crash -> string

val fingerprint_string : string -> string
(** Short (8 hex chars) content digest of an input string. *)

val fingerprint_value : 'a -> string
(** Short structural-hash fingerprint for non-string inputs. *)

val crashes : unit -> (string * string * int) list
(** Registry contents as sorted [(stage, constructor, count)] rows. *)

val total : unit -> int
(** Sum of all registry counts. *)

val reset : unit -> unit
