type config = {
  chaos : Chaos.config;
  policies : Policies.table;
  round_budget : int;
  stage_budget : int;
}

let default_config =
  {
    chaos = Chaos.none;
    policies = Policies.for_kind;
    round_budget = 64;
    stage_budget = 32;
  }

(* [?retry]/[?breaker] keep their historical "one knob for every verifier"
   meaning: either override flattens that dimension of the table. *)
let config ?(chaos = Chaos.none) ?(policies = Policies.for_kind) ?retry ?breaker
    ?(round_budget = 64) ?(stage_budget = 32) () =
  let policies =
    match (retry, breaker) with
    | None, None -> policies
    | _ ->
        fun kind ->
          let p = policies kind in
          {
            Policies.retry = Option.value retry ~default:p.Policies.retry;
            breaker = Option.value breaker ~default:p.Policies.breaker;
          }
  in
  { chaos; policies; round_budget; stage_budget }

type t = {
  cfg : config;
  salt : int;
  clock : Clock.t;
  jitter_rng : Llmsim.Rng.t;
  breakers : Breaker.t array;
  mutable round_deadline : int;
}

let create ?(salt = 0) cfg =
  let clock = Clock.create () in
  {
    cfg;
    salt;
    clock;
    (* A stream disjoint from every Chaos.arm stream (kind multipliers
       start at 1 * 7_368_787). *)
    jitter_rng = Llmsim.Rng.make (cfg.chaos.Chaos.seed + (salt * 1_000_003) + 97);
    breakers =
      (let kinds = Array.of_list Verifier.all_kinds in
       Array.map (fun k -> Breaker.create (cfg.policies k).Policies.breaker) kinds);
    round_deadline = Clock.now clock + cfg.round_budget;
  }

(* The child salt folds the sub-task index in on a distinct odd multiplier
   so sibling tasks (and the parent) never collide. *)
let derive t i = create ~salt:(t.salt + ((i + 1) * 524_287)) t.cfg

let arm t v =
  Chaos.arm t.cfg.chaos ~salt:t.salt ~clock:t.clock v;
  v

let new_round t = t.round_deadline <- Clock.now t.clock + t.cfg.round_budget

type degraded = { kind : Verifier.kind; reason : string }

let breaker_for t kind = t.breakers.(Verifier.kind_index kind)

let call t v input =
  let kind = Verifier.kind v in
  let b = breaker_for t kind in
  match Breaker.acquire b ~now:(Clock.now t.clock) with
  | `Reject ->
      Stats.record_failure kind;
      Stats.record_degraded kind;
      Error
        {
          kind;
          reason =
            Printf.sprintf "circuit open (%d ticks until half-open)"
              (Breaker.cooldown_left b ~now:(Clock.now t.clock));
        }
  | `Proceed ->
      let retry = (t.cfg.policies kind).Policies.retry in
      let stage_start = Clock.now t.clock in
      let rec attempt failures =
        Stats.record_attempt kind;
        if failures > 0 then Stats.record_retry kind;
        Clock.advance t.clock 1;
        match Verifier.run v input with
        | Ok o ->
            Breaker.record_success b;
            Stats.record_call_attempts kind (failures + 1);
            Ok o
        | Error f ->
            Stats.record_failure kind;
            let now = Clock.now t.clock in
            if Breaker.record_failure b ~now then Stats.record_trip kind;
            let failures = failures + 1 in
            let give_up reason =
              Stats.record_degraded kind;
              Stats.record_call_attempts kind failures;
              Error { kind; reason }
            in
            if failures >= retry.Retry.max_attempts then
              give_up
                (Printf.sprintf "%s; %d attempts exhausted"
                   (Verifier.failure_to_string f) failures)
            else if now - stage_start >= t.cfg.stage_budget then
              give_up
                (Printf.sprintf
                   "%s; stage watchdog: %d ticks in one stage (budget %d) \
                    after %d attempts"
                   (Verifier.failure_to_string f) (now - stage_start)
                   t.cfg.stage_budget failures)
            else if now >= t.round_deadline then
              give_up
                (Printf.sprintf "%s; round tick budget exhausted after %d attempts"
                   (Verifier.failure_to_string f) failures)
            else begin
              match Breaker.acquire b ~now with
              | `Reject ->
                  give_up
                    (Printf.sprintf "%s; breaker tripped after %d attempts"
                       (Verifier.failure_to_string f) failures)
              | `Proceed ->
                  Clock.advance t.clock (Retry.backoff retry t.jitter_rng ~failures);
                  attempt failures
            end
      in
      attempt 0

let clock t = t.clock
let breaker_state t kind = Breaker.state (breaker_for t kind)
let breaker_trips t kind = Breaker.trips (breaker_for t kind)
let chaos_active t = not (Chaos.is_none t.cfg.chaos)
