(* Bounded admission: one mutex + condvar guarding an in-flight count, a
   wait-queue count, and a per-client table. Shedding decisions are made
   under the lock so the counters in [stats] are exact, never sampled. *)

type config = {
  max_in_flight : int;
  max_queue : int;
  max_per_client : int;
  max_deadline_ms : int;
  retry_after_ms : int;
}

let default_config =
  {
    max_in_flight = 8;
    max_queue = 16;
    max_per_client = 4;
    max_deadline_ms = 60_000;
    retry_after_ms = 50;
  }

type shed_reason = Capacity | Per_client

let reason_to_string = function
  | Capacity -> "capacity"
  | Per_client -> "per-client cap"

type ticket = { t_client : string; mutable t_released : bool }

type t = {
  mutable cfg : config;
  m : Mutex.t;
  cv : Condition.t;
  per_client : (string, int) Hashtbl.t;
      (* running + queued jobs per client identity *)
  mutable in_flight : int;
  mutable queued : int;
  mutable admitted : int;
  mutable released : int;
  mutable shed_capacity : int;
  mutable shed_per_client : int;
  mutable peak_in_flight : int;
  mutable peak_queued : int;
}

let clamp_config cfg =
  {
    max_in_flight = max 1 cfg.max_in_flight;
    max_queue = max 0 cfg.max_queue;
    max_per_client = max 1 cfg.max_per_client;
    max_deadline_ms = max 1 cfg.max_deadline_ms;
    retry_after_ms = max 0 cfg.retry_after_ms;
  }

let create cfg =
  let cfg = clamp_config cfg in
  {
    cfg;
    m = Mutex.create ();
    cv = Condition.create ();
    per_client = Hashtbl.create 16;
    in_flight = 0;
    queued = 0;
    admitted = 0;
    released = 0;
    shed_capacity = 0;
    shed_per_client = 0;
    peak_in_flight = 0;
    peak_queued = 0;
  }

type decision =
  | Admitted of ticket
  | Shed of { retry_after_ms : int; reason : shed_reason }

let per_count t client =
  Option.value ~default:0 (Hashtbl.find_opt t.per_client client)

let per_incr t client = Hashtbl.replace t.per_client client (per_count t client + 1)

let per_decr t client =
  match per_count t client with
  | n when n <= 1 -> Hashtbl.remove t.per_client client
  | n -> Hashtbl.replace t.per_client client (n - 1)

let admit t ~client =
  Mutex.lock t.m;
  (* The per-client count includes this request's own queue slot, so the cap
     is re-checked on every wake: a client whose other requests were
     admitted while this one waited can still be shed here. *)
  let queued_here = ref false in
  let leave_queue () =
    if !queued_here then begin
      t.queued <- t.queued - 1;
      queued_here := false
    end
  in
  let shed reason =
    leave_queue ();
    (match reason with
    | Capacity -> t.shed_capacity <- t.shed_capacity + 1
    | Per_client -> t.shed_per_client <- t.shed_per_client + 1);
    Shed { retry_after_ms = t.cfg.retry_after_ms; reason }
  in
  let rec go () =
    if per_count t client >= t.cfg.max_per_client then shed Per_client
    else if t.in_flight < t.cfg.max_in_flight then begin
      leave_queue ();
      t.in_flight <- t.in_flight + 1;
      t.peak_in_flight <- max t.peak_in_flight t.in_flight;
      per_incr t client;
      t.admitted <- t.admitted + 1;
      Admitted { t_client = client; t_released = false }
    end
    else if (not !queued_here) && t.queued >= t.cfg.max_queue then shed Capacity
    else begin
      if not !queued_here then begin
        queued_here := true;
        t.queued <- t.queued + 1;
        t.peak_queued <- max t.peak_queued t.queued
      end;
      Condition.wait t.cv t.m;
      go ()
    end
  in
  let decision = go () in
  Mutex.unlock t.m;
  decision

(* Hot reload: swap the caps under the lock and wake every waiter — a
   raised in-flight limit must admit queued requests immediately, and a
   lowered one re-evaluates them against the new caps (running jobs keep
   their tickets; the new limits bind as slots are released). *)
let set_caps t cfg =
  Mutex.lock t.m;
  t.cfg <- clamp_config cfg;
  Condition.broadcast t.cv;
  Mutex.unlock t.m

let config t =
  Mutex.lock t.m;
  let cfg = t.cfg in
  Mutex.unlock t.m;
  cfg

let release t ticket =
  Mutex.lock t.m;
  if not ticket.t_released then begin
    ticket.t_released <- true;
    t.in_flight <- t.in_flight - 1;
    t.released <- t.released + 1;
    per_decr t ticket.t_client;
    Condition.broadcast t.cv
  end;
  Mutex.unlock t.m

let clamp_deadline cfg = function
  | None -> max 1 cfg.max_deadline_ms
  | Some ms -> max 1 (min ms (max 1 cfg.max_deadline_ms))

type stats = {
  admitted : int;
  released : int;
  shed_capacity : int;
  shed_per_client : int;
  in_flight : int;
  queued : int;
  peak_in_flight : int;
  peak_queued : int;
}

let stats t =
  Mutex.lock t.m;
  let s =
    {
      admitted = t.admitted;
      released = t.released;
      shed_capacity = t.shed_capacity;
      shed_per_client = t.shed_per_client;
      in_flight = t.in_flight;
      queued = t.queued;
      peak_in_flight = t.peak_in_flight;
      peak_queued = t.peak_queued;
    }
  in
  Mutex.unlock t.m;
  s
