type t = { mutable now : int }

let create () = { now = 0 }
let now t = t.now
let advance t n = t.now <- t.now + max 0 n
