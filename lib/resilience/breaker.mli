(** A per-verifier circuit breaker: closed → open → half-open.

    Closed: calls flow; [failure_threshold] consecutive failures trip the
    breaker open. Open: calls are rejected without touching the verifier
    until [cooldown] ticks have elapsed. Half-open: one trial call is let
    through — success closes the breaker, failure re-opens it (and counts
    as another trip). All timing is in simulated ticks. *)

type policy = {
  failure_threshold : int;  (** Consecutive failures that trip the breaker. *)
  cooldown : int;  (** Ticks open before allowing a half-open trial. *)
}

val default : policy
(** Threshold 3, cooldown 24 ticks. *)

type state = Closed | Open | Half_open

val state_to_string : state -> string

type t

val create : policy -> t

val state : t -> state

val acquire : t -> now:int -> [ `Proceed | `Reject ]
(** Ask to make a call at tick [now]. Transitions Open → Half_open when the
    cooldown has elapsed. *)

val cooldown_left : t -> now:int -> int
(** Ticks until a half-open trial is allowed; 0 unless open. *)

val record_success : t -> unit
(** Close the breaker and clear the failure streak. *)

val record_failure : t -> now:int -> bool
(** Record a failure at tick [now]; returns [true] when this failure
    tripped the breaker open (from closed past the threshold, or a failed
    half-open trial). *)

val trips : t -> int
(** Times the breaker has tripped open. *)
