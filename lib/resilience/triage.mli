(** Persistent crash triage.

    The {!Guard} registry is per-process; fuzzing and chaos campaigns want
    crash buckets that survive across runs so a rare crasher seen once last
    week is not forgotten. [append] journals registry rows to an
    append-only JSONL file (one object per (stage, constructor) bucket per
    call, tagged with the run's seed); [load] merges the whole history back
    into per-bucket rows with counts summed and the first/last seed that
    observed each bucket. Rows ride {!Store} — CRC-framed and fsync'd
    before [append] returns, so a crash immediately after a counted
    crash cannot lose its triage row — and the format stays line-oriented
    on purpose: a writer that dies mid-line loses only that line, and
    [load] skips anything torn or malformed instead of failing. *)

type row = {
  stage : string;
  constructor : string;
  count : int;  (** Total across every journaled run. *)
  first_seed : int;  (** Seed of the earliest run that hit this bucket. *)
  last_seed : int;  (** Seed of the latest run that hit this bucket. *)
  first_ts : float option;
      (** Wall clock of the earliest {e timestamped} line for this bucket
          ([None] when every line predates timestamps). *)
  last_ts : float option;  (** Wall clock of the latest timestamped line. *)
}

val append :
  ?ts:float -> path:string -> seed:int -> (string * string * int) list -> unit
(** Journal [(stage, constructor, count)] rows (the {!Guard.crashes} shape)
    under the given seed, optionally stamped with a wall-clock time (the
    daemon passes one so `cosynth triage` can show first/last-seen; the
    seeded sweeps stay deterministic by omitting it). A no-op on an empty
    list — a clean run leaves the file untouched (and uncreated). *)

val record : ?ts:float -> path:string -> seed:int -> unit -> unit
(** [append] the current {!Guard.crashes} registry. *)

val load : string -> row list
(** Merged history, sorted by stage then constructor. A missing file is an
    empty history; malformed lines are skipped. *)
