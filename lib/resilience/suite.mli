(** The standard wrapped verifier suite for one resilience context.

    One armed {!Verifier.t} per checker the local VPP loops call. The
    syntax check's oracle goes through {!Exec.Memo.check_result}, whose
    table only ever holds successful parses — the chaos gate runs {e
    before} the cache is consulted, so an injected fault bypasses the table
    (and can never be memoized as truth) and cache state can never shift
    the fault schedule.

    The global no-transit check is use-case-specific, so the driver wraps
    it itself with {!Verifier.wrap} [Bgp_sim] + {!Runtime.arm}. *)

type t = {
  runtime : Runtime.t;
  parse :
    ( Batfish.Parse_check.dialect * string,
      Policy.Config_ir.t * Netcore.Diag.t list )
    Verifier.t;
  campion :
    (Policy.Config_ir.t * Policy.Config_ir.t, Campion.Differ.finding list) Verifier.t;
      (** Input: [(original, translation)]. *)
  topology :
    ( Netcore.Topology.t * string * Policy.Config_ir.t,
      Topoverify.Verifier.finding list )
    Verifier.t;
      (** Input: [(topology, router, config)]. *)
  route_policies :
    ( Policy.Config_ir.t * Batfish.Search_route_policies.spec list,
      (Batfish.Search_route_policies.spec * Batfish.Search_route_policies.outcome) list
    )
    Verifier.t;
}

val make : Runtime.t -> t
