(* Persistent crash triage: the Guard registry, journaled across runs.

   Each [append] writes one JSON object per (stage, constructor) bucket on
   its own line — append-only, so concurrent tools never corrupt earlier
   rows and a crashed run still leaves everything it observed. [load]
   re-merges the history; malformed lines are skipped rather than fatal
   (the file may end mid-line if the writer died). *)

open Netcore

type row = {
  stage : string;
  constructor : string;
  count : int;
  first_seed : int;  (* seed of the earliest line mentioning this bucket *)
  last_seed : int;  (* seed of the latest line mentioning this bucket *)
  first_ts : float option;  (* wall-clock of the earliest timestamped line *)
  last_ts : float option;  (* wall-clock of the latest timestamped line *)
}

let encode_line ~seed ~ts (stage, constructor, count) =
  Json.to_string
    (Json.Obj
       ([
          ("stage", Json.String stage);
          ("ctor", Json.String constructor);
          ("count", Json.Int count);
          ("seed", Json.Int seed);
        ]
       @ match ts with None -> [] | Some t -> [ ("ts", Json.Float t) ]))

let append ?ts ~path ~seed crashes =
  if crashes <> [] then begin
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun bucket ->
            output_string oc (encode_line ~seed ~ts bucket);
            output_char oc '\n')
          crashes)
  end

let decode_line line =
  match Json.of_string line with
  | Error _ -> None
  | Ok j -> (
      let mem f name = Option.bind (Json.member name j) f in
      match
        ( mem Json.to_str "stage",
          mem Json.to_str "ctor",
          mem Json.to_int "count",
          mem Json.to_int "seed" )
      with
      | Some stage, Some constructor, Some count, Some seed ->
          (* [ts] is optional: rows journaled before timestamps existed
             load fine and simply show "-" in the triage table. *)
          Some (stage, constructor, count, seed, mem Json.to_float "ts")
      | _ -> None)

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let order = ref [] in
    let merged = Hashtbl.create 16 in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            match decode_line (input_line ic) with
            | None -> ()
            | Some (stage, constructor, count, seed, ts) ->
                let key = (stage, constructor) in
                (match Hashtbl.find_opt merged key with
                | None ->
                    order := key :: !order;
                    Hashtbl.replace merged key
                      {
                        stage;
                        constructor;
                        count;
                        first_seed = seed;
                        last_seed = seed;
                        first_ts = ts;
                        last_ts = ts;
                      }
                | Some r ->
                    let first_ts =
                      match r.first_ts with None -> ts | some -> some
                    in
                    let last_ts =
                      match ts with None -> r.last_ts | some -> some
                    in
                    Hashtbl.replace merged key
                      {
                        r with
                        count = r.count + count;
                        last_seed = seed;
                        first_ts;
                        last_ts;
                      })
          done
        with End_of_file -> ());
    List.rev_map (fun key -> Hashtbl.find merged key) !order
    |> List.sort (fun a b ->
           match compare a.stage b.stage with
           | 0 -> compare a.constructor b.constructor
           | c -> c)
  end

let record ?ts ~path ~seed () = append ?ts ~path ~seed (Guard.crashes ())
