(* Persistent crash triage: the Guard registry, journaled across runs.

   Each [append] writes one JSON object per (stage, constructor) bucket on
   its own line, through Durable.Store — append-only and fsync'd per row,
   so concurrent tools never corrupt earlier rows, a crashed run still
   leaves every row it got to journal, and (the bug this migration fixed)
   rows are on disk before [append] returns rather than parked in a
   buffered channel a crash would discard. [load] re-merges the history;
   torn or bit-flipped rows fail the store's CRC check and are skipped
   rather than fatal. *)

open Netcore

type row = {
  stage : string;
  constructor : string;
  count : int;
  first_seed : int;  (* seed of the earliest line mentioning this bucket *)
  last_seed : int;  (* seed of the latest line mentioning this bucket *)
  first_ts : float option;  (* wall-clock of the earliest timestamped line *)
  last_ts : float option;  (* wall-clock of the latest timestamped line *)
}

let encode_row ~seed ~ts (stage, constructor, count) =
  Json.Obj
    ([
       ("stage", Json.String stage);
       ("ctor", Json.String constructor);
       ("count", Json.Int count);
       ("seed", Json.Int seed);
     ]
    @ match ts with None -> [] | Some t -> [ ("ts", Json.Float t) ])

let append ?ts ~path ~seed crashes =
  if crashes <> [] then begin
    let store = Store.open_ path in
    Fun.protect
      ~finally:(fun () -> Store.close store)
      (fun () ->
        List.iter
          (fun bucket ->
            (* A false append (injected fault) loses that one row, exactly
               like a crash between rows would; the rows already appended
               are fsync'd and safe. *)
            ignore (Store.append store (encode_row ~seed ~ts bucket) : bool))
          crashes)
  end

let decode_row j =
  let mem f name = Option.bind (Json.member name j) f in
  match
    ( mem Json.to_str "stage",
      mem Json.to_str "ctor",
      mem Json.to_int "count",
      mem Json.to_int "seed" )
  with
  | Some stage, Some constructor, Some count, Some seed ->
      (* [ts] is optional: rows journaled before timestamps existed
         load fine and simply show "-" in the triage table. *)
      Some (stage, constructor, count, seed, mem Json.to_float "ts")
  | _ -> None

let load path =
  let records, _stats = Store.read path in
  let order = ref [] in
  let merged = Hashtbl.create 16 in
  List.iter
    (fun j ->
      match decode_row j with
      | None -> ()
      | Some (stage, constructor, count, seed, ts) -> (
          let key = (stage, constructor) in
          match Hashtbl.find_opt merged key with
          | None ->
              order := key :: !order;
              Hashtbl.replace merged key
                {
                  stage;
                  constructor;
                  count;
                  first_seed = seed;
                  last_seed = seed;
                  first_ts = ts;
                  last_ts = ts;
                }
          | Some r ->
              let first_ts = match r.first_ts with None -> ts | some -> some in
              let last_ts = match ts with None -> r.last_ts | some -> some in
              Hashtbl.replace merged key
                {
                  r with
                  count = r.count + count;
                  last_seed = seed;
                  first_ts;
                  last_ts;
                }))
    records;
  List.rev_map (fun key -> Hashtbl.find merged key) !order
  |> List.sort (fun a b ->
         match compare a.stage b.stage with
         | 0 -> compare a.constructor b.constructor
         | c -> c)

let record ?ts ~path ~seed () = append ?ts ~path ~seed (Guard.crashes ())
