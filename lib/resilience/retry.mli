(** Bounded retry with deterministic seeded jittered backoff.

    Backoff is exponential on the attempt number, capped, with jitter drawn
    from the runtime's splitmix64 stream — all measured in simulated ticks
    (see {!Clock}), never wall time. *)

type policy = {
  max_attempts : int;  (** Total attempts per call, including the first. *)
  base_backoff : int;  (** Ticks before the first retry. *)
  max_backoff : int;  (** Cap on the exponential term. *)
  jitter : float;  (** Extra ticks drawn uniformly in [0, jitter * backoff]. *)
}

val default : policy
(** 3 attempts, backoff 2 ticks doubling to a cap of 16, jitter 0.5. *)

val backoff : policy -> Llmsim.Rng.t -> failures:int -> int
(** Ticks to wait before the next attempt, after [failures] (>= 1)
    consecutive failures. Deterministic given the RNG state. *)
