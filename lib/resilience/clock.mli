(** A simulated monotonic clock measured in abstract ticks.

    All resilience timing — retry backoff, verifier timeouts, crash outage
    windows, breaker cooldowns, per-round deadlines — is measured against
    this clock, never against wall time, so chaos runs are bit-reproducible
    like everything else in the repository. Each verifier invocation costs
    one tick; injected timeouts and retry backoff cost more. *)

type t

val create : unit -> t
(** A fresh clock at tick 0. *)

val now : t -> int

val advance : t -> int -> unit
(** [advance t n] moves the clock forward [max 0 n] ticks. *)
