(** The seeded, deterministic fault injector.

    A chaos configuration is a set of per-call fault rates plus a seed. When
    armed on a wrapped verifier it installs a fault schedule drawn from a
    splitmix64 stream derived from [(seed, salt, verifier kind)] — so a
    chaos run is exactly reproducible from its configuration, and two
    verifiers (or two derived contexts) never share a stream.

    Fault model, per call, drawn in this order:
    - {b crash}: the verifier process dies and stays down for a drawn
      outage window (8–24 ticks); every call inside the window fails too —
      this is what gives the circuit breaker something to protect.
    - {b timeout}: the call burns a timeout budget of ticks, then fails.
    - {b flake}: a transient failure; an immediate retry may succeed.
    - {b truncate}: the response arrives truncated and is discarded (a
      truncated findings list must never read as a clean pass).

    A fifth rate lives one level up from the verifiers: {b worker loss}
    kills the pool domain dispatching a task (see
    {!Exec.Supervisor} and {!worker_plan}) rather than failing a verifier
    call. It never installs anything on a verifier, so a worker-loss-only
    configuration keeps every verifier on its fast path.

    With every verifier rate at 0 arming is a no-op: the verifier keeps
    its fast [Ok (oracle input)] path and draws nothing. *)

type config = {
  seed : int;
  crash_rate : float;
  timeout_rate : float;
  flake_rate : float;
  truncate_rate : float;
  worker_loss_rate : float;
      (** Per-dispatch probability that the worker domain dies ({!worker_plan}). *)
}

val none : config
(** All rates 0 — no schedule is ever installed. *)

val make :
  ?crash_rate:float ->
  ?timeout_rate:float ->
  ?flake_rate:float ->
  ?truncate_rate:float ->
  ?worker_loss_rate:float ->
  seed:int ->
  unit ->
  config
(** Rates default to 0 and are clamped to [0, 1]. *)

val is_none : config -> bool
(** Every rate is 0, worker loss included. *)

val describe : config -> string
(** E.g. ["crash 0.10, timeout 0.05 (seed 7)"]; ["no faults"] for {!none}. *)

val arm : config -> salt:int -> clock:Clock.t -> ('i, 'o) Verifier.t -> unit
(** Install the fault schedule for this configuration on the verifier,
    timing outages and timeouts against [clock]. No-op when every verifier
    rate is 0 (the worker-loss rate does not count: it is not a verifier
    fault). *)

val worker_plan : ?in_flight:float -> config -> salt:int -> Exec.Supervisor.plan
(** The worker-domain-loss schedule for {!Exec.Supervisor}: a pure,
    order-independent plan drawing each [(index, attempt)] decision from
    its own stream seeded by [(seed, salt, index, attempt)] — so the
    schedule is identical however the pool interleaves tasks, and a
    resumed sweep re-draws the same fate for the seeds it re-runs.
    [in_flight] (default 0, clamped to [0, 1]) is the fraction of losses
    that strike mid-task ([Exec.Supervisor.In_flight]) rather than at
    dispatch; the mode draw follows the loss draw on the same stream, so
    varying it never changes {e which} dispatches are lost. Always [None]
    when [worker_loss_rate = 0]. *)

val timeout_ticks : int
(** Ticks an injected timeout burns (also the cost reported in
    {!Verifier.Timed_out}). *)
