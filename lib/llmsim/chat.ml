open Policy

type strength = Auto | Human

type prompt = { text : string; refs : Fault.t list; strength : strength }

type t = {
  dialect_ : Fault.dialect;
  correct : Config_ir.t;
  mutable live : Fault.t list;
  mutable fixed : Fault.t list;
  rng : Rng.t;
  iips : string list;
  regression_rate : float;
  reintroduction_rate : float;
  class_filter : Error_class.t -> bool;
  quality : float;
}

let suppressed iips (cls : Error_class.t) =
  match (Error_class.profile cls).Error_class.iip with
  | Some iip -> List.mem iip iips
  | None -> false

let injectable t =
  List.filter
    (fun (f : Fault.t) ->
      t.class_filter f.Fault.class_
      && (not (suppressed t.iips f.Fault.class_))
      && (not (List.exists (Fault.equal f) t.live))
      && (Error_class.profile f.Fault.class_).Error_class.injection_rate > 0.0)
    (Fault.opportunities t.dialect_ t.correct)

let start ?(seed = 42) ?(iips = []) ?(regression_rate = 0.12)
    ?(reintroduction_rate = 0.05) ?(force_faults = []) ?(suppress_random = false)
    ?(class_filter = fun _ -> true) ?(quality = 0.0) dialect_ ~correct =
  let quality = Float.max 0.0 (Float.min 1.0 quality) in
  let t =
    {
      dialect_;
      correct;
      live = [];
      fixed = [];
      rng = Rng.make seed;
      iips;
      regression_rate = regression_rate *. (1.0 -. quality);
      reintroduction_rate = reintroduction_rate *. (1.0 -. quality);
      class_filter;
      quality;
    }
  in
  let sampled =
    if suppress_random then []
    else
      List.filter
        (fun (f : Fault.t) ->
          class_filter f.Fault.class_
          && (not (suppressed iips f.Fault.class_))
          && Rng.bernoulli t.rng
               ((Error_class.profile f.Fault.class_).Error_class.injection_rate
               *. (1.0 -. quality)))
        (Fault.opportunities dialect_ correct)
  in
  let forced = List.filter (fun f -> not (List.exists (Fault.equal f) sampled)) force_faults in
  t.live <- sampled @ forced;
  t

let draft t = Fault.render t.dialect_ t.correct t.live
let correct t = t.correct
let live_faults t = t.live
let fixed_faults t = t.fixed
let dialect t = t.dialect_

(* Match a prompt reference to a live fault: exact match first, then the
   first live fault of the same class (the humanizer cannot always recover a
   precise location from a verifier message, but the class is reliable). *)
let resolve t (ref_ : Fault.t) =
  match List.find_opt (Fault.equal ref_) t.live with
  | Some f -> Some f
  | None ->
      List.find_opt
        (fun (f : Fault.t) -> Error_class.equal f.Fault.class_ ref_.Fault.class_)
        t.live

let remove_fault t f =
  t.live <- List.filter (fun x -> not (Fault.equal x f)) t.live;
  t.fixed <- f :: t.fixed

let maybe_regress t =
  if Rng.bernoulli t.rng t.regression_rate then
    match Rng.choice t.rng (injectable t) with
    | Some f -> t.live <- t.live @ [ f ]
    | None -> ()

let maybe_reintroduce t =
  if Rng.bernoulli t.rng t.reintroduction_rate then
    match Rng.choice t.rng t.fixed with
    | Some f when not (List.exists (Fault.equal f) t.live) ->
        t.live <- t.live @ [ f ];
        t.fixed <- List.filter (fun x -> not (Fault.equal x f)) t.fixed
    | _ -> ()

(* Probability that a failed automated fix morphs the fault into its
   successor class rather than leaving the draft untouched. *)
let morph_rate = 0.5

let handle_ref t strength ref_ =
  match resolve t ref_ with
  | None -> ()
  | Some fault ->
      let profile = Error_class.profile fault.Fault.class_ in
      let base_fix =
        match strength with
        | Auto -> profile.Error_class.auto_fix
        | Human -> profile.Error_class.human_fix
      in
      (* A better model converts correction prompts more reliably. *)
      let fix_p = base_fix +. ((1.0 -. base_fix) *. t.quality) in
      if Rng.bernoulli t.rng fix_p then begin
        remove_fault t fault;
        maybe_regress t;
        maybe_reintroduce t
      end
      else
        match (strength, profile.Error_class.successor) with
        | Auto, Some successor when Rng.bernoulli t.rng morph_rate ->
            t.live <-
              List.map
                (fun (f : Fault.t) ->
                  if Fault.equal f fault then Fault.make successor f.Fault.target else f)
                t.live;
            t.fixed <- fault :: t.fixed
        | _ -> ()

let respond t prompt = List.iter (handle_ref t prompt.strength) prompt.refs

let auto_prompt ?(text = "") f = { text; refs = [ f ]; strength = Auto }
let human_prompt ?(text = "") f = { text; refs = [ f ]; strength = Human }
