(** The simulated GPT-4 conversation.

    A chat holds the task's correct artifact (the oracle) and the set of
    latent faults currently present in the draft. The initial prompt samples
    faults over the artifact's injection opportunities (classes suppressed
    by an active Initial Instruction Prompt are never injected). Correction
    prompts carry structured fault references — what a real deployment would
    retain alongside the humanized text — and the per-class profile decides
    the outcome: fixed, ignored, or morphed into a successor error; any
    successful fix can also regress (introduce a fresh fault) or reintroduce
    a previously fixed one, reproducing the paper's "fix one error, but
    introduce new errors ... sometimes it even reintroduces errors that were
    previously fixed". *)

open Policy

type strength = Auto | Human

type prompt = { text : string; refs : Fault.t list; strength : strength }

type t

val start :
  ?seed:int ->
  ?iips:string list ->
  ?regression_rate:float ->
  ?reintroduction_rate:float ->
  ?force_faults:Fault.t list ->
  ?suppress_random:bool ->
  ?class_filter:(Error_class.t -> bool) ->
  ?quality:float ->
  Fault.dialect ->
  correct:Config_ir.t ->
  t
(** Build the conversation and the initial (faulty) draft. Defaults:
    seed 42, no IIPs, regression 0.12, reintroduction 0.05. With
    [~suppress_random:true] only [force_faults] are injected (used to pin
    the Table 2 scenario). [class_filter] restricts both initial sampling
    and regression to the given classes (used by the incremental-edit
    scenario, where only edit-related mistakes make sense).

    [quality] (default 0) models a better future LLM — the paper's "if a
    future LLM, say GPT-6, produces near-perfect configurations, leverage
    will decrease": at quality [q], injection rates scale by [1 - q], fix
    probabilities interpolate toward 1, and regressions scale by [1 - q]. *)

val draft : t -> string
(** Current rendering of the draft configuration. *)

val correct : t -> Config_ir.t
(** The task's oracle artifact (used by adversarial wrappers that re-render
    the draft, e.g. in the wrong dialect). *)

val live_faults : t -> Fault.t list
val fixed_faults : t -> Fault.t list
val dialect : t -> Fault.dialect

val respond : t -> prompt -> unit
(** Process one correction prompt; {!draft} reflects the outcome. A prompt
    whose references match no live fault changes nothing (the model "usually
    does nothing when asked to fix the error"). *)

val auto_prompt : ?text:string -> Fault.t -> prompt
val human_prompt : ?text:string -> Fault.t -> prompt
