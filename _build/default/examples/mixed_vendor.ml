(* The two use cases composed: synthesize the no-transit star in Cisco,
   translate the hub to Juniper, and verify the resulting MIXED-VENDOR
   network — with Campion, with the whole-network BGP simulation, and with
   the Lightyear-style modular proof.

   Everything operates on the vendor-neutral IR, so a network where R1
   speaks Junos and R2..R7 speak IOS needs no special handling.

   Run with: dune exec examples/mixed_vendor.exe *)

open Netcore

let () =
  (* 1. Synthesize (use case 2). *)
  let r = Cosynth.Driver.run_no_transit ~seed:5 ~routers:7 () in
  assert r.Cosynth.Driver.global_ok;
  Printf.printf "Synthesized 7 verified Cisco configs (%d automated, %d human prompts).\n"
    r.Cosynth.Driver.transcript.Cosynth.Driver.auto_prompts
    r.Cosynth.Driver.transcript.Cosynth.Driver.human_prompts;

  (* 2. Translate the hub (use case 1's machinery). *)
  let hub = List.assoc "R1" r.Cosynth.Driver.configs in
  let junos_text = Juniper.Printer.print (Juniper.Translate.of_cisco_ir hub) in
  Printf.printf "\nTranslated R1 to Junos (%d lines). First lines:\n"
    (List.length (String.split_on_char '\n' junos_text));
  List.iteri
    (fun i l -> if i < 12 then print_endline ("    " ^ l))
    (String.split_on_char '\n' junos_text);

  (* 3. Campion: the translation is faithful. *)
  let hub_junos, diags = Juniper.Parser.parse junos_text in
  assert (diags = []);
  let findings = Campion.Differ.compare ~original:hub ~translation:hub_junos in
  Printf.printf "\nCampion findings against the Cisco original: %d\n" (List.length findings);

  (* 4. Re-verify the mixed-vendor network. *)
  let star = Star.make ~routers:7 in
  let mixed = ("R1", hub_junos) :: List.remove_assoc "R1" r.Cosynth.Driver.configs in
  let ok, violations = Cosynth.Modularizer.no_transit_holds star mixed in
  Printf.printf "BGP simulation on the mixed-vendor network: no-transit %s\n"
    (if ok then "HOLDS" else "VIOLATED");
  List.iter (fun v -> Printf.printf "  %s\n" v) violations;
  (match Cosynth.Lightyear.prove_no_transit star mixed with
  | Cosynth.Lightyear.Proved ->
      print_endline "Modular proof: the local policies imply the global one. PROVED"
  | Cosynth.Lightyear.Refuted ref_ ->
      Printf.printf "Modular proof REFUTED: %s -> %s\n" ref_.Cosynth.Lightyear.from_spoke
        ref_.Cosynth.Lightyear.to_spoke
  | Cosynth.Lightyear.Inapplicable why -> Printf.printf "Proof inapplicable: %s\n" why);

  (* 5. And show that a buggy translation is caught at every layer. *)
  print_endline "\n--- injecting the non-additive community bug into the Junos hub ---";
  let buggy_text =
    Llmsim.Fault.render Llmsim.Fault.Junos_cfg (Juniper.Translate.of_cisco_ir hub)
      [
        Llmsim.Fault.make Llmsim.Error_class.Community_not_additive
          (Llmsim.Fault.Policy_entry (Cosynth.Modularizer.ingress_map_name "R2", 10));
      ]
  in
  let buggy, _ = Juniper.Parser.parse buggy_text in
  let campion_sees =
    Campion.Differ.compare ~original:hub ~translation:buggy <> []
  in
  let mixed_buggy = ("R1", buggy) :: List.remove_assoc "R1" r.Cosynth.Driver.configs in
  Printf.printf "Campion flags it: %b\n" campion_sees;
  (match Cosynth.Lightyear.prove_no_transit star mixed_buggy with
  | Cosynth.Lightyear.Proved -> print_endline "proof: (still proved — the bug is benign here)"
  | Cosynth.Lightyear.Refuted _ -> print_endline "proof: REFUTED"
  | Cosynth.Lightyear.Inapplicable why -> Printf.printf "proof inapplicable: %s\n" why)
