(* Quickstart: the library in five minutes.

   1. Parse a Cisco config (the Batfish-style front end).
   2. Translate it to Juniper through the vendor-neutral IR.
   3. Diff the original against a buggy translation (Campion-style).
   4. Ask a semantic question about a route map (Search Route Policies).

   Run with: dune exec examples/quickstart.exe *)

open Netcore
open Policy

let () =
  (* 1. Parse. *)
  let cisco_text = Cisco.Samples.border_router in
  let cisco_ir, diags = Cisco.Parser.parse cisco_text in
  Printf.printf "Parsed %s: %d interfaces, %d route maps, %d diagnostics\n"
    cisco_ir.Config_ir.hostname
    (List.length cisco_ir.Config_ir.interfaces)
    (List.length cisco_ir.Config_ir.route_maps)
    (List.length diags);

  (* 2. Translate. *)
  let junos_ir = Juniper.Translate.of_cisco_ir cisco_ir in
  let junos_text = Juniper.Printer.print junos_ir in
  Printf.printf "Translated to Juniper: %d lines\n"
    (List.length (String.split_on_char '\n' junos_text));
  assert (Batfish.Parse_check.syntax_ok Batfish.Parse_check.Junos junos_text);

  (* 3. Diff against a corrupted translation: drop the OSPF cost on the
     loopback, exactly the Table 1 example. *)
  let buggy_text =
    Llmsim.Fault.render Llmsim.Fault.Junos_cfg junos_ir
      [
        Llmsim.Fault.make Llmsim.Error_class.Ospf_cost_wrong
          (Llmsim.Fault.Interface (Iface.loopback 0));
      ]
  in
  let buggy_ir, _ = Juniper.Parser.parse buggy_text in
  print_endline "\nCampion findings for the buggy translation:";
  List.iter
    (fun f -> Printf.printf "  - %s\n" (Campion.Differ.finding_to_string f))
    (Campion.Differ.compare ~original:cisco_ir ~translation:buggy_ir);

  (* 4. A semantic question: does from_customer deny private prefixes? *)
  let spec =
    {
      Batfish.Search_route_policies.policy = "from_customer";
      space =
        Symbolic.Pred.of_cube
          (Symbolic.Cube.make
             ~prefixes:
               (Symbolic.Prefix_space.of_range
                  (Prefix_range.orlonger (Prefix.of_string_exn "10.0.0.0/8")))
             ());
      requirement = Batfish.Search_route_policies.Denies;
      description = "routes inside 10.0.0.0/8";
    }
  in
  (match Batfish.Search_route_policies.check cisco_ir spec with
  | Batfish.Search_route_policies.Holds ->
      print_endline "\nfrom_customer denies all of 10.0.0.0/8: HOLDS"
  | Batfish.Search_route_policies.Violated v ->
      Printf.printf "\nviolated, e.g. %s\n"
        (Route.to_string v.Batfish.Search_route_policies.example)
  | Batfish.Search_route_policies.Policy_missing -> print_endline "policy missing");

  (* And a question that fails, producing a counterexample. *)
  let bad_spec =
    { spec with Batfish.Search_route_policies.requirement = Batfish.Search_route_policies.Permits }
  in
  match Batfish.Search_route_policies.check cisco_ir bad_spec with
  | Batfish.Search_route_policies.Violated v ->
      Printf.printf "asking the opposite yields a counterexample: %s\n"
        (Route.to_string v.Batfish.Search_route_policies.example)
  | _ -> print_endline "unexpectedly held"
