(* The Section 4.1 experiment: global versus local policy prompting.

   With a single global no-transit specification and whole-network
   counterexamples, the (simulated) LLM oscillates between its two
   "innovative strategies"; with per-router local policies the loop
   converges every time.

   Run with: dune exec examples/global_vs_local.exe *)

let () =
  print_endline "=== One global-prompting run, step by step ===";
  let g = Cosynth.Global_vs_local.run_global ~seed:11 ~routers:7 () in
  Printf.printf
    "after %d counterexample prompts: %s, %d strategy switches, final strategy: %s\n"
    g.Cosynth.Global_vs_local.prompts
    (if g.Cosynth.Global_vs_local.converged then "converged" else "still wrong — gave up")
    g.Cosynth.Global_vs_local.strategy_switches
    (Cosynth.Global_vs_local.strategy_to_string g.Cosynth.Global_vs_local.final_strategy);

  print_endline "\n=== 25 runs of each strategy ===";
  let c = Cosynth.Global_vs_local.compare ~runs:25 ~routers:7 () in
  Printf.printf "global spec : %.0f%% convergence, %.1f prompts, %.1f switches on average\n"
    (100. *. c.Cosynth.Global_vs_local.global_convergence_rate)
    c.Cosynth.Global_vs_local.global_mean_prompts
    c.Cosynth.Global_vs_local.global_mean_switches;
  Printf.printf "local specs : %.0f%% convergence, %.1f prompts on average\n"
    (100. *. c.Cosynth.Global_vs_local.local_convergence_rate)
    c.Cosynth.Global_vs_local.local_mean_prompts;
  print_endline
    "\nThe paper's lesson 4: \"the user needs to decide and describe the 'roles' \
     each node plays in satisfying the global spec\"."
