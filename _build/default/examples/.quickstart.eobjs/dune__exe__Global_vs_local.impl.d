examples/global_vs_local.ml: Cosynth Printf
