examples/translate_cisco.mli:
