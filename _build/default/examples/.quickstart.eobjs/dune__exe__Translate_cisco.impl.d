examples/translate_cisco.ml: Cisco Cosynth List Llmsim Printf String
