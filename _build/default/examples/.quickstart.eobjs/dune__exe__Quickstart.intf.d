examples/quickstart.mli:
