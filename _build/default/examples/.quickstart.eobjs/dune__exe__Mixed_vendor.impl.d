examples/mixed_vendor.ml: Campion Cosynth Juniper List Llmsim Netcore Printf Star String
