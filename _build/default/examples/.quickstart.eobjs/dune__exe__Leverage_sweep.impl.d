examples/leverage_sweep.ml: Cisco Cosynth Format List Printf
