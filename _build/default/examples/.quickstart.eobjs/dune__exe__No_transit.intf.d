examples/no_transit.mli:
