examples/incremental_policy.ml: Cisco Config_ir Cosynth List Netcore Policy Printf String
