examples/incremental_policy.mli:
