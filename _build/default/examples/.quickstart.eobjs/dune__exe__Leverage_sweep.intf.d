examples/leverage_sweep.mli:
