examples/quickstart.ml: Batfish Campion Cisco Config_ir Iface Juniper List Llmsim Netcore Policy Prefix Prefix_range Printf Route String Symbolic
