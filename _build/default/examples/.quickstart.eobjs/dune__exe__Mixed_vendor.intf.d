examples/mixed_vendor.mli:
