examples/global_vs_local.mli:
