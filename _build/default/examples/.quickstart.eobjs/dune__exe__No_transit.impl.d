examples/no_transit.ml: Batfish Cosynth Json List Netcore Printf Route Star String
