(** Permit/deny actions shared by all policy structures. *)

type t = Permit | Deny

val to_string : t -> string
val of_string : string -> t option
val flip : t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
