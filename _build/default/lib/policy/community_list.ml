open Netcore

type entry = { action : Action.t; communities : Community.t list }
type t = { name : string; entries : entry list }

let make name entries = { name; entries }
let entry ?(action = Action.Permit) communities = { action; communities }

let entry_matches e set = List.for_all (fun c -> Community.Set.mem c set) e.communities
let matching_entry t set = List.find_opt (fun e -> entry_matches e set) t.entries

let matches t set =
  match matching_entry t set with
  | Some e -> e.action = Action.Permit
  | None -> false

let communities_mentioned t =
  List.fold_left
    (fun acc e -> List.fold_left (fun acc c -> Community.Set.add c acc) acc e.communities)
    Community.Set.empty t.entries

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "community-list %s:" t.name;
  List.iter
    (fun e ->
      Format.fprintf ppf "@ %s %s" (Action.to_string e.action)
        (String.concat " " (List.map Community.to_string e.communities)))
    t.entries
