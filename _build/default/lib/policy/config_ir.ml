open Netcore

type interface = {
  iface : Iface.t;
  address : (Ipv4.t * int) option;
  description : string option;
  shutdown : bool;
  acl_in : string option;
  acl_out : string option;
}

type neighbor = {
  addr : Ipv4.t;
  remote_as : int;
  local_as : int option;
  description : string option;
  import_policy : string option;
  export_policy : string option;
  next_hop_self : bool;
  send_community : bool;
}

type redistribution = { from_protocol : Route.source; policy : string option }

type bgp = {
  asn : int;
  router_id : Ipv4.t option;
  networks : Prefix.t list;
  neighbors : neighbor list;
  redistributions : redistribution list;
}

type ospf_interface = { iface : Iface.t; cost : int option; passive : bool; area : int }

type ospf = {
  process_id : int;
  router_id : Ipv4.t option;
  networks : (Prefix.t * int) list;
  interfaces : ospf_interface list;
  redistributions : redistribution list;
}

type static_route = { destination : Prefix.t; next_hop : Ipv4.t }

type t = {
  hostname : string;
  interfaces : interface list;
  prefix_lists : Prefix_list.t list;
  community_lists : Community_list.t list;
  as_path_lists : As_path_list.t list;
  route_maps : Route_map.t list;
  acls : Acl.t list;
  statics : static_route list;
  bgp : bgp option;
  ospf : ospf option;
}

let empty hostname =
  {
    hostname;
    interfaces = [];
    prefix_lists = [];
    community_lists = [];
    as_path_lists = [];
    route_maps = [];
    acls = [];
    statics = [];
    bgp = None;
    ospf = None;
  }

let interface ?address ?description ?(shutdown = false) ?acl_in ?acl_out iface =
  { iface; address; description; shutdown; acl_in; acl_out }

let neighbor ?local_as ?description ?import_policy ?export_policy
    ?(next_hop_self = false) ?(send_community = true) addr ~remote_as =
  {
    addr;
    remote_as;
    local_as;
    description;
    import_policy;
    export_policy;
    next_hop_self;
    send_community;
  }

let find_interface t i =
  List.find_opt (fun (x : interface) -> Iface.equal x.iface i) t.interfaces

let find_route_map t name =
  List.find_opt (fun (m : Route_map.t) -> m.name = name) t.route_maps

let find_prefix_list t name =
  List.find_opt (fun (l : Prefix_list.t) -> l.name = name) t.prefix_lists

let find_community_list t name =
  List.find_opt (fun (l : Community_list.t) -> l.name = name) t.community_lists

let find_as_path_list t name =
  List.find_opt (fun (l : As_path_list.t) -> l.name = name) t.as_path_lists

let find_acl t name = List.find_opt (fun (a : Acl.t) -> a.Acl.name = name) t.acls

let find_neighbor (b : bgp) addr =
  List.find_opt (fun n -> Ipv4.equal n.addr addr) b.neighbors

let with_route_map t map =
  let name = map.Route_map.name in
  let rest = List.filter (fun (m : Route_map.t) -> m.name <> name) t.route_maps in
  { t with route_maps = rest @ [ map ] }

let connected_prefixes t =
  List.filter_map
    (fun i ->
      match i.address with
      | Some (addr, len) when not i.shutdown -> Some (Prefix.make addr len)
      | _ -> None)
    t.interfaces

let undefined_references t =
  let missing = ref [] in
  let note kind name = missing := Printf.sprintf "%s %s" kind name :: !missing in
  let policy_refs =
    (match t.bgp with
    | None -> []
    | Some b ->
        List.concat_map
          (fun n ->
            Option.to_list n.import_policy @ Option.to_list n.export_policy)
          b.neighbors
        @ List.filter_map (fun r -> r.policy) b.redistributions)
    @
    match t.ospf with
    | None -> []
    | Some o -> List.filter_map (fun r -> r.policy) o.redistributions
  in
  List.iter
    (fun name -> if find_route_map t name = None then note "route-map" name)
    (List.sort_uniq String.compare policy_refs);
  List.iter
    (fun (i : interface) ->
      List.iter
        (fun name ->
          if find_acl t name = None then note "access-list" name)
        (Option.to_list i.acl_in @ Option.to_list i.acl_out))
    t.interfaces;
  List.iter
    (fun (m : Route_map.t) ->
      List.iter
        (fun n -> if find_prefix_list t n = None then note "prefix-list" n)
        (Route_map.prefix_lists_referenced m);
      List.iter
        (fun n -> if find_community_list t n = None then note "community-list" n)
        (Route_map.community_lists_referenced m);
      List.iter
        (fun n -> if find_as_path_list t n = None then note "as-path-list" n)
        (Route_map.as_path_lists_referenced m))
    t.route_maps;
  List.sort_uniq String.compare !missing

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "config %s: %d interfaces, %d route-maps, bgp=%s ospf=%s"
    t.hostname
    (List.length t.interfaces)
    (List.length t.route_maps)
    (match t.bgp with Some b -> Printf.sprintf "AS%d" b.asn | None -> "none")
    (match t.ospf with Some o -> Printf.sprintf "pid%d" o.process_id | None -> "none")
