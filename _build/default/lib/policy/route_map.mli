(** Routing policies in the vendor-neutral IR.

    A route map is an ordered list of entries (Cisco stanzas / Juniper
    terms). Within one entry all match conditions must hold (AND); entries
    are tried in sequence order (OR); a route matching no entry is denied.
    This AND-within / OR-across distinction is precisely the semantics GPT-4
    confused in Section 4.2 of the paper. *)

open Netcore

type match_cond =
  | Match_prefix_list of string  (** Reference to a named prefix list. *)
  | Match_community_list of string  (** Reference to a named community list. *)
  | Match_as_path of string  (** Reference to a named AS-path access list. *)
  | Match_source_protocol of Route.source
      (** Cisco [match source-protocol] / Juniper [from protocol]; how
          redistribution scoping ("from bgp") is expressed in the IR. *)
  | Match_med of int
  | Match_tag of int

type set_action =
  | Set_med of int
  | Set_local_pref of int
  | Set_community of { communities : Community.t list; additive : bool }
      (** [additive = false] {e replaces} the route's communities — the
          default Cisco behaviour the paper's IIP warns about. *)
  | Set_community_delete of string
      (** Delete communities matched by the named community list. *)
  | Set_next_hop of Ipv4.t
  | Set_as_path_prepend of int list

type entry = {
  seq : int;
  action : Action.t;
  matches : match_cond list;
  sets : set_action list;
}

type t = { name : string; entries : entry list }

val make : string -> entry list -> t
(** Sorts by sequence number; raises [Invalid_argument] on duplicates. *)

val entry :
  ?action:Action.t -> ?matches:match_cond list -> ?sets:set_action list -> int -> entry

val find_entry : t -> int -> entry option

val permit_all : string -> t
(** A map with a single empty-match permit entry. *)

val deny_all : string -> t

val prefix_lists_referenced : t -> string list
val community_lists_referenced : t -> string list
val as_path_lists_referenced : t -> string list

val match_cond_to_string : match_cond -> string
val set_action_to_string : set_action -> string

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
