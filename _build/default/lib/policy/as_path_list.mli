(** Named AS-path access lists: ordered (action, regex) entries with
    first-match semantics and implicit deny. *)

open Netcore

type entry = { action : Action.t; regex : string }
type t = { name : string; entries : entry list }

val make : string -> entry list -> t
val entry : ?action:Action.t -> string -> entry

val matches : t -> As_path.t -> bool
(** Raises [Invalid_argument] if an entry's regex is malformed (the linter
    reports those before evaluation in the verification pipeline). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
