open Netcore

type entry = { seq : int; action : Action.t; range : Prefix_range.t }
type t = { name : string; entries : entry list }

let make name entries =
  let entries = List.sort (fun a b -> Int.compare a.seq b.seq) entries in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a.seq = b.seq then
          invalid_arg
            (Printf.sprintf "Prefix_list.make: duplicate seq %d in %s" a.seq name);
        check rest
    | _ -> ()
  in
  check entries;
  { name; entries }

let entry ?(action = Action.Permit) seq range = { seq; action; range }

let matching_entry t p = List.find_opt (fun e -> Prefix_range.matches e.range p) t.entries

let matches t p =
  match matching_entry t p with
  | Some e -> e.action = Action.Permit
  | None -> false

let permitted_ranges t =
  List.filter_map
    (fun e -> if e.action = Action.Permit then Some e.range else None)
    t.entries

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "prefix-list %s:" t.name;
  List.iter
    (fun e ->
      Format.fprintf ppf "@ seq %d %s %s" e.seq (Action.to_string e.action)
        (Prefix_range.to_string e.range))
    t.entries
