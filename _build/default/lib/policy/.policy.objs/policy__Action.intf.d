lib/policy/action.mli: Format
