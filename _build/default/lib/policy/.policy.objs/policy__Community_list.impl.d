lib/policy/community_list.ml: Action Community Format List Netcore String
