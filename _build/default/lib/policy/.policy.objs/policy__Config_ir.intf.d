lib/policy/config_ir.mli: Acl As_path_list Community_list Format Iface Ipv4 Netcore Prefix Prefix_list Route Route_map
