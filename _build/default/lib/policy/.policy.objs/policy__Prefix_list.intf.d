lib/policy/prefix_list.mli: Action Format Netcore Prefix Prefix_range
