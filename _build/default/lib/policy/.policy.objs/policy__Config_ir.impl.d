lib/policy/config_ir.ml: Acl As_path_list Community_list Format Iface Ipv4 List Netcore Option Prefix Prefix_list Printf Route Route_map String
