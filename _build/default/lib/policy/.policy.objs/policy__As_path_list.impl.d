lib/policy/as_path_list.ml: Action As_path Format List Netcore
