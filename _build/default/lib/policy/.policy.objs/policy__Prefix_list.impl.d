lib/policy/prefix_list.ml: Action Format Int List Netcore Prefix_range Printf
