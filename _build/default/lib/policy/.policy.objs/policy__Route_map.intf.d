lib/policy/route_map.mli: Action Community Format Ipv4 Netcore Route
