lib/policy/eval.mli: Action As_path_list Community_list Config_ir Format Netcore Prefix_list Route Route_map
