lib/policy/acl.mli: Action Format Netcore Packet Prefix
