lib/policy/as_path_list.mli: Action As_path Format Netcore
