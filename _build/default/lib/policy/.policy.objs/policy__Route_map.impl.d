lib/policy/route_map.ml: Action Community Format Int Ipv4 List Netcore Printf Route String
