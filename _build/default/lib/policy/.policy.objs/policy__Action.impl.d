lib/policy/action.ml: Format
