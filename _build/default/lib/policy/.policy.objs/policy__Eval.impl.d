lib/policy/eval.ml: Action As_path As_path_list Community Community_list Config_ir Format List Netcore Prefix_list Route Route_map
