lib/policy/community_list.mli: Action Community Format Netcore
