lib/policy/acl.ml: Action Format Int List Netcore Packet Prefix Printf
