open Netcore

type env = {
  prefix_lists : Prefix_list.t list;
  community_lists : Community_list.t list;
  as_path_lists : As_path_list.t list;
}

let env_of_config (c : Config_ir.t) =
  {
    prefix_lists = c.prefix_lists;
    community_lists = c.community_lists;
    as_path_lists = c.as_path_lists;
  }

let empty_env = { prefix_lists = []; community_lists = []; as_path_lists = [] }

type verdict = Permitted of Route.t | Denied

let find_pl env n = List.find_opt (fun (l : Prefix_list.t) -> l.name = n) env.prefix_lists

let find_cl env n =
  List.find_opt (fun (l : Community_list.t) -> l.name = n) env.community_lists

let find_al env n =
  List.find_opt (fun (l : As_path_list.t) -> l.name = n) env.as_path_lists

let match_cond env cond (r : Route.t) =
  match cond with
  | Route_map.Match_prefix_list n -> (
      match find_pl env n with Some l -> Prefix_list.matches l r.prefix | None -> false)
  | Route_map.Match_community_list n -> (
      match find_cl env n with
      | Some l -> Community_list.matches l r.communities
      | None -> false)
  | Route_map.Match_as_path n -> (
      match find_al env n with Some l -> As_path_list.matches l r.as_path | None -> false)
  | Route_map.Match_source_protocol s -> r.source = s
  | Route_map.Match_med m -> r.med = m
  | Route_map.Match_tag _ -> false

let entry_matches env (e : Route_map.entry) r =
  List.for_all (fun c -> match_cond env c r) e.matches

let apply_set env set (r : Route.t) =
  match set with
  | Route_map.Set_med m -> { r with med = m }
  | Route_map.Set_local_pref p -> { r with local_pref = p }
  | Route_map.Set_community { communities; additive } ->
      let added = Community.Set.of_list communities in
      let communities =
        if additive then Community.Set.union r.communities added else added
      in
      { r with communities }
  | Route_map.Set_community_delete n -> (
      match find_cl env n with
      | None -> r
      | Some l ->
          let keep c = not (Community_list.matches l (Community.Set.singleton c)) in
          { r with communities = Community.Set.filter keep r.communities })
  | Route_map.Set_next_hop a -> { r with next_hop = Some a }
  | Route_map.Set_as_path_prepend asns ->
      { r with as_path = List.fold_right As_path.prepend asns r.as_path }

let apply_sets env sets r = List.fold_left (fun r s -> apply_set env s r) r sets

let eval env (m : Route_map.t) r =
  let rec go = function
    | [] -> Denied
    | (e : Route_map.entry) :: rest ->
        if entry_matches env e r then
          match e.action with
          | Action.Permit -> Permitted (apply_sets env e.sets r)
          | Action.Deny -> Denied
        else go rest
  in
  go m.entries

let eval_optional env m r =
  match m with None -> Permitted r | Some m -> eval env m r

let verdict_action = function Permitted _ -> Action.Permit | Denied -> Action.Deny

let pp_verdict ppf = function
  | Denied -> Format.pp_print_string ppf "DENY"
  | Permitted r -> Format.fprintf ppf "PERMIT %a" Route.pp r
