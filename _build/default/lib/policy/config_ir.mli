(** Whole-router configurations in the vendor-neutral IR.

    Both dialect front-ends lower to this representation; Campion, the
    topology verifier and the BGP simulator all operate on it. The scope
    matches the paper's: "behavior related to routing and forwarding"
    (interfaces, BGP, OSPF, routing policy), "ignoring potentially important
    features such as NTP servers". *)

open Netcore

type interface = {
  iface : Iface.t;
  address : (Ipv4.t * int) option;  (** Address and mask length. *)
  description : string option;
  shutdown : bool;
  acl_in : string option;  (** Ingress packet filter (by ACL name). *)
  acl_out : string option;
}

type neighbor = {
  addr : Ipv4.t;
  remote_as : int;
  local_as : int option;
      (** Per-neighbor local AS. In Junos, a neighbor (group) without
          [local-as] (or an enclosing [routing-options autonomous-system])
          draws a parse warning — the "Missing BGP local-as" error of
          Table 2. *)
  description : string option;
  import_policy : string option;
  export_policy : string option;
  next_hop_self : bool;
  send_community : bool;
}

type redistribution = { from_protocol : Route.source; policy : string option }

type bgp = {
  asn : int;
  router_id : Ipv4.t option;
  networks : Prefix.t list;
  neighbors : neighbor list;
  redistributions : redistribution list;
}

type ospf_interface = {
  iface : Iface.t;
  cost : int option;
  passive : bool;
  area : int;
}

type ospf = {
  process_id : int;
  router_id : Ipv4.t option;
  networks : (Prefix.t * int) list;  (** [network ... area n] statements. *)
  interfaces : ospf_interface list;
  redistributions : redistribution list;
}

type static_route = { destination : Prefix.t; next_hop : Ipv4.t }

type t = {
  hostname : string;
  interfaces : interface list;
  prefix_lists : Prefix_list.t list;
  community_lists : Community_list.t list;
  as_path_lists : As_path_list.t list;
  route_maps : Route_map.t list;
  acls : Acl.t list;
  statics : static_route list;
  bgp : bgp option;
  ospf : ospf option;
}

val empty : string -> t

val interface :
  ?address:Ipv4.t * int ->
  ?description:string ->
  ?shutdown:bool ->
  ?acl_in:string ->
  ?acl_out:string ->
  Iface.t ->
  interface

val neighbor :
  ?local_as:int ->
  ?description:string ->
  ?import_policy:string ->
  ?export_policy:string ->
  ?next_hop_self:bool ->
  ?send_community:bool ->
  Ipv4.t ->
  remote_as:int ->
  neighbor

val find_interface : t -> Iface.t -> interface option
val find_route_map : t -> string -> Route_map.t option
val find_prefix_list : t -> string -> Prefix_list.t option
val find_community_list : t -> string -> Community_list.t option
val find_as_path_list : t -> string -> As_path_list.t option
val find_acl : t -> string -> Acl.t option
val find_neighbor : bgp -> Ipv4.t -> neighbor option

val with_route_map : t -> Route_map.t -> t
(** Adds or replaces the map with the same name. *)

val connected_prefixes : t -> Prefix.t list
(** Subnets of all configured, non-shutdown interface addresses. *)

val undefined_references : t -> string list
(** Names referenced by route maps or BGP/OSPF blocks but not defined:
    dangling prefix lists, community lists, AS-path lists, route maps. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
