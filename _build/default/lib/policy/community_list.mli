(** Named standard community lists ([ip community-list standard]).

    An entry lists one or more communities; a route matches the entry when it
    carries {e all} of them. The list matches when its first matching entry
    permits (first-match semantics, implicit deny). *)

open Netcore

type entry = { action : Action.t; communities : Community.t list }
type t = { name : string; entries : entry list }

val make : string -> entry list -> t
val entry : ?action:Action.t -> Community.t list -> entry

val matches : t -> Community.Set.t -> bool
val matching_entry : t -> Community.Set.t -> entry option

val communities_mentioned : t -> Community.Set.t
(** Every community appearing in any entry (used to build the symbolic
    community universe). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
