open Netcore

type match_cond =
  | Match_prefix_list of string
  | Match_community_list of string
  | Match_as_path of string
  | Match_source_protocol of Route.source
  | Match_med of int
  | Match_tag of int

type set_action =
  | Set_med of int
  | Set_local_pref of int
  | Set_community of { communities : Community.t list; additive : bool }
  | Set_community_delete of string
  | Set_next_hop of Ipv4.t
  | Set_as_path_prepend of int list

type entry = {
  seq : int;
  action : Action.t;
  matches : match_cond list;
  sets : set_action list;
}

type t = { name : string; entries : entry list }

let make name entries =
  let entries = List.sort (fun a b -> Int.compare a.seq b.seq) entries in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a.seq = b.seq then
          invalid_arg
            (Printf.sprintf "Route_map.make: duplicate seq %d in %s" a.seq name);
        check rest
    | _ -> ()
  in
  check entries;
  { name; entries }

let entry ?(action = Action.Permit) ?(matches = []) ?(sets = []) seq =
  { seq; action; matches; sets }

let find_entry t seq = List.find_opt (fun e -> e.seq = seq) t.entries
let permit_all name = make name [ entry 10 ]
let deny_all name = make name [ entry ~action:Action.Deny 10 ]

let referenced f t =
  List.concat_map (fun e -> List.filter_map f e.matches) t.entries
  |> List.sort_uniq String.compare

let prefix_lists_referenced t =
  referenced (function Match_prefix_list n -> Some n | _ -> None) t

let community_lists_referenced t =
  let in_matches =
    referenced (function Match_community_list n -> Some n | _ -> None) t
  in
  let in_sets =
    List.concat_map
      (fun e ->
        List.filter_map
          (function Set_community_delete n -> Some n | _ -> None)
          e.sets)
      t.entries
  in
  List.sort_uniq String.compare (in_matches @ in_sets)

let as_path_lists_referenced t =
  referenced (function Match_as_path n -> Some n | _ -> None) t

let match_cond_to_string = function
  | Match_prefix_list n -> Printf.sprintf "match prefix-list %s" n
  | Match_community_list n -> Printf.sprintf "match community-list %s" n
  | Match_as_path n -> Printf.sprintf "match as-path %s" n
  | Match_source_protocol s -> Printf.sprintf "from protocol %s" (Route.source_to_string s)
  | Match_med m -> Printf.sprintf "match med %d" m
  | Match_tag t -> Printf.sprintf "match tag %d" t

let set_action_to_string = function
  | Set_med m -> Printf.sprintf "set med %d" m
  | Set_local_pref p -> Printf.sprintf "set local-preference %d" p
  | Set_community { communities; additive } ->
      Printf.sprintf "set community %s%s"
        (String.concat " " (List.map Community.to_string communities))
        (if additive then " additive" else "")
  | Set_community_delete n -> Printf.sprintf "set comm-list %s delete" n
  | Set_next_hop a -> Printf.sprintf "set next-hop %s" (Ipv4.to_string a)
  | Set_as_path_prepend asns ->
      Printf.sprintf "set as-path prepend %s"
        (String.concat " " (List.map string_of_int asns))

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "route-map %s:" t.name;
  List.iter
    (fun e ->
      Format.fprintf ppf "@ %s %d [%s] [%s]" (Action.to_string e.action) e.seq
        (String.concat "; " (List.map match_cond_to_string e.matches))
        (String.concat "; " (List.map set_action_to_string e.sets)))
    t.entries
