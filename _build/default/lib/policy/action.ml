type t = Permit | Deny

let to_string = function Permit -> "permit" | Deny -> "deny"

let of_string = function
  | "permit" -> Some Permit
  | "deny" -> Some Deny
  | _ -> None

let flip = function Permit -> Deny | Deny -> Permit
let equal a b = a = b
let pp ppf a = Format.pp_print_string ppf (to_string a)
