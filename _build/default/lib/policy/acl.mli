(** Extended IP access control lists in the vendor-neutral IR.

    An entry matches on protocol, source prefix, destination prefix and an
    optional destination-port range; entries apply first-match with an
    implicit deny, like route maps. ACLs attach to interfaces per
    direction. *)

open Netcore

type port_match = Any_port | Eq of int | Port_range of int * int

type proto_match = Any_proto | Proto of Packet.proto

type entry = {
  seq : int;
  action : Action.t;
  proto : proto_match;
  src : Prefix.t;  (** Source addresses inside this prefix. *)
  dst : Prefix.t;
  dst_port : port_match;
}

type t = { name : string; entries : entry list }

val make : string -> entry list -> t
(** Sorts by sequence number; raises [Invalid_argument] on duplicates. *)

val entry :
  ?action:Action.t ->
  ?proto:proto_match ->
  ?src:Prefix.t ->
  ?dst:Prefix.t ->
  ?dst_port:port_match ->
  int ->
  entry
(** Defaults: permit, any protocol, any source/destination ([0.0.0.0/0]),
    any port. *)

val entry_matches : entry -> Packet.t -> bool
val permits : t -> Packet.t -> bool
(** First matching entry decides; implicit deny. *)

val matching_entry : t -> Packet.t -> entry option
val port_match_to_string : port_match -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
