(** Concrete evaluation of route maps over route announcements.

    This is the executable semantics of the IR: given the defining
    environment (the named lists a map references), apply a route map to a
    concrete route. The symbolic engine is checked against this evaluator by
    property tests. *)

open Netcore

type env = {
  prefix_lists : Prefix_list.t list;
  community_lists : Community_list.t list;
  as_path_lists : As_path_list.t list;
}

val env_of_config : Config_ir.t -> env

val empty_env : env

type verdict = Permitted of Route.t | Denied

val match_cond : env -> Route_map.match_cond -> Route.t -> bool
(** A reference to an undefined list matches nothing. *)

val entry_matches : env -> Route_map.entry -> Route.t -> bool
(** All conditions of the entry hold (AND semantics; an empty condition list
    matches everything). *)

val apply_sets : env -> Route_map.set_action list -> Route.t -> Route.t

val eval : env -> Route_map.t -> Route.t -> verdict
(** First matching entry decides; no match is an implicit deny. *)

val eval_optional : env -> Route_map.t option -> Route.t -> verdict
(** [None] (no policy attached) permits the route unchanged. *)

val verdict_action : verdict -> Action.t
val pp_verdict : Format.formatter -> verdict -> unit
