(** Named prefix lists (Cisco [ip prefix-list] / Juniper prefix-list with
    route-filter modifiers), first-match semantics with implicit deny. *)

open Netcore

type entry = { seq : int; action : Action.t; range : Prefix_range.t }

type t = { name : string; entries : entry list }
(** Entries are kept sorted by sequence number. *)

val make : string -> entry list -> t
(** Sorts entries by [seq]; raises [Invalid_argument] on duplicate sequence
    numbers. *)

val entry : ?action:Action.t -> int -> Prefix_range.t -> entry
(** [entry seq range] with [action] defaulting to [Permit]. *)

val matches : t -> Prefix.t -> bool
(** First matching entry decides; an empty or exhausted list denies. *)

val matching_entry : t -> Prefix.t -> entry option

val permitted_ranges : t -> Prefix_range.t list
(** The ranges of permit entries, in order (used to build symbolic spaces;
    deny carve-outs are handled by the symbolic engine itself). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
