open Netcore

type entry = { action : Action.t; regex : string }
type t = { name : string; entries : entry list }

let make name entries = { name; entries }
let entry ?(action = Action.Permit) regex = { action; regex }

let matches t path =
  let rec go = function
    | [] -> false
    | e :: rest ->
        if As_path.matches ~regex:e.regex path then e.action = Action.Permit
        else go rest
  in
  go t.entries

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "as-path list %s:" t.name;
  List.iter
    (fun e -> Format.fprintf ppf "@ %s %S" (Action.to_string e.action) e.regex)
    t.entries
