open Netcore

type port_match = Any_port | Eq of int | Port_range of int * int
type proto_match = Any_proto | Proto of Packet.proto

type entry = {
  seq : int;
  action : Action.t;
  proto : proto_match;
  src : Prefix.t;
  dst : Prefix.t;
  dst_port : port_match;
}

type t = { name : string; entries : entry list }

let make name entries =
  let entries = List.sort (fun a b -> Int.compare a.seq b.seq) entries in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a.seq = b.seq then
          invalid_arg (Printf.sprintf "Acl.make: duplicate seq %d in %s" a.seq name);
        check rest
    | _ -> ()
  in
  check entries;
  { name; entries }

let entry ?(action = Action.Permit) ?(proto = Any_proto) ?(src = Prefix.default)
    ?(dst = Prefix.default) ?(dst_port = Any_port) seq =
  { seq; action; proto; src; dst; dst_port }

let port_matches pm port =
  match pm with
  | Any_port -> true
  | Eq p -> port = p
  | Port_range (lo, hi) -> lo <= port && port <= hi

let proto_matches pm proto =
  match pm with Any_proto -> true | Proto p -> p = proto

let entry_matches e (pkt : Packet.t) =
  proto_matches e.proto pkt.Packet.proto
  && Prefix.contains_addr e.src pkt.Packet.src
  && Prefix.contains_addr e.dst pkt.Packet.dst
  && port_matches e.dst_port pkt.Packet.dst_port

let matching_entry t pkt = List.find_opt (fun e -> entry_matches e pkt) t.entries

let permits t pkt =
  match matching_entry t pkt with Some e -> e.action = Action.Permit | None -> false

let port_match_to_string = function
  | Any_port -> "any"
  | Eq p -> Printf.sprintf "eq %d" p
  | Port_range (lo, hi) -> Printf.sprintf "range %d %d" lo hi

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "access-list %s:" t.name;
  List.iter
    (fun e ->
      Format.fprintf ppf "@ seq %d %s %s %s -> %s port %s" e.seq
        (Action.to_string e.action)
        (match e.proto with Any_proto -> "ip" | Proto p -> Packet.proto_to_string p)
        (Prefix.to_string e.src) (Prefix.to_string e.dst)
        (port_match_to_string e.dst_port))
    t.entries
