(** Plain-text table rendering for the benchmark harness and examples. *)

val table : title:string -> header:string list -> string list list -> string
(** Aligned columns, a rule under the header, the title above. *)

val kv : title:string -> (string * string) list -> string
(** A two-column key/value block. *)
