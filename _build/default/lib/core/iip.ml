type t = { id : string; text : string }

let defaults =
  [
    {
      id = "cfg-files-only";
      text =
        "Generate the contents of the .cfg configuration files only. Do not \
         generate interactive CLI commands, and do not use the keywords 'exit', \
         'end', 'configure terminal', 'ip routing', 'write', or 'conf t' anywhere \
         in the configuration.";
    };
    {
      id = "community-list-matching";
      text =
        "To match against a community in a route-map, first declare an ip \
         community-list that contains the community, and in the route-map match \
         using only that list. Never write a literal community such as '100:1' \
         directly in a 'match community' statement.";
    };
    {
      id = "additive-community";
      text =
        "When adding a community to a route with 'set community', always use the \
         'additive' keyword; without it the statement replaces every community \
         already present on the route.";
    };
  ]

let find id = List.find_opt (fun i -> i.id = id) defaults
let ids l = List.map (fun i -> i.id) l
let render l = String.concat "\n\n" (List.map (fun i -> i.text) l)
