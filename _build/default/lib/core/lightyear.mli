(** Lightyear-style modular proof of the global no-transit policy.

    Section 4.1 runs a whole-network BGP simulation as the final check, but
    notes that "the proof technique of Lightyear [9] could instead be used
    to ensure that the local policies imply the global one". This module
    does exactly that: instead of simulating, it composes the hub's ingress
    policy for ISP i with its egress policy toward ISP j symbolically and
    proves the surviving route space empty for every ordered pair (i, j) —
    together with the structural side conditions that make the composition
    the only transit path.

    The proof is sound (a [Proved] result implies the simulation-based check
    passes — a property the test suite enforces) but conservative: the
    over-approximations in {!Symbolic.Compose} can refute configurations the
    simulation accepts. *)

open Netcore
open Policy

type refutation = {
  from_spoke : string;
  to_spoke : string;
  example : Route.t option;
      (** A route that, entering the hub from [from_spoke], can leave
          toward [to_spoke]. *)
}

type result =
  | Proved
  | Refuted of refutation
  | Inapplicable of string
      (** A structural side condition failed (missing policy attachment,
          hub originating an ISP prefix, ...); the proof does not apply. *)

val prove_no_transit : Star.t -> (string * Config_ir.t) list -> result

val side_conditions : Star.t -> (string * Config_ir.t) list -> string list
(** The structural preconditions, empty when all hold: the hub has a
    session with every spoke, each hub session has both an import and an
    export policy attached and defined, and the hub does not itself
    originate any ISP network. *)
