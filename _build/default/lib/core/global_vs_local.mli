(** The Section 4.1 observation, as a quantified experiment: specifying the
    global no-transit policy at once makes the LLM oscillate between
    strategies under whole-network counterexample feedback, while local
    per-router policies converge.

    The global-prompting side is a calibrated stochastic model of the
    behaviour the paper reports ("GPT-4 was confused and kept oscillating
    between incorrect strategies"): each counterexample either flips the
    strategy (AS-path regex filtering vs. denying ISP prefixes at the
    customer router), leaves a still-wrong config, or — rarely — lands a
    correct one. The local side runs the real per-router VPP loop. *)

type strategy = As_path_regex | Deny_isp_prefixes

val strategy_to_string : strategy -> string

type global_run = {
  prompts : int;
  converged : bool;
  strategy_switches : int;
  final_strategy : strategy;
}

val run_global : ?seed:int -> ?max_prompts:int -> routers:int -> unit -> global_run

type comparison = {
  routers : int;
  runs : int;
  global_convergence_rate : float;
  global_mean_prompts : float;
  global_mean_switches : float;
  local_convergence_rate : float;
  local_mean_prompts : float;
}

val compare : ?runs:int -> ?base_seed:int -> routers:int -> unit -> comparison
