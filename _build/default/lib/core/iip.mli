(** The Initial Instruction Prompt (IIP) database.

    "We start each chat with a set of initial instruction prompts loaded
    from a database for avoiding common mistakes. The IIP database can be
    built and added by experts over time." The four defaults are the ones
    Section 4.2 reports supplying. *)

type t = { id : string; text : string }

val defaults : t list
(** cfg-files-only, no-cli-keywords advice folded into it,
    community-list-matching, additive-community. *)

val find : string -> t option
val ids : t list -> string list
val render : t list -> string
(** The concatenated instruction block that opens a chat. *)
