type summary = {
  runs : int;
  converged : int;
  mean_auto : float;
  mean_human : float;
  mean_leverage : float;
  stddev_leverage : float;
  min_leverage : float;
  max_leverage : float;
}

let summarize transcripts =
  let n = List.length transcripts in
  if n = 0 then
    {
      runs = 0;
      converged = 0;
      mean_auto = 0.;
      mean_human = 0.;
      mean_leverage = 0.;
      stddev_leverage = 0.;
      min_leverage = 0.;
      max_leverage = 0.;
    }
  else
    let fn = float_of_int n in
    let leverages = List.map Driver.leverage transcripts in
    let mean_leverage = List.fold_left ( +. ) 0. leverages /. fn in
    let stddev_leverage =
      sqrt
        (List.fold_left (fun acc l -> acc +. ((l -. mean_leverage) ** 2.)) 0. leverages
        /. fn)
    in
    {
      runs = n;
      converged =
        List.length (List.filter (fun (t : Driver.transcript) -> t.Driver.converged) transcripts);
      mean_auto =
        List.fold_left (fun acc (t : Driver.transcript) -> acc +. float_of_int t.Driver.auto_prompts) 0. transcripts
        /. fn;
      mean_human =
        List.fold_left (fun acc (t : Driver.transcript) -> acc +. float_of_int t.Driver.human_prompts) 0. transcripts
        /. fn;
      mean_leverage;
      stddev_leverage;
      min_leverage = List.fold_left min infinity leverages;
      max_leverage = List.fold_left max neg_infinity leverages;
    }

let translation_summary ?(runs = 20) ?(base_seed = 1000) ~cisco_text () =
  let transcripts =
    List.init runs (fun i ->
        (Driver.run_translation ~seed:(base_seed + i) ~cisco_text ()).Driver.transcript)
  in
  summarize transcripts

let no_transit_summary ?(runs = 20) ?(base_seed = 2000) ?(use_iips = true) ~routers () =
  let transcripts =
    List.init runs (fun i ->
        (Driver.run_no_transit ~seed:(base_seed + i) ~use_iips ~routers ()).Driver.transcript)
  in
  summarize transcripts

let pp_summary ppf s =
  Format.fprintf ppf
    "runs=%d converged=%d auto=%.1f human=%.1f leverage=%.1fx +/- %.1f (min %.1f, max %.1f)"
    s.runs s.converged s.mean_auto s.mean_human s.mean_leverage s.stddev_leverage
    s.min_leverage s.max_leverage
