(** The modularizer: turns the machine-readable topology plus the global
    no-transit intent into per-router natural-language prompts, per-router
    local policies (for the semantic verifier) and the reference
    configurations that define the synthesis task — "the user needs to
    decide and describe the 'roles' each node plays in satisfying the global
    spec".

    The local policy decomposition is the paper's: the hub adds a distinct
    community at the ingress from each ISP and drops routes carrying any
    other ISP's community at the egress to each ISP; spokes just announce
    their networks. *)

open Netcore
open Policy

type router_task = {
  router : string;
  prompt : string;  (** The NL prompt: topology slice plus local policy. *)
  correct : Config_ir.t;  (** The oracle configuration for the router. *)
  specs : Batfish.Search_route_policies.spec list;
      (** Local policies for the semantic verifier. *)
}

val ingress_map_name : string -> string
(** [TAG_R<k>]. *)

val egress_map_name : string -> string
(** [FILTER_COMM_OUT_R<k>]. *)

val community_list_name : string -> string
(** [CL_R<k>]. *)

val plan : Star.t -> router_task list
(** Hub first, then spokes in order. *)

val prepend_task : Star.t -> target:string -> prepend:int list -> router_task
(** The incremental-policy task of the paper's conclusion ("Can GPT-4 add a
    new policy incrementally without interfering with existing verified
    policy?"): starting from the verified hub, additionally prepend the
    given ASes to every route exported to [target]. The task's [correct]
    config applies the prepend in the egress map's final accepting term; its
    [specs] are the original hub specs {e plus} the new prepend requirement,
    so any interference with the verified no-transit policy is caught by the
    same verifier. Raises [Invalid_argument] when [target] is not a
    spoke. *)

val as_path_hub_config : Star.t -> Config_ir.t
(** The "innovative strategy" GPT-4 proposed under global prompting
    (Section 4.1): instead of community tagging, the hub filters its egress
    to each ISP with AS-path regular expressions that reject routes whose
    path already contains another ISP's AS. The strategy is semantically
    sound (a test shows the global policy holds) — the paper's point is that
    GPT-4 could not {e converge} on it under global counterexample
    feedback, not that it was wrong. *)

val compose : Star.t -> (string * Config_ir.t) list -> Batfish.Bgp_sim.network
(** The composer: assemble per-router configs into the simulation input
    ("puts back the pieces ... in a folder for Batfish"). *)

val no_transit_holds :
  Star.t -> (string * Config_ir.t) list -> (bool * string list)
(** The global check, via full BGP simulation: no ISP reaches another ISP's
    network, every ISP reaches the CUSTOMER network, and the hub reaches
    every ISP network. Returns the list of violations. *)

val transit_violations : Star.t -> (string * Config_ir.t) list -> string list
(** Only the isolation half of the global policy (the part the Lightyear
    proof covers): pairs of ISPs that can reach each other's networks. *)
