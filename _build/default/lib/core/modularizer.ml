open Netcore
open Policy

type router_task = {
  router : string;
  prompt : string;
  correct : Config_ir.t;
  specs : Batfish.Search_route_policies.spec list;
}

let suffix name =
  (* "R5" -> "R5"; map names embed the router name for readability. *)
  name

let ingress_map_name spoke = Printf.sprintf "TAG_%s" (suffix spoke)
let egress_map_name spoke = Printf.sprintf "FILTER_COMM_OUT_%s" (suffix spoke)
let community_list_name spoke = Printf.sprintf "CL_%s" (suffix spoke)

let interfaces_of_router (r : Topology.router) =
  List.map
    (fun (p : Topology.port) ->
      Config_ir.interface
        ~address:(p.Topology.addr, Prefix.len p.Topology.subnet)
        p.Topology.iface)
    r.Topology.ports

(* ------------------------------------------------------------------ *)
(* Oracle configurations                                               *)
(* ------------------------------------------------------------------ *)

let hub_config (star : Star.t) =
  let t = star.Star.topology in
  let hub = Topology.find_router_exn t star.Star.hub in
  let spokes = star.Star.spokes in
  let community s = Option.get (Star.community_of star s) in
  let community_lists =
    List.map
      (fun s -> Community_list.make (community_list_name s) [ Community_list.entry [ community s ] ])
      spokes
  in
  let tag_map s =
    Route_map.make (ingress_map_name s)
      [
        Route_map.entry
          ~sets:[ Route_map.Set_community { communities = [ community s ]; additive = true } ]
          10;
      ]
  in
  let filter_map s =
    (* One deny stanza per OTHER spoke's community (OR semantics), then a
       final permit. *)
    let others = List.filter (fun x -> x <> s) spokes in
    let denies =
      List.mapi
        (fun i other ->
          Route_map.entry ~action:Action.Deny
            ~matches:[ Route_map.Match_community_list (community_list_name other) ]
            ((i + 1) * 10))
        others
    in
    let final_permit = Route_map.entry ((List.length others + 1) * 10) in
    Route_map.make (egress_map_name s) (denies @ [ final_permit ])
  in
  let neighbors =
    List.map
      (fun (s : Topology.session) ->
        Config_ir.neighbor s.Topology.peer_addr ~remote_as:s.Topology.peer_asn
          ~import_policy:(ingress_map_name s.Topology.peer_name)
          ~export_policy:(egress_map_name s.Topology.peer_name))
      (Topology.sessions_of t star.Star.hub)
  in
  {
    (Config_ir.empty star.Star.hub) with
    Config_ir.interfaces = interfaces_of_router hub;
    community_lists;
    route_maps = List.map tag_map spokes @ List.map filter_map spokes;
    bgp =
      Some
        {
          Config_ir.asn = hub.Topology.asn;
          router_id = Some hub.Topology.router_id;
          networks = Topology.networks_of t star.Star.hub;
          neighbors;
          redistributions = [];
        };
  }

let spoke_config (star : Star.t) name =
  let t = star.Star.topology in
  let r = Topology.find_router_exn t name in
  let neighbors =
    List.map
      (fun (s : Topology.session) ->
        Config_ir.neighbor s.Topology.peer_addr ~remote_as:s.Topology.peer_asn)
      (Topology.sessions_of t name)
  in
  {
    (Config_ir.empty name) with
    Config_ir.interfaces = interfaces_of_router r;
    bgp =
      Some
        {
          Config_ir.asn = r.Topology.asn;
          router_id = Some r.Topology.router_id;
          networks = Topology.networks_of t name;
          neighbors;
          redistributions = [];
        };
  }

(* ------------------------------------------------------------------ *)
(* Local specs                                                         *)
(* ------------------------------------------------------------------ *)

let community_pred c =
  Symbolic.Pred.of_cube (Symbolic.Cube.make ~comms:(Symbolic.Comm_constr.require c) ())

let clean_pred communities =
  (* Routes carrying none of the given communities. *)
  let cube =
    List.fold_left
      (fun acc c ->
        match Symbolic.Comm_constr.inter acc (Symbolic.Comm_constr.forbid c) with
        | Some x -> x
        | None -> acc)
      Symbolic.Comm_constr.top communities
  in
  Symbolic.Pred.of_cube (Symbolic.Cube.make ~comms:cube ())

let hub_specs (star : Star.t) =
  let community s = Option.get (Star.community_of star s) in
  let spokes = star.Star.spokes in
  let tag_specs =
    List.map
      (fun s ->
        {
          Batfish.Search_route_policies.policy = ingress_map_name s;
          space = Symbolic.Pred.full;
          requirement = Batfish.Search_route_policies.Adds_community (community s);
          description = Printf.sprintf "every route learned from %s" s;
        })
      spokes
  in
  let filter_specs =
    List.concat_map
      (fun s ->
        let others = List.filter (fun x -> x <> s) spokes in
        List.map
          (fun other ->
            {
              Batfish.Search_route_policies.policy = egress_map_name s;
              space = community_pred (community other);
              requirement = Batfish.Search_route_policies.Denies;
              description =
                Printf.sprintf "routes carrying %s's community %s, at the egress to %s"
                  other
                  (Community.to_string (community other))
                  s;
            })
          others
        @ [
            {
              Batfish.Search_route_policies.policy = egress_map_name s;
              space = clean_pred (List.map community others);
              requirement = Batfish.Search_route_policies.Permits;
              description =
                Printf.sprintf
                  "routes carrying no other ISP's community, at the egress to %s" s;
            };
          ])
      spokes
  in
  tag_specs @ filter_specs

(* ------------------------------------------------------------------ *)
(* Prompts                                                             *)
(* ------------------------------------------------------------------ *)

let router_slice_description (star : Star.t) name =
  let t = star.Star.topology in
  let r = Topology.find_router_exn t name in
  let buf = Buffer.create 512 in
  let say fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  say "Generate the Cisco .cfg configuration file for router %s.\n" name;
  say "Router %s has AS number %d and router id %s.\n" name r.Topology.asn
    (Ipv4.to_string r.Topology.router_id);
  List.iter
    (fun (p : Topology.port) ->
      say "It has interface %s with IP address %s in subnet %s.\n"
        (Iface.cisco_name p.Topology.iface)
        (Ipv4.to_string p.Topology.addr)
        (Prefix.to_string p.Topology.subnet))
    r.Topology.ports;
  List.iter
    (fun (s : Topology.session) ->
      say "It has an eBGP session with router %s at IP address %s (AS %d).\n"
        s.Topology.peer_name
        (Ipv4.to_string s.Topology.peer_addr)
        s.Topology.peer_asn)
    (Topology.sessions_of t name);
  say "It should announce the networks: %s.\n"
    (String.concat ", " (List.map Prefix.to_string (Topology.networks_of t name)));
  Buffer.contents buf

let hub_policy_description (star : Star.t) =
  let buf = Buffer.create 512 in
  let say fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  say
    "Local policy (no-transit): at the ingress from each ISP router, add a \
     distinct community to every incoming route (use the 'additive' keyword); at \
     the egress to each ISP router, deny any route that carries any other ISP's \
     community, and permit everything else.\n";
  List.iter
    (fun s ->
      match Star.community_of star s with
      | Some c ->
          say
            "Use community %s for routes learned from %s: route-map %s on import, \
             route-map %s on export, community list %s.\n"
            (Community.to_string c) s (ingress_map_name s) (egress_map_name s)
            (community_list_name s)
      | None -> ())
    star.Star.spokes;
  Buffer.contents buf

let plan (star : Star.t) =
  let hub_task =
    {
      router = star.Star.hub;
      prompt = router_slice_description star star.Star.hub ^ hub_policy_description star;
      correct = hub_config star;
      specs = hub_specs star;
    }
  in
  let spoke_task name =
    {
      router = name;
      prompt =
        router_slice_description star name
        ^ "Local policy: announce your own networks over the BGP session; no \
           import or export filtering is required.\n";
      correct = spoke_config star name;
      specs = [];
    }
  in
  hub_task :: List.map spoke_task star.Star.spokes

let as_path_hub_config (star : Star.t) =
  let t = star.Star.topology in
  let hub = Topology.find_router_exn t star.Star.hub in
  let spokes = star.Star.spokes in
  let spoke_asn s = (Topology.find_router_exn t s).Topology.asn in
  (* One AS-path access list per spoke, matching any path through it. *)
  let as_path_lists =
    List.map
      (fun s ->
        As_path_list.make (Printf.sprintf "THRU_%s" s)
          [ As_path_list.entry (Printf.sprintf "_%d_" (spoke_asn s)) ])
      spokes
  in
  let filter_map s =
    let others = List.filter (fun x -> x <> s) spokes in
    let denies =
      List.mapi
        (fun i other ->
          Route_map.entry ~action:Action.Deny
            ~matches:[ Route_map.Match_as_path (Printf.sprintf "THRU_%s" other) ]
            ((i + 1) * 10))
        others
    in
    Route_map.make
      (Printf.sprintf "ASPATH_OUT_%s" s)
      (denies @ [ Route_map.entry ((List.length others + 1) * 10) ])
  in
  let neighbors =
    List.map
      (fun (sess : Topology.session) ->
        Config_ir.neighbor sess.Topology.peer_addr ~remote_as:sess.Topology.peer_asn
          ~export_policy:(Printf.sprintf "ASPATH_OUT_%s" sess.Topology.peer_name))
      (Topology.sessions_of t star.Star.hub)
  in
  {
    (Config_ir.empty star.Star.hub) with
    Config_ir.interfaces = interfaces_of_router hub;
    as_path_lists;
    route_maps = List.map filter_map spokes;
    bgp =
      Some
        {
          Config_ir.asn = hub.Topology.asn;
          router_id = Some hub.Topology.router_id;
          networks = Topology.networks_of t star.Star.hub;
          neighbors;
          redistributions = [];
        };
  }

let prepend_task (star : Star.t) ~target ~prepend =
  if not (List.mem target star.Star.spokes) then
    invalid_arg (Printf.sprintf "Modularizer.prepend_task: %s is not a spoke" target);
  let base = hub_config star in
  let map_name = egress_map_name target in
  let with_prepend =
    match Config_ir.find_route_map base map_name with
    | None -> base
    | Some m ->
        let entries = m.Route_map.entries in
        let updated =
          match List.rev entries with
          | last :: rest when last.Route_map.action = Action.Permit ->
              List.rev
                ({ last with
                   Route_map.sets =
                     last.Route_map.sets @ [ Route_map.Set_as_path_prepend prepend ] }
                :: rest)
          | _ -> entries
        in
        Config_ir.with_route_map base (Route_map.make map_name updated)
  in
  let others = List.filter (fun s -> s <> target) star.Star.spokes in
  let community s = Option.get (Star.community_of star s) in
  let new_spec =
    {
      Batfish.Search_route_policies.policy = map_name;
      space = clean_pred (List.map community others);
      requirement = Batfish.Search_route_policies.Prepends prepend;
      description =
        Printf.sprintf "routes exported to %s (those carrying no other ISP's community)"
          target;
    }
  in
  {
    router = star.Star.hub;
    prompt =
      Printf.sprintf
        "The network is already configured and verified for the no-transit policy. \
         Incrementally modify router %s's configuration so that every route \
         exported to %s has the AS path prepended with %s. Do not change the \
         behaviour of any existing policy: routes carrying another ISP's \
         community must still be denied at every egress.\n"
        star.Star.hub target
        (String.concat " " (List.map string_of_int prepend));
    correct = with_prepend;
    specs = hub_specs star @ [ new_spec ];
  }

let compose (star : Star.t) configs =
  { Batfish.Bgp_sim.topology = star.Star.topology; configs }

let transit_violations (star : Star.t) configs =
  let network = compose star configs in
  match Batfish.Bgp_sim.run network with
  | exception Batfish.Bgp_sim.Did_not_converge n ->
      [ Printf.sprintf "BGP simulation did not converge after %d iterations" n ]
  | ribs ->
      let violations = ref [] in
      let isp_prefix s = Option.get (Star.isp_prefix star s) in
      List.iter
        (fun s ->
          List.iter
            (fun other ->
              if
                other <> s
                && Batfish.Bgp_sim.reachable ribs ~router:s (isp_prefix other)
              then
                violations :=
                  Printf.sprintf "%s can reach %s's network %s" s other
                    (Prefix.to_string (isp_prefix other))
                  :: !violations)
            star.Star.spokes)
        star.Star.spokes;
      List.rev !violations

let no_transit_holds (star : Star.t) configs =
  let network = compose star configs in
  match Batfish.Bgp_sim.run network with
  | exception Batfish.Bgp_sim.Did_not_converge n ->
      (false, [ Printf.sprintf "BGP simulation did not converge after %d iterations" n ])
  | ribs ->
      let violations = ref [] in
      let bad fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
      let isp_prefix s = Option.get (Star.isp_prefix star s) in
      List.iter
        (fun s ->
          List.iter
            (fun other ->
              if
                other <> s
                && Batfish.Bgp_sim.reachable ribs ~router:s (isp_prefix other)
              then
                bad "%s can reach %s's network %s (transit through the customer!)" s
                  other
                  (Prefix.to_string (isp_prefix other)))
            star.Star.spokes;
          if not (Batfish.Bgp_sim.reachable ribs ~router:s star.Star.customer_prefix)
          then bad "%s cannot reach the CUSTOMER network" s;
          if
            not
              (Batfish.Bgp_sim.reachable ribs ~router:star.Star.hub (isp_prefix s))
          then bad "%s cannot reach ISP %s's network" star.Star.hub s)
        star.Star.spokes;
      (!violations = [], List.rev !violations)
