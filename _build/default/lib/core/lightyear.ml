open Netcore
open Policy

type refutation = {
  from_spoke : string;
  to_spoke : string;
  example : Route.t option;
}

type result =
  | Proved
  | Refuted of refutation
  | Inapplicable of string

let hub_session_policies (star : Star.t) hub_config spoke =
  let t = star.Star.topology in
  let session =
    List.find_opt
      (fun (s : Topology.session) -> s.Topology.peer_name = spoke)
      (Topology.sessions_of t star.Star.hub)
  in
  match (session, hub_config.Config_ir.bgp) with
  | Some s, Some b -> (
      match Config_ir.find_neighbor b s.Topology.peer_addr with
      | Some n -> Some (n.Config_ir.import_policy, n.Config_ir.export_policy)
      | None -> None)
  | _ -> None

let side_conditions (star : Star.t) configs =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (match List.assoc_opt star.Star.hub configs with
  | None -> bad "no configuration for hub %s" star.Star.hub
  | Some hub_config ->
      List.iter
        (fun spoke ->
          match hub_session_policies star hub_config spoke with
          | None -> bad "hub has no BGP session configured toward %s" spoke
          | Some (import, export) ->
              let check dir = function
                | None -> bad "hub session to %s has no %s policy" spoke dir
                | Some name ->
                    if Config_ir.find_route_map hub_config name = None then
                      bad "hub %s policy %s toward %s is undefined" dir name spoke
              in
              check "import" import;
              check "export" export)
        star.Star.spokes;
      (* The hub must not originate an ISP network itself. *)
      (match hub_config.Config_ir.bgp with
      | Some b ->
          List.iter
            (fun net ->
              List.iter
                (fun spoke ->
                  match Star.isp_prefix star spoke with
                  | Some p when Prefix.equal p net ->
                      bad "hub originates ISP %s's network %s" spoke (Prefix.to_string p)
                  | _ -> ())
                star.Star.spokes)
            b.Config_ir.networks
      | None -> bad "hub has no BGP process"));
  List.rev !problems

let prove_no_transit (star : Star.t) configs =
  match side_conditions star configs with
  | p :: _ -> Inapplicable p
  | [] -> (
      let hub_config = List.assoc star.Star.hub configs in
      let env = Eval.env_of_config hub_config in
      let policy_of name = Option.get (Config_ir.find_route_map hub_config name) in
      (* For every ordered spoke pair (i, j): any route entering from i and
         surviving the import policy must be denied by the export policy
         toward j. The input space is the full route space — no assumption
         about what ISPs announce. *)
      let refutation =
        List.find_map
          (fun from_spoke ->
            match hub_session_policies star hub_config from_spoke with
            | Some (Some import, _) ->
                List.find_map
                  (fun to_spoke ->
                    if to_spoke = from_spoke then None
                    else
                      match hub_session_policies star hub_config to_spoke with
                      | Some (_, Some export) ->
                          let escaping =
                            Symbolic.Compose.chain_permits ~env_a:env
                              ~map_a:(policy_of import) ~env_b:env
                              ~map_b:(policy_of export) Symbolic.Pred.full
                          in
                          if Symbolic.Pred.is_empty escaping then None
                          else
                            Some
                              {
                                from_spoke;
                                to_spoke;
                                example = Symbolic.Pred.sample ~env escaping;
                              }
                      | _ -> None)
                  star.Star.spokes
            | _ -> None)
          star.Star.spokes
      in
      match refutation with None -> Proved | Some r -> Refuted r)
