type strategy = As_path_regex | Deny_isp_prefixes

let strategy_to_string = function
  | As_path_regex -> "filter on AS-path regular expressions"
  | Deny_isp_prefixes -> "deny ISP prefixes at the customer router"

type global_run = {
  prompts : int;
  converged : bool;
  strategy_switches : int;
  final_strategy : strategy;
}

(* Transition model for one whole-network counterexample prompt. The rates
   encode the paper's qualitative report: oscillation dominates, staying on
   a wrong variant of the same strategy is common, outright convergence is
   rare. *)
let p_switch = 0.55
let p_converge = 0.01

let run_global ?(seed = 42) ?(max_prompts = 30) ~routers () =
  ignore routers;
  let rng = Llmsim.Rng.make seed in
  let rec go prompts switches strategy =
    if prompts >= max_prompts then
      { prompts; converged = false; strategy_switches = switches; final_strategy = strategy }
    else
      let roll = Llmsim.Rng.float rng in
      if roll < p_converge then
        {
          prompts = prompts + 1;
          converged = true;
          strategy_switches = switches;
          final_strategy = strategy;
        }
      else if roll < p_converge +. p_switch then
        let next =
          match strategy with
          | As_path_regex -> Deny_isp_prefixes
          | Deny_isp_prefixes -> As_path_regex
        in
        go (prompts + 1) (switches + 1) next
      else go (prompts + 1) switches strategy
  in
  go 0 0 As_path_regex

type comparison = {
  routers : int;
  runs : int;
  global_convergence_rate : float;
  global_mean_prompts : float;
  global_mean_switches : float;
  local_convergence_rate : float;
  local_mean_prompts : float;
}

let compare ?(runs = 20) ?(base_seed = 5000) ~routers () =
  let globals = List.init runs (fun i -> run_global ~seed:(base_seed + i) ~routers ()) in
  let locals =
    List.init runs (fun i ->
        (Driver.run_no_transit ~seed:(base_seed + i) ~routers ()).Driver.transcript)
  in
  let fruns = float_of_int runs in
  {
    routers;
    runs;
    global_convergence_rate =
      float_of_int (List.length (List.filter (fun g -> g.converged) globals)) /. fruns;
    global_mean_prompts =
      List.fold_left (fun acc g -> acc +. float_of_int g.prompts) 0. globals /. fruns;
    global_mean_switches =
      List.fold_left (fun acc g -> acc +. float_of_int g.strategy_switches) 0. globals
      /. fruns;
    local_convergence_rate =
      float_of_int
        (List.length (List.filter (fun (t : Driver.transcript) -> t.Driver.converged) locals))
      /. fruns;
    local_mean_prompts =
      List.fold_left
        (fun acc (t : Driver.transcript) ->
          acc +. float_of_int (t.Driver.auto_prompts + t.Driver.human_prompts))
        0. locals
      /. fruns;
  }
