lib/core/global_vs_local.ml: Driver List Llmsim
