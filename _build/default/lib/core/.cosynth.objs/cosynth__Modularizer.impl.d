lib/core/modularizer.ml: Action As_path_list Batfish Buffer Community Community_list Config_ir Iface Ipv4 List Netcore Option Policy Prefix Printf Route_map Star String Symbolic Topology
