lib/core/global_vs_local.mli:
