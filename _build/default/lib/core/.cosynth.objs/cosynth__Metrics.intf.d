lib/core/metrics.mli: Driver Format
