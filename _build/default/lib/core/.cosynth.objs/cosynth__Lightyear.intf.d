lib/core/lightyear.mli: Config_ir Netcore Policy Route Star
