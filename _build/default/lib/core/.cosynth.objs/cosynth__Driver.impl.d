lib/core/driver.ml: Batfish Buffer Campion Cisco Config_ir Humanizer Iip Juniper Lightyear List Llmsim Modularizer Netcore Option Policy Printf String Topoverify
