lib/core/iip.ml: List String
