lib/core/driver.mli: Config_ir Lightyear Llmsim Policy
