lib/core/metrics.ml: Driver Format List
