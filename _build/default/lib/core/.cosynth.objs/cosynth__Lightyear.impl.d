lib/core/lightyear.ml: Config_ir Eval List Netcore Option Policy Prefix Printf Route Star Symbolic Topology
