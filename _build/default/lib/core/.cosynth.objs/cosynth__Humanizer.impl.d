lib/core/humanizer.ml: Batfish Campion Community Diag Error_class Fault Iface Ipv4 List Llmsim Netcore Option Packet Policy Prefix Printf Route String Topoverify
