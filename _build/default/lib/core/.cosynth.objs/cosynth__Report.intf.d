lib/core/report.mli:
