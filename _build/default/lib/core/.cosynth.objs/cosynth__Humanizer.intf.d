lib/core/humanizer.mli: Batfish Campion Diag Llmsim Netcore Topoverify
