lib/core/report.ml: Buffer List Printf String
