lib/core/iip.mli:
