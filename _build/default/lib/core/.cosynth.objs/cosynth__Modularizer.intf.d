lib/core/modularizer.mli: Batfish Config_ir Netcore Policy Star
