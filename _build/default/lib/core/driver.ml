open Policy

type origin = Auto | Human

type event = { origin : origin; prompt : string; note : string }

type transcript = {
  events : event list;
  human_prompts : int;
  auto_prompts : int;
  converged : bool;
  rounds : int;
}

let leverage t =
  if t.human_prompts = 0 then float_of_int t.auto_prompts
  else float_of_int t.auto_prompts /. float_of_int t.human_prompts

let transcript_to_markdown ~title t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "# %s\n\n" title);
  Buffer.add_string buf
    (Printf.sprintf
       "%d automated prompts, %d human prompts — leverage %.1fx; converged: %b\n\n"
       t.auto_prompts t.human_prompts (leverage t) t.converged);
  List.iteri
    (fun i (e : event) ->
      let who = match e.origin with Auto -> "automated" | Human -> "HUMAN" in
      Buffer.add_string buf (Printf.sprintf "## %d. [%s] (%s)\n\n" (i + 1) who e.note);
      Buffer.add_string buf (String.trim e.prompt);
      Buffer.add_string buf "\n\n")
    t.events;
  Buffer.contents buf

(* Mutable loop bookkeeping shared by both use cases. *)
type loop_state = {
  mutable events : event list;  (* reversed *)
  mutable human : int;
  mutable auto : int;
  mutable rounds : int;
  mutable stalls : (string * int) list;  (* prompt text -> attempts *)
  max_prompts : int;
  stall_threshold : int;
}

let new_loop ~max_prompts ~stall_threshold =
  {
    events = [];
    human = 0;
    auto = 0;
    rounds = 0;
    stalls = [];
    max_prompts;
    stall_threshold;
  }

let budget_left st = st.auto + st.human < st.max_prompts

let record st origin prompt note =
  st.events <- { origin; prompt; note } :: st.events;
  match origin with Auto -> st.auto <- st.auto + 1 | Human -> st.human <- st.human + 1

(* Send a humanized prompt; escalate to a human prompt after
   [stall_threshold] automated attempts at the same prompt text. Returns the
   origin used, or [None] when the finding has no actionable reference and
   has stalled (the loop should give up on it). *)
let send st (chat : Llmsim.Chat.t) (prompt : Humanizer.prompt) ~note =
  let attempts = Option.value ~default:0 (List.assoc_opt prompt.Humanizer.text st.stalls) in
  if attempts >= st.stall_threshold then
    if prompt.Humanizer.refs = [] then None
    else begin
      let human_text = "[human] " ^ prompt.Humanizer.text in
      Llmsim.Chat.respond chat
        { Llmsim.Chat.text = human_text; refs = prompt.Humanizer.refs; strength = Llmsim.Chat.Human };
      record st Human human_text note;
      st.stalls <- List.remove_assoc prompt.Humanizer.text st.stalls;
      Some Human
    end
  else begin
    Llmsim.Chat.respond chat
      {
        Llmsim.Chat.text = prompt.Humanizer.text;
        refs = prompt.Humanizer.refs;
        strength = Llmsim.Chat.Auto;
      };
    record st Auto prompt.Humanizer.text note;
    st.stalls <-
      (prompt.Humanizer.text, attempts + 1) :: List.remove_assoc prompt.Humanizer.text st.stalls;
    Some Auto
  end

let finish st converged =
  {
    events = List.rev st.events;
    human_prompts = st.human;
    auto_prompts = st.auto;
    converged;
    rounds = st.rounds;
  }

(* ------------------------------------------------------------------ *)
(* Class outcome tracking (Table 2)                                    *)
(* ------------------------------------------------------------------ *)

type class_outcome = {
  class_ : Llmsim.Error_class.t;
  fixed_by_generated_prompt : bool;
}

type tracker = {
  mutable seen : Llmsim.Error_class.t list;
  mutable tainted : Llmsim.Error_class.t list;
      (* needed a human prompt, or morphed into another class *)
}

let track_seen tr (chat : Llmsim.Chat.t) =
  List.iter
    (fun (f : Llmsim.Fault.t) ->
      if not (List.mem f.Llmsim.Fault.class_ tr.seen) then
        tr.seen <- tr.seen @ [ f.Llmsim.Fault.class_ ])
    (Llmsim.Chat.live_faults chat)

let taint tr cls = if not (List.mem cls tr.tainted) then tr.tainted <- tr.tainted @ [ cls ]

let outcomes_of tr (chat : Llmsim.Chat.t) =
  let still_live cls =
    List.exists
      (fun (f : Llmsim.Fault.t) -> Llmsim.Error_class.equal f.Llmsim.Fault.class_ cls)
      (Llmsim.Chat.live_faults chat)
  in
  List.map
    (fun cls ->
      {
        class_ = cls;
        fixed_by_generated_prompt =
          (not (List.mem cls tr.tainted))
          && (Llmsim.Error_class.profile cls).Llmsim.Error_class.successor = None
          && not (still_live cls);
      })
    tr.seen

(* A morphing class (successor present) never counts as fixed by its own
   generated prompt; mark it tainted as soon as it is seen. *)
let pre_taint tr =
  List.iter
    (fun cls ->
      if (Llmsim.Error_class.profile cls).Llmsim.Error_class.successor <> None then taint tr cls)
    tr.seen

(* ------------------------------------------------------------------ *)
(* Use case 1: translation                                             *)
(* ------------------------------------------------------------------ *)

type translation_result = {
  transcript : transcript;
  final_text : string;
  outcomes : class_outcome list;
  verified : bool;
}

let first_error diags = List.find_opt Netcore.Diag.is_error diags

let run_translation ?(seed = 42) ?(force_faults = []) ?(suppress_random = false)
    ?(max_prompts = 200) ?(stall_threshold = 4) ?(quality = 0.0) ~cisco_text () =
  let cisco_ir, _ = Cisco.Parser.parse cisco_text in
  let correct = Juniper.Translate.of_cisco_ir cisco_ir in
  let chat =
    Llmsim.Chat.start ~seed ~force_faults ~suppress_random ~regression_rate:0.2 ~quality
      Llmsim.Fault.Junos_cfg ~correct
  in
  let st = new_loop ~max_prompts ~stall_threshold in
  let tr = { seen = []; tainted = [] } in
  (* The initial task prompt ("translate the configuration into an
     equivalent Juniper configuration") is the first human prompt. *)
  record st Human "Translate the configuration into an equivalent Juniper configuration."
    "initial task prompt";
  track_seen tr chat;
  let rec loop () =
    st.rounds <- st.rounds + 1;
    track_seen tr chat;
    if not (budget_left st) then finish st false
    else
      let draft = Llmsim.Chat.draft chat in
      let ir, diags = Batfish.Parse_check.check Batfish.Parse_check.Junos draft in
      match first_error diags with
      | Some diag -> (
          let prompt = Humanizer.of_diag diag in
          match send st chat prompt ~note:"syntax" with
          | Some origin ->
              List.iter
                (fun (f : Llmsim.Fault.t) ->
                  if origin = Human then taint tr f.Llmsim.Fault.class_)
                prompt.Humanizer.refs;
              loop ()
          | None -> finish st false)
      | None -> (
          match Campion.Differ.compare ~original:cisco_ir ~translation:ir with
          | [] -> finish st true
          | finding :: _ -> (
              let prompt = Humanizer.of_campion finding in
              match send st chat prompt ~note:"campion" with
              | Some origin ->
                  List.iter
                    (fun (f : Llmsim.Fault.t) ->
                      if origin = Human then taint tr f.Llmsim.Fault.class_)
                    prompt.Humanizer.refs;
                  loop ()
              | None -> finish st false))
  in
  let transcript = loop () in
  pre_taint tr;
  let final_text = Llmsim.Chat.draft chat in
  let verified =
    transcript.converged
    &&
    let ir, diags = Batfish.Parse_check.check Batfish.Parse_check.Junos final_text in
    first_error diags = None && Campion.Differ.compare ~original:cisco_ir ~translation:ir = []
  in
  { transcript; final_text; outcomes = outcomes_of tr chat; verified }

let table2_faults ~cisco_text =
  let cisco_ir, _ = Cisco.Parser.parse cisco_text in
  let correct = Juniper.Translate.of_cisco_ir cisco_ir in
  let opportunities = Llmsim.Fault.opportunities Llmsim.Fault.Junos_cfg correct in
  let first cls =
    List.find_opt
      (fun (f : Llmsim.Fault.t) -> Llmsim.Error_class.equal f.Llmsim.Fault.class_ cls)
      opportunities
  in
  List.filter_map first
    [
      Llmsim.Error_class.Missing_local_as;
      Llmsim.Error_class.Missing_import_policy;
      Llmsim.Error_class.Missing_export_policy;
      Llmsim.Error_class.Ospf_cost_wrong;
      Llmsim.Error_class.Ospf_passive_wrong;
      Llmsim.Error_class.Wrong_med;
      Llmsim.Error_class.Prefix_range_dropped;
      Llmsim.Error_class.Redistribution_unscoped;
    ]

(* ------------------------------------------------------------------ *)
(* Use case 2: no-transit synthesis                                    *)
(* ------------------------------------------------------------------ *)

type final_check = Simulate | Prove | Both

type synthesis_result = {
  transcript : transcript;
  configs : (string * Config_ir.t) list;
  per_router_verified : (string * bool) list;
  global_ok : bool;
  global_violations : string list;
  proof : Lightyear.result option;
}

let run_no_transit ?(seed = 42) ?(use_iips = true) ?(max_prompts = 400)
    ?(stall_threshold = 2) ?(final_check = Simulate) ~routers () =
  let star = Netcore.Star.make ~routers in
  let tasks = Modularizer.plan star in
  let iips = if use_iips then Iip.ids Iip.defaults else [] in
  let st = new_loop ~max_prompts ~stall_threshold in
  record st Human
    (Printf.sprintf
       "Make a %d-router star network follow the no-transit policy: no two ISPs \
        should be able to reach each other, but all ISPs should reach the \
        CUSTOMER and vice versa."
       routers)
    "initial task prompt";
  (* One local verification pass for a router: syntax, then topology, then
     local policy semantics. *)
  let local_loop (task : Modularizer.router_task) chat =
    let rec loop () =
      st.rounds <- st.rounds + 1;
      if not (budget_left st) then (Llmsim.Chat.draft chat, false)
      else
        let draft = Llmsim.Chat.draft chat in
        let ir, diags = Batfish.Parse_check.check Batfish.Parse_check.Cisco_ios draft in
        match first_error diags with
        | Some diag -> (
            match send st chat (Humanizer.of_diag diag) ~note:"syntax" with
            | Some _ -> loop ()
            | None -> (draft, false))
        | None -> (
            match
              Topoverify.Verifier.check star.Netcore.Star.topology
                ~router:task.Modularizer.router ir
            with
            | finding :: _ -> (
                match send st chat (Humanizer.of_topology finding) ~note:"topology" with
                | Some _ -> loop ()
                | None -> (draft, false))
            | [] -> (
                let violations =
                  List.filter_map
                    (fun (_, outcome) ->
                      match outcome with
                      | Batfish.Search_route_policies.Violated v -> Some v
                      | Batfish.Search_route_policies.Holds
                      | Batfish.Search_route_policies.Policy_missing ->
                          None)
                    (Batfish.Search_route_policies.check_all ir task.Modularizer.specs)
                in
                match violations with
                | [] -> (draft, true)
                | v :: _ -> (
                    match send st chat (Humanizer.of_violation v) ~note:"semantic" with
                    | Some _ -> loop ()
                    | None -> (draft, false))))
    in
    loop ()
  in
  let synthesize_router idx (task : Modularizer.router_task) =
    let chat =
      Llmsim.Chat.start ~seed:(seed + (idx * 7919)) ~iips Llmsim.Fault.Cisco_cfg
        ~correct:task.Modularizer.correct
    in
    (* The modularizer's per-router prompt is machine-generated: automated. *)
    record st Auto task.Modularizer.prompt
      (Printf.sprintf "modularizer prompt for %s" task.Modularizer.router);
    let final_draft, ok = local_loop task chat in
    let ir, _ = Cisco.Parser.parse final_draft in
    (task.Modularizer.router, chat, ir, ok)
  in
  let results = List.mapi synthesize_router tasks in
  let all_ok = List.for_all (fun (_, _, _, ok) -> ok) results in
  let configs_of results = List.map (fun (name, _, ir, _) -> (name, ir)) results in
  let check_global configs =
    let sim () = Modularizer.no_transit_holds star configs in
    let prove () = Lightyear.prove_no_transit star configs in
    let describe = function
      | Lightyear.Proved -> []
      | Lightyear.Refuted r ->
          [
            Printf.sprintf "modular proof refuted: a route from %s can reach %s"
              r.Lightyear.from_spoke r.Lightyear.to_spoke;
          ]
      | Lightyear.Inapplicable why -> [ "proof inapplicable: " ^ why ]
    in
    match final_check with
    | Simulate -> (sim (), None)
    | Prove ->
        let p = prove () in
        ((p = Lightyear.Proved, describe p), Some p)
    | Both ->
        let ok_sim, v_sim = sim () in
        let p = prove () in
        ((ok_sim && p = Lightyear.Proved, v_sim @ describe p), Some p)
  in
  (* Global phase: when every router verifies locally but the whole-network
     check fails, feed the counterexample back to the hub conversation
     (crossed attachments are the only fault that survives local
     verification) and re-verify the hub locally after each prompt. *)
  let rec global_phase results rounds =
    let (ok, violations), proof = check_global (configs_of results) in
    if ok || rounds = 0 || not (budget_left st) then (results, ok, violations, proof)
    else
      let hub_task = List.hd tasks in
      match results with
      | (hub_name, hub_chat, _, _) :: rest when hub_name = star.Netcore.Star.hub -> (
          let prompt = Humanizer.of_global_violations ~hub:hub_name violations in
          match send st hub_chat prompt ~note:"global" with
          | None -> (results, ok, violations, proof)
          | Some _ ->
              let draft, local_ok = local_loop hub_task hub_chat in
              let ir, _ = Cisco.Parser.parse draft in
              global_phase ((hub_name, hub_chat, ir, local_ok) :: rest) (rounds - 1))
      | _ -> (results, ok, violations, proof)
  in
  let results, global_ok, global_violations, proof =
    if all_ok then global_phase results 12
    else (results, false, [ "per-router verification incomplete" ], None)
  in
  let per_router_verified = List.map (fun (name, _, _, ok) -> (name, ok)) results in
  {
    transcript = finish st (List.for_all snd per_router_verified && global_ok);
    configs = configs_of results;
    per_router_verified;
    global_ok;
    global_violations;
    proof;
  }

(* ------------------------------------------------------------------ *)
(* Extension: incremental policy addition                              *)
(* ------------------------------------------------------------------ *)

type incremental_result = {
  inc_transcript : transcript;
  hub_config : Config_ir.t;
  specs_hold : bool;
  global_ok : bool;
  interference_caught : bool;
}

let run_incremental ?(seed = 42) ?(max_prompts = 100) ?(stall_threshold = 2)
    ?(target = "R2") ?(prepend = [ 1; 1 ]) ~routers () =
  let star = Netcore.Star.make ~routers in
  let task = Modularizer.prepend_task star ~target ~prepend in
  let base_configs =
    List.map
      (fun (t : Modularizer.router_task) -> (t.Modularizer.router, t.Modularizer.correct))
      (Modularizer.plan star)
  in
  let st = new_loop ~max_prompts ~stall_threshold in
  let interference = ref false in
  record st Human task.Modularizer.prompt "incremental task prompt";
  (* The LLM edits an already-correct configuration: only the edit-related
     mistake classes apply. *)
  let edit_classes cls =
    match cls with
    | Llmsim.Error_class.Policy_inserted_early | Llmsim.Error_class.Wrong_policy_modified ->
        true
    | _ -> false
  in
  let chat =
    Llmsim.Chat.start ~seed ~class_filter:edit_classes Llmsim.Fault.Cisco_cfg
      ~correct:task.Modularizer.correct
  in
  let rec loop () =
    st.rounds <- st.rounds + 1;
    if not (budget_left st) then false
    else
      let draft = Llmsim.Chat.draft chat in
      let ir, diags = Batfish.Parse_check.check Batfish.Parse_check.Cisco_ios draft in
      match first_error diags with
      | Some diag -> (
          match send st chat (Humanizer.of_diag diag) ~note:"syntax" with
          | Some _ -> loop ()
          | None -> false)
      | None -> (
          let violations =
            List.filter_map
              (fun (_, outcome) ->
                match outcome with
                | Batfish.Search_route_policies.Violated v -> Some v
                | Batfish.Search_route_policies.Holds
                | Batfish.Search_route_policies.Policy_missing ->
                    None)
              (Batfish.Search_route_policies.check_all ir task.Modularizer.specs)
          in
          match violations with
          | [] -> true
          | v :: _ -> (
              (match v.Batfish.Search_route_policies.spec.Batfish.Search_route_policies.requirement with
              | Batfish.Search_route_policies.Denies
              | Batfish.Search_route_policies.Permits
              | Batfish.Search_route_policies.Adds_community _ ->
                  (* A pre-existing local policy broke: the verifier caught
                     interference with the verified configuration. *)
                  interference := true
              | Batfish.Search_route_policies.Prepends _ -> ());
              match send st chat (Humanizer.of_violation v) ~note:"semantic" with
              | Some _ -> loop ()
              | None -> false))
  in
  let specs_hold = loop () in
  let hub_config, _ = Cisco.Parser.parse (Llmsim.Chat.draft chat) in
  let configs =
    (star.Netcore.Star.hub, hub_config)
    :: List.remove_assoc star.Netcore.Star.hub base_configs
  in
  let global_ok = specs_hold && fst (Modularizer.no_transit_holds star configs) in
  {
    inc_transcript = finish st (specs_hold && global_ok);
    hub_config;
    specs_hold;
    global_ok;
    interference_caught = !interference;
  }
