(** Leverage statistics over many seeded runs. *)

type summary = {
  runs : int;
  converged : int;
  mean_auto : float;
  mean_human : float;
  mean_leverage : float;
  stddev_leverage : float;
  min_leverage : float;
  max_leverage : float;
}

val summarize : Driver.transcript list -> summary

val translation_summary :
  ?runs:int -> ?base_seed:int -> cisco_text:string -> unit -> summary

val no_transit_summary :
  ?runs:int -> ?base_seed:int -> ?use_iips:bool -> routers:int -> unit -> summary

val pp_summary : Format.formatter -> summary -> unit
