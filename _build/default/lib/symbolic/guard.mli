(** Compilation of IR match conditions to symbolic predicates. *)

open Policy

val compile_prefix_list : Prefix_list.t -> Prefix_space.t
(** The set of prefixes the list permits, honouring first-match order and
    interleaved deny entries. *)

val compile_community_list : Community_list.t -> Comm_constr.t list
(** The set of community-sets the list permits, as a union of cubes. *)

val compile_match : Eval.env -> Route_map.match_cond -> Pred.t
(** A reference to an undefined list compiles to the empty predicate,
    matching the concrete evaluator. *)

val compile_entry_guard : Eval.env -> Route_map.entry -> Pred.t
(** Conjunction of the entry's conditions (AND semantics); the empty
    condition list compiles to the full space. *)
