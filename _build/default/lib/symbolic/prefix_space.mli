(** Exact sets of IPv4 prefixes.

    A prefix space is a finite union of atoms [(base, lens)], each denoting
    "all prefixes subsumed by [base] whose length lies in [lens]". The
    algebra (union, intersection, difference) is exact, which is what lets
    the verifiers produce counterexample prefixes instead of approximations.
    This mirrors the prefix-space representation used by Batfish and
    Campion. *)

type atom = private { base : Netcore.Prefix.t; lens : Len_set.t }
(** Invariant: [lens] is non-empty and contains only lengths
    [>= Prefix.len base]. *)

type t
(** A union of atoms. Atoms may overlap; all operations remain exact. *)

val empty : t
val full : t
(** Every prefix: [0.0.0.0/0] with lengths 0..32. *)

val atom : Netcore.Prefix.t -> Len_set.t -> t
(** Drops lengths shorter than the base; empty result allowed. *)

val exact : Netcore.Prefix.t -> t
(** The space containing exactly one prefix. *)

val of_range : Netcore.Prefix_range.t -> t
val of_ranges : Netcore.Prefix_range.t list -> t

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val is_empty : t -> bool
val mem : Netcore.Prefix.t -> t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool

val sample : t -> Netcore.Prefix.t option
(** Some concrete prefix in the space, [None] when empty. Deterministic. *)

val atoms : t -> atom list
val size_hint : t -> int
(** Number of atoms (a complexity measure for benchmarks). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
