(** Community-membership cubes.

    A cube requires a set of communities to be present and another set to be
    absent; communities mentioned in neither are unconstrained. Standard
    community lists compile to unions of cubes; the AND/OR confusion of
    Section 4.2 is visible here as the difference between one cube with two
    required communities and a union of two single-community cubes. *)

open Netcore

type t = private { must : Community.Set.t; must_not : Community.Set.t }
(** Invariant: [must] and [must_not] are disjoint. *)

val top : t
(** No constraint. *)

val make : must:Community.Set.t -> must_not:Community.Set.t -> t option
(** [None] when the two sets intersect (unsatisfiable). *)

val require : Community.t -> t
val forbid : Community.t -> t

val inter : t -> t -> t option
val complement : t -> t list
(** Union of cubes covering everything outside [t]. *)

val satisfies : Community.Set.t -> t -> bool
val sample : t -> Community.Set.t
(** The smallest satisfying set ([must] itself). *)

val is_top : t -> bool
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
