(** Normalized effect of a route-map entry's set actions, for comparing the
    transforms two policies apply to the same region of route space (how
    Campion detects "setting wrong BGP MED value" or a community being
    replaced instead of added). *)

open Netcore

type t = {
  med : int option;
  local_pref : int option;
  comm_base : Community.Set.t option;
      (** [Some s]: communities were replaced, final set starts from [s];
          [None]: the route's own communities are kept. *)
  comm_added : Community.Set.t;
  comm_deleted : string list;  (** Community lists whose matches are deleted. *)
  next_hop : Ipv4.t option;
  prepend : int list;
}

val identity : t
val of_sets : Policy.Route_map.set_action list -> t

val equal : t -> t -> bool

val differing_fields : t -> t -> (string * string * string) list
(** [(attribute, value_in_first, value_in_second)] for each field where the
    two effects disagree; empty when equal. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
