open Netcore

type t = { must : Community.Set.t; must_not : Community.Set.t }

let top = { must = Community.Set.empty; must_not = Community.Set.empty }

let make ~must ~must_not =
  if Community.Set.is_empty (Community.Set.inter must must_not) then
    Some { must; must_not }
  else None

let require c = { must = Community.Set.singleton c; must_not = Community.Set.empty }
let forbid c = { must = Community.Set.empty; must_not = Community.Set.singleton c }

let inter a b =
  make
    ~must:(Community.Set.union a.must b.must)
    ~must_not:(Community.Set.union a.must_not b.must_not)

let complement t =
  let negated_must =
    List.map (fun c -> forbid c) (Community.Set.elements t.must)
  in
  let negated_must_not =
    List.map (fun c -> require c) (Community.Set.elements t.must_not)
  in
  negated_must @ negated_must_not

let satisfies set t =
  Community.Set.subset t.must set
  && Community.Set.is_empty (Community.Set.inter t.must_not set)

let sample t = t.must
let is_top t = Community.Set.is_empty t.must && Community.Set.is_empty t.must_not
let equal a b = Community.Set.equal a.must b.must && Community.Set.equal a.must_not b.must_not

let to_string t =
  if is_top t then "*"
  else
    let plus = List.map (fun c -> "+" ^ Community.to_string c) (Community.Set.elements t.must) in
    let minus =
      List.map (fun c -> "-" ^ Community.to_string c) (Community.Set.elements t.must_not)
    in
    String.concat " " (plus @ minus)

let pp ppf t = Format.pp_print_string ppf (to_string t)
