type t = Any | Eq of int | Neq of int list

let any = Any
let eq n = Eq n

let neq = function
  | [] -> Any
  | l -> Neq (List.sort_uniq Int.compare l)

let inter a b =
  match (a, b) with
  | Any, x | x, Any -> Some x
  | Eq m, Eq n -> if m = n then Some (Eq m) else None
  | Eq m, Neq l | Neq l, Eq m -> if List.mem m l then None else Some (Eq m)
  | Neq l, Neq l' -> Some (neq (l @ l'))

let complement = function
  | Any -> []
  | Eq n -> [ Neq [ n ] ]
  | Neq l -> List.map (fun n -> Eq n) l

let sample = function
  | Any -> 0
  | Eq n -> n
  | Neq l ->
      let rec first n = if List.mem n l then first (n + 1) else n in
      first 0

let satisfies v = function Any -> true | Eq n -> v = n | Neq l -> not (List.mem v l)
let is_any = function Any -> true | _ -> false
let equal a b = a = b

let to_string = function
  | Any -> "*"
  | Eq n -> Printf.sprintf "=%d" n
  | Neq l -> "!=" ^ String.concat "," (List.map string_of_int l)

let pp ppf t = Format.pp_print_string ppf (to_string t)
