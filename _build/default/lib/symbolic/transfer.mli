(** Symbolic transfer function of a route map: a partition of the route
    space into regions, each with the action and effect applied there. *)

open Policy

type region = {
  space : Pred.t;
  action : Action.t;
  effect_ : Effects.t;
  seq : int option;  (** [None] for the implicit-deny region. *)
}

val compile : Eval.env -> Route_map.t -> region list
(** Regions are pairwise disjoint and cover the full space; the last region
    is the implicit deny. Empty regions (shadowed entries) are dropped. *)

val compile_optional : Eval.env -> Route_map.t option -> region list
(** [None] (no policy attached) is a single permit-everything region. *)

val action_on : Eval.env -> Route_map.t -> Pred.t -> (Action.t * region) list
(** The regions intersecting a query space, with the intersection
    restricted to it. *)

val pp_region : Format.formatter -> region -> unit
