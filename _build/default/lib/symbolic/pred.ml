open Netcore

type t = Cube.t list

let empty = []
let full = [ Cube.full ]
let of_cube c = if Cube.is_empty c then [] else [ c ]
let of_cubes cs = List.concat_map of_cube cs
let union a b = a @ b

let inter a b =
  List.concat_map (fun x -> List.filter_map (fun y -> Cube.inter x y) b) a

let diff a b =
  List.fold_left (fun acc y -> List.concat_map (fun x -> Cube.diff x y) acc) a b

let is_empty t = List.for_all Cube.is_empty t

let satisfies ~env r t = List.exists (fun c -> Cube.satisfies ~env r c) t

let default_universe =
  [
    As_path.empty;
    As_path.of_list [ 65001 ];
    As_path.of_list [ 65001; 65002 ];
    As_path.of_list [ 65002; 65001 ];
    As_path.of_list [ 65001; 65002; 65003 ];
    As_path.of_list [ 100 ];
    As_path.of_list [ 100; 200 ];
    As_path.of_list [ 200; 100; 300 ];
  ]

let sample ~env ?(universe = default_universe) t =
  List.find_map (fun c -> Cube.sample ~env ~universe c) t

let cubes t = t
let size_hint = List.length

let to_string t =
  if t = [] then "(empty)" else String.concat " U " (List.map Cube.to_string t)

let pp ppf t = Format.pp_print_string ppf (to_string t)
