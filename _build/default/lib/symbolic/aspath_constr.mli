(** AS-path constraints over named AS-path access lists.

    Deciding intersection of arbitrary path regexes is out of scope (as it
    is for Campion); instead each named list is treated as an opaque
    predicate and a cube records which lists must match and which must not.
    Sampling enumerates a candidate universe of concrete paths. *)

open Netcore
open Policy

type t = private { must : string list; must_not : string list }
(** Sorted, disjoint name lists. *)

val top : t
val require : string -> t
val forbid : string -> t

val inter : t -> t -> t option
(** [None] only on a direct contradiction (same list required and
    forbidden); regex-level unsatisfiability is not detected, which is sound
    for difference-finding (may only over-approximate the difference
    space). *)

val complement : t -> t list
val is_top : t -> bool
val equal : t -> t -> bool

val satisfies : env:As_path_list.t list -> As_path.t -> t -> bool

val sample : env:As_path_list.t list -> universe:As_path.t list -> t -> As_path.t option
(** First path in [universe] satisfying the cube; for the top cube the empty
    path is returned without consulting the universe. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
