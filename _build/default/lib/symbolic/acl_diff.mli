(** Symbolic comparison of access control lists — the data-plane half of
    Campion's policy behavior differences ("a route map or access control
    list has a semantic difference").

    The packet space is the product of source addresses, destination
    addresses (both as address sets, encoded as /32 prefix spaces), the
    protocol, and the destination port. The algebra is exact, so
    counterexample packets are always produced for real differences. *)

open Netcore
open Policy

type proto_set
(** Subsets of {!Netcore.Packet.proto}. *)

val proto_full : proto_set
val proto_of_match : Acl.proto_match -> proto_set
val proto_mem : Packet.proto -> proto_set -> bool

type cube = {
  src : Prefix_space.t;  (** /32 atoms: a set of addresses. *)
  dst : Prefix_space.t;
  protos : proto_set;
  ports : Port_set.t;
}

val cube_full : cube
val cube_of_entry : Acl.entry -> cube
val cube_is_empty : cube -> bool
val cube_inter : cube -> cube -> cube option
val cube_diff : cube -> cube -> cube list
val cube_satisfies : Packet.t -> cube -> bool
val sample_packet : cube -> Packet.t option

type region = { space : cube list; action : Action.t; seq : int option }

val compile : Acl.t -> region list
(** Disjoint covering regions in entry order, final implicit deny. *)

val permits_space : Acl.t -> cube list
(** The set of packets the ACL permits. *)

type difference = {
  example : Packet.t;
  action_a : Action.t;
  action_b : Action.t;
  seq_a : int option;
  seq_b : int option;
}

val compare_acls : Acl.t -> Acl.t -> difference list
(** All regions where the two ACLs disagree, each with a concrete witness
    packet. Empty iff the ACLs are semantically equivalent. *)

val equivalent : Acl.t -> Acl.t -> bool
