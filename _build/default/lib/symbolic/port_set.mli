(** Sets of TCP/UDP ports (0..65535) as sorted disjoint intervals. *)

type t

val empty : t
val full : t
val singleton : int -> t
val range : int -> int -> t
(** Clamped to [0, 65535]; empty when [lo > hi]. *)

val mem : int -> t -> bool
val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t
val complement : t -> t
val is_empty : t -> bool
val equal : t -> t -> bool
val choose : t -> int option
(** Smallest member. *)

val intervals : t -> (int * int) list
val to_string : t -> string
val pp : Format.formatter -> t -> unit
