open Netcore
open Policy

type t = { must : string list; must_not : string list }

let top = { must = []; must_not = [] }
let require n = { must = [ n ]; must_not = [] }
let forbid n = { must = []; must_not = [ n ] }

let inter a b =
  let must = List.sort_uniq String.compare (a.must @ b.must) in
  let must_not = List.sort_uniq String.compare (a.must_not @ b.must_not) in
  if List.exists (fun n -> List.mem n must_not) must then None
  else Some { must; must_not }

let complement t =
  List.map forbid t.must @ List.map require t.must_not

let is_top t = t.must = [] && t.must_not = []
let equal a b = a = b

let list_matches env name path =
  match List.find_opt (fun (l : As_path_list.t) -> l.name = name) env with
  | Some l -> ( try As_path_list.matches l path with Invalid_argument _ -> false)
  | None -> false

let satisfies ~env path t =
  List.for_all (fun n -> list_matches env n path) t.must
  && List.for_all (fun n -> not (list_matches env n path)) t.must_not

let sample ~env ~universe t =
  if is_top t then Some As_path.empty
  else List.find_opt (fun p -> satisfies ~env p t) universe

let to_string t =
  if is_top t then "*"
  else
    String.concat " "
      (List.map (fun n -> "~" ^ n) t.must @ List.map (fun n -> "!~" ^ n) t.must_not)

let pp ppf t = Format.pp_print_string ppf (to_string t)
