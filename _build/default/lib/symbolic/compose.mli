(** Symbolic composition of routing policies: the image of a route space
    under a route map, and the chaining of two maps.

    This is the machinery behind Lightyear-style modular proofs: to show
    that "hub tags at ingress" plus "hub filters at egress" imply no
    transit, compute the image of the full space under the ingress policy
    and check the egress policy denies all of it.

    Images are sound over-approximations: the [must] side of community
    cubes is exact under additive sets, while replacements and deletions
    lose the absence information they cannot represent; AS-path constraints
    are reset when the effect prepends. Soundness here means every concrete
    route that can come out of the policy is inside the computed image, so
    "image ∩ bad = empty" is a valid proof of absence. *)

open Policy

val apply_effect : Effects.t -> Cube.t -> Cube.t
(** The image of a cube under an effect (over-approximate, see above). *)

val image : Eval.env -> Route_map.t -> Pred.t -> Pred.t
(** Image of an input space: union over permit regions of
    [apply_effect effect (region ∩ input)]. *)

val chain_permits :
  env_a:Eval.env ->
  map_a:Route_map.t ->
  env_b:Eval.env ->
  map_b:Route_map.t ->
  Pred.t ->
  Pred.t
(** The space that survives [map_a] then [map_b]: the image of the input
    under [map_a], restricted to the permit regions of [map_b]. Empty means
    nothing can pass through both policies. *)
