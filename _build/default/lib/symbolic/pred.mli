(** Predicates over the route-announcement space: finite unions of
    {!Cube.t}. This is the workhorse type of the symbolic verifiers. *)

open Netcore

type t

val empty : t
val full : t
val of_cube : Cube.t -> t
val of_cubes : Cube.t list -> t

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val is_empty : t -> bool
val satisfies : env:Policy.Eval.env -> Route.t -> t -> bool

val sample : env:Policy.Eval.env -> ?universe:As_path.t list -> t -> Route.t option
(** First sampleable cube wins. [universe] defaults to
    {!default_universe}. *)

val default_universe : As_path.t list
(** A small set of generic AS paths used to instantiate AS-path
    constraints when the caller has no topology-specific candidates. *)

val cubes : t -> Cube.t list
val size_hint : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
