(** Constraints over a single non-negative integer route attribute (MED,
    tag): either unconstrained, pinned to a value, or excluding a finite
    set of values. Closed under the intersections and complements route-map
    guards generate (equality tests only). *)

type t = Any | Eq of int | Neq of int list  (** [Neq] list is sorted, non-empty. *)

val any : t
val eq : int -> t
val neq : int list -> t

val inter : t -> t -> t option
(** [None] when unsatisfiable. *)

val complement : t -> t list
(** The complement as a union of constraints (empty list = empty set). *)

val sample : t -> int
(** A satisfying value (deterministic). *)

val satisfies : int -> t -> bool
val is_any : t -> bool
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
