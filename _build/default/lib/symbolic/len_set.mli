(** Sets of prefix lengths (0..32), represented as a 33-bit bitset. *)

type t

val empty : t
val full : t
val singleton : int -> t
val range : int -> int -> t
(** [range lo hi] is [{lo, ..., hi}]; empty when [lo > hi]. Bounds are
    clamped to [0, 32]. *)

val mem : int -> t -> bool
val add : int -> t -> t
val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t
val is_empty : t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool
val min_elt : t -> int option
val max_elt : t -> int option
val cardinal : t -> int
val to_list : t -> int list
val of_list : int list -> t
val restrict_ge : int -> t -> t
(** Keep only lengths [>= n]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
