(** Behavioral comparison of two routing policies — the symbolic core of the
    Campion-style "policy behavior difference" detector. *)

open Netcore
open Policy

type kind =
  | Action_mismatch
      (** The two policies disagree on permit/deny somewhere. *)
  | Effect_mismatch of (string * string * string) list
      (** Both permit, but apply different transforms: [(attribute, value_a,
          value_b)] per differing attribute. *)

type difference = {
  space : Pred.t;  (** Where the behaviours differ. *)
  example : Route.t option;  (** A concrete witness, when sampleable. *)
  action_a : Action.t;
  action_b : Action.t;
  seq_a : int option;
  seq_b : int option;
  kind : kind;
}

val compare_maps :
  env_a:Eval.env ->
  env_b:Eval.env ->
  ?universe:As_path.t list ->
  Route_map.t ->
  Route_map.t ->
  difference list
(** All regions of route space where the two maps behave differently. The
    pair of implicit-deny regions is never reported. *)

val equivalent :
  env_a:Eval.env -> env_b:Eval.env -> Route_map.t -> Route_map.t -> bool

val pp_difference : Format.formatter -> difference -> unit
