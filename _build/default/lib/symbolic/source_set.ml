open Netcore

type t = int

let all = [ Route.Bgp; Route.Ospf; Route.Connected; Route.Static ]
let index = function Route.Bgp -> 0 | Route.Ospf -> 1 | Route.Connected -> 2 | Route.Static -> 3
let empty = 0
let full = 0b1111
let singleton s = 1 lsl index s
let of_list l = List.fold_left (fun acc s -> acc lor singleton s) empty l
let mem s t = t land singleton s <> 0
let inter a b = a land b
let union a b = a lor b
let diff a b = a land lnot b
let complement t = full land lnot t
let is_empty t = t = 0
let equal a b = a = b
let to_list t = List.filter (fun s -> mem s t) all
let choose t = match to_list t with [] -> None | s :: _ -> Some s

let to_string t =
  "{" ^ String.concat "," (List.map Route.source_to_string (to_list t)) ^ "}"

let pp ppf t = Format.pp_print_string ppf (to_string t)
