open Netcore

type t = {
  prefixes : Prefix_space.t;
  comms : Comm_constr.t;
  sources : Source_set.t;
  med : Int_constr.t;
  aspath : Aspath_constr.t;
}

let full =
  {
    prefixes = Prefix_space.full;
    comms = Comm_constr.top;
    sources = Source_set.full;
    med = Int_constr.any;
    aspath = Aspath_constr.top;
  }

let make ?(prefixes = Prefix_space.full) ?(comms = Comm_constr.top)
    ?(sources = Source_set.full) ?(med = Int_constr.any)
    ?(aspath = Aspath_constr.top) () =
  { prefixes; comms; sources; med; aspath }

let is_empty c = Prefix_space.is_empty c.prefixes || Source_set.is_empty c.sources

let inter a b =
  let prefixes = Prefix_space.inter a.prefixes b.prefixes in
  let sources = Source_set.inter a.sources b.sources in
  if Prefix_space.is_empty prefixes || Source_set.is_empty sources then None
  else
    match Comm_constr.inter a.comms b.comms with
    | None -> None
    | Some comms -> (
        match Int_constr.inter a.med b.med with
        | None -> None
        | Some med -> (
            match Aspath_constr.inter a.aspath b.aspath with
            | None -> None
            | Some aspath -> Some { prefixes; comms; sources; med; aspath }))

(* a \ b as a union of cubes: peel one dimension at a time, intersecting the
   previously peeled dimensions with b's component so the pieces are
   disjoint. *)
let diff a b =
  let pieces = ref [] in
  let emit c = if not (is_empty c) then pieces := c :: !pieces in
  (* Dimension 1: prefixes outside b. *)
  emit { a with prefixes = Prefix_space.diff a.prefixes b.prefixes };
  let prefixes = Prefix_space.inter a.prefixes b.prefixes in
  if not (Prefix_space.is_empty prefixes) then (
    (* Dimension 2: communities outside b. *)
    List.iter
      (fun piece ->
        match Comm_constr.inter a.comms piece with
        | Some comms -> emit { a with prefixes; comms }
        | None -> ())
      (Comm_constr.complement b.comms);
    match Comm_constr.inter a.comms b.comms with
    | None -> ()
    | Some comms -> (
        (* Dimension 3: sources outside b. *)
        emit { a with prefixes; comms; sources = Source_set.diff a.sources b.sources };
        let sources = Source_set.inter a.sources b.sources in
        if not (Source_set.is_empty sources) then (
          (* Dimension 4: MED outside b. *)
          List.iter
            (fun piece ->
              match Int_constr.inter a.med piece with
              | Some med -> emit { a with prefixes; comms; sources; med }
              | None -> ())
            (Int_constr.complement b.med);
          match Int_constr.inter a.med b.med with
          | None -> ()
          | Some med ->
              (* Dimension 5: AS path outside b. *)
              List.iter
                (fun piece ->
                  match Aspath_constr.inter a.aspath piece with
                  | Some aspath -> emit { prefixes; comms; sources; med; aspath }
                  | None -> ())
                (Aspath_constr.complement b.aspath))));
  !pieces

let satisfies ~env (r : Route.t) c =
  Prefix_space.mem r.prefix c.prefixes
  && Comm_constr.satisfies r.communities c.comms
  && Source_set.mem r.source c.sources
  && Int_constr.satisfies r.med c.med
  && Aspath_constr.satisfies ~env:env.Policy.Eval.as_path_lists r.as_path c.aspath

let sample ~env ~universe c =
  if is_empty c then None
  else
    match Prefix_space.sample c.prefixes with
    | None -> None
    | Some prefix -> (
        match Source_set.choose c.sources with
        | None -> None
        | Some source -> (
            match
              Aspath_constr.sample ~env:env.Policy.Eval.as_path_lists ~universe c.aspath
            with
            | None -> None
            | Some as_path ->
                Some
                  (Route.make ~as_path
                     ~communities:(Comm_constr.sample c.comms)
                     ~med:(Int_constr.sample c.med) ~source prefix)))

let to_string c =
  Printf.sprintf "{pfx=%s comm=%s src=%s med=%s path=%s}"
    (Prefix_space.to_string c.prefixes)
    (Comm_constr.to_string c.comms)
    (Source_set.to_string c.sources)
    (Int_constr.to_string c.med)
    (Aspath_constr.to_string c.aspath)

let pp ppf c = Format.pp_print_string ppf (to_string c)
