lib/symbolic/acl_diff.ml: Acl Action Len_set List Netcore Option Packet Policy Port_set Prefix Prefix_space
