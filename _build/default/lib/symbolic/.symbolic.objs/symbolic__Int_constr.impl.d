lib/symbolic/int_constr.ml: Format Int List Printf String
