lib/symbolic/prefix_space.ml: Format Ipv4 Len_set List Netcore Prefix Prefix_range Printf String
