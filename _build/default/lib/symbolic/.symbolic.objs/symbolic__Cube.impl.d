lib/symbolic/cube.ml: Aspath_constr Comm_constr Format Int_constr List Netcore Policy Prefix_space Printf Route Source_set
