lib/symbolic/source_set.ml: Format List Netcore Route String
