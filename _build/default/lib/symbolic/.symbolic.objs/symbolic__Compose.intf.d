lib/symbolic/compose.mli: Cube Effects Eval Policy Pred Route_map
