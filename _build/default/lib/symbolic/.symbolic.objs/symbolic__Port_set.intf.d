lib/symbolic/port_set.mli: Format
