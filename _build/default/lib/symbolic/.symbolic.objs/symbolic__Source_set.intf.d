lib/symbolic/source_set.mli: Format Netcore
