lib/symbolic/aspath_constr.ml: As_path As_path_list Format List Netcore Policy String
