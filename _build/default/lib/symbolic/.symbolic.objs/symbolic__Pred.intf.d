lib/symbolic/pred.mli: As_path Cube Format Netcore Policy Route
