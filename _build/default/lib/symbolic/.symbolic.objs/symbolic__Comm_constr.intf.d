lib/symbolic/comm_constr.mli: Community Format Netcore
