lib/symbolic/policy_diff.ml: Action Community Effects Eval Format List Netcore Option Policy Pred Printf Route String Transfer
