lib/symbolic/pred.ml: As_path Cube Format List Netcore String
