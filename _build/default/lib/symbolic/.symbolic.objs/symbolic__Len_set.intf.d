lib/symbolic/len_set.mli: Format
