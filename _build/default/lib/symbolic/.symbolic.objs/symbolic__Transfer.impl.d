lib/symbolic/transfer.ml: Action Effects Format Guard List Policy Pred Route_map
