lib/symbolic/port_set.ml: Format List Printf String
