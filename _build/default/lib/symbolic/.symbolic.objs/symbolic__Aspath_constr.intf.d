lib/symbolic/aspath_constr.mli: As_path As_path_list Format Netcore Policy
