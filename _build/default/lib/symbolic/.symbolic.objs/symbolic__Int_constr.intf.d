lib/symbolic/int_constr.mli: Format
