lib/symbolic/len_set.ml: Format List Printf String
