lib/symbolic/comm_constr.ml: Community Format List Netcore String
