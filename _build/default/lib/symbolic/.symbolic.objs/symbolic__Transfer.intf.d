lib/symbolic/transfer.mli: Action Effects Eval Format Policy Pred Route_map
