lib/symbolic/policy_diff.mli: Action As_path Eval Format Netcore Policy Pred Route Route_map
