lib/symbolic/effects.mli: Community Format Ipv4 Netcore Policy
