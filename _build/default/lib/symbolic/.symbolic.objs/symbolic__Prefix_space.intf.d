lib/symbolic/prefix_space.mli: Format Len_set Netcore
