lib/symbolic/guard.ml: Action As_path_list Aspath_constr Comm_constr Community_list Cube Eval Int_constr List Policy Pred Prefix_list Prefix_space Route_map Source_set
