lib/symbolic/compose.ml: Action Aspath_constr Comm_constr Community Cube Effects Int_constr List Netcore Policy Pred Route_map Transfer
