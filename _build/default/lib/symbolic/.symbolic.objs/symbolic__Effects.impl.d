lib/symbolic/effects.ml: Community Format Ipv4 List Netcore Policy Printf Route_map String
