lib/symbolic/cube.mli: As_path Aspath_constr Comm_constr Format Int_constr Netcore Policy Prefix_space Route Source_set
