lib/symbolic/guard.mli: Comm_constr Community_list Eval Policy Pred Prefix_list Prefix_space Route_map
