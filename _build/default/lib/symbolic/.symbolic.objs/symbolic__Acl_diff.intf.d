lib/symbolic/acl_diff.mli: Acl Action Netcore Packet Policy Port_set Prefix_space
