(** Product constraints over the route-announcement space: one prefix-space
    component and one cube per remaining dimension (communities, source
    protocol, MED, AS path). *)

open Netcore

type t = {
  prefixes : Prefix_space.t;
  comms : Comm_constr.t;
  sources : Source_set.t;
  med : Int_constr.t;
  aspath : Aspath_constr.t;
}

val full : t

val make :
  ?prefixes:Prefix_space.t ->
  ?comms:Comm_constr.t ->
  ?sources:Source_set.t ->
  ?med:Int_constr.t ->
  ?aspath:Aspath_constr.t ->
  unit ->
  t

val is_empty : t -> bool
(** True when any dimension is empty. (AS-path cubes are never considered
    empty on their own except by direct contradiction.) *)

val inter : t -> t -> t option
val diff : t -> t -> t list
(** Difference as a union of cubes (the standard per-dimension peeling). *)

val satisfies : env:Policy.Eval.env -> Route.t -> t -> bool

val sample :
  env:Policy.Eval.env -> universe:As_path.t list -> t -> Route.t option
(** A concrete witness, [None] when the cube is empty or no AS path in
    [universe] satisfies the AS-path component. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
