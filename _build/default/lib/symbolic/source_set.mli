(** Subsets of the route-source protocols {!Netcore.Route.source}. The
    dimension along which redistribution conditions ("from bgp") cut the
    route space. *)

type t

val empty : t
val full : t
val singleton : Netcore.Route.source -> t
val of_list : Netcore.Route.source list -> t
val mem : Netcore.Route.source -> t -> bool
val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t
val complement : t -> t
val is_empty : t -> bool
val equal : t -> t -> bool
val choose : t -> Netcore.Route.source option
val to_list : t -> Netcore.Route.source list
val to_string : t -> string
val pp : Format.formatter -> t -> unit
