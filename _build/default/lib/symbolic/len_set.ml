type t = int
(* Bit i set <=> length i is in the set; i in 0..32 fits a 63-bit int. *)

let all_mask = (1 lsl 33) - 1
let empty = 0
let full = all_mask
let clamp n = if n < 0 then 0 else if n > 32 then 32 else n

let singleton n =
  if n < 0 || n > 32 then invalid_arg "Len_set.singleton" else 1 lsl n

let range lo hi =
  if lo > hi then empty
  else
    let lo = clamp lo and hi = clamp hi in
    (all_mask lsr (32 - hi)) land lnot ((1 lsl lo) - 1)

let mem n t = n >= 0 && n <= 32 && (t lsr n) land 1 = 1
let add n t = t lor singleton n
let inter a b = a land b
let union a b = a lor b
let diff a b = a land lnot b
let is_empty t = t = 0
let equal a b = a = b
let subset a b = a land lnot b = 0

let min_elt t =
  if t = 0 then None
  else
    let rec go i = if (t lsr i) land 1 = 1 then Some i else go (i + 1) in
    go 0

let max_elt t =
  if t = 0 then None
  else
    let rec go i = if (t lsr i) land 1 = 1 then Some i else go (i - 1) in
    go 32

let cardinal t =
  let rec go acc i = if i > 32 then acc else go (acc + ((t lsr i) land 1)) (i + 1) in
  go 0 0

let to_list t =
  let rec go acc i = if i < 0 then acc else go (if mem i t then i :: acc else acc) (i - 1) in
  go [] 32

let of_list l = List.fold_left (fun acc n -> add n acc) empty l
let restrict_ge n t = inter t (range n 32)

(* Render contiguous runs as lo-hi for readability. *)
let to_string t =
  let rec runs acc cur = function
    | [] -> List.rev (match cur with None -> acc | Some r -> r :: acc)
    | n :: rest -> (
        match cur with
        | Some (lo, hi) when n = hi + 1 -> runs acc (Some (lo, n)) rest
        | Some r -> runs (r :: acc) (Some (n, n)) rest
        | None -> runs acc (Some (n, n)) rest)
  in
  let show (lo, hi) = if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi in
  "{" ^ String.concat "," (List.map show (runs [] None (to_list t))) ^ "}"

let pp ppf t = Format.pp_print_string ppf (to_string t)
