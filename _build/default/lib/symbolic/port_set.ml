type t = (int * int) list
(* Sorted, disjoint, non-adjacent intervals. *)

let max_port = 65535
let empty = []
let full = [ (0, max_port) ]
let clamp n = if n < 0 then 0 else if n > max_port then max_port else n

let range lo hi = if lo > hi then [] else [ (clamp lo, clamp hi) ]
let singleton p = range p p

(* Normalize a list of possibly overlapping intervals. *)
let normalize l =
  let sorted = List.sort compare l in
  let rec merge = function
    | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 + 1 ->
        merge ((a1, max b1 b2) :: rest)
    | x :: rest -> x :: merge rest
    | [] -> []
  in
  merge sorted

let union a b = normalize (a @ b)

let inter a b =
  let rec go a b acc =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | (a1, b1) :: ra, (a2, b2) :: rb ->
        let lo = max a1 a2 and hi = min b1 b2 in
        let acc = if lo <= hi then (lo, hi) :: acc else acc in
        if b1 < b2 then go ra b acc else go a rb acc
  in
  go a b []

let complement t =
  let rec go cursor = function
    | [] -> if cursor <= max_port then [ (cursor, max_port) ] else []
    | (lo, hi) :: rest ->
        let before = if cursor <= lo - 1 then [ (cursor, lo - 1) ] else [] in
        before @ go (hi + 1) rest
  in
  go 0 t

let diff a b = inter a (complement b)
let mem p t = List.exists (fun (lo, hi) -> lo <= p && p <= hi) t
let is_empty t = t = []
let equal a b = normalize a = normalize b
let choose = function [] -> None | (lo, _) :: _ -> Some lo
let intervals t = t

let to_string t =
  if t = [] then "{}"
  else
    String.concat ","
      (List.map
         (fun (lo, hi) ->
           if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi)
         t)

let pp ppf t = Format.pp_print_string ppf (to_string t)
