open Netcore
open Policy

(* ------------------------------------------------------------------ *)
(* Protocol sets                                                       *)
(* ------------------------------------------------------------------ *)

type proto_set = int

let proto_index = function
  | Packet.Tcp -> 0
  | Packet.Udp -> 1
  | Packet.Icmp -> 2
  | Packet.Other -> 3

let proto_full = 0b1111
let proto_singleton p = 1 lsl proto_index p
let proto_mem p t = t land proto_singleton p <> 0
let proto_inter a b = a land b
let proto_diff a b = a land lnot b
let proto_is_empty t = t = 0
let proto_choose t = List.find_opt (fun p -> proto_mem p t) Packet.all_protos

let proto_of_match = function
  | Acl.Any_proto -> proto_full
  | Acl.Proto p -> proto_singleton p

(* ------------------------------------------------------------------ *)
(* Address sets as /32 prefix spaces                                   *)
(* ------------------------------------------------------------------ *)

let addr_space_of_prefix p = Prefix_space.atom p (Len_set.singleton 32)
let addr_space_full = addr_space_of_prefix Prefix.default

let sample_addr space =
  (* Atoms only carry length 32, so any sample is a host prefix. *)
  Option.map Prefix.addr (Prefix_space.sample space)

let addr_mem a space = Prefix_space.mem (Prefix.host a) space

(* ------------------------------------------------------------------ *)
(* Packet cubes                                                        *)
(* ------------------------------------------------------------------ *)

type cube = {
  src : Prefix_space.t;
  dst : Prefix_space.t;
  protos : proto_set;
  ports : Port_set.t;
}

let cube_full =
  { src = addr_space_full; dst = addr_space_full; protos = proto_full; ports = Port_set.full }

let port_set_of_match = function
  | Acl.Any_port -> Port_set.full
  | Acl.Eq p -> Port_set.singleton p
  | Acl.Port_range (lo, hi) -> Port_set.range lo hi

let cube_of_entry (e : Acl.entry) =
  {
    src = addr_space_of_prefix e.Acl.src;
    dst = addr_space_of_prefix e.Acl.dst;
    protos = proto_of_match e.Acl.proto;
    ports = port_set_of_match e.Acl.dst_port;
  }

let cube_is_empty c =
  Prefix_space.is_empty c.src || Prefix_space.is_empty c.dst
  || proto_is_empty c.protos || Port_set.is_empty c.ports

let cube_inter a b =
  let c =
    {
      src = Prefix_space.inter a.src b.src;
      dst = Prefix_space.inter a.dst b.dst;
      protos = proto_inter a.protos b.protos;
      ports = Port_set.inter a.ports b.ports;
    }
  in
  if cube_is_empty c then None else Some c

(* Standard per-dimension peeling. *)
let cube_diff a b =
  let pieces = ref [] in
  let emit c = if not (cube_is_empty c) then pieces := c :: !pieces in
  emit { a with src = Prefix_space.diff a.src b.src };
  let src = Prefix_space.inter a.src b.src in
  if not (Prefix_space.is_empty src) then begin
    emit { a with src; dst = Prefix_space.diff a.dst b.dst };
    let dst = Prefix_space.inter a.dst b.dst in
    if not (Prefix_space.is_empty dst) then begin
      emit { a with src; dst; protos = proto_diff a.protos b.protos };
      let protos = proto_inter a.protos b.protos in
      if not (proto_is_empty protos) then
        emit { src; dst; protos; ports = Port_set.diff a.ports b.ports }
    end
  end;
  !pieces

let cube_satisfies (pkt : Packet.t) c =
  addr_mem pkt.Packet.src c.src && addr_mem pkt.Packet.dst c.dst
  && proto_mem pkt.Packet.proto c.protos
  && Port_set.mem pkt.Packet.dst_port c.ports

let sample_packet c =
  if cube_is_empty c then None
  else
    match (sample_addr c.src, sample_addr c.dst, proto_choose c.protos, Port_set.choose c.ports) with
    | Some src, Some dst, Some proto, Some dst_port ->
        Some { Packet.src; dst; proto; dst_port }
    | _ -> None

(* Space = list of cubes (union). *)
let space_inter a b = List.concat_map (fun x -> List.filter_map (cube_inter x) b) a

let space_diff a b =
  List.fold_left (fun acc y -> List.concat_map (fun x -> cube_diff x y) acc) a b

let space_is_empty s = List.for_all cube_is_empty s

(* ------------------------------------------------------------------ *)
(* Compilation and comparison                                          *)
(* ------------------------------------------------------------------ *)

type region = { space : cube list; action : Action.t; seq : int option }

let compile (acl : Acl.t) =
  let regions, remaining =
    List.fold_left
      (fun (regions, remaining) (e : Acl.entry) ->
        let guard = cube_of_entry e in
        let matched = space_inter remaining [ guard ] in
        let regions =
          if space_is_empty matched then regions
          else { space = matched; action = e.Acl.action; seq = Some e.Acl.seq } :: regions
        in
        (regions, space_diff remaining [ guard ]))
      ([], [ cube_full ]) acl.Acl.entries
  in
  let implicit =
    if space_is_empty remaining then []
    else [ { space = remaining; action = Action.Deny; seq = None } ]
  in
  List.rev regions @ implicit

let permits_space acl =
  List.concat_map
    (fun r -> if r.action = Action.Permit then r.space else [])
    (compile acl)

type difference = {
  example : Packet.t;
  action_a : Action.t;
  action_b : Action.t;
  seq_a : int option;
  seq_b : int option;
}

let compare_acls a b =
  let regions_a = compile a and regions_b = compile b in
  List.concat_map
    (fun ra ->
      List.filter_map
        (fun rb ->
          if ra.action = rb.action then None
          else
            let overlap = space_inter ra.space rb.space in
            match List.find_map sample_packet overlap with
            | Some example ->
                Some
                  {
                    example;
                    action_a = ra.action;
                    action_b = rb.action;
                    seq_a = ra.seq;
                    seq_b = rb.seq;
                  }
            | None -> None)
        regions_b)
    regions_a

let equivalent a b = compare_acls a b = []
