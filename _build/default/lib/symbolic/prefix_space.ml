open Netcore

type atom = { base : Prefix.t; lens : Len_set.t }
type t = atom list

let mk_atom base lens =
  let lens = Len_set.restrict_ge (Prefix.len base) lens in
  if Len_set.is_empty lens then [] else [ { base; lens } ]

let empty = []
let full = mk_atom Prefix.default Len_set.full
let atom base lens = mk_atom base lens
let exact p = mk_atom p (Len_set.singleton (Prefix.len p))

let of_range r =
  mk_atom (Prefix_range.base r)
    (Len_set.range (Prefix_range.ge_bound r) (Prefix_range.le_bound r))

let of_ranges rs = List.concat_map of_range rs

(* Merge atoms sharing a base so spaces stay small under repeated union. *)
let compact t =
  let sorted = List.sort (fun a b -> Prefix.compare a.base b.base) t in
  let rec go = function
    | a :: b :: rest when Prefix.equal a.base b.base ->
        go ({ base = a.base; lens = Len_set.union a.lens b.lens } :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go sorted

let union a b = compact (a @ b)

let inter_atom a b =
  let deeper =
    if Prefix.subsumes a.base b.base then Some b.base
    else if Prefix.subsumes b.base a.base then Some a.base
    else None
  in
  match deeper with
  | None -> []
  | Some base -> mk_atom base (Len_set.inter a.lens b.lens)

let inter a b = compact (List.concat_map (fun x -> List.concat_map (inter_atom x) b) a)

(* Flip the [d]-th most significant bit of an address (0-indexed). *)
let flip_bit addr d = Ipv4.of_int (Ipv4.to_int addr lxor (1 lsl (31 - d)))

(* a \ b for single atoms. Three cases: disjoint bases, [b] covering [a]'s
   base, or [b] strictly below [a] — the last one peels the path from
   [a.base] down to [b.base], keeping path prefixes and sibling subtrees. *)
let diff_atom a b =
  if not (Prefix.overlaps a.base b.base) then [ a ]
  else if Prefix.subsumes b.base a.base then
    mk_atom a.base (Len_set.diff a.lens b.lens)
  else
    let la = Prefix.len a.base and lb = Prefix.len b.base in
    let target = Prefix.addr b.base in
    let rec peel d acc =
      if d >= lb then acc
      else
        let path_prefix = Prefix.make target d in
        let on_path =
          if Len_set.mem d a.lens then
            mk_atom path_prefix (Len_set.singleton d)
          else []
        in
        let sibling = Prefix.make (flip_bit target d) (d + 1) in
        let sibling_atoms = mk_atom sibling a.lens in
        peel (d + 1) (on_path @ sibling_atoms @ acc)
    in
    let under_b = mk_atom b.base (Len_set.diff a.lens b.lens) in
    peel la under_b

let diff a b = compact (List.fold_left (fun acc x -> List.concat_map (fun y -> diff_atom y x) acc) a b)

let is_empty t = t = []
let mem p t = List.exists (fun a -> Prefix.subsumes a.base p && Len_set.mem (Prefix.len p) a.lens) t
let subset a b = is_empty (diff a b)
let equal a b = subset a b && subset b a

let sample = function
  | [] -> None
  | a :: _ -> (
      match Len_set.min_elt a.lens with
      | Some l -> Some (Prefix.make (Prefix.addr a.base) l)
      | None -> None)

let atoms t = t
let size_hint = List.length

let to_string t =
  if t = [] then "{}"
  else
    String.concat " | "
      (List.map
         (fun a -> Printf.sprintf "%s len%s" (Prefix.to_string a.base) (Len_set.to_string a.lens))
         t)

let pp ppf t = Format.pp_print_string ppf (to_string t)
