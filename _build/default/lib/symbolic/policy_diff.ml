open Netcore
open Policy

type kind =
  | Action_mismatch
  | Effect_mismatch of (string * string * string) list

type difference = {
  space : Pred.t;
  example : Route.t option;
  action_a : Action.t;
  action_b : Action.t;
  seq_a : int option;
  seq_b : int option;
  kind : kind;
}

(* A sampled witness from an effect-mismatch region can still evaluate
   identically under both maps (e.g. "set community" replace vs. additive
   coincide on a route with no communities). Decorate the sample — an extra
   fresh community, a bumped MED, communities drawn from the environments'
   lists — until the concrete outputs differ, staying inside the region. *)
let concretely_differs ~env_a ~env_b map_a map_b r =
  match (Eval.eval env_a map_a r, Eval.eval env_b map_b r) with
  | Eval.Denied, Eval.Denied -> false
  | Eval.Permitted a, Eval.Permitted b -> not (Route.equal a b)
  | Eval.Permitted _, Eval.Denied | Eval.Denied, Eval.Permitted _ -> true

let fresh_community = Community.make 65123 999

let decoration_communities env_a env_b =
  let of_env (env : Eval.env) =
    List.concat_map
      (fun l -> Community.Set.elements (Policy.Community_list.communities_mentioned l))
      env.Eval.community_lists
  in
  fresh_community :: (of_env env_a @ of_env env_b)

let refine_example ~env_a ~env_b map_a map_b space r =
  let differs = concretely_differs ~env_a ~env_b map_a map_b in
  if differs r then r
  else
    let candidates =
      List.concat_map
        (fun c -> [ Route.add_community r c; Route.add_community { r with Route.med = r.Route.med + 1 } c ])
        (decoration_communities env_a env_b)
      @ [ { r with Route.med = r.Route.med + 1 } ]
    in
    match
      List.find_opt (fun c -> Pred.satisfies ~env:env_a c space && differs c) candidates
    with
    | Some c -> c
    | None -> r

let compare_maps ~env_a ~env_b ?(universe = Pred.default_universe) map_a map_b =
  let regions_a = Transfer.compile env_a map_a in
  let regions_b = Transfer.compile env_b map_b in
  let differences = ref [] in
  List.iter
    (fun (ra : Transfer.region) ->
      List.iter
        (fun (rb : Transfer.region) ->
          let overlap = Pred.inter ra.space rb.space in
          if not (Pred.is_empty overlap) then
            let kind =
              if ra.action <> rb.action then Some Action_mismatch
              else if
                ra.action = Action.Permit
                && not (Effects.equal ra.effect_ rb.effect_)
              then Some (Effect_mismatch (Effects.differing_fields ra.effect_ rb.effect_))
              else None
            in
            match kind with
            | None -> ()
            | Some kind ->
                (* Prefer a witness visible to both evaluation environments;
                   env_a suffices since AS-path constraints are name-based
                   and both sides share the universe. *)
                let example =
                  Option.map
                    (refine_example ~env_a ~env_b map_a map_b overlap)
                    (Pred.sample ~env:env_a ~universe overlap)
                in
                differences :=
                  {
                    space = overlap;
                    example;
                    action_a = ra.action;
                    action_b = rb.action;
                    seq_a = ra.seq;
                    seq_b = rb.seq;
                    kind;
                  }
                  :: !differences)
        regions_b)
    regions_a;
  List.rev !differences

let equivalent ~env_a ~env_b map_a map_b =
  compare_maps ~env_a ~env_b map_a map_b = []

let pp_difference ppf d =
  let seq = function Some s -> string_of_int s | None -> "implicit" in
  Format.fprintf ppf "a[seq %s]=%s vs b[seq %s]=%s (%s)%s" (seq d.seq_a)
    (Action.to_string d.action_a) (seq d.seq_b)
    (Action.to_string d.action_b)
    (match d.kind with
    | Action_mismatch -> "action mismatch"
    | Effect_mismatch fields ->
        "effect mismatch: "
        ^ String.concat ", "
            (List.map (fun (f, a, b) -> Printf.sprintf "%s %s vs %s" f a b) fields))
    (match d.example with
    | Some r -> Printf.sprintf " e.g. %s" (Route.to_string r)
    | None -> "")
