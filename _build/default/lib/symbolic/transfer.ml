open Policy

type region = {
  space : Pred.t;
  action : Action.t;
  effect_ : Effects.t;
  seq : int option;
}

let compile env (m : Route_map.t) =
  let regions, remaining =
    List.fold_left
      (fun (regions, remaining) (e : Route_map.entry) ->
        let guard = Guard.compile_entry_guard env e in
        let matched = Pred.inter remaining guard in
        let regions =
          if Pred.is_empty matched then regions
          else
            {
              space = matched;
              action = e.action;
              effect_ = Effects.of_sets e.sets;
              seq = Some e.seq;
            }
            :: regions
        in
        (regions, Pred.diff remaining guard))
      ([], Pred.full) m.entries
  in
  let implicit =
    if Pred.is_empty remaining then []
    else
      [ { space = remaining; action = Action.Deny; effect_ = Effects.identity; seq = None } ]
  in
  List.rev regions @ implicit

let compile_optional env = function
  | None ->
      [ { space = Pred.full; action = Action.Permit; effect_ = Effects.identity; seq = None } ]
  | Some m -> compile env m

let action_on env m query =
  List.filter_map
    (fun r ->
      let s = Pred.inter r.space query in
      if Pred.is_empty s then None else Some (r.action, { r with space = s }))
    (compile env m)

let pp_region ppf r =
  Format.fprintf ppf "[seq %s] %s %s on %s"
    (match r.seq with Some s -> string_of_int s | None -> "implicit")
    (Action.to_string r.action)
    (Effects.to_string r.effect_)
    (Pred.to_string r.space)
