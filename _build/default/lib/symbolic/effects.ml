open Netcore
open Policy

type t = {
  med : int option;
  local_pref : int option;
  comm_base : Community.Set.t option;
  comm_added : Community.Set.t;
  comm_deleted : string list;
  next_hop : Ipv4.t option;
  prepend : int list;
}

let identity =
  {
    med = None;
    local_pref = None;
    comm_base = None;
    comm_added = Community.Set.empty;
    comm_deleted = [];
    next_hop = None;
    prepend = [];
  }

let apply acc (s : Route_map.set_action) =
  match s with
  | Route_map.Set_med m -> { acc with med = Some m }
  | Route_map.Set_local_pref p -> { acc with local_pref = Some p }
  | Route_map.Set_community { communities; additive } ->
      let cs = Community.Set.of_list communities in
      if additive then { acc with comm_added = Community.Set.union acc.comm_added cs }
      else { acc with comm_base = Some cs; comm_added = Community.Set.empty }
  | Route_map.Set_community_delete n ->
      { acc with comm_deleted = List.sort_uniq String.compare (n :: acc.comm_deleted) }
  | Route_map.Set_next_hop a -> { acc with next_hop = Some a }
  | Route_map.Set_as_path_prepend asns -> { acc with prepend = acc.prepend @ asns }

let of_sets sets = List.fold_left apply identity sets

let equal a b = a = b

let show_opt f = function None -> "(unchanged)" | Some x -> f x
let show_int_opt = show_opt string_of_int

let show_comm_base = function
  | None -> "kept"
  | Some s -> "replaced with {" ^ Community.Set.to_string s ^ "}"

let differing_fields a b =
  let diffs = ref [] in
  let check name fa fb show =
    if fa <> fb then diffs := (name, show fa, show fb) :: !diffs
  in
  check "MED" a.med b.med show_int_opt;
  check "local-preference" a.local_pref b.local_pref show_int_opt;
  check "community base" a.comm_base b.comm_base show_comm_base;
  if not (Community.Set.equal a.comm_added b.comm_added) then
    diffs :=
      ( "communities added",
        "{" ^ Community.Set.to_string a.comm_added ^ "}",
        "{" ^ Community.Set.to_string b.comm_added ^ "}" )
      :: !diffs;
  check "communities deleted" a.comm_deleted b.comm_deleted (String.concat ",");
  check "next hop" a.next_hop b.next_hop (show_opt Ipv4.to_string);
  check "AS-path prepend" a.prepend b.prepend (fun l ->
      String.concat " " (List.map string_of_int l));
  List.rev !diffs

let to_string e =
  let parts = ref [] in
  let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
  (match e.med with Some m -> add "med=%d" m | None -> ());
  (match e.local_pref with Some p -> add "lp=%d" p | None -> ());
  (match e.comm_base with
  | Some s -> add "comm:={%s}" (Community.Set.to_string s)
  | None -> ());
  if not (Community.Set.is_empty e.comm_added) then
    add "comm+={%s}" (Community.Set.to_string e.comm_added);
  if e.comm_deleted <> [] then add "comm-del=%s" (String.concat "," e.comm_deleted);
  (match e.next_hop with Some a -> add "nh=%s" (Ipv4.to_string a) | None -> ());
  if e.prepend <> [] then
    add "prepend=%s" (String.concat " " (List.map string_of_int e.prepend));
  match !parts with [] -> "(no changes)" | ps -> String.concat " " (List.rev ps)

let pp ppf e = Format.pp_print_string ppf (to_string e)
