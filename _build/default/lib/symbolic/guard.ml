open Policy

let compile_prefix_list (l : Prefix_list.t) =
  let permitted, _remaining =
    List.fold_left
      (fun (permitted, remaining) (e : Prefix_list.entry) ->
        let range_space = Prefix_space.of_range e.range in
        let matched = Prefix_space.inter remaining range_space in
        let permitted =
          match e.action with
          | Action.Permit -> Prefix_space.union permitted matched
          | Action.Deny -> permitted
        in
        (permitted, Prefix_space.diff remaining range_space))
      (Prefix_space.empty, Prefix_space.full)
      l.entries
  in
  permitted

(* Community-cube difference, used to thread first-match order through the
   entries of a community list. *)
let comm_diff (cubes : Comm_constr.t list) (g : Comm_constr.t) =
  List.concat_map
    (fun c ->
      List.filter_map (fun piece -> Comm_constr.inter c piece) (Comm_constr.complement g))
    cubes

let compile_community_list (l : Community_list.t) =
  let entry_cube (e : Community_list.entry) =
    List.fold_left
      (fun acc c ->
        match acc with
        | None -> None
        | Some cube -> Comm_constr.inter cube (Comm_constr.require c))
      (Some Comm_constr.top) e.communities
  in
  let permitted, _remaining =
    List.fold_left
      (fun (permitted, remaining) (e : Community_list.entry) ->
        match entry_cube e with
        | None -> (permitted, remaining)
        | Some g ->
            let matched = List.filter_map (fun c -> Comm_constr.inter c g) remaining in
            let permitted =
              match e.action with
              | Action.Permit -> permitted @ matched
              | Action.Deny -> permitted
            in
            (permitted, comm_diff remaining g))
      ([], [ Comm_constr.top ])
      l.entries
  in
  permitted

let find_pl (env : Eval.env) n =
  List.find_opt (fun (l : Prefix_list.t) -> l.name = n) env.prefix_lists

let find_cl (env : Eval.env) n =
  List.find_opt (fun (l : Community_list.t) -> l.name = n) env.community_lists

let find_al (env : Eval.env) n =
  List.find_opt (fun (l : As_path_list.t) -> l.name = n) env.as_path_lists

let compile_match env cond =
  match cond with
  | Route_map.Match_prefix_list n -> (
      match find_pl env n with
      | None -> Pred.empty
      | Some l -> Pred.of_cube (Cube.make ~prefixes:(compile_prefix_list l) ()))
  | Route_map.Match_community_list n -> (
      match find_cl env n with
      | None -> Pred.empty
      | Some l ->
          Pred.of_cubes
            (List.map (fun comms -> Cube.make ~comms ()) (compile_community_list l)))
  | Route_map.Match_as_path n -> (
      match find_al env n with
      | None -> Pred.empty
      | Some _ -> Pred.of_cube (Cube.make ~aspath:(Aspath_constr.require n) ()))
  | Route_map.Match_source_protocol s ->
      Pred.of_cube (Cube.make ~sources:(Source_set.singleton s) ())
  | Route_map.Match_med m -> Pred.of_cube (Cube.make ~med:(Int_constr.eq m) ())
  | Route_map.Match_tag _ -> Pred.empty

let compile_entry_guard env (e : Route_map.entry) =
  List.fold_left
    (fun acc cond -> Pred.inter acc (compile_match env cond))
    Pred.full e.matches
