open Netcore
open Policy

(* Apply community changes to one cube. Additive adds are exact on both
   sides of the cube; a replacement pins the must side to the final set but
   drops must_not knowledge (the cube language cannot say "and nothing
   else"); deletions are not resolved against list definitions here, so
   they conservatively drop all community knowledge. *)
let apply_comms (e : Effects.t) (comms : Comm_constr.t) =
  match (e.Effects.comm_base, e.Effects.comm_deleted) with
  | _, _ :: _ -> Comm_constr.top
  | Some base, [] -> (
      let must = Community.Set.union base e.Effects.comm_added in
      match Comm_constr.make ~must ~must_not:Community.Set.empty with
      | Some c -> c
      | None -> Comm_constr.top)
  | None, [] -> (
      let must = Community.Set.union comms.Comm_constr.must e.Effects.comm_added in
      let must_not = Community.Set.diff comms.Comm_constr.must_not e.Effects.comm_added in
      match Comm_constr.make ~must ~must_not with
      | Some c -> c
      | None -> Comm_constr.top)

let apply_effect (e : Effects.t) (c : Cube.t) =
  let med =
    match e.Effects.med with Some m -> Int_constr.eq m | None -> c.Cube.med
  in
  let aspath = if e.Effects.prepend = [] then c.Cube.aspath else Aspath_constr.top in
  let comms = apply_comms e c.Cube.comms in
  { c with Cube.comms; med; aspath }

let image env (m : Route_map.t) input =
  let regions = Transfer.compile env m in
  List.fold_left
    (fun acc (r : Transfer.region) ->
      if r.Transfer.action <> Action.Permit then acc
      else
        let matched = Pred.inter r.Transfer.space input in
        if Pred.is_empty matched then acc
        else
          let transformed =
            Pred.of_cubes
              (List.map (apply_effect r.Transfer.effect_) (Pred.cubes matched))
          in
          Pred.union acc transformed)
    Pred.empty regions

let chain_permits ~env_a ~map_a ~env_b ~map_b input =
  let mid = image env_a map_a input in
  let regions_b = Transfer.compile env_b map_b in
  List.fold_left
    (fun acc (r : Transfer.region) ->
      if r.Transfer.action <> Action.Permit then acc
      else
        let surviving = Pred.inter r.Transfer.space mid in
        if Pred.is_empty surviving then acc else Pred.union acc surviving)
    Pred.empty regions_b
