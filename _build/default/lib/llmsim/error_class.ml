type t =
  | Missing_local_as
  | Bad_prefix_list_syntax
  | Missing_import_policy
  | Missing_export_policy
  | Ospf_cost_wrong
  | Ospf_passive_wrong
  | Wrong_med
  | Prefix_range_dropped
  | Redistribution_unscoped
  | Cli_keywords
  | Match_community_literal
  | Community_not_additive
  | Neighbor_outside_bgp
  | And_or_confusion
  | Wrong_interface_ip
  | Wrong_local_as
  | Wrong_router_id
  | Missing_neighbor_decl
  | Extra_neighbor_decl
  | Missing_network_decl
  | Extra_network_decl
  | Crossed_policy_attachment
  | Policy_inserted_early
  | Wrong_policy_modified
  | Acl_action_flipped
  | Acl_entry_dropped
  | Acl_wrong_port

type category = Syntax | Structural | Attribute | Policy_behavior | Topology | Semantic

type profile = {
  category : category;
  injection_rate : float;
  auto_fix : float;
  human_fix : float;
  successor : t option;
  iip : string option;
}

let all =
  [
    Missing_local_as;
    Bad_prefix_list_syntax;
    Missing_import_policy;
    Missing_export_policy;
    Ospf_cost_wrong;
    Ospf_passive_wrong;
    Wrong_med;
    Prefix_range_dropped;
    Redistribution_unscoped;
    Cli_keywords;
    Match_community_literal;
    Community_not_additive;
    Neighbor_outside_bgp;
    And_or_confusion;
    Wrong_interface_ip;
    Wrong_local_as;
    Wrong_router_id;
    Missing_neighbor_decl;
    Extra_neighbor_decl;
    Missing_network_decl;
    Extra_network_decl;
    Crossed_policy_attachment;
    Policy_inserted_early;
    Wrong_policy_modified;
    Acl_action_flipped;
    Acl_entry_dropped;
    Acl_wrong_port;
  ]

(* Calibration notes. Table 2 reports which translation errors GPT-4 fixed
   from the generated prompt alone: everything except the prefix-length
   match (which first morphs into the /24-32 syntax error and converges only
   through that detour) and the redistribution scoping (which GPT-4 "usually
   does nothing" about until a human asks directly). In the synthesis
   experiment the AND/OR confusion and the misplaced neighbor command also
   resisted automated prompts. *)
let profile = function
  | Missing_local_as ->
      { category = Syntax; injection_rate = 0.9; auto_fix = 0.95; human_fix = 1.0; successor = None; iip = None }
  | Bad_prefix_list_syntax ->
      { category = Syntax; injection_rate = 0.0; auto_fix = 0.85; human_fix = 1.0; successor = None; iip = None }
  | Missing_import_policy ->
      { category = Structural; injection_rate = 0.7; auto_fix = 0.9; human_fix = 1.0; successor = None; iip = None }
  | Missing_export_policy ->
      { category = Structural; injection_rate = 0.7; auto_fix = 0.9; human_fix = 1.0; successor = None; iip = None }
  | Ospf_cost_wrong ->
      { category = Attribute; injection_rate = 0.8; auto_fix = 0.9; human_fix = 1.0; successor = None; iip = None }
  | Ospf_passive_wrong ->
      { category = Attribute; injection_rate = 0.7; auto_fix = 0.9; human_fix = 1.0; successor = None; iip = None }
  | Wrong_med ->
      { category = Policy_behavior; injection_rate = 0.8; auto_fix = 0.85; human_fix = 1.0; successor = None; iip = None }
  | Prefix_range_dropped ->
      { category = Policy_behavior; injection_rate = 0.9; auto_fix = 0.0; human_fix = 1.0;
        successor = Some Bad_prefix_list_syntax; iip = None }
  | Redistribution_unscoped ->
      { category = Policy_behavior; injection_rate = 0.9; auto_fix = 0.0; human_fix = 1.0; successor = None; iip = None }
  | Cli_keywords ->
      { category = Syntax; injection_rate = 0.8; auto_fix = 0.9; human_fix = 1.0; successor = None; iip = Some "cfg-files-only" }
  | Match_community_literal ->
      { category = Syntax; injection_rate = 0.6; auto_fix = 0.85; human_fix = 1.0; successor = None; iip = Some "community-list-matching" }
  | Community_not_additive ->
      { category = Semantic; injection_rate = 0.6; auto_fix = 0.8; human_fix = 1.0; successor = None; iip = Some "additive-community" }
  | Neighbor_outside_bgp ->
      { category = Syntax; injection_rate = 0.03; auto_fix = 0.0; human_fix = 1.0; successor = None; iip = None }
  | And_or_confusion ->
      { category = Semantic; injection_rate = 0.2; auto_fix = 0.0; human_fix = 1.0; successor = None; iip = None }
  | Wrong_interface_ip ->
      { category = Topology; injection_rate = 0.03; auto_fix = 0.9; human_fix = 1.0; successor = None; iip = None }
  | Wrong_local_as ->
      { category = Topology; injection_rate = 0.06; auto_fix = 0.9; human_fix = 1.0; successor = None; iip = None }
  | Wrong_router_id ->
      { category = Topology; injection_rate = 0.06; auto_fix = 0.9; human_fix = 1.0; successor = None; iip = None }
  | Missing_neighbor_decl ->
      { category = Topology; injection_rate = 0.05; auto_fix = 0.9; human_fix = 1.0; successor = None; iip = None }
  | Extra_neighbor_decl ->
      { category = Topology; injection_rate = 0.04; auto_fix = 0.9; human_fix = 1.0; successor = None; iip = None }
  | Missing_network_decl ->
      { category = Topology; injection_rate = 0.03; auto_fix = 0.9; human_fix = 1.0; successor = None; iip = None }
  | Extra_network_decl ->
      { category = Topology; injection_rate = 0.03; auto_fix = 0.9; human_fix = 1.0; successor = None; iip = None }
  | Crossed_policy_attachment ->
      (* Only the whole-network check catches this, and its counterexamples
         are the "global" feedback the paper says confused GPT-4. *)
      { category = Semantic; injection_rate = 0.05; auto_fix = 0.25; human_fix = 1.0; successor = None; iip = None }
  | Policy_inserted_early ->
      (* Incremental edits: the new term is placed before the existing deny
         stanzas, silently bypassing the verified policy. *)
      { category = Semantic; injection_rate = 0.5; auto_fix = 0.7; human_fix = 1.0; successor = None; iip = None }
  | Wrong_policy_modified ->
      { category = Semantic; injection_rate = 0.25; auto_fix = 0.85; human_fix = 1.0; successor = None; iip = None }
  | Acl_action_flipped ->
      { category = Policy_behavior; injection_rate = 0.4; auto_fix = 0.85; human_fix = 1.0; successor = None; iip = None }
  | Acl_entry_dropped ->
      { category = Policy_behavior; injection_rate = 0.35; auto_fix = 0.9; human_fix = 1.0; successor = None; iip = None }
  | Acl_wrong_port ->
      { category = Policy_behavior; injection_rate = 0.35; auto_fix = 0.85; human_fix = 1.0; successor = None; iip = None }

let category_to_string = function
  | Syntax -> "syntax"
  | Structural -> "structural"
  | Attribute -> "attribute"
  | Policy_behavior -> "policy behavior"
  | Topology -> "topology"
  | Semantic -> "semantic"

let to_string = function
  | Missing_local_as -> "missing-local-as"
  | Bad_prefix_list_syntax -> "bad-prefix-list-syntax"
  | Missing_import_policy -> "missing-import-policy"
  | Missing_export_policy -> "missing-export-policy"
  | Ospf_cost_wrong -> "ospf-cost-wrong"
  | Ospf_passive_wrong -> "ospf-passive-wrong"
  | Wrong_med -> "wrong-med"
  | Prefix_range_dropped -> "prefix-range-dropped"
  | Redistribution_unscoped -> "redistribution-unscoped"
  | Cli_keywords -> "cli-keywords"
  | Match_community_literal -> "match-community-literal"
  | Community_not_additive -> "community-not-additive"
  | Neighbor_outside_bgp -> "neighbor-outside-bgp"
  | And_or_confusion -> "and-or-confusion"
  | Wrong_interface_ip -> "wrong-interface-ip"
  | Wrong_local_as -> "wrong-local-as"
  | Wrong_router_id -> "wrong-router-id"
  | Missing_neighbor_decl -> "missing-neighbor-decl"
  | Extra_neighbor_decl -> "extra-neighbor-decl"
  | Missing_network_decl -> "missing-network-decl"
  | Extra_network_decl -> "extra-network-decl"
  | Crossed_policy_attachment -> "crossed-policy-attachment"
  | Policy_inserted_early -> "policy-inserted-early"
  | Wrong_policy_modified -> "wrong-policy-modified"
  | Acl_action_flipped -> "acl-action-flipped"
  | Acl_entry_dropped -> "acl-entry-dropped"
  | Acl_wrong_port -> "acl-wrong-port"

let table2_label = function
  | Missing_local_as -> Some "Missing BGP local-as attribute"
  | Bad_prefix_list_syntax -> Some "Invalid syntax for prefix lists"
  | Missing_import_policy | Missing_export_policy -> Some "Missing/extra BGP route policy"
  | Ospf_cost_wrong -> Some "Different OSPF link cost"
  | Ospf_passive_wrong -> Some "Different OSPF passive interface setting"
  | Wrong_med -> Some "Setting wrong BGP MED value"
  | Prefix_range_dropped -> Some "Different prefix lengths match in BGP"
  | Redistribution_unscoped -> Some "Different redistribution into BGP"
  | _ -> None

let equal (a : t) b = a = b
