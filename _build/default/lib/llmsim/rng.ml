type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let make seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let a = next_int64 t and b = next_int64 t in
  ({ state = a }, { state = b })

let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let bernoulli t p = float t < p

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  int_of_float (float t *. float_of_int bound)

let choice t = function
  | [] -> None
  | l -> Some (List.nth l (int t (List.length l)))
