open Netcore
open Policy

type target =
  | Whole_config
  | Neighbor of Ipv4.t
  | Policy of string
  | Policy_entry of string * int
  | Interface of Iface.t
  | Named_list of string
  | Network of Prefix.t

type t = { class_ : Error_class.t; target : target }

type dialect = Cisco_cfg | Junos_cfg

let make class_ target = { class_; target }
let equal (a : t) b = a = b

let target_to_string = function
  | Whole_config -> "config"
  | Neighbor a -> "neighbor " ^ Ipv4.to_string a
  | Policy p -> "policy " ^ p
  | Policy_entry (p, s) -> Printf.sprintf "policy %s seq %d" p s
  | Interface i -> "interface " ^ Iface.cisco_name i
  | Named_list n -> "list " ^ n
  | Network p -> "network " ^ Prefix.to_string p

let to_string f =
  Printf.sprintf "%s@%s" (Error_class.to_string f.class_) (target_to_string f.target)

(* ------------------------------------------------------------------ *)
(* Opportunities                                                       *)
(* ------------------------------------------------------------------ *)

let neighbors (c : Config_ir.t) =
  match c.Config_ir.bgp with None -> [] | Some b -> b.Config_ir.neighbors

let has_ranged_entries (l : Prefix_list.t) =
  List.exists
    (fun (e : Prefix_list.entry) -> not (Prefix_range.is_exact e.Prefix_list.range))
    l.Prefix_list.entries

let med_entries (c : Config_ir.t) =
  List.concat_map
    (fun (m : Route_map.t) ->
      List.filter_map
        (fun (e : Route_map.entry) ->
          if List.exists (function Route_map.Set_med _ -> true | _ -> false) e.Route_map.sets
          then Some (m.Route_map.name, e.Route_map.seq)
          else None)
        m.Route_map.entries)
    c.Config_ir.route_maps

let community_match_entries (c : Config_ir.t) =
  List.concat_map
    (fun (m : Route_map.t) ->
      List.filter_map
        (fun (e : Route_map.entry) ->
          if
            List.exists
              (function Route_map.Match_community_list _ -> true | _ -> false)
              e.Route_map.matches
          then Some (m.Route_map.name, e.Route_map.seq)
          else None)
        m.Route_map.entries)
    c.Config_ir.route_maps

let additive_entries (c : Config_ir.t) =
  List.concat_map
    (fun (m : Route_map.t) ->
      List.filter_map
        (fun (e : Route_map.entry) ->
          if
            List.exists
              (function
                | Route_map.Set_community { additive = true; _ } -> true
                | _ -> false)
              e.Route_map.sets
          then Some (m.Route_map.name, e.Route_map.seq)
          else None)
        m.Route_map.entries)
    c.Config_ir.route_maps

(* Maps where the AND/OR confusion is expressible: at least two deny entries
   each matching a single community list. *)
let and_or_candidates (c : Config_ir.t) =
  List.filter_map
    (fun (m : Route_map.t) ->
      let single_community_denies =
        List.filter
          (fun (e : Route_map.entry) ->
            e.Route_map.action = Action.Deny
            && match e.Route_map.matches with
               | [ Route_map.Match_community_list _ ] -> true
               | _ -> false)
          m.Route_map.entries
      in
      if List.length single_community_denies >= 2 then Some m.Route_map.name else None)
    c.Config_ir.route_maps

let has_protocol_scoping (c : Config_ir.t) =
  List.exists
    (fun (m : Route_map.t) ->
      List.exists
        (fun (e : Route_map.entry) ->
          List.exists
            (function Route_map.Match_source_protocol _ -> true | _ -> false)
            e.Route_map.matches)
        m.Route_map.entries)
    c.Config_ir.route_maps

let ospf_interfaces (c : Config_ir.t) =
  match c.Config_ir.ospf with None -> [] | Some o -> o.Config_ir.interfaces

let acl_opportunities (c : Config_ir.t) =
  let f cls tgt = { class_ = cls; target = tgt } in
  List.concat_map
    (fun (a : Acl.t) ->
      List.concat_map
        (fun (e : Acl.entry) ->
          f Error_class.Acl_action_flipped (Policy_entry (a.Acl.name, e.Acl.seq))
          :: f Error_class.Acl_entry_dropped (Policy_entry (a.Acl.name, e.Acl.seq))
          ::
          (match e.Acl.dst_port with
          | Acl.Any_port -> []
          | Acl.Eq _ | Acl.Port_range _ ->
              [ f Error_class.Acl_wrong_port (Policy_entry (a.Acl.name, e.Acl.seq)) ]))
        a.Acl.entries)
    c.Config_ir.acls

let opportunities dialect (c : Config_ir.t) =
  let f cls tgt = { class_ = cls; target = tgt } in
  match dialect with
  | Junos_cfg ->
      (match c.Config_ir.bgp with
      | Some _ -> [ f Error_class.Missing_local_as Whole_config ]
      | None -> [])
      @ List.filter_map
          (fun (n : Config_ir.neighbor) ->
            Option.map
              (fun _ -> f Error_class.Missing_import_policy (Neighbor n.Config_ir.addr))
              n.Config_ir.import_policy)
          (neighbors c)
      @ List.filter_map
          (fun (n : Config_ir.neighbor) ->
            Option.map
              (fun _ -> f Error_class.Missing_export_policy (Neighbor n.Config_ir.addr))
              n.Config_ir.export_policy)
          (neighbors c)
      @ List.concat_map
          (fun (oi : Config_ir.ospf_interface) ->
            f Error_class.Ospf_cost_wrong (Interface oi.Config_ir.iface)
            :: (if oi.Config_ir.passive then
                  [ f Error_class.Ospf_passive_wrong (Interface oi.Config_ir.iface) ]
                else []))
          (ospf_interfaces c)
      @ List.map (fun (m, s) -> f Error_class.Wrong_med (Policy_entry (m, s))) (med_entries c)
      @ List.filter_map
          (fun (l : Prefix_list.t) ->
            if has_ranged_entries l then
              Some (f Error_class.Prefix_range_dropped (Named_list l.Prefix_list.name))
            else None)
          c.Config_ir.prefix_lists
      @ (if has_protocol_scoping c then
           [ f Error_class.Redistribution_unscoped Whole_config ]
         else [])
      @ acl_opportunities c
  | Cisco_cfg ->
      [ f Error_class.Cli_keywords Whole_config ]
      @ List.map
          (fun (m, s) -> f Error_class.Match_community_literal (Policy_entry (m, s)))
          (community_match_entries c)
      @ List.map
          (fun (m, s) -> f Error_class.Community_not_additive (Policy_entry (m, s)))
          (additive_entries c)
      @ List.filter_map
          (fun (n : Config_ir.neighbor) ->
            Option.map
              (fun _ -> f Error_class.Neighbor_outside_bgp (Neighbor n.Config_ir.addr))
              n.Config_ir.export_policy)
          (neighbors c)
      @ List.map (fun m -> f Error_class.And_or_confusion (Policy m)) (and_or_candidates c)
      @ (let with_imports =
           List.filter
             (fun (n : Config_ir.neighbor) -> n.Config_ir.import_policy <> None)
             (neighbors c)
         in
         if List.length with_imports >= 2 then
           [ f Error_class.Crossed_policy_attachment Whole_config ]
         else [])
      @ List.concat_map
          (fun (m : Route_map.t) ->
            let has_prepend =
              List.exists
                (fun (e : Route_map.entry) ->
                  List.exists
                    (function Route_map.Set_as_path_prepend _ -> true | _ -> false)
                    e.Route_map.sets)
                m.Route_map.entries
            in
            let has_denies =
              List.exists
                (fun (e : Route_map.entry) -> e.Route_map.action = Action.Deny)
                m.Route_map.entries
            in
            if not has_prepend then []
            else
              (if has_denies then
                 [ f Error_class.Policy_inserted_early (Policy m.Route_map.name) ]
               else [])
              @
              if List.length c.Config_ir.route_maps >= 2 then
                [ f Error_class.Wrong_policy_modified (Policy m.Route_map.name) ]
              else [])
          c.Config_ir.route_maps
      @ List.filter_map
          (fun (i : Config_ir.interface) ->
            Option.map
              (fun _ -> f Error_class.Wrong_interface_ip (Interface i.Config_ir.iface))
              i.Config_ir.address)
          c.Config_ir.interfaces
      @ (match c.Config_ir.bgp with
        | Some b ->
            [
              f Error_class.Wrong_local_as Whole_config;
              f Error_class.Extra_neighbor_decl Whole_config;
              f Error_class.Extra_network_decl Whole_config;
            ]
            @ (match b.Config_ir.router_id with
              | Some _ -> [ f Error_class.Wrong_router_id Whole_config ]
              | None -> [])
            @ List.map
                (fun (n : Config_ir.neighbor) ->
                  f Error_class.Missing_neighbor_decl (Neighbor n.Config_ir.addr))
                b.Config_ir.neighbors
            @ List.map
                (fun p -> f Error_class.Missing_network_decl (Network p))
                b.Config_ir.networks
        | None -> [])

(* ------------------------------------------------------------------ *)
(* IR corruption                                                       *)
(* ------------------------------------------------------------------ *)

let map_neighbor (c : Config_ir.t) addr g =
  match c.Config_ir.bgp with
  | None -> c
  | Some b ->
      let neighbors =
        List.map
          (fun (n : Config_ir.neighbor) ->
            if Ipv4.equal n.Config_ir.addr addr then g n else n)
          b.Config_ir.neighbors
      in
      { c with Config_ir.bgp = Some { b with Config_ir.neighbors } }

let map_bgp (c : Config_ir.t) g =
  match c.Config_ir.bgp with None -> c | Some b -> { c with Config_ir.bgp = Some (g b) }

let map_ospf_iface (c : Config_ir.t) iface g =
  match c.Config_ir.ospf with
  | None -> c
  | Some o ->
      let interfaces =
        List.map
          (fun (oi : Config_ir.ospf_interface) ->
            if Iface.equal oi.Config_ir.iface iface then g oi else oi)
          o.Config_ir.interfaces
      in
      { c with Config_ir.ospf = Some { o with Config_ir.interfaces } }

let map_route_map (c : Config_ir.t) name g =
  {
    c with
    Config_ir.route_maps =
      List.map
        (fun (m : Route_map.t) -> if m.Route_map.name = name then g m else m)
        c.Config_ir.route_maps;
  }

let map_entry (c : Config_ir.t) name seq g =
  map_route_map c name (fun m ->
      Route_map.make m.Route_map.name
        (List.map
           (fun (e : Route_map.entry) -> if e.Route_map.seq = seq then g e else e)
           m.Route_map.entries))

let apply_and_or_confusion (m : Route_map.t) =
  (* Merge all single-community deny entries into the first one (AND). *)
  let is_single_comm_deny (e : Route_map.entry) =
    e.Route_map.action = Action.Deny
    && match e.Route_map.matches with
       | [ Route_map.Match_community_list _ ] -> true
       | _ -> false
  in
  let denies, others = List.partition is_single_comm_deny m.Route_map.entries in
  match denies with
  | [] | [ _ ] -> m
  | first :: _ ->
      let all_matches = List.concat_map (fun (e : Route_map.entry) -> e.Route_map.matches) denies in
      let merged = { first with Route_map.matches = all_matches } in
      Route_map.make m.Route_map.name
        (List.sort
           (fun (a : Route_map.entry) b -> Int.compare a.Route_map.seq b.Route_map.seq)
           (merged :: others))

let extra_neighbor_addr (b : Config_ir.bgp) =
  let k = List.length b.Config_ir.neighbors + 1 in
  (Ipv4.of_octets (k land 0xFF) 0 0 2, k)

let apply_ir (c : Config_ir.t) (fault : t) =
  match (fault.class_, fault.target) with
  | Error_class.Missing_import_policy, Neighbor a ->
      map_neighbor c a (fun n -> { n with Config_ir.import_policy = None })
  | Error_class.Missing_export_policy, Neighbor a ->
      map_neighbor c a (fun n -> { n with Config_ir.export_policy = None })
  | Error_class.Ospf_cost_wrong, Interface i ->
      (* The translated metric is dropped, silently reverting to the Junos
         default — exactly the Table 1 cost example. *)
      map_ospf_iface c i (fun oi -> { oi with Config_ir.cost = None })
  | Error_class.Ospf_passive_wrong, Interface i ->
      map_ospf_iface c i (fun oi -> { oi with Config_ir.passive = not oi.Config_ir.passive })
  | Error_class.Wrong_med, Policy_entry (m, s) ->
      map_entry c m s (fun e ->
          {
            e with
            Route_map.sets =
              List.filter
                (function Route_map.Set_med _ -> false | _ -> true)
                e.Route_map.sets;
          })
  | Error_class.Prefix_range_dropped, Named_list n ->
      {
        c with
        Config_ir.prefix_lists =
          List.map
            (fun (l : Prefix_list.t) ->
              if l.Prefix_list.name = n then
                Prefix_list.make n
                  (List.map
                     (fun (e : Prefix_list.entry) ->
                       {
                         e with
                         Prefix_list.range =
                           Prefix_range.exact (Prefix_range.base e.Prefix_list.range);
                       })
                     l.Prefix_list.entries)
              else l)
            c.Config_ir.prefix_lists;
      }
  | Error_class.Redistribution_unscoped, Whole_config ->
      {
        c with
        Config_ir.route_maps =
          List.map
            (fun (m : Route_map.t) ->
              Route_map.make m.Route_map.name
                (List.map
                   (fun (e : Route_map.entry) ->
                     {
                       e with
                       Route_map.matches =
                         List.filter
                           (function
                             | Route_map.Match_source_protocol _ -> false
                             | _ -> true)
                           e.Route_map.matches;
                     })
                   m.Route_map.entries))
            c.Config_ir.route_maps;
      }
  | Error_class.Community_not_additive, Policy_entry (m, s) ->
      map_entry c m s (fun e ->
          {
            e with
            Route_map.sets =
              List.map
                (function
                  | Route_map.Set_community { communities; additive = true } ->
                      Route_map.Set_community { communities; additive = false }
                  | other -> other)
                e.Route_map.sets;
          })
  | Error_class.And_or_confusion, Policy m -> map_route_map c m apply_and_or_confusion
  | Error_class.Wrong_interface_ip, Interface i ->
      {
        c with
        Config_ir.interfaces =
          List.map
            (fun (x : Config_ir.interface) ->
              if Iface.equal x.Config_ir.iface i then
                match x.Config_ir.address with
                | Some (a, l) -> { x with Config_ir.address = Some (Ipv4.succ a, l) }
                | None -> x
              else x)
            c.Config_ir.interfaces;
      }
  | Error_class.Wrong_local_as, Whole_config ->
      map_bgp c (fun b -> { b with Config_ir.asn = b.Config_ir.asn + 2 })
  | Error_class.Wrong_router_id, Whole_config ->
      map_bgp c (fun b ->
          { b with Config_ir.router_id = Option.map Ipv4.succ b.Config_ir.router_id })
  | Error_class.Missing_neighbor_decl, Neighbor a ->
      map_bgp c (fun b ->
          {
            b with
            Config_ir.neighbors =
              List.filter
                (fun (n : Config_ir.neighbor) -> not (Ipv4.equal n.Config_ir.addr a))
                b.Config_ir.neighbors;
          })
  | Error_class.Extra_neighbor_decl, Whole_config ->
      map_bgp c (fun b ->
          let addr, asn = extra_neighbor_addr b in
          {
            b with
            Config_ir.neighbors =
              b.Config_ir.neighbors @ [ Config_ir.neighbor addr ~remote_as:asn ];
          })
  | Error_class.Missing_network_decl, Network p ->
      map_bgp c (fun b ->
          {
            b with
            Config_ir.networks = List.filter (fun x -> not (Prefix.equal x p)) b.Config_ir.networks;
          })
  | Error_class.Extra_network_decl, Whole_config ->
      map_bgp c (fun b ->
          let k = (List.length b.Config_ir.neighbors + 1) land 0xFF in
          {
            b with
            Config_ir.networks =
              b.Config_ir.networks @ [ Prefix.make (Ipv4.of_octets k 0 0 0) 24 ];
          })
  | Error_class.Policy_inserted_early, Policy name ->
      map_route_map c name (fun m ->
          (* Strip the prepend from its entry and re-insert it as a new
             permit term ahead of every existing stanza. *)
          let prepend = ref None in
          let stripped =
            List.map
              (fun (e : Route_map.entry) ->
                let sets =
                  List.filter
                    (function
                      | Route_map.Set_as_path_prepend asns ->
                          prepend := Some asns;
                          false
                      | _ -> true)
                    e.Route_map.sets
                in
                { e with Route_map.sets })
              m.Route_map.entries
          in
          match !prepend with
          | None -> m
          | Some asns ->
              let min_seq =
                List.fold_left
                  (fun acc (e : Route_map.entry) -> min acc e.Route_map.seq)
                  max_int stripped
              in
              let early =
                Route_map.entry
                  ~sets:[ Route_map.Set_as_path_prepend asns ]
                  (max 1 (min_seq - 5))
              in
              Route_map.make m.Route_map.name (early :: stripped))
  | Error_class.Wrong_policy_modified, Policy name ->
      (* Move the prepend actions to the alphabetically next route map. *)
      let prepends = ref [] in
      let stripped =
        map_route_map c name (fun m ->
            Route_map.make m.Route_map.name
              (List.map
                 (fun (e : Route_map.entry) ->
                   let sets =
                     List.filter
                       (function
                         | Route_map.Set_as_path_prepend asns ->
                             prepends := asns :: !prepends;
                             false
                         | _ -> true)
                       e.Route_map.sets
                   in
                   { e with Route_map.sets })
                 m.Route_map.entries))
      in
      let other =
        let names =
          List.sort String.compare
            (List.filter_map
               (fun (m : Route_map.t) ->
                 if m.Route_map.name = name then None else Some m.Route_map.name)
               c.Config_ir.route_maps)
        in
        List.find_opt (fun n -> n > name) names
        |> fun found -> (match (found, names) with Some n, _ -> Some n | None, n :: _ -> Some n | None, [] -> None)
      in
      (match (!prepends, other) with
      | asns :: _, Some other_name ->
          map_route_map stripped other_name (fun m ->
              match List.rev m.Route_map.entries with
              | last :: rest when last.Route_map.action = Action.Permit ->
                  Route_map.make m.Route_map.name
                    (List.rev
                       ({ last with
                          Route_map.sets =
                            last.Route_map.sets @ [ Route_map.Set_as_path_prepend asns ] }
                       :: rest))
              | _ -> m)
      | _ -> stripped)
  | Error_class.Acl_action_flipped, Policy_entry (name, seq) ->
      {
        c with
        Config_ir.acls =
          List.map
            (fun (a : Acl.t) ->
              if a.Acl.name = name then
                Acl.make name
                  (List.map
                     (fun (e : Acl.entry) ->
                       if e.Acl.seq = seq then
                         { e with Acl.action = Action.flip e.Acl.action }
                       else e)
                     a.Acl.entries)
              else a)
            c.Config_ir.acls;
      }
  | Error_class.Acl_entry_dropped, Policy_entry (name, seq) ->
      {
        c with
        Config_ir.acls =
          List.map
            (fun (a : Acl.t) ->
              if a.Acl.name = name then
                Acl.make name
                  (List.filter (fun (e : Acl.entry) -> e.Acl.seq <> seq) a.Acl.entries)
              else a)
            c.Config_ir.acls;
      }
  | Error_class.Acl_wrong_port, Policy_entry (name, seq) ->
      {
        c with
        Config_ir.acls =
          List.map
            (fun (a : Acl.t) ->
              if a.Acl.name = name then
                Acl.make name
                  (List.map
                     (fun (e : Acl.entry) ->
                       if e.Acl.seq = seq then
                         {
                           e with
                           Acl.dst_port =
                             (match e.Acl.dst_port with
                             | Acl.Eq p -> Acl.Eq ((p + 1) land 0xFFFF)
                             | Acl.Port_range (lo, hi) ->
                                 Acl.Port_range (lo, min 65535 (hi + 1))
                             | Acl.Any_port -> Acl.Any_port);
                         }
                       else e)
                     a.Acl.entries)
              else a)
            c.Config_ir.acls;
      }
  | Error_class.Crossed_policy_attachment, Whole_config ->
      map_bgp c (fun b ->
          let with_imports =
            List.filter
              (fun (n : Config_ir.neighbor) -> n.Config_ir.import_policy <> None)
              b.Config_ir.neighbors
          in
          match with_imports with
          | first :: second :: _ ->
              let swap (n : Config_ir.neighbor) =
                if Ipv4.equal n.Config_ir.addr first.Config_ir.addr then
                  { n with Config_ir.import_policy = second.Config_ir.import_policy }
                else if Ipv4.equal n.Config_ir.addr second.Config_ir.addr then
                  { n with Config_ir.import_policy = first.Config_ir.import_policy }
                else n
              in
              { b with Config_ir.neighbors = List.map swap b.Config_ir.neighbors }
          | _ -> b)
  (* Text-level faults: no IR change. *)
  | Error_class.Missing_local_as, _
  | Error_class.Bad_prefix_list_syntax, _
  | Error_class.Cli_keywords, _
  | Error_class.Match_community_literal, _
  | Error_class.Neighbor_outside_bgp, _ ->
      c
  (* Mis-targeted faults are ignored (total rendering). *)
  | _, _ -> c

(* ------------------------------------------------------------------ *)
(* Text corruption                                                     *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let lines s = String.split_on_char '\n' s
let unlines l = String.concat "\n" l

let apply_missing_local_as text =
  unlines
    (List.filter
       (fun l -> not (contains ~sub:"autonomous-system" l || contains ~sub:"local-as" l))
       (lines text))

let apply_bad_prefix_list (correct : Config_ir.t) list_name text =
  match Config_ir.find_prefix_list correct list_name with
  | None | Some { Prefix_list.entries = []; _ } -> text
  | Some { Prefix_list.entries = e :: _; _ } ->
      let base = Prefix_range.base e.Prefix_list.range in
      let base_str = Prefix.to_string base in
      let marker = "route-filter " ^ base_str in
      let replaced = ref false in
      let keep l =
        if contains ~sub:marker l then
          if !replaced then None
          else begin
            replaced := true;
            (* Preserve indentation. *)
            let indent =
              let rec count i = if i < String.length l && l.[i] = ' ' then count (i + 1) else i in
              String.make (count 0) ' '
            in
            Some (indent ^ "prefix-list " ^ list_name ^ ";")
          end
        else Some l
      in
      let body = List.filter_map keep (lines text) in
      let invalid_def =
        Printf.sprintf "policy-options {\n    prefix-list %s {\n        %s-32;\n    }\n}\n"
          list_name base_str
      in
      unlines body ^ invalid_def

let apply_cli_keywords text =
  "configure terminal\n" ^ text ^ "end\nwrite memory\n"

let apply_neighbor_outside_bgp addr text =
  let addr_str = Netcore.Ipv4.to_string addr in
  let is_export_attachment l =
    contains ~sub:("neighbor " ^ addr_str ^ " route-map") l && contains ~sub:" out" l
  in
  let moved = List.filter is_export_attachment (lines text) in
  match moved with
  | [] -> text
  | line :: _ ->
      let rest = List.filter (fun l -> not (is_export_attachment l)) (lines text) in
      unlines rest ^ String.trim line ^ "\n"

let apply_match_community_literal (correct : Config_ir.t) map_name seq text =
  (* Find the stanza header, then the first community match inside it, and
     replace the list reference with the literal community. *)
  let header_prefix = Printf.sprintf "route-map %s" map_name in
  let header_suffix = Printf.sprintf " %d" seq in
  let literal_of list_name =
    match Config_ir.find_community_list correct list_name with
    | Some { Community_list.entries = { Community_list.communities = c :: _; _ } :: _; _ } ->
        Community.to_string c
    | _ -> "100:1"
  in
  let rec go acc in_stanza done_ = function
    | [] -> List.rev acc
    | l :: rest ->
        let is_header = String.length l > 0 && l.[0] <> ' ' in
        let entering =
          contains ~sub:header_prefix l && contains ~sub:header_suffix l && is_header
        in
        let in_stanza = if is_header then entering else in_stanza in
        if (not done_) && in_stanza && contains ~sub:"match community " l then
          let toks = String.split_on_char ' ' (String.trim l) in
          match toks with
          | [ "match"; "community"; name ] ->
              go ((" match community " ^ literal_of name) :: acc) in_stanza true rest
          | _ -> go (l :: acc) in_stanza done_ rest
        else go (l :: acc) in_stanza done_ rest
  in
  unlines (go [] false false (lines text))

let apply_text (correct : Config_ir.t) text (fault : t) =
  match (fault.class_, fault.target) with
  | Error_class.Missing_local_as, _ -> apply_missing_local_as text
  | Error_class.Bad_prefix_list_syntax, Named_list n -> apply_bad_prefix_list correct n text
  | Error_class.Cli_keywords, _ -> apply_cli_keywords text
  | Error_class.Neighbor_outside_bgp, Neighbor a -> apply_neighbor_outside_bgp a text
  | Error_class.Match_community_literal, Policy_entry (m, s) ->
      apply_match_community_literal correct m s text
  | _ -> text

let is_text_fault (fault : t) =
  match fault.class_ with
  | Error_class.Missing_local_as | Error_class.Bad_prefix_list_syntax
  | Error_class.Cli_keywords | Error_class.Neighbor_outside_bgp
  | Error_class.Match_community_literal ->
      true
  | _ -> false

let render dialect (correct : Config_ir.t) faults =
  let ir_faults, text_faults = List.partition (fun f -> not (is_text_fault f)) faults in
  let ir = List.fold_left apply_ir correct ir_faults in
  let text =
    match dialect with
    | Cisco_cfg -> Cisco.Printer.print ir
    | Junos_cfg -> Juniper.Printer.print ir
  in
  List.fold_left (apply_text correct) text text_faults
