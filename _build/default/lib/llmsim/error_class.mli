(** The error taxonomy of the simulated GPT-4.

    One constructor per mistake class the paper reports (Table 2 for
    translation, Section 4.2 for local synthesis), with a calibrated profile:
    how often the class is injected into a fresh draft, how likely an
    automated (humanizer-generated) prompt is to fix it, how likely a
    targeted human prompt is, and whether an Initial Instruction Prompt
    suppresses it altogether. *)

type t =
  (* Cisco -> Juniper translation (Table 2). *)
  | Missing_local_as  (** Neither autonomous-system nor local-as emitted. *)
  | Bad_prefix_list_syntax  (** The invalid [1.2.3.0/24-32] shorthand. *)
  | Missing_import_policy
  | Missing_export_policy
  | Ospf_cost_wrong
  | Ospf_passive_wrong
  | Wrong_med  (** A route-map clause forgets to update the MED. *)
  | Prefix_range_dropped  (** [ge]/[le] bounds silently dropped. *)
  | Redistribution_unscoped
      (** Export terms not scoped by source protocol: extra routes
          redistributed into BGP. *)
  (* Local synthesis (Section 4.2). *)
  | Cli_keywords  (** [configure terminal] / [end] / [write] in the file. *)
  | Match_community_literal  (** [match community 100:1]. *)
  | Community_not_additive  (** [set community] without [additive]. *)
  | Neighbor_outside_bgp  (** A neighbor command outside the router bgp block. *)
  | And_or_confusion  (** All community matches in one stanza. *)
  | Wrong_interface_ip
  | Wrong_local_as
  | Wrong_router_id
  | Missing_neighbor_decl
  | Extra_neighbor_decl
  | Missing_network_decl
  | Extra_network_decl
  | Crossed_policy_attachment
      (** Ingress policies attached to the wrong neighbors — caught only by
          the whole-network check (simulation or modular proof). *)
  | Policy_inserted_early
      (** An incrementally added term placed before the existing deny
          stanzas, bypassing the verified policy. *)
  | Wrong_policy_modified
      (** The incremental change landed in a different route map. *)
  | Acl_action_flipped  (** A permit became a deny (or vice versa). *)
  | Acl_entry_dropped  (** An access-list entry silently omitted. *)
  | Acl_wrong_port  (** A port match translated to a different port. *)

type category = Syntax | Structural | Attribute | Policy_behavior | Topology | Semantic

type profile = {
  category : category;
  injection_rate : float;
      (** P(injected) per opportunity in an initial draft. *)
  auto_fix : float;  (** P(fixed) given the matching automated prompt. *)
  human_fix : float;  (** P(fixed) given a targeted human prompt. *)
  successor : t option;
      (** Fixing sometimes morphs the error instead (the paper's
          [ge 24] -> [/24-32] progression). Probability [1 - auto_fix] mass
          goes to the successor when present, to "no change" otherwise. *)
  iip : string option;  (** IIP id that suppresses injection. *)
}

val all : t list
val profile : t -> profile
val category_to_string : category -> string
val to_string : t -> string
val table2_label : t -> string option
(** The row label in the paper's Table 2, for the eight translation
    classes. *)

val equal : t -> t -> bool
