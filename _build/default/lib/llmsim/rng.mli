(** Deterministic splittable RNG (splitmix64). All stochastic behaviour of
    the simulated LLM flows from one seed, so every experiment is exactly
    reproducible. *)

type t

val make : int -> t
val split : t -> t * t
(** Two independent streams. *)

val next_int64 : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val bernoulli : t -> float -> bool
val int : t -> int -> int
(** [int t bound] uniform in [0, bound); [bound > 0]. *)

val choice : t -> 'a list -> 'a option
(** Uniform element, [None] on the empty list. *)
