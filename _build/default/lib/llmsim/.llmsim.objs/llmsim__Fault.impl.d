lib/llmsim/fault.ml: Acl Action Cisco Community Community_list Config_ir Error_class Iface Int Ipv4 Juniper List Netcore Option Policy Prefix Prefix_list Prefix_range Printf Route_map String
