lib/llmsim/error_class.mli:
