lib/llmsim/error_class.ml:
