lib/llmsim/rng.mli:
