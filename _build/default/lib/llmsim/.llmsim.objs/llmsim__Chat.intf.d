lib/llmsim/chat.mli: Config_ir Error_class Fault Policy
