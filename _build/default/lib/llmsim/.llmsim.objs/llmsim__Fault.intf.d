lib/llmsim/fault.mli: Config_ir Error_class Iface Ipv4 Netcore Policy Prefix
