lib/llmsim/chat.ml: Config_ir Error_class Fault Float List Policy Rng
