lib/llmsim/rng.ml: Int64 List
