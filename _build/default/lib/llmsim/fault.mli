(** Concrete fault instances: an error class applied at a location of a
    configuration, with functions to enumerate injection opportunities,
    corrupt the correct artifact, and render the corrupted text. *)

open Netcore
open Policy

type target =
  | Whole_config
  | Neighbor of Ipv4.t
  | Policy of string
  | Policy_entry of string * int
  | Interface of Iface.t
  | Named_list of string
  | Network of Prefix.t

type t = { class_ : Error_class.t; target : target }

type dialect = Cisco_cfg | Junos_cfg

val make : Error_class.t -> target -> t
val equal : t -> t -> bool
val to_string : t -> string
val target_to_string : target -> string

val opportunities : dialect -> Config_ir.t -> t list
(** Every fault instance that could be injected into this artifact: e.g. one
    [Ospf_cost_wrong] per OSPF interface, one [Missing_neighbor_decl] per
    neighbor, one [Redistribution_unscoped] when export policies carry
    source-protocol scoping. *)

val render : dialect -> Config_ir.t -> t list -> string
(** Apply every fault to the correct IR, print in the dialect, then apply
    the text-level manglings (CLI keywords, misplaced neighbor lines, the
    /24-32 shorthand, dropped local-as lines). Unknown targets are ignored
    (rendering is total). *)
