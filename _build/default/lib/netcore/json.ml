type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then (
              Buffer.add_char buf ',';
              nl ());
            if pretty then indent (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        if pretty then indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then (
              Buffer.add_char buf ',';
              nl ());
            if pretty then indent (depth + 1);
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) item)
          fields;
        nl ();
        if pretty then indent depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string ~pretty:true v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (st.pos, msg))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %c, found %c" c c')
  | None -> fail st (Printf.sprintf "expected %c, found end of input" c)

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then (
    st.pos <- st.pos + n;
    value)
  else fail st (Printf.sprintf "invalid literal (expected %s)" word)

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' ->
            Buffer.add_char buf '"';
            advance st;
            go ()
        | Some '\\' ->
            Buffer.add_char buf '\\';
            advance st;
            go ()
        | Some '/' ->
            Buffer.add_char buf '/';
            advance st;
            go ()
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance st;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance st;
            go ()
        | Some 'r' ->
            Buffer.add_char buf '\r';
            advance st;
            go ()
        | Some 'b' ->
            Buffer.add_char buf '\b';
            advance st;
            go ()
        | Some 'f' ->
            Buffer.add_char buf '\012';
            advance st;
            go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
            let hex = String.sub st.src st.pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
            | Some _ ->
                (* Non-ASCII escapes are preserved as '?': the topology format
                   never uses them, and lossy beats failing here. *)
                Buffer.add_char buf '?'
            | None -> fail st "bad \\u escape");
            st.pos <- st.pos + 4;
            go ()
        | _ -> fail st "bad escape")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ()

let is_number_char = function
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

let parse_number st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_number_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st (Printf.sprintf "bad number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> String (parse_string_body st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some c when is_number_char c -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %c" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then (
    advance st;
    Obj [])
  else
    let rec fields acc =
      skip_ws st;
      let key = parse_string_body st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          fields ((key, v) :: acc)
      | Some '}' ->
          advance st;
          Obj (List.rev ((key, v) :: acc))
      | _ -> fail st "expected , or } in object"
    in
    fields []

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then (
    advance st;
    List [])
  else
    let rec items acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          items (v :: acc)
      | Some ']' ->
          advance st;
          List (List.rev (v :: acc))
      | _ -> fail st "expected , or ] in array"
    in
    items []

let of_string_exn s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing characters";
  v

let of_string s =
  match of_string_exn s with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" pos msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int = function Int n -> Some n | _ -> None
let to_float = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_obj = function Obj o -> Some o | _ -> None

let member_exn k v =
  match member k v with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "Json.member_exn: missing key %S" k)

let int_exn v =
  match to_int v with Some n -> n | None -> invalid_arg "Json.int_exn: not an int"

let str_exn v =
  match to_str v with Some s -> s | None -> invalid_arg "Json.str_exn: not a string"

let list_exn v =
  match to_list v with Some l -> l | None -> invalid_arg "Json.list_exn: not a list"

let equal a b = a = b
