let name k = Printf.sprintf "R%d" k
let stub_prefix k = Prefix.make (Ipv4.of_octets 10 k 0 0) 24
let link_subnet k = Prefix.make (Ipv4.of_octets 172 16 k 0) 24

(* The link [k] connects router [k] (at .1, on Ethernet0/1... on its "right"
   port) to its successor (at .2, on its "left" port). *)
let link ~idx ~left ~right ~left_port ~right_port =
  {
    Topology.a =
      {
        Topology.router = name left;
        iface = Iface.ethernet ~slot:0 ~port:left_port;
        addr = Prefix.nth_host (link_subnet idx) 1;
      };
    b =
      {
        Topology.router = name right;
        iface = Iface.ethernet ~slot:0 ~port:right_port;
        addr = Prefix.nth_host (link_subnet idx) 2;
      };
    subnet = link_subnet idx;
  }

let router k ~ports =
  {
    Topology.name = name k;
    asn = k;
    router_id = Ipv4.of_octets k k k k;
    ports =
      { Topology.iface = Iface.ethernet ~slot:0 ~port:0;
        addr = Prefix.nth_host (stub_prefix k) 1;
        subnet = stub_prefix k }
      :: ports;
    stub_networks = [ stub_prefix k ];
  }

let port_on_link ~idx ~side_a ~port =
  {
    Topology.iface = Iface.ethernet ~slot:0 ~port;
    addr = Prefix.nth_host (link_subnet idx) (if side_a then 1 else 2);
    subnet = link_subnet idx;
  }

let chain ~routers:n =
  if n < 2 then invalid_arg "Topo_gen.chain: need at least 2 routers";
  let routers =
    List.init n (fun i ->
        let k = i + 1 in
        let left = if k > 1 then [ port_on_link ~idx:(k - 1) ~side_a:false ~port:1 ] else [] in
        let right = if k < n then [ port_on_link ~idx:k ~side_a:true ~port:2 ] else [] in
        router k ~ports:(left @ right))
  in
  let links =
    List.init (n - 1) (fun i ->
        let k = i + 1 in
        link ~idx:k ~left:k ~right:(k + 1) ~left_port:2 ~right_port:1)
  in
  let t = { Topology.routers; links } in
  match Topology.validate t with
  | Ok () -> t
  | Error errs -> invalid_arg ("Topo_gen.chain: " ^ String.concat "; " errs)

let ring ~routers:n =
  if n < 3 then invalid_arg "Topo_gen.ring: need at least 3 routers";
  let routers =
    List.init n (fun i ->
        let k = i + 1 in
        let left_idx = if k = 1 then n else k - 1 in
        let left = [ port_on_link ~idx:left_idx ~side_a:(k = 1) ~port:1 ] in
        let right = if k < n then [ port_on_link ~idx:k ~side_a:true ~port:2 ] else [] in
        let right = if k = n then [ port_on_link ~idx:n ~side_a:false ~port:2 ] else right in
        router k ~ports:(left @ right))
  in
  let links =
    List.init (n - 1) (fun i ->
        let k = i + 1 in
        link ~idx:k ~left:k ~right:(k + 1) ~left_port:2 ~right_port:1)
    @ [
        (* Closing link: R1 side a (.1, port 1), Rn side b (.2, port 2). *)
        {
          Topology.a =
            {
              Topology.router = name 1;
              iface = Iface.ethernet ~slot:0 ~port:1;
              addr = Prefix.nth_host (link_subnet n) 1;
            };
          b =
            {
              Topology.router = name n;
              iface = Iface.ethernet ~slot:0 ~port:2;
              addr = Prefix.nth_host (link_subnet n) 2;
            };
          subnet = link_subnet n;
        };
      ]
  in
  let t = { Topology.routers; links } in
  match Topology.validate t with
  | Ok () -> t
  | Error errs -> invalid_arg ("Topo_gen.ring: " ^ String.concat "; " errs)
