(** The star network of Figure 4: the paper's "network generator".

    One hub router (R1) is attached to a CUSTOMER network, and each spoke
    router (R2..Rn) is attached to a different ISP network; all spokes
    connect directly to the hub. The generator "only needs the number of
    routers as input" and has "two outputs: 1) a textual description and 2) a
    JSON dictionary for the entire network topology".

    Addressing scheme (documented so the topology verifier's expectations in
    Table 3 are reproducible):
    - Router [Rk] owns AS number [k].
    - The link between R1 and Rk (k >= 2) uses subnet [(k-1).0.0.0/24]; R1's
      side is [Ethernet0/(k-1)] at [(k-1).0.0.1] and Rk's side is
      [Ethernet0/1] at [(k-1).0.0.2].
    - R1's router id is [1.0.0.1]; Rk's router id is [(k-1).0.0.2].
    - The CUSTOMER network [10.0.0.0/24] hangs off R1's [Ethernet0/0];
      ISP k's network [10.k.0.0/24] hangs off Rk's [Ethernet0/0].
    - The community the hub attaches to routes learned from spoke Rk is
      [(98+k):1], i.e. 100:1 for R2, 101:1 for R3, ... as in Section 4.2. *)

type t = {
  topology : Topology.t;
  hub : string;  (** ["R1"]. *)
  spokes : string list;  (** [["R2"; ...; "Rn"]]. *)
  customer_prefix : Prefix.t;
}

val make : routers:int -> t
(** [make ~routers:n] builds the star with [n] routers total ([n - 1] ISPs).
    Raises [Invalid_argument] when [n < 2] or [n > 200] (the /24-per-spoke
    addressing scheme runs out beyond that). *)

val isp_prefix : t -> string -> Prefix.t option
(** The ISP network attached to a spoke, [None] for the hub or unknown
    names. *)

val community_of : t -> string -> Community.t option
(** The community tagging routes learned from a given spoke. *)

val spoke_index : t -> string -> int option
(** [spoke_index t "Rk"] is [k] when Rk is a spoke of [t]. *)

val description : t -> string
(** Output 1 of the generator: the natural-language topology prompt. *)

val to_json : t -> Json.t
(** Output 2 of the generator: the JSON topology dictionary. *)
