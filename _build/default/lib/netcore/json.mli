(** A small self-contained JSON implementation.

    The paper's modularizer exchanges the network topology as "a precise
    machine readable (we use JSON) description". We implement just enough of
    RFC 8259 for that purpose rather than depending on an external package:
    values, a recursive-descent parser with error positions, a printer, and
    accessor combinators. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string
(** [(position, message)]: raised by {!of_string_exn}. *)

val of_string : string -> (t, string) result
val of_string_exn : string -> t

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents with two spaces. *)

val pp : Format.formatter -> t -> unit

(** {2 Accessors}

    All return [None] on shape mismatch rather than raising. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option

val member_exn : string -> t -> t
val int_exn : t -> int
val str_exn : t -> string
val list_exn : t -> t list

val equal : t -> t -> bool
