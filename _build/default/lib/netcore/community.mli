(** BGP standard communities (RFC 1997), written [asn:value]. *)

type t = private { asn : int; value : int }

val make : int -> int -> t
(** [make asn value]. Both halves must fit in 16 bits. *)

val of_string : string -> t option
(** Parse ["100:1"]. *)

val of_string_exn : string -> t
val to_string : t -> string

val no_export : t
(** Well-known community [65535:65281]. *)

val no_advertise : t
(** Well-known community [65535:65282]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : sig
  include Set.S with type elt = t

  val to_string : t -> string
  (** Space-separated rendering of the members, in order. *)

  val pp : Format.formatter -> t -> unit
end
