type origin = Igp | Egp | Incomplete
type source = Bgp | Ospf | Connected | Static

type t = {
  prefix : Prefix.t;
  next_hop : Ipv4.t option;
  as_path : As_path.t;
  communities : Community.Set.t;
  med : int;
  local_pref : int;
  origin : origin;
  source : source;
}

let default_local_pref = 100

let make ?next_hop ?(as_path = As_path.empty) ?(communities = Community.Set.empty)
    ?(med = 0) ?(local_pref = default_local_pref) ?(origin = Igp) ?(source = Bgp)
    prefix =
  { prefix; next_hop; as_path; communities; med; local_pref; origin; source }

let with_communities r communities = { r with communities }
let add_community r c = { r with communities = Community.Set.add c r.communities }
let has_community r c = Community.Set.mem c r.communities
let origin_to_string = function Igp -> "igp" | Egp -> "egp" | Incomplete -> "incomplete"

let source_to_string = function
  | Bgp -> "bgp"
  | Ospf -> "ospf"
  | Connected -> "connected"
  | Static -> "static"

let compare = Stdlib.compare
let equal a b = compare a b = 0

let to_string r =
  let nh = match r.next_hop with None -> "-" | Some a -> Ipv4.to_string a in
  Printf.sprintf
    "%s nh=%s as-path=[%s] comms={%s} med=%d lp=%d origin=%s src=%s"
    (Prefix.to_string r.prefix) nh
    (As_path.to_string r.as_path)
    (Community.Set.to_string r.communities)
    r.med r.local_pref (origin_to_string r.origin) (source_to_string r.source)

let pp ppf r = Format.pp_print_string ppf (to_string r)
