type kind = Ethernet | FastEthernet | GigabitEthernet | Loopback
type t = { kind : kind; slot : int; port : int }

let ethernet ~slot ~port = { kind = Ethernet; slot; port }
let fast_ethernet ~slot ~port = { kind = FastEthernet; slot; port }
let gigabit_ethernet ~slot ~port = { kind = GigabitEthernet; slot; port }
let loopback n = { kind = Loopback; slot = n; port = 0 }

let cisco_name i =
  match i.kind with
  | Ethernet -> Printf.sprintf "Ethernet%d/%d" i.slot i.port
  | FastEthernet -> Printf.sprintf "FastEthernet%d/%d" i.slot i.port
  | GigabitEthernet -> Printf.sprintf "GigabitEthernet%d/%d" i.slot i.port
  | Loopback -> Printf.sprintf "Loopback%d" i.slot

let junos_name i =
  match i.kind with
  | Ethernet | FastEthernet -> Printf.sprintf "ge-0/%d/%d.0" i.slot i.port
  | GigabitEthernet -> Printf.sprintf "ge-%d/0/%d.0" i.slot i.port
  | Loopback -> Printf.sprintf "lo%d.0" i.slot

let lowercase = String.lowercase_ascii

(* Split a name like "ethernet0/1" into its alphabetic head and the numeric
   tail starting at the first digit. *)
let split_name s =
  let n = String.length s in
  let rec first_digit i =
    if i >= n then n
    else match s.[i] with '0' .. '9' -> i | _ -> first_digit (i + 1)
  in
  let i = first_digit 0 in
  (String.sub s 0 i, String.sub s i (n - i))

let parse_slot_port tail =
  match String.split_on_char '/' tail with
  | [ s; p ] -> (
      match (int_of_string_opt s, int_of_string_opt p) with
      | Some s, Some p when s >= 0 && p >= 0 -> Some (s, p)
      | _ -> None)
  | _ -> None

let of_cisco s =
  let head, tail = split_name (String.trim s) in
  let kind =
    match lowercase head with
    | "ethernet" | "eth" | "e" -> Some Ethernet
    | "fastethernet" | "fa" -> Some FastEthernet
    | "gigabitethernet" | "gi" | "ge" -> Some GigabitEthernet
    | "loopback" | "lo" -> Some Loopback
    | _ -> None
  in
  match kind with
  | Some Loopback -> (
      match int_of_string_opt tail with
      | Some n when n >= 0 -> Some (loopback n)
      | _ -> None)
  | Some kind ->
      Option.map (fun (slot, port) -> { kind; slot; port }) (parse_slot_port tail)
  | None -> None

let strip_unit s =
  match String.index_opt s '.' with Some i -> String.sub s 0 i | None -> s

let of_junos s =
  let s = strip_unit (String.trim s) in
  if String.length s > 2 && String.sub s 0 2 = "lo" then
    match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
    | Some n when n >= 0 -> Some (loopback n)
    | _ -> None
  else
    match String.split_on_char '-' s with
    | [ "ge"; rest ] -> (
        match String.split_on_char '/' rest with
        | [ a; b; c ] -> (
            match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
            | Some 0, Some slot, Some port -> Some { kind = Ethernet; slot; port }
            | Some slot, Some 0, Some port -> Some { kind = GigabitEthernet; slot; port }
            | _ -> None)
        | _ -> None)
    | _ -> None

let is_loopback i = i.kind = Loopback
let compare = Stdlib.compare
let equal a b = compare a b = 0
let pp ppf i = Format.pp_print_string ppf (cisco_name i)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
