type t = int list

let empty = []
let of_list l = l
let to_list p = p
let prepend asn p = asn :: p

let prepend_n asn k p =
  let rec go k acc = if k <= 0 then acc else go (k - 1) (asn :: acc) in
  go k p

let length = List.length
let mem = List.mem
let origin p = match List.rev p with [] -> None | x :: _ -> Some x
let head = function [] -> None | x :: _ -> Some x
let to_string p = String.concat " " (List.map string_of_int p)

let of_string s =
  let parts = String.split_on_char ' ' s |> List.filter (fun x -> x <> "") in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | x :: rest -> (
        match int_of_string_opt x with
        | Some n when n >= 0 -> go (n :: acc) rest
        | _ -> None)
  in
  go [] parts

(* The [_] metacharacter of vendor AS-path regexes matches "a delimiter":
   beginning of string, end of string, or the space between two AS numbers.
   We desugar it before handing the expression to [Re.Posix]. *)
let desugar regex =
  let buf = Buffer.create (String.length regex * 2) in
  String.iter
    (fun c ->
      match c with
      | '_' -> Buffer.add_string buf "(^| |$)"
      | c -> Buffer.add_char buf c)
    regex;
  Buffer.contents buf

let matches ~regex p =
  let re =
    try Re.Posix.compile_pat (desugar regex)
    with Re.Posix.Parse_error | Re.Posix.Not_supported ->
      invalid_arg (Printf.sprintf "As_path.matches: bad regex %S" regex)
  in
  Re.execp re (to_string p)

let compare = Stdlib.compare
let equal a b = compare a b = 0
let pp ppf p = Format.pp_print_string ppf (to_string p)
