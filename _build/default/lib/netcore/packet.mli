(** Data-plane packets, the value space of access control lists. *)

type proto = Tcp | Udp | Icmp | Other

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  proto : proto;
  dst_port : int;  (** 0 when the protocol has no ports. *)
}

val make : ?proto:proto -> ?dst_port:int -> src:Ipv4.t -> dst:Ipv4.t -> unit -> t
(** Defaults: TCP, port 0. *)

val proto_to_string : proto -> string
val proto_of_string : string -> proto option
(** Recognises ["tcp"], ["udp"], ["icmp"]; anything else is [None] (the
    dialects map their catch-all keyword ["ip"] to "all protocols"
    themselves). *)

val all_protos : proto list
val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
