type t = int

let max32 = 0xFFFFFFFF
let zero = 0
let broadcast_all = max32
let of_int n = n land max32
let to_int a = a

let of_octets a b c d =
  let check o =
    if o < 0 || o > 255 then invalid_arg "Ipv4.of_octets: octet out of range"
  in
  check a;
  check b;
  check c;
  check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let to_octets a = ((a lsr 24) land 0xFF, (a lsr 16) land 0xFF, (a lsr 8) land 0xFF, a land 0xFF)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 && String.length x > 0 -> Some v
        | _ -> None
      in
      match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d -> Some (of_octets a b c d)
      | _ -> None)
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string_exn: %S" s)

let to_string a =
  let o1, o2, o3, o4 = to_octets a in
  Printf.sprintf "%d.%d.%d.%d" o1 o2 o3 o4

let compare = Int.compare
let equal = Int.equal
let hash a = Hashtbl.hash a
let succ a = (a + 1) land max32
let bit a i = (a lsr (31 - i)) land 1 = 1
let mask n = if n <= 0 then 0 else (max32 lsl (32 - n)) land max32
let logand a b = a land b
let logor a b = a lor b
let lognot a = lnot a land max32
let network a len = a land mask len
let pp ppf a = Format.pp_print_string ppf (to_string a)
