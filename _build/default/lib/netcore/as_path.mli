(** BGP AS paths and AS-path regular expressions.

    An AS path is the ordered list of autonomous systems a route has
    traversed, most recent first. AS-path access lists match paths with a
    POSIX-style regular expression over the space-separated rendering, where
    the conventional [_] metacharacter matches a delimiter (start, end, or a
    boundary between AS numbers). *)

type t
(** An AS path. *)

val empty : t
val of_list : int list -> t
val to_list : t -> int list

val prepend : int -> t -> t
(** [prepend asn p] is the path after [asn] announces it onward. *)

val prepend_n : int -> int -> t -> t
(** [prepend_n asn k p] prepends [asn] [k] times (AS-path prepending). *)

val length : t -> int
val mem : int -> t -> bool

val origin : t -> int option
(** The originating AS (last element), if any. *)

val head : t -> int option
(** The most recent AS (first element), if any. *)

val to_string : t -> string
(** Space-separated, most recent first; the empty path renders as [""]. *)

val of_string : string -> t option
(** Inverse of {!to_string}; accepts extra whitespace. *)

val matches : regex:string -> t -> bool
(** [matches ~regex p] applies an AS-path regular expression (with [_]
    sugar) to [p]. Raises [Invalid_argument] if [regex] is malformed. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
