type port = { iface : Iface.t; addr : Ipv4.t; subnet : Prefix.t }

type router = {
  name : string;
  asn : int;
  router_id : Ipv4.t;
  ports : port list;
  stub_networks : Prefix.t list;
}

type endpoint = { router : string; iface : Iface.t; addr : Ipv4.t }
type link = { a : endpoint; b : endpoint; subnet : Prefix.t }
type t = { routers : router list; links : link list }

type session = {
  local_addr : Ipv4.t;
  peer_name : string;
  peer_addr : Ipv4.t;
  peer_asn : int;
}

let find_router t name = List.find_opt (fun r -> r.name = name) t.routers

let find_router_exn t name =
  match find_router t name with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Topology.find_router_exn: no router %S" name)

let links_of t name =
  List.filter_map
    (fun l ->
      if l.a.router = name then Some (l.a, l.b)
      else if l.b.router = name then Some (l.b, l.a)
      else None)
    t.links

let sessions_of t name =
  List.map
    (fun ((local : endpoint), (peer : endpoint)) ->
      let peer_router = find_router_exn t peer.router in
      {
        local_addr = local.addr;
        peer_name = peer.router;
        peer_addr = peer.addr;
        peer_asn = peer_router.asn;
      })
    (links_of t name)

let networks_of t name =
  let r = find_router_exn t name in
  let link_subnets = List.map (fun (l : link) -> l.subnet) (List.filter (fun (l : link) -> l.a.router = name || l.b.router = name) t.links) in
  let all = r.stub_networks @ link_subnets in
  List.fold_left (fun acc p -> if List.exists (Prefix.equal p) acc then acc else acc @ [ p ]) [] all

let port_of_subnet r subnet =
  List.find_opt (fun (p : port) -> Prefix.equal p.subnet subnet) r.ports
let degree t name = List.length (links_of t name)

let validate t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let names = List.map (fun r -> r.name) t.routers in
  let rec dups = function
    | [] -> ()
    | n :: rest ->
        if List.mem n rest then err "duplicate router name %s" n;
        dups rest
  in
  dups names;
  List.iter
    (fun r ->
      if r.asn <= 0 then err "router %s: non-positive AS number %d" r.name r.asn;
      List.iter
        (fun (p : port) ->
          if not (Prefix.contains_addr p.subnet p.addr) then
            err "router %s: port %s address %s outside subnet %s" r.name
              (Iface.cisco_name p.iface) (Ipv4.to_string p.addr)
              (Prefix.to_string p.subnet))
        r.ports;
      List.iter
        (fun n ->
          if not (List.exists (fun (p : port) -> Prefix.equal p.subnet n) r.ports) then
            err "router %s: stub network %s not backed by any port" r.name
              (Prefix.to_string n))
        r.stub_networks)
    t.routers;
  let check_end (e : endpoint) subnet =
    match find_router t e.router with
    | None -> err "link endpoint references unknown router %s" e.router
    | Some r -> (
        match List.find_opt (fun (p : port) -> Iface.equal p.iface e.iface) r.ports with
        | None ->
            err "link endpoint %s:%s not a configured port" e.router
              (Iface.cisco_name e.iface)
        | Some p ->
            if not (Ipv4.equal p.addr e.addr) then
              err "link endpoint %s:%s address mismatch" e.router
                (Iface.cisco_name e.iface);
            if not (Prefix.contains_addr subnet e.addr) then
              err "link endpoint %s:%s outside link subnet %s" e.router
                (Iface.cisco_name e.iface) (Prefix.to_string subnet))
  in
  List.iter
    (fun l ->
      check_end l.a l.subnet;
      check_end l.b l.subnet;
      if l.a.router = l.b.router then err "self-link on router %s" l.a.router)
    t.links;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

(* ------------------------------------------------------------------ *)
(* JSON round trip                                                     *)
(* ------------------------------------------------------------------ *)

let port_to_json (p : port) =
  Json.Obj
    [
      ("interface", Json.String (Iface.cisco_name p.iface));
      ("address", Json.String (Ipv4.to_string p.addr));
      ("subnet", Json.String (Prefix.to_string p.subnet));
    ]

let router_to_json (r : router) =
  Json.Obj
    [
      ("name", Json.String r.name);
      ("as", Json.Int r.asn);
      ("router_id", Json.String (Ipv4.to_string r.router_id));
      ("interfaces", Json.List (List.map port_to_json r.ports));
      ( "stub_networks",
        Json.List (List.map (fun n -> Json.String (Prefix.to_string n)) r.stub_networks)
      );
    ]

let endpoint_to_json (e : endpoint) =
  Json.Obj
    [
      ("router", Json.String e.router);
      ("interface", Json.String (Iface.cisco_name e.iface));
      ("address", Json.String (Ipv4.to_string e.addr));
    ]

let link_to_json (l : link) =
  Json.Obj
    [
      ("a", endpoint_to_json l.a);
      ("b", endpoint_to_json l.b);
      ("subnet", Json.String (Prefix.to_string l.subnet));
    ]

let to_json t =
  Json.Obj
    [
      ("routers", Json.List (List.map router_to_json t.routers));
      ("links", Json.List (List.map link_to_json t.links));
    ]

let ( let* ) = Result.bind

let req what o = match o with Some x -> Ok x | None -> Error ("topology json: missing or ill-typed " ^ what)

let iface_of_json v =
  let* s = req "interface" (Json.to_str v) in
  req ("interface name " ^ s) (Iface.of_cisco s)

let addr_of_json what v =
  let* s = req what (Json.to_str v) in
  req (what ^ " " ^ s) (Ipv4.of_string s)

let prefix_of_json what v =
  let* s = req what (Json.to_str v) in
  req (what ^ " " ^ s) (Prefix.of_string s)

let port_of_json v =
  let* iface = iface_of_json (Option.value ~default:Json.Null (Json.member "interface" v)) in
  let* addr = addr_of_json "address" (Option.value ~default:Json.Null (Json.member "address" v)) in
  let* subnet = prefix_of_json "subnet" (Option.value ~default:Json.Null (Json.member "subnet" v)) in
  Ok { iface; addr; subnet }

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let router_of_json v =
  let* name = req "name" (Option.bind (Json.member "name" v) Json.to_str) in
  let* asn = req "as" (Option.bind (Json.member "as" v) Json.to_int) in
  let* router_id = addr_of_json "router_id" (Option.value ~default:Json.Null (Json.member "router_id" v)) in
  let* ifaces = req "interfaces" (Option.bind (Json.member "interfaces" v) Json.to_list) in
  let* ports = map_result port_of_json ifaces in
  let* stubs = req "stub_networks" (Option.bind (Json.member "stub_networks" v) Json.to_list) in
  let* stub_networks = map_result (prefix_of_json "stub network") stubs in
  Ok { name; asn; router_id; ports; stub_networks }

let endpoint_of_json v =
  let* router = req "router" (Option.bind (Json.member "router" v) Json.to_str) in
  let* iface = iface_of_json (Option.value ~default:Json.Null (Json.member "interface" v)) in
  let* addr = addr_of_json "address" (Option.value ~default:Json.Null (Json.member "address" v)) in
  Ok { router; iface; addr }

let link_of_json v =
  let* a = req "a" (Json.member "a" v) in
  let* a = endpoint_of_json a in
  let* b = req "b" (Json.member "b" v) in
  let* b = endpoint_of_json b in
  let* subnet = prefix_of_json "subnet" (Option.value ~default:Json.Null (Json.member "subnet" v)) in
  Ok { a; b; subnet }

let of_json v =
  let* routers = req "routers" (Option.bind (Json.member "routers" v) Json.to_list) in
  let* routers = map_result router_of_json routers in
  let* links = req "links" (Option.bind (Json.member "links" v) Json.to_list) in
  let* links = map_result link_of_json links in
  Ok { routers; links }

(* ------------------------------------------------------------------ *)
(* English description (modularizer input)                             *)
(* ------------------------------------------------------------------ *)

let describe t =
  let buf = Buffer.create 512 in
  let say fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  say "The network has %d routers: %s.\n" (List.length t.routers)
    (String.concat ", " (List.map (fun r -> r.name) t.routers));
  List.iter
    (fun r ->
      say "Router %s has AS number %d and router id %s.\n" r.name r.asn
        (Ipv4.to_string r.router_id);
      List.iter
        (fun (p : port) ->
          say "Router %s has interface %s with IP address %s in subnet %s.\n"
            r.name (Iface.cisco_name p.iface) (Ipv4.to_string p.addr)
            (Prefix.to_string p.subnet))
        r.ports;
      List.iter
        (fun n ->
          say "Router %s is directly connected to network %s.\n" r.name
            (Prefix.to_string n))
        r.stub_networks)
    t.routers;
  List.iter
    (fun l ->
      say
        "Router %s is connected to router %s via interface %s at %s and \
         interface %s at %s, on subnet %s.\n"
        l.a.router l.b.router
        (Iface.cisco_name l.a.iface)
        l.a.router
        (Iface.cisco_name l.b.iface)
        l.b.router (Prefix.to_string l.subnet))
    t.links;
  Buffer.contents buf

let equal a b = a = b
let pp ppf t = Format.pp_print_string ppf (describe t)
