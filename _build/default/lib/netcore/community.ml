type t = { asn : int; value : int }

let make asn value =
  if asn < 0 || asn > 0xFFFF || value < 0 || value > 0xFFFF then
    invalid_arg "Community.make: halves must fit in 16 bits";
  { asn; value }

let of_string s =
  match String.split_on_char ':' s with
  | [ a; v ] -> (
      match (int_of_string_opt a, int_of_string_opt v) with
      | Some a, Some v when a >= 0 && a <= 0xFFFF && v >= 0 && v <= 0xFFFF ->
          Some { asn = a; value = v }
      | _ -> None)
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Community.of_string_exn: %S" s)

let to_string c = Printf.sprintf "%d:%d" c.asn c.value
let no_export = { asn = 0xFFFF; value = 0xFF01 }
let no_advertise = { asn = 0xFFFF; value = 0xFF02 }

let compare a b =
  match Int.compare a.asn b.asn with 0 -> Int.compare a.value b.value | c -> c

let equal a b = compare a b = 0
let pp ppf c = Format.pp_print_string ppf (to_string c)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = struct
  include Set.Make (Ord)

  let to_string s = String.concat " " (List.map to_string (elements s))
  let pp ppf s = Format.pp_print_string ppf (to_string s)
end
