type t = { addr : Ipv4.t; len : int }

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length out of range";
  { addr = Ipv4.network addr len; len }

let addr p = p.addr
let len p = p.len

let of_string s =
  match String.index_opt s '/' with
  | None -> Option.map (fun a -> make a 32) (Ipv4.of_string s)
  | Some i -> (
      let a = String.sub s 0 i in
      let l = String.sub s (i + 1) (String.length s - i - 1) in
      match (Ipv4.of_string a, int_of_string_opt l) with
      | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
      | _ -> None)

let of_string_exn s =
  match of_string s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string_exn: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.addr) p.len
let default = { addr = Ipv4.zero; len = 0 }
let host a = { addr = a; len = 32 }
let contains_addr p a = Ipv4.equal (Ipv4.network a p.len) p.addr
let subsumes p q = p.len <= q.len && Ipv4.equal (Ipv4.network q.addr p.len) p.addr
let overlaps p q = subsumes p q || subsumes q p
let first p = p.addr
let last p = Ipv4.logor p.addr (Ipv4.lognot (Ipv4.mask p.len))

let split p =
  if p.len = 32 then None
  else
    let len = p.len + 1 in
    let low = { addr = p.addr; len } in
    let high = { addr = Ipv4.logor p.addr (Ipv4.of_int (1 lsl (32 - len))); len } in
    Some (low, high)

let nth_host p i =
  let size = if p.len = 0 then 1 lsl 32 else 1 lsl (32 - p.len) in
  if i < 0 || i >= size then invalid_arg "Prefix.nth_host: out of range";
  Ipv4.of_int (Ipv4.to_int p.addr + i)

let compare p q =
  match Ipv4.compare p.addr q.addr with 0 -> Int.compare p.len q.len | c -> c

let equal p q = compare p q = 0
let pp ppf p = Format.pp_print_string ppf (to_string p)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
