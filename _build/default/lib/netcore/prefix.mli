(** IPv4 CIDR prefixes.

    A prefix is an address plus a mask length. Values are kept normalized:
    host bits are always zero, so structural equality coincides with semantic
    equality. *)

type t = private { addr : Ipv4.t; len : int }

val make : Ipv4.t -> int -> t
(** [make addr len] normalizes [addr] to its network address. Raises
    [Invalid_argument] if [len] is outside [0, 32]. *)

val addr : t -> Ipv4.t
val len : t -> int

val of_string : string -> t option
(** Parse ["a.b.c.d/len"]. A bare address parses as a /32. *)

val of_string_exn : string -> t
val to_string : t -> string

val default : t
(** [0.0.0.0/0]. *)

val host : Ipv4.t -> t
(** The /32 containing exactly one address. *)

val contains_addr : t -> Ipv4.t -> bool
(** [contains_addr p a] is true iff [a] lies inside [p]. *)

val subsumes : t -> t -> bool
(** [subsumes p q] is true iff every address of [q] is in [p] (i.e. [p] is a
    shorter-or-equal prefix of [q]). *)

val overlaps : t -> t -> bool
(** True iff the address sets intersect, i.e. one subsumes the other. *)

val first : t -> Ipv4.t
(** Lowest address (the network address). *)

val last : t -> Ipv4.t
(** Highest address (the broadcast address for subnets). *)

val split : t -> (t * t) option
(** [split p] is the two halves of [p], or [None] when [len p = 32]. *)

val nth_host : t -> int -> Ipv4.t
(** [nth_host p i] is the [i]-th address inside [p] (0-based). Raises
    [Invalid_argument] when out of range. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
