type proto = Tcp | Udp | Icmp | Other

type t = { src : Ipv4.t; dst : Ipv4.t; proto : proto; dst_port : int }

let make ?(proto = Tcp) ?(dst_port = 0) ~src ~dst () = { src; dst; proto; dst_port }

let proto_to_string = function
  | Tcp -> "tcp"
  | Udp -> "udp"
  | Icmp -> "icmp"
  | Other -> "other"

let proto_of_string = function
  | "tcp" -> Some Tcp
  | "udp" -> Some Udp
  | "icmp" -> Some Icmp
  | _ -> None

let all_protos = [ Tcp; Udp; Icmp; Other ]
let compare = Stdlib.compare
let equal a b = compare a b = 0

let to_string p =
  Printf.sprintf "%s %s -> %s port %d" (proto_to_string p.proto) (Ipv4.to_string p.src)
    (Ipv4.to_string p.dst) p.dst_port

let pp ppf p = Format.pp_print_string ppf (to_string p)
