(** Network topologies: routers, point-to-point links, and stub networks.

    This is the "precise machine readable description of the modules" that
    the paper's modularizer consumes, and the ground truth the topology
    verifier checks configurations against. It round-trips through
    {!Json.t}. *)

type port = { iface : Iface.t; addr : Ipv4.t; subnet : Prefix.t }
(** One configured interface: its name, address, and the subnet the address
    lives in. *)

type router = {
  name : string;
  asn : int;
  router_id : Ipv4.t;
  ports : port list;
  stub_networks : Prefix.t list;
      (** Directly attached networks with no BGP speaker behind them (the
          CUSTOMER and ISP networks of Figure 4). Each stub network must also
          appear as the subnet of some port. *)
}

type endpoint = { router : string; iface : Iface.t; addr : Ipv4.t }

type link = { a : endpoint; b : endpoint; subnet : Prefix.t }
(** A point-to-point link between two routers on a shared subnet. *)

type t = { routers : router list; links : link list }

type session = {
  local_addr : Ipv4.t;
  peer_name : string;
  peer_addr : Ipv4.t;
  peer_asn : int;
}
(** One eBGP session implied by a link, seen from one side. *)

val find_router : t -> string -> router option
val find_router_exn : t -> string -> router

val sessions_of : t -> string -> session list
(** All BGP sessions router [name] should configure, one per incident link,
    in link order. *)

val networks_of : t -> string -> Prefix.t list
(** All networks router [name] should announce in BGP: its stub networks
    followed by the subnets of its incident links, without duplicates. *)

val port_of_subnet : router -> Prefix.t -> port option

val degree : t -> string -> int
(** Number of incident links. *)

val validate : t -> (unit, string list) result
(** Structural sanity: router names unique; link endpoints name known
    routers and ports; both ends of a link lie in the link subnet; stub
    networks are backed by ports; router ids and ASNs positive. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val describe : t -> string
(** English description of the topology, sentence per fact — the "textual
    description used as a prompt" of Section 4.1. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
