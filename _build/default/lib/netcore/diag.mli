(** Located diagnostics produced by the dialect parsers and linters — the
    raw material the humanizer turns into natural-language prompts. *)

type severity = Warning | Error

type t = { line : int; severity : severity; message : string }
(** [line] is 1-based; 0 means "whole file". *)

val warning : ?line:int -> string -> t
val error : ?line:int -> string -> t
val warningf : ?line:int -> ('a, unit, string, t) format4 -> 'a
val errorf : ?line:int -> ('a, unit, string, t) format4 -> 'a

val is_error : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
