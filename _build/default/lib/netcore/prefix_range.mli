(** Prefix ranges: a CIDR pattern plus a length interval.

    This is the matching unit of Cisco [ip prefix-list] entries
    ([permit 1.2.3.0/24 ge 24 le 30]) and of Juniper [route-filter]
    modifiers ([exact], [orlonger], [upto /n], [prefix-length-range]).

    A range [(p, ge, le)] matches a candidate prefix [q] iff [p] subsumes [q]
    and [ge <= len q <= le]. *)

type t = private { base : Prefix.t; ge : int; le : int }

val make : Prefix.t -> ge:int -> le:int -> t
(** Raises [Invalid_argument] unless [len base <= ge <= le <= 32]. *)

val exact : Prefix.t -> t
(** Matches only [base] itself. *)

val orlonger : Prefix.t -> t
(** Matches [base] and everything it subsumes ([ge = len base], [le = 32]). *)

val ge : Prefix.t -> int -> t
(** Cisco [ge n] with no [le]: matches lengths in [n, 32]. *)

val le : Prefix.t -> int -> t
(** Cisco [le n] with no [ge]: matches lengths in [len base, n]. *)

val matches : t -> Prefix.t -> bool

val base : t -> Prefix.t
val ge_bound : t -> int
val le_bound : t -> int

val is_exact : t -> bool
(** True iff the range matches exactly one prefix, its base. *)

val to_string : t -> string
(** Cisco-flavoured rendering, e.g. ["1.2.3.0/24 ge 25 le 30"]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
