type t = {
  topology : Topology.t;
  hub : string;
  spokes : string list;
  customer_prefix : Prefix.t;
}

let router_name k = Printf.sprintf "R%d" k
let link_subnet k = Prefix.make (Ipv4.of_octets (k - 1) 0 0 0) 24
let hub_link_addr k = Ipv4.of_octets (k - 1) 0 0 1
let spoke_link_addr k = Ipv4.of_octets (k - 1) 0 0 2
let customer_prefix = Prefix.make (Ipv4.of_octets 10 0 0 0) 24
let isp_prefix_of_index k = Prefix.make (Ipv4.of_octets 10 k 0 0) 24
let community_of_index k = Community.make (98 + k) 1

let parse_index name =
  if String.length name >= 2 && name.[0] = 'R' then
    int_of_string_opt (String.sub name 1 (String.length name - 1))
  else None

let make ~routers:n =
  if n < 2 || n > 200 then invalid_arg "Star.make: need 2..200 routers";
  let hub_ports =
    { Topology.iface = Iface.ethernet ~slot:0 ~port:0;
      addr = Ipv4.of_octets 10 0 0 1;
      subnet = customer_prefix }
    :: List.init (n - 1) (fun i ->
           let k = i + 2 in
           { Topology.iface = Iface.ethernet ~slot:0 ~port:(k - 1);
             addr = hub_link_addr k;
             subnet = link_subnet k })
  in
  let hub =
    { Topology.name = router_name 1;
      asn = 1;
      router_id = Ipv4.of_octets 1 0 0 1;
      ports = hub_ports;
      stub_networks = [ customer_prefix ] }
  in
  let spoke k =
    { Topology.name = router_name k;
      asn = k;
      router_id = spoke_link_addr k;
      ports =
        [
          { Topology.iface = Iface.ethernet ~slot:0 ~port:0;
            addr = Ipv4.of_octets 10 k 0 1;
            subnet = isp_prefix_of_index k };
          { Topology.iface = Iface.ethernet ~slot:0 ~port:1;
            addr = spoke_link_addr k;
            subnet = link_subnet k };
        ];
      stub_networks = [ isp_prefix_of_index k ] }
  in
  let spokes = List.init (n - 1) (fun i -> spoke (i + 2)) in
  let link k =
    { Topology.a =
        { Topology.router = router_name 1;
          iface = Iface.ethernet ~slot:0 ~port:(k - 1);
          addr = hub_link_addr k };
      b =
        { Topology.router = router_name k;
          iface = Iface.ethernet ~slot:0 ~port:1;
          addr = spoke_link_addr k };
      subnet = link_subnet k }
  in
  let links = List.init (n - 1) (fun i -> link (i + 2)) in
  let topology = { Topology.routers = hub :: spokes; links } in
  (match Topology.validate topology with
  | Ok () -> ()
  | Error errs -> invalid_arg ("Star.make: " ^ String.concat "; " errs));
  {
    topology;
    hub = router_name 1;
    spokes = List.map (fun (r : Topology.router) -> r.name) spokes;
    customer_prefix;
  }

let spoke_index t name =
  if List.mem name t.spokes then parse_index name else None

let isp_prefix t name = Option.map isp_prefix_of_index (spoke_index t name)
let community_of t name = Option.map community_of_index (spoke_index t name)

let description t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Topology.describe t.topology);
  Buffer.add_string buf
    (Printf.sprintf
       "Network %s attached to %s is the CUSTOMER network.\n"
       (Prefix.to_string t.customer_prefix)
       t.hub);
  List.iter
    (fun s ->
      match isp_prefix t s with
      | Some p ->
          Buffer.add_string buf
            (Printf.sprintf "Network %s attached to %s belongs to ISP %s.\n"
               (Prefix.to_string p) s s)
      | None -> ())
    t.spokes;
  Buffer.contents buf

let to_json t = Topology.to_json t.topology
