(** Router interface names, with Cisco/Juniper naming conversion.

    The paper's translation use case needs the correspondence between a Cisco
    interface name (e.g. [Ethernet0/1], [Loopback0]) and its Juniper
    equivalent ([ge-0/0/1.0], [lo0.0]): Campion must align the two sides of a
    translation before it can compare attributes. *)

type kind = Ethernet | FastEthernet | GigabitEthernet | Loopback

type t = private { kind : kind; slot : int; port : int }
(** For [Loopback], [slot] is the loopback number and [port] is unused. *)

val ethernet : slot:int -> port:int -> t
val fast_ethernet : slot:int -> port:int -> t
val gigabit_ethernet : slot:int -> port:int -> t
val loopback : int -> t

val cisco_name : t -> string
(** E.g. ["Ethernet0/1"], ["Loopback0"]. *)

val junos_name : t -> string
(** The conventional Junos unit-0 equivalent, e.g. ["ge-0/0/1.0"],
    ["lo0.0"]. *)

val of_cisco : string -> t option
(** Parse a Cisco name; accepts common abbreviations ([eth0/1], [Gi0/0],
    [lo0]) case-insensitively. *)

val of_junos : string -> t option
(** Parse a Junos name such as ["ge-0/0/1.0"] (unit suffix optional) or
    ["lo0.0"]. *)

val is_loopback : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
