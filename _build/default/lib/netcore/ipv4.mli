(** IPv4 addresses represented as 32-bit unsigned integers.

    Addresses are stored in host order inside a native [int] (OCaml ints are
    63-bit, so the full unsigned 32-bit range is representable exactly). *)

type t
(** An IPv4 address. *)

val zero : t
(** [0.0.0.0]. *)

val broadcast_all : t
(** [255.255.255.255]. *)

val of_int : int -> t
(** [of_int n] is the address with numeric value [n land 0xFFFFFFFF]. *)

val to_int : t -> int
(** Numeric value in [0, 2^32). *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is [a.b.c.d]. Raises [Invalid_argument] if any octet
    is outside [0, 255]. *)

val to_octets : t -> int * int * int * int

val of_string : string -> t option
(** Parse dotted-quad notation. *)

val of_string_exn : string -> t
(** Like {!of_string}. Raises [Invalid_argument] on malformed input. *)

val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val succ : t -> t
(** Next address, wrapping at [255.255.255.255]. *)

val bit : t -> int -> bool
(** [bit a i] is the [i]-th most significant bit of [a]; [i] in [0, 31]. *)

val mask : int -> t
(** [mask n] is the netmask with [n] leading one bits; [n] in [0, 32]. *)

val logand : t -> t -> t
val logor : t -> t -> t
val lognot : t -> t

val network : t -> int -> t
(** [network a len] zeroes all but the first [len] bits of [a]. *)

val pp : Format.formatter -> t -> unit
