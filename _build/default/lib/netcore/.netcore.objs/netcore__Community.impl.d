lib/netcore/community.ml: Format Int List Printf Set String
