lib/netcore/packet.mli: Format Ipv4
