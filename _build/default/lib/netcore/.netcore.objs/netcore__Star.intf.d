lib/netcore/star.mli: Community Json Prefix Topology
