lib/netcore/json.mli: Format
