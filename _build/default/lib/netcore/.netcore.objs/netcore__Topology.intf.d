lib/netcore/topology.mli: Format Iface Ipv4 Json Prefix
