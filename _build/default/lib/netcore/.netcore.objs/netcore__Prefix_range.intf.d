lib/netcore/prefix_range.mli: Format Prefix
