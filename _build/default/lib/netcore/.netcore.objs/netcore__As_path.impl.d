lib/netcore/as_path.ml: Buffer Format List Printf Re Stdlib String
