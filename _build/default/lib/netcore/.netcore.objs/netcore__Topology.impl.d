lib/netcore/topology.ml: Buffer Format Iface Ipv4 Json List Option Prefix Printf Result String
