lib/netcore/community.mli: Format Set
