lib/netcore/prefix.mli: Format Ipv4 Map Set
