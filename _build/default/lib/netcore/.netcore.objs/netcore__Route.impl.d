lib/netcore/route.ml: As_path Community Format Ipv4 Prefix Printf Stdlib
