lib/netcore/prefix.ml: Format Int Ipv4 Map Option Printf Set String
