lib/netcore/ipv4.ml: Format Hashtbl Int Printf String
