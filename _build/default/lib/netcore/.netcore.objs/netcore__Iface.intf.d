lib/netcore/iface.mli: Format Map
