lib/netcore/star.ml: Buffer Community Iface Ipv4 List Option Prefix Printf String Topology
