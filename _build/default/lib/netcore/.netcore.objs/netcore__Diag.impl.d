lib/netcore/diag.ml: Format Int Printf Stdlib
