lib/netcore/as_path.mli: Format
