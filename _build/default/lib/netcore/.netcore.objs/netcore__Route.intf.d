lib/netcore/route.mli: As_path Community Format Ipv4 Prefix
