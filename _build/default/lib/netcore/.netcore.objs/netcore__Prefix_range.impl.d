lib/netcore/prefix_range.ml: Format Int Prefix Printf
