lib/netcore/topo_gen.mli: Topology
