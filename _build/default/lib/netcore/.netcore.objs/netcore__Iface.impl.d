lib/netcore/iface.ml: Format Map Option Printf Stdlib String
