lib/netcore/packet.ml: Format Ipv4 Printf Stdlib
