lib/netcore/diag.mli: Format
