lib/netcore/topo_gen.ml: Iface Ipv4 List Prefix Printf String Topology
