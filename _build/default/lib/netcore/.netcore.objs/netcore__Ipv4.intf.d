lib/netcore/ipv4.mli: Format
