(** Additional topology generators beyond the paper's star: chains and
    rings, used to exercise multi-hop BGP propagation and loop prevention
    ("much further testing in more complex use cases is needed").

    Addressing: router [Rk] owns AS [k] and loopback-style router id
    [k.k.k.k]; the link between [Rk] and [Rk+1] uses subnet
    [172.16.k.0/24] with [Rk] at [.1] and [Rk+1] at [.2]; every router
    additionally owns the stub network [10.k.0.0/24] on [Ethernet0/0]. *)

val chain : routers:int -> Topology.t
(** [R1 - R2 - ... - Rn]; [routers >= 2]. *)

val ring : routers:int -> Topology.t
(** A chain plus a closing link between [Rn] and [R1] (on subnet
    [172.16.n.0/24]); [routers >= 3]. *)
