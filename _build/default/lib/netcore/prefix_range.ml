type t = { base : Prefix.t; ge : int; le : int }

let make base ~ge ~le =
  if not (Prefix.len base <= ge && ge <= le && le <= 32) then
    invalid_arg
      (Printf.sprintf "Prefix_range.make: invalid bounds %s ge %d le %d"
         (Prefix.to_string base) ge le);
  { base; ge; le }

let exact base = { base; ge = Prefix.len base; le = Prefix.len base }
let orlonger base = { base; ge = Prefix.len base; le = 32 }
let ge base n = make base ~ge:n ~le:32
let le base n = make base ~ge:(Prefix.len base) ~le:n
let matches r q = Prefix.subsumes r.base q && r.ge <= Prefix.len q && Prefix.len q <= r.le
let base r = r.base
let ge_bound r = r.ge
let le_bound r = r.le
let is_exact r = r.ge = Prefix.len r.base && r.le = Prefix.len r.base

let to_string r =
  let b = Prefix.to_string r.base in
  if is_exact r then b
  else if r.le = 32 && r.ge = Prefix.len r.base then Printf.sprintf "%s le 32" b
  else if r.le = 32 then Printf.sprintf "%s ge %d" b r.ge
  else if r.ge = Prefix.len r.base then Printf.sprintf "%s le %d" b r.le
  else Printf.sprintf "%s ge %d le %d" b r.ge r.le

let compare a b =
  match Prefix.compare a.base b.base with
  | 0 -> ( match Int.compare a.ge b.ge with 0 -> Int.compare a.le b.le | c -> c)
  | c -> c

let equal a b = compare a b = 0
let pp ppf r = Format.pp_print_string ppf (to_string r)
