(** BGP route announcements.

    This is the value that flows through route maps, both concretely (in the
    evaluator and the BGP simulator) and as the sample space of the symbolic
    engine. *)

type origin = Igp | Egp | Incomplete

type source = Bgp | Ospf | Connected | Static
(** The protocol a route was learned from; relevant to redistribution
    ([from bgp] / [match source-protocol]) conditions. *)

type t = {
  prefix : Prefix.t;
  next_hop : Ipv4.t option;
  as_path : As_path.t;
  communities : Community.Set.t;
  med : int;
  local_pref : int;
  origin : origin;
  source : source;
}

val make :
  ?next_hop:Ipv4.t ->
  ?as_path:As_path.t ->
  ?communities:Community.Set.t ->
  ?med:int ->
  ?local_pref:int ->
  ?origin:origin ->
  ?source:source ->
  Prefix.t ->
  t
(** Defaults: no next hop, empty AS path, no communities, MED 0,
    local-pref 100, origin [Igp], source [Bgp]. *)

val default_local_pref : int

val with_communities : t -> Community.Set.t -> t
val add_community : t -> Community.t -> t

val has_community : t -> Community.t -> bool

val origin_to_string : origin -> string
val source_to_string : source -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
