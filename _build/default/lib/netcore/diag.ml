type severity = Warning | Error

type t = { line : int; severity : severity; message : string }

let warning ?(line = 0) message = { line; severity = Warning; message }
let error ?(line = 0) message = { line; severity = Error; message }
let warningf ?line fmt = Printf.ksprintf (fun s -> warning ?line s) fmt
let errorf ?line fmt = Printf.ksprintf (fun s -> error ?line s) fmt
let is_error t = t.severity = Error

let to_string t =
  let sev = match t.severity with Warning -> "warning" | Error -> "error" in
  if t.line = 0 then Printf.sprintf "%s: %s" sev t.message
  else Printf.sprintf "line %d: %s: %s" t.line sev t.message

let pp ppf t = Format.pp_print_string ppf (to_string t)

let compare a b =
  match Int.compare a.line b.line with
  | 0 -> Stdlib.compare (a.severity, a.message) (b.severity, b.message)
  | c -> c
