(** Netmask and wildcard-mask helpers for the IOS dialect. *)

open Netcore

val mask_of_len : int -> Ipv4.t
(** E.g. [24 -> 255.255.255.0]. *)

val len_of_mask : Ipv4.t -> int option
(** [None] when the mask is not contiguous. *)

val wildcard_of_len : int -> Ipv4.t
(** Inverted mask, e.g. [24 -> 0.0.0.255]. *)

val len_of_wildcard : Ipv4.t -> int option

val classful_len : Ipv4.t -> int
(** The historical class-based default length (A/8, B/16, C/24, otherwise
    /32), used when a [network] statement omits its mask. *)
