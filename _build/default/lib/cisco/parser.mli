(** Tolerant parser for the Cisco IOS dialect.

    The parser plays the role of Batfish's IOS front end: it accepts the
    routing-and-forwarding subset used by the paper, recovers from bad lines
    by skipping them, and reports every problem as a located {!Netcore.Diag.t}
    (the "parse warnings identifying relevant lines" fed to the humanizer).
    Known GPT-4 mistakes get targeted messages: CLI keywords, a literal
    community in [match community], neighbor/network statements outside the
    [router bgp] block, regexes in standard community lists. *)

val parse : string -> Policy.Config_ir.t * Netcore.Diag.t list
(** Never raises; an empty or hopeless input yields an empty config plus
    diagnostics. *)

val parse_clean : string -> (Policy.Config_ir.t, Netcore.Diag.t list) result
(** [Ok ir] only when there are no diagnostics at all. *)
