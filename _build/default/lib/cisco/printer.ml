open Netcore
open Policy

let match_cond_line = function
  | Route_map.Match_prefix_list n -> Printf.sprintf "match ip address prefix-list %s" n
  | Route_map.Match_community_list n -> Printf.sprintf "match community %s" n
  | Route_map.Match_as_path n -> Printf.sprintf "match as-path %s" n
  | Route_map.Match_source_protocol s ->
      Printf.sprintf "match source-protocol %s" (Route.source_to_string s)
  | Route_map.Match_med m -> Printf.sprintf "match metric %d" m
  | Route_map.Match_tag t -> Printf.sprintf "match tag %d" t

let set_action_line = function
  | Route_map.Set_med m -> Printf.sprintf "set metric %d" m
  | Route_map.Set_local_pref p -> Printf.sprintf "set local-preference %d" p
  | Route_map.Set_community { communities; additive } ->
      Printf.sprintf "set community %s%s"
        (String.concat " " (List.map Community.to_string communities))
        (if additive then " additive" else "")
  | Route_map.Set_community_delete n -> Printf.sprintf "set comm-list %s delete" n
  | Route_map.Set_next_hop a -> Printf.sprintf "set ip next-hop %s" (Ipv4.to_string a)
  | Route_map.Set_as_path_prepend asns ->
      Printf.sprintf "set as-path prepend %s"
        (String.concat " " (List.map string_of_int asns))

let print_prefix_list (l : Prefix_list.t) =
  let entry (e : Prefix_list.entry) =
    let r = e.range in
    let base = Prefix.to_string (Prefix_range.base r) in
    let ge = Prefix_range.ge_bound r and le = Prefix_range.le_bound r in
    let blen = Prefix.len (Prefix_range.base r) in
    let bounds =
      if ge = blen && le = blen then ""
      else if le = 32 && ge > blen then Printf.sprintf " ge %d" ge
      else if ge = blen then Printf.sprintf " le %d" le
      else Printf.sprintf " ge %d le %d" ge le
    in
    Printf.sprintf "ip prefix-list %s seq %d %s %s%s" l.name e.seq
      (Action.to_string e.action) base bounds
  in
  String.concat "\n" (List.map entry l.entries)

let print_community_list (l : Community_list.t) =
  let entry (e : Community_list.entry) =
    Printf.sprintf "ip community-list standard %s %s %s" l.name
      (Action.to_string e.action)
      (String.concat " " (List.map Community.to_string e.communities))
  in
  String.concat "\n" (List.map entry l.entries)

let print_as_path_list (l : As_path_list.t) =
  let entry (e : As_path_list.entry) =
    Printf.sprintf "ip as-path access-list %s %s %s" l.name
      (Action.to_string e.action) e.regex
  in
  String.concat "\n" (List.map entry l.entries)

let print_route_map (m : Route_map.t) =
  let stanza (e : Route_map.entry) =
    (Printf.sprintf "route-map %s %s %d" m.name (Action.to_string e.action) e.seq
    :: List.map (fun c -> " " ^ match_cond_line c) e.matches)
    @ List.map (fun s -> " " ^ set_action_line s) e.sets
  in
  String.concat "\n" (List.concat_map stanza m.entries)

let addr_spec p =
  if Prefix.equal p Prefix.default then "any"
  else if Prefix.len p = 32 then "host " ^ Ipv4.to_string (Prefix.addr p)
  else
    Printf.sprintf "%s %s"
      (Ipv4.to_string (Prefix.addr p))
      (Ipv4.to_string (Netmask.wildcard_of_len (Prefix.len p)))

let print_acl (a : Acl.t) =
  let entry (e : Acl.entry) =
    let proto =
      match e.Acl.proto with
      | Acl.Any_proto -> "ip"
      | Acl.Proto p -> Packet.proto_to_string p
    in
    let port =
      match e.Acl.dst_port with
      | Acl.Any_port -> ""
      | Acl.Eq p -> Printf.sprintf " eq %d" p
      | Acl.Port_range (lo, hi) -> Printf.sprintf " range %d %d" lo hi
    in
    Printf.sprintf " %s %s %s %s%s"
      (Action.to_string e.Acl.action)
      proto (addr_spec e.Acl.src) (addr_spec e.Acl.dst) port
  in
  String.concat "\n"
    ((Printf.sprintf "ip access-list extended %s" a.Acl.name)
    :: List.map entry a.Acl.entries)

let print_interface (ospf : Config_ir.ospf option) (i : Config_ir.interface) =
  let buf = Buffer.create 64 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "interface %s" (Iface.cisco_name i.iface);
  (match i.description with Some d -> line " description %s" d | None -> ());
  (match i.address with
  | Some (a, len) ->
      line " ip address %s %s" (Ipv4.to_string a) (Ipv4.to_string (Netmask.mask_of_len len))
  | None -> ());
  (match ospf with
  | Some o -> (
      match
        List.find_opt
          (fun (oi : Config_ir.ospf_interface) -> Iface.equal oi.iface i.iface)
          o.interfaces
      with
      | Some oi -> (
          match oi.cost with Some c -> line " ip ospf cost %d" c | None -> ())
      | None -> ())
  | None -> ());
  (match i.acl_in with Some n -> line " ip access-group %s in" n | None -> ());
  (match i.acl_out with Some n -> line " ip access-group %s out" n | None -> ());
  if i.shutdown then line " shutdown";
  Buffer.contents buf

let print_redistribution (r : Config_ir.redistribution) =
  let proto =
    match r.from_protocol with
    | Route.Ospf -> "ospf 1"
    | Route.Bgp -> "bgp 1"
    | Route.Connected -> "connected"
    | Route.Static -> "static"
  in
  match r.policy with
  | Some p -> Printf.sprintf " redistribute %s route-map %s" proto p
  | None -> Printf.sprintf " redistribute %s" proto

let print_bgp (b : Config_ir.bgp) =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "router bgp %d" b.asn;
  (match b.router_id with Some r -> line " bgp router-id %s" (Ipv4.to_string r) | None -> ());
  List.iter
    (fun n ->
      line " network %s mask %s"
        (Ipv4.to_string (Prefix.addr n))
        (Ipv4.to_string (Netmask.mask_of_len (Prefix.len n))))
    b.networks;
  List.iter
    (fun (n : Config_ir.neighbor) ->
      let addr = Ipv4.to_string n.addr in
      line " neighbor %s remote-as %d" addr n.remote_as;
      (match n.local_as with Some a -> line " neighbor %s local-as %d" addr a | None -> ());
      (match n.description with Some d -> line " neighbor %s description %s" addr d | None -> ());
      if n.send_community then line " neighbor %s send-community" addr;
      if n.next_hop_self then line " neighbor %s next-hop-self" addr;
      (match n.import_policy with
      | Some p -> line " neighbor %s route-map %s in" addr p
      | None -> ());
      match n.export_policy with
      | Some p -> line " neighbor %s route-map %s out" addr p
      | None -> ())
    b.neighbors;
  List.iter (fun r -> line "%s" (print_redistribution r)) b.redistributions;
  Buffer.contents buf

let print_ospf (o : Config_ir.ospf) =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "router ospf %d" o.process_id;
  (match o.router_id with Some r -> line " router-id %s" (Ipv4.to_string r) | None -> ());
  List.iter
    (fun (p, area) ->
      line " network %s %s area %d"
        (Ipv4.to_string (Prefix.addr p))
        (Ipv4.to_string (Netmask.wildcard_of_len (Prefix.len p)))
        area)
    o.networks;
  List.iter
    (fun (oi : Config_ir.ospf_interface) ->
      if oi.passive then line " passive-interface %s" (Iface.cisco_name oi.iface))
    o.interfaces;
  List.iter (fun r -> line "%s" (print_redistribution r)) o.redistributions;
  Buffer.contents buf

let print (c : Config_ir.t) =
  let buf = Buffer.create 1024 in
  let add s =
    if s <> "" then (
      Buffer.add_string buf s;
      if not (String.length s > 0 && s.[String.length s - 1] = '\n') then
        Buffer.add_char buf '\n';
      Buffer.add_string buf "!\n")
  in
  add (Printf.sprintf "hostname %s" c.hostname);
  List.iter (fun i -> add (print_interface c.ospf i)) c.interfaces;
  (match c.statics with
  | [] -> ()
  | statics ->
      add
        (String.concat "\n"
           (List.map
              (fun (r : Config_ir.static_route) ->
                Printf.sprintf "ip route %s %s %s"
                  (Ipv4.to_string (Prefix.addr r.Config_ir.destination))
                  (Ipv4.to_string (Netmask.mask_of_len (Prefix.len r.Config_ir.destination)))
                  (Ipv4.to_string r.Config_ir.next_hop))
              statics)));
  List.iter (fun a -> add (print_acl a)) c.acls;
  List.iter (fun l -> add (print_prefix_list l)) c.prefix_lists;
  List.iter (fun l -> add (print_community_list l)) c.community_lists;
  List.iter (fun l -> add (print_as_path_list l)) c.as_path_lists;
  List.iter (fun m -> add (print_route_map m)) c.route_maps;
  (match c.bgp with Some b -> add (print_bgp b) | None -> ());
  (match c.ospf with Some o -> add (print_ospf o) | None -> ());
  Buffer.contents buf
