(** Semantic lint on a parsed IOS configuration: problems that are
    syntactically well-formed but broken, reported in the same diagnostic
    vocabulary as the parser. *)

val check : Policy.Config_ir.t -> Netcore.Diag.t list
(** Reports: dangling references (route maps, prefix/community/AS-path
    lists), neighbors without remote-as, route maps attached to no neighbor
    or redistribution, malformed AS-path regexes, and BGP networks with no
    matching connected interface when interfaces are configured. *)
