(** Reference IOS configurations used by the examples, tests and benchmarks.

    [border_router] is modelled on the Batfish example configuration the
    paper's translation experiment uses: "short enough to fit within GPT-4
    text input limits, but used non-trivial features including BGP, OSPF,
    prefix lists, and route maps" — including the [ge 24] prefix-list bound
    and the OSPF-into-BGP redistribution that drive Table 2's two hard
    errors. *)

val border_router : string

val minimal : string
(** A two-interface, one-neighbor config for quick tests. *)

val edge_router : string
(** A larger edge router: three eBGP neighbors (two providers, one peer),
    AS-path filtering, static routes redistributed into BGP, an egress ACL,
    and local-preference steering — used to check the translation loop
    beyond the paper's single example config. *)
