open Netcore
open Policy

let regex_ok regex =
  match As_path_list.matches (As_path_list.make "t" [ As_path_list.entry regex ]) As_path.empty with
  | (_ : bool) -> true
  | exception Invalid_argument _ -> false

let check (c : Config_ir.t) =
  let diags = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> diags := Diag.warning s :: !diags) fmt in
  List.iter (fun missing -> warn "reference to undefined %s" missing)
    (Config_ir.undefined_references c);
  (match c.bgp with
  | None -> ()
  | Some b ->
      List.iter
        (fun (n : Config_ir.neighbor) ->
          if n.remote_as <= 0 then
            warn "neighbor %s has no remote-as" (Ipv4.to_string n.addr))
        b.neighbors;
      if c.interfaces <> [] then
        let connected = Config_ir.connected_prefixes c in
        List.iter
          (fun net ->
            if not (List.exists (fun p -> Prefix.equal p net) connected) then
              warn "network %s is declared under router bgp but no interface is \
                    addressed in it"
                (Prefix.to_string net))
          b.networks);
  (* Route maps defined but attached nowhere are suspicious in generated
     configs (usually a mis-typed attachment). *)
  let attached =
    (match c.bgp with
    | None -> []
    | Some b ->
        List.concat_map
          (fun (n : Config_ir.neighbor) ->
            Option.to_list n.import_policy @ Option.to_list n.export_policy)
          b.neighbors
        @ List.filter_map (fun (r : Config_ir.redistribution) -> r.policy) b.redistributions)
    @
    match c.ospf with
    | None -> []
    | Some o -> List.filter_map (fun (r : Config_ir.redistribution) -> r.policy) o.redistributions
  in
  List.iter
    (fun (m : Route_map.t) ->
      if not (List.mem m.name attached) then
        warn "route-map %s is defined but not attached to any neighbor or \
              redistribution"
          m.name)
    c.route_maps;
  List.iter
    (fun (l : As_path_list.t) ->
      List.iter
        (fun (e : As_path_list.entry) ->
          if not (regex_ok e.regex) then
            warn "as-path access-list %s: invalid regular expression '%s'" l.name e.regex)
        l.entries)
    c.as_path_lists;
  List.rev !diags
