lib/cisco/samples.mli:
