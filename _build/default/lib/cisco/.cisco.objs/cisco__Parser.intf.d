lib/cisco/parser.mli: Netcore Policy
