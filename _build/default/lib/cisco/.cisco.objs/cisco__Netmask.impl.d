lib/cisco/netmask.ml: Ipv4 Netcore
