lib/cisco/netmask.mli: Ipv4 Netcore
