lib/cisco/printer.mli: Policy
