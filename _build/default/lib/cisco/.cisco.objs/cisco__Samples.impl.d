lib/cisco/samples.ml: String
