lib/cisco/lint.mli: Netcore Policy
