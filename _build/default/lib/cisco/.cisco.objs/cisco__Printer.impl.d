lib/cisco/printer.ml: Acl Action As_path_list Buffer Community Community_list Config_ir Iface Ipv4 List Netcore Netmask Packet Policy Prefix Prefix_list Prefix_range Printf Route Route_map String
