lib/cisco/lint.ml: As_path As_path_list Config_ir Diag Ipv4 List Netcore Option Policy Prefix Printf Route_map
