(** Rendering the vendor-neutral IR as Cisco IOS configuration text.

    The output is canonical: parsing it back with {!Parser.parse} yields the
    same IR and no diagnostics (a property the test suite enforces). *)

val print : Policy.Config_ir.t -> string

val print_route_map : Policy.Route_map.t -> string
val print_acl : Policy.Acl.t -> string
val print_prefix_list : Policy.Prefix_list.t -> string
val print_community_list : Policy.Community_list.t -> string

val match_cond_line : Policy.Route_map.match_cond -> string
val set_action_line : Policy.Route_map.set_action -> string
