open Netcore

let mask_of_len = Ipv4.mask

let len_of_mask m =
  let rec go l = if l > 32 then None else if Ipv4.equal (Ipv4.mask l) m then Some l else go (l + 1) in
  go 0

let wildcard_of_len l = Ipv4.lognot (Ipv4.mask l)
let len_of_wildcard w = len_of_mask (Ipv4.lognot w)

let classful_len a =
  let o1, _, _, _ = Ipv4.to_octets a in
  if o1 < 128 then 8 else if o1 < 192 then 16 else if o1 < 224 then 24 else 32
