open Netcore
open Policy

(* Parsing state: the configuration is assembled into mutable accumulators
   and frozen into a Config_ir.t at the end. A context tracks which block
   ("interface", "router bgp", ...) indented lines belong to. *)

type rm_key = { rm_name : string; rm_seq : int }

type state = {
  mutable hostname : string;
  mutable interfaces : Config_ir.interface list;  (* reversed *)
  mutable pl_entries : (string * Prefix_list.entry) list;  (* reversed *)
  mutable cl_entries : (string * Community_list.entry) list;  (* reversed *)
  mutable al_entries : (string * As_path_list.entry) list;  (* reversed *)
  mutable rm_entries : (rm_key * Route_map.entry) list;  (* reversed *)
  mutable acl_entries : (string * Acl.entry) list;  (* in order *)
  mutable statics : Config_ir.static_route list;  (* in order *)
  mutable bgp : Config_ir.bgp option;
  mutable ospf : Config_ir.ospf option;
  mutable ospf_costs : (Iface.t * int) list;  (* from interface blocks, reversed *)
  mutable diags : Diag.t list;  (* reversed *)
}

type context =
  | Top
  | In_interface of Iface.t
  | In_bgp
  | In_ospf
  | In_route_map of rm_key
  | In_acl of string

let fresh () =
  {
    hostname = "router";
    interfaces = [];
    pl_entries = [];
    cl_entries = [];
    al_entries = [];
    rm_entries = [];
    acl_entries = [];
    statics = [];
    bgp = None;
    ospf = None;
    ospf_costs = [];
    diags = [];
  }

let warn st ~line fmt = Printf.ksprintf (fun s -> st.diags <- Diag.warning ~line s :: st.diags) fmt
let err st ~line fmt = Printf.ksprintf (fun s -> st.diags <- Diag.error ~line s :: st.diags) fmt

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

(* The CLI keywords the paper's IIP bans: they belong to an interactive
   session, not a .cfg file. *)
let cli_keywords =
  [ "exit"; "end"; "configure"; "conf"; "write"; "enable"; "copy"; "show" ]

let is_cli_keyword = function
  | [] -> false
  | w :: _ -> List.mem (String.lowercase_ascii w) cli_keywords

(* ------------------------------------------------------------------ *)
(* Field updates                                                       *)
(* ------------------------------------------------------------------ *)

let ensure_bgp st asn =
  match st.bgp with
  | Some b -> b
  | None ->
      let b =
        {
          Config_ir.asn;
          router_id = None;
          networks = [];
          neighbors = [];
          redistributions = [];
        }
      in
      st.bgp <- Some b;
      b

let ensure_ospf st pid =
  match st.ospf with
  | Some o -> o
  | None ->
      let o =
        {
          Config_ir.process_id = pid;
          router_id = None;
          networks = [];
          interfaces = [];
          redistributions = [];
        }
      in
      st.ospf <- Some o;
      o

let update_bgp st f = match st.bgp with Some b -> st.bgp <- Some (f b) | None -> ()
let update_ospf st f = match st.ospf with Some o -> st.ospf <- Some (f o) | None -> ()

let update_neighbor st addr ~create f =
  update_bgp st (fun b ->
      match Config_ir.find_neighbor b addr with
      | Some _ ->
          {
            b with
            Config_ir.neighbors =
              List.map
                (fun (x : Config_ir.neighbor) -> if Ipv4.equal x.addr addr then f x else x)
                b.neighbors;
          }
      | None ->
          if create then
            { b with Config_ir.neighbors = b.neighbors @ [ f (Config_ir.neighbor addr ~remote_as:(-1) ~send_community:false) ] }
          else b)

(* ------------------------------------------------------------------ *)
(* Line handlers                                                       *)
(* ------------------------------------------------------------------ *)

let parse_source_protocol = function
  | "bgp" -> Some Route.Bgp
  | "ospf" -> Some Route.Ospf
  | "connected" -> Some Route.Connected
  | "static" -> Some Route.Static
  | _ -> None

let parse_redistribute st ~line rest =
  (* redistribute <proto> [<pid>] [route-map NAME] *)
  let proto, rest =
    match rest with
    | p :: tl -> (parse_source_protocol p, tl)
    | [] -> (None, [])
  in
  match proto with
  | None ->
      warn st ~line "unsupported redistribute source protocol";
      None
  | Some proto -> (
      let rest = match rest with pid :: tl when int_of_string_opt pid <> None -> tl | l -> l in
      match rest with
      | [] -> Some { Config_ir.from_protocol = proto; policy = None }
      | [ "route-map"; name ] -> Some { Config_ir.from_protocol = proto; policy = Some name }
      | _ ->
          warn st ~line "malformed redistribute statement";
          None)

let handle_interface_line st ~line iface toks =
  match toks with
  | [ "ip"; "address"; a; m ] -> (
      match (Ipv4.of_string a, Ipv4.of_string m) with
      | Some addr, Some mask -> (
          match Netmask.len_of_mask mask with
          | Some len ->
              st.interfaces <-
                List.map
                  (fun (i : Config_ir.interface) ->
                    if Iface.equal i.iface iface then { i with Config_ir.address = Some (addr, len) }
                    else i)
                  st.interfaces
          | None -> err st ~line "'%s' is not a contiguous netmask" m)
      | _ -> err st ~line "malformed ip address statement")
  | "description" :: rest ->
      let d = String.concat " " rest in
      st.interfaces <-
        List.map
          (fun (i : Config_ir.interface) ->
            if Iface.equal i.iface iface then { i with Config_ir.description = Some d } else i)
          st.interfaces
  | [ "shutdown" ] ->
      st.interfaces <-
        List.map
          (fun (i : Config_ir.interface) ->
            if Iface.equal i.iface iface then { i with Config_ir.shutdown = true } else i)
          st.interfaces
  | [ "no"; "shutdown" ] -> ()
  | [ "ip"; "access-group"; name; dir ] -> (
      let set f =
        st.interfaces <-
          List.map
            (fun (i : Config_ir.interface) ->
              if Iface.equal i.iface iface then f i else i)
            st.interfaces
      in
      match dir with
      | "in" -> set (fun i -> { i with Config_ir.acl_in = Some name })
      | "out" -> set (fun i -> { i with Config_ir.acl_out = Some name })
      | _ -> err st ~line "access-group direction must be 'in' or 'out'")
  | [ "ip"; "ospf"; "cost"; c ] -> (
      match int_of_string_opt c with
      | Some c when c >= 0 -> st.ospf_costs <- (iface, c) :: st.ospf_costs
      | _ -> err st ~line "invalid ospf cost")
  | _ ->
      err st ~line "unrecognized interface statement: '%s'" (String.concat " " toks)

let handle_bgp_line st ~line toks =
  match toks with
  | [ "bgp"; "router-id"; r ] -> (
      match Ipv4.of_string r with
      | Some rid -> update_bgp st (fun b -> { b with Config_ir.router_id = Some rid })
      | None -> err st ~line "invalid router id '%s'" r)
  | [ "network"; a; "mask"; m ] -> (
      match (Ipv4.of_string a, Option.bind (Ipv4.of_string m) Netmask.len_of_mask) with
      | Some addr, Some len ->
          update_bgp st (fun b ->
              { b with Config_ir.networks = b.networks @ [ Prefix.make addr len ] })
      | _ -> err st ~line "malformed network statement")
  | [ "network"; a ] -> (
      match Ipv4.of_string a with
      | Some addr ->
          let len = Netmask.classful_len addr in
          warn st ~line
            "network statement without mask: assuming classful /%d for %s" len a;
          update_bgp st (fun b ->
              { b with Config_ir.networks = b.networks @ [ Prefix.make addr len ] })
      | None -> err st ~line "malformed network statement")
  | "neighbor" :: addr :: rest -> (
      match Ipv4.of_string addr with
      | None -> err st ~line "invalid neighbor address '%s'" addr
      | Some addr -> (
          match rest with
          | [ "remote-as"; asn ] -> (
              match int_of_string_opt asn with
              | Some asn when asn > 0 ->
                  update_neighbor st addr ~create:true (fun n ->
                      { n with Config_ir.remote_as = asn })
              | _ -> err st ~line "invalid remote AS number")
          | [ "local-as"; asn ] -> (
              match int_of_string_opt asn with
              | Some asn when asn > 0 ->
                  update_neighbor st addr ~create:true (fun n ->
                      { n with Config_ir.local_as = Some asn })
              | _ -> err st ~line "invalid local AS number")
          | "description" :: d ->
              update_neighbor st addr ~create:true (fun n ->
                  { n with Config_ir.description = Some (String.concat " " d) })
          | [ "send-community" ] ->
              update_neighbor st addr ~create:true (fun n ->
                  { n with Config_ir.send_community = true })
          | [ "next-hop-self" ] ->
              update_neighbor st addr ~create:true (fun n ->
                  { n with Config_ir.next_hop_self = true })
          | [ "route-map"; name; "in" ] ->
              update_neighbor st addr ~create:true (fun n ->
                  { n with Config_ir.import_policy = Some name })
          | [ "route-map"; name; "out" ] ->
              update_neighbor st addr ~create:true (fun n ->
                  { n with Config_ir.export_policy = Some name })
          | _ ->
              err st ~line "unrecognized neighbor statement: '%s'" (String.concat " " rest)))
  | "redistribute" :: rest -> (
      match parse_redistribute st ~line rest with
      | Some r ->
          update_bgp st (fun b ->
              { b with Config_ir.redistributions = b.redistributions @ [ r ] })
      | None -> ())
  | [ "no"; "auto-summary" ] | [ "no"; "synchronization" ] -> ()
  | _ -> err st ~line "unrecognized router bgp statement: '%s'" (String.concat " " toks)

let set_ospf_iface st iface f =
  update_ospf st (fun o ->
      let exists =
        List.exists
          (fun (oi : Config_ir.ospf_interface) -> Iface.equal oi.iface iface)
          o.interfaces
      in
      let interfaces =
        if exists then
          List.map
            (fun (oi : Config_ir.ospf_interface) ->
              if Iface.equal oi.iface iface then f oi else oi)
            o.interfaces
        else
          o.interfaces
          @ [ f { Config_ir.iface; cost = None; passive = false; area = 0 } ]
      in
      { o with Config_ir.interfaces = interfaces })

let handle_ospf_line st ~line toks =
  match toks with
  | [ "router-id"; r ] -> (
      match Ipv4.of_string r with
      | Some rid -> update_ospf st (fun o -> { o with Config_ir.router_id = Some rid })
      | None -> err st ~line "invalid router id '%s'" r)
  | [ "network"; a; w; "area"; area ] -> (
      match
        ( Ipv4.of_string a,
          Option.bind (Ipv4.of_string w) Netmask.len_of_wildcard,
          int_of_string_opt area )
      with
      | Some addr, Some len, Some area ->
          update_ospf st (fun o ->
              { o with Config_ir.networks = o.networks @ [ (Prefix.make addr len, area) ] })
      | _ -> err st ~line "malformed ospf network statement")
  | [ "passive-interface"; ifname ] -> (
      match Iface.of_cisco ifname with
      | Some iface -> set_ospf_iface st iface (fun oi -> { oi with Config_ir.passive = true })
      | None -> err st ~line "unknown interface '%s'" ifname)
  | "redistribute" :: rest -> (
      match parse_redistribute st ~line rest with
      | Some r ->
          update_ospf st (fun o ->
              { o with Config_ir.redistributions = o.redistributions @ [ r ] })
      | None -> ())
  | _ -> err st ~line "unrecognized router ospf statement: '%s'" (String.concat " " toks)

let handle_route_map_line st ~line key toks =
  let add_match m =
    st.rm_entries <-
      List.map
        (fun (k, (e : Route_map.entry)) ->
          if k = key then (k, { e with Route_map.matches = e.matches @ [ m ] }) else (k, e))
        st.rm_entries
  in
  let add_set s =
    st.rm_entries <-
      List.map
        (fun (k, (e : Route_map.entry)) ->
          if k = key then (k, { e with Route_map.sets = e.sets @ [ s ] }) else (k, e))
        st.rm_entries
  in
  match toks with
  | [ "match"; "ip"; "address"; "prefix-list"; name ] ->
      add_match (Route_map.Match_prefix_list name)
  | "match" :: "ip" :: "address" :: "prefix-list" :: _ ->
      err st ~line "only one prefix-list per match line is supported"
  | [ "match"; "community"; arg ] -> (
      (* The notorious GPT-4 mistake: a literal community where a
         community-list reference is required. *)
      match Community.of_string arg with
      | Some _ ->
          err st ~line
            "'match community %s' is invalid: 'match community' takes a \
             community-list; define 'ip community-list standard <name> permit \
             %s' and match the list by name"
            arg arg
      | None -> add_match (Route_map.Match_community_list arg))
  | "match" :: "community" :: _ ->
      err st ~line "only one community-list per match line is supported"
  | [ "match"; "as-path"; name ] -> add_match (Route_map.Match_as_path name)
  | [ "match"; "source-protocol"; p ] -> (
      match parse_source_protocol p with
      | Some s -> add_match (Route_map.Match_source_protocol s)
      | None -> err st ~line "unknown source protocol '%s'" p)
  | [ "match"; "metric"; m ] -> (
      match int_of_string_opt m with
      | Some m -> add_match (Route_map.Match_med m)
      | None -> err st ~line "invalid metric")
  | [ "match"; "tag"; t ] -> (
      match int_of_string_opt t with
      | Some t -> add_match (Route_map.Match_tag t)
      | None -> err st ~line "invalid tag")
  | [ "set"; "metric"; m ] -> (
      match int_of_string_opt m with
      | Some m -> add_set (Route_map.Set_med m)
      | None -> err st ~line "invalid metric")
  | [ "set"; "local-preference"; p ] -> (
      match int_of_string_opt p with
      | Some p -> add_set (Route_map.Set_local_pref p)
      | None -> err st ~line "invalid local-preference")
  | "set" :: "community" :: rest -> (
      let additive, comm_toks =
        match List.rev rest with
        | "additive" :: tl -> (true, List.rev tl)
        | _ -> (false, rest)
      in
      let comms = List.map Community.of_string comm_toks in
      match (comm_toks, List.for_all Option.is_some comms) with
      | [], _ -> err st ~line "set community requires at least one community"
      | _, false -> err st ~line "invalid community value in set community"
      | _, true ->
          add_set
            (Route_map.Set_community
               { communities = List.filter_map Fun.id comms; additive }))
  | [ "set"; "comm-list"; name; "delete" ] -> add_set (Route_map.Set_community_delete name)
  | [ "set"; "ip"; "next-hop"; a ] -> (
      match Ipv4.of_string a with
      | Some a -> add_set (Route_map.Set_next_hop a)
      | None -> err st ~line "invalid next-hop address")
  | "set" :: "as-path" :: "prepend" :: asns -> (
      let parsed = List.map int_of_string_opt asns in
      match (asns, List.for_all Option.is_some parsed) with
      | [], _ -> err st ~line "as-path prepend requires at least one AS"
      | _, false -> err st ~line "invalid AS number in prepend"
      | _, true -> add_set (Route_map.Set_as_path_prepend (List.filter_map Fun.id parsed)))
  | _ ->
      err st ~line "unrecognized route-map statement: '%s'" (String.concat " " toks);
      ignore key

let parse_addr_spec st ~line toks =
  (* any | host A | A WILDCARD; returns the prefix and remaining tokens. *)
  match toks with
  | "any" :: rest -> Some (Prefix.default, rest)
  | "host" :: a :: rest -> (
      match Ipv4.of_string a with
      | Some a -> Some (Prefix.host a, rest)
      | None ->
          err st ~line "invalid host address '%s'" a;
          None)
  | a :: w :: rest -> (
      match (Ipv4.of_string a, Option.bind (Ipv4.of_string w) Netmask.len_of_wildcard) with
      | Some a, Some len -> Some (Prefix.make a len, rest)
      | _ ->
          err st ~line "invalid address/wildcard pair '%s %s'" a w;
          None)
  | _ ->
      err st ~line "missing address specification";
      None

let handle_acl_line st ~line name toks =
  let add entry = st.acl_entries <- st.acl_entries @ [ (name, entry) ] in
  match toks with
  | action :: proto :: rest -> (
      match Action.of_string action with
      | None -> err st ~line "access-list entries start with permit or deny"
      | Some action -> (
          let proto_match =
            if proto = "ip" then Some Acl.Any_proto
            else Option.map (fun p -> Acl.Proto p) (Packet.proto_of_string proto)
          in
          match proto_match with
          | None -> err st ~line "unknown protocol '%s'" proto
          | Some proto -> (
              match parse_addr_spec st ~line rest with
              | None -> ()
              | Some (src, rest) -> (
                  match parse_addr_spec st ~line rest with
                  | None -> ()
                  | Some (dst, rest) -> (
                      let seq = (List.length (List.filter (fun (n, _) -> n = name) st.acl_entries) + 1) * 10 in
                      match rest with
                      | [] -> add (Acl.entry ~action ~proto ~src ~dst seq)
                      | [ "eq"; port ] -> (
                          match int_of_string_opt port with
                          | Some p when p >= 0 && p <= 65535 ->
                              add (Acl.entry ~action ~proto ~src ~dst ~dst_port:(Acl.Eq p) seq)
                          | _ -> err st ~line "invalid port '%s'" port)
                      | [ "range"; lo; hi ] -> (
                          match (int_of_string_opt lo, int_of_string_opt hi) with
                          | Some lo, Some hi when 0 <= lo && lo <= hi && hi <= 65535 ->
                              add
                                (Acl.entry ~action ~proto ~src ~dst
                                   ~dst_port:(Acl.Port_range (lo, hi)) seq)
                          | _ -> err st ~line "invalid port range")
                      | _ ->
                          err st ~line "unrecognized access-list entry suffix: '%s'"
                            (String.concat " " rest))))))
  | _ -> err st ~line "malformed access-list entry"

(* ------------------------------------------------------------------ *)
(* Top-level dispatch                                                  *)
(* ------------------------------------------------------------------ *)

let handle_prefix_list st ~line toks =
  (* ip prefix-list NAME seq N permit|deny P [ge G] [le L] *)
  match toks with
  | name :: "seq" :: seq :: action :: prefix :: bounds -> (
      match (int_of_string_opt seq, Action.of_string action, Prefix.of_string prefix) with
      | Some seq, Some action, Some base -> (
          let range =
            match bounds with
            | [] -> Some (Prefix_range.exact base)
            | [ "ge"; g ] ->
                Option.bind (int_of_string_opt g) (fun g ->
                    if g >= Prefix.len base && g <= 32 then Some (Prefix_range.ge base g)
                    else None)
            | [ "le"; l ] ->
                Option.bind (int_of_string_opt l) (fun l ->
                    if l >= Prefix.len base && l <= 32 then Some (Prefix_range.le base l)
                    else None)
            | [ "ge"; g; "le"; l ] -> (
                match (int_of_string_opt g, int_of_string_opt l) with
                | Some g, Some l when Prefix.len base <= g && g <= l && l <= 32 ->
                    Some (Prefix_range.make base ~ge:g ~le:l)
                | _ -> None)
            | _ -> None
          in
          match range with
          | Some range ->
              st.pl_entries <- (name, Prefix_list.entry ~action seq range) :: st.pl_entries
          | None -> err st ~line "invalid prefix-list bounds")
      | _ -> err st ~line "malformed ip prefix-list statement")
  | name :: action :: prefix :: _
    when Action.of_string action <> None && Prefix.of_string prefix <> None ->
      err st ~line
        "ip prefix-list %s: missing 'seq <n>' before the action" name
  | _ -> err st ~line "malformed ip prefix-list statement"

let looks_like_regex s =
  String.exists (fun c -> List.mem c [ '.'; '*'; '+'; '['; '^'; '$'; '_' ]) s

let handle_community_list st ~line toks =
  (* ip community-list standard NAME permit c1 c2... (also numbered lists) *)
  let parse name action comms =
    match Action.of_string action with
    | None -> err st ~line "malformed ip community-list statement"
    | Some action -> (
        let parsed = List.map Community.of_string comms in
        match (comms, List.for_all Option.is_some parsed) with
        | [], _ -> err st ~line "community-list entry needs at least one community"
        | _, false ->
            if List.exists looks_like_regex comms then
              err st ~line
                "'ip community-list standard %s %s %s' is wrong syntax: standard \
                 community lists take literal communities (asn:value), not regular \
                 expressions; use an expanded community list for regex matching"
                name (Action.to_string action) (String.concat " " comms)
            else err st ~line "invalid community value in community-list"
        | _, true ->
            st.cl_entries <-
              (name, Community_list.entry ~action (List.filter_map Fun.id parsed))
              :: st.cl_entries)
  in
  match toks with
  | "standard" :: name :: action :: comms -> parse name action comms
  | "expanded" :: name :: _ ->
      err st ~line "expanded community-list %s: regex community lists are not supported" name
  | name :: action :: comms when Action.of_string action <> None -> parse name action comms
  | _ -> err st ~line "malformed ip community-list statement"

let handle_as_path_list st ~line toks =
  (* ip as-path access-list NAME permit REGEX *)
  match toks with
  | name :: action :: regex_parts when regex_parts <> [] -> (
      match Action.of_string action with
      | Some action ->
          let regex = String.concat " " regex_parts in
          st.al_entries <- (name, As_path_list.entry ~action regex) :: st.al_entries
      | None -> err st ~line "malformed as-path access-list statement")
  | _ -> err st ~line "malformed as-path access-list statement"

let dispatch_top st ~line toks : context =
  match toks with
  | [] -> Top
  | [ "hostname"; h ] ->
      st.hostname <- h;
      Top
  | "interface" :: [ ifname ] -> (
      match Iface.of_cisco ifname with
      | Some iface ->
          st.interfaces <- st.interfaces @ [ Config_ir.interface iface ];
          In_interface iface
      | None ->
          err st ~line "unknown interface name '%s'" ifname;
          Top)
  | [ "router"; "bgp"; asn ] -> (
      match int_of_string_opt asn with
      | Some asn when asn > 0 ->
          ignore (ensure_bgp st asn);
          In_bgp
      | _ ->
          err st ~line "invalid BGP AS number '%s'" asn;
          Top)
  | [ "router"; "ospf"; pid ] -> (
      match int_of_string_opt pid with
      | Some pid when pid > 0 ->
          ignore (ensure_ospf st pid);
          In_ospf
      | _ ->
          err st ~line "invalid OSPF process id '%s'" pid;
          Top)
  | [ "ip"; "access-list"; "extended"; name ] -> In_acl name
  | [ "ip"; "access-list"; "standard"; name ] ->
      err st ~line
        "standard access-list %s: only extended access lists are supported" name;
      Top
  | [ "ip"; "route"; dest; mask; nh ] ->
      (match
         ( Ipv4.of_string dest,
           Option.bind (Ipv4.of_string mask) Netmask.len_of_mask,
           Ipv4.of_string nh )
       with
      | Some dest, Some len, Some next_hop ->
          st.statics <-
            st.statics
            @ [ { Config_ir.destination = Prefix.make dest len; next_hop } ]
      | _ -> err st ~line "malformed ip route statement");
      Top
  | "ip" :: "prefix-list" :: rest ->
      handle_prefix_list st ~line rest;
      Top
  | "ip" :: "community-list" :: rest ->
      handle_community_list st ~line rest;
      Top
  | "ip" :: "as-path" :: "access-list" :: rest ->
      handle_as_path_list st ~line rest;
      Top
  | [ "route-map"; name; action; seq ] -> (
      match (Action.of_string action, int_of_string_opt seq) with
      | Some action, Some seq ->
          let key = { rm_name = name; rm_seq = seq } in
          if List.mem_assoc key st.rm_entries then (
            err st ~line "duplicate route-map stanza %s %d" name seq;
            Top)
          else (
            st.rm_entries <- st.rm_entries @ [ (key, Route_map.entry ~action seq) ];
            In_route_map key)
      | _ ->
          err st ~line "malformed route-map header";
          Top)
  | [ "route-map"; name ] | [ "route-map"; name; _ ] ->
      err st ~line "route-map %s: header needs an action (permit|deny) and a sequence number" name;
      Top
  | [ "ip"; "routing" ] | [ "ip"; "subnet-zero" ] | [ "ip"; "classless" ] ->
      warn st ~line "'%s' is not needed in this configuration" (String.concat " " toks);
      Top
  | "neighbor" :: _ | "network" :: _ ->
      err st ~line
        "'%s' is only valid inside a 'router bgp' or 'router ospf' block; move it \
         under the routing process"
        (String.concat " " toks);
      Top
  | ("match" | "set") :: _ ->
      err st ~line "'%s' is only valid inside a route-map stanza" (String.concat " " toks);
      Top
  | _ when is_cli_keyword toks ->
      err st ~line
        "'%s' is an interactive CLI command, not a configuration statement; remove it"
        (String.concat " " toks);
      Top
  | _ ->
      err st ~line "unrecognized statement: '%s'" (String.concat " " toks);
      Top

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let group_by_name pairs =
  (* Preserve first-appearance order of names and entry order per name. *)
  let names =
    List.fold_left
      (fun acc (n, _) -> if List.mem n acc then acc else acc @ [ n ])
      [] pairs
  in
  List.map (fun n -> (n, List.filter_map (fun (m, e) -> if m = n then Some e else None) pairs)) names

let assemble st =
  let pl_pairs = List.rev st.pl_entries in
  let prefix_lists =
    List.filter_map
      (fun (name, entries) ->
        try Some (Prefix_list.make name entries)
        with Invalid_argument _ ->
          warn st ~line:0 "prefix-list %s has duplicate sequence numbers" name;
          let dedup =
            List.fold_left
              (fun acc (e : Prefix_list.entry) ->
                if List.exists (fun (x : Prefix_list.entry) -> x.seq = e.seq) acc then acc
                else acc @ [ e ])
              [] entries
          in
          Some (Prefix_list.make name dedup))
      (group_by_name pl_pairs)
  in
  let community_lists =
    List.map (fun (n, es) -> Community_list.make n es) (group_by_name (List.rev st.cl_entries))
  in
  let as_path_lists =
    List.map (fun (n, es) -> As_path_list.make n es) (group_by_name (List.rev st.al_entries))
  in
  let rm_names =
    List.fold_left
      (fun acc (k, _) -> if List.mem k.rm_name acc then acc else acc @ [ k.rm_name ])
      [] st.rm_entries
  in
  let route_maps =
    List.map
      (fun name ->
        let entries =
          List.filter_map
            (fun (k, e) -> if k.rm_name = name then Some e else None)
            st.rm_entries
        in
        Route_map.make name entries)
      rm_names
  in
  (* Merge interface-level ospf costs into the ospf block. *)
  (match (st.ospf, List.rev st.ospf_costs) with
  | _, [] -> ()
  | None, _ :: _ ->
      warn st ~line:0 "'ip ospf cost' configured but there is no 'router ospf' process"
  | Some _, costs ->
      List.iter
        (fun (iface, cost) ->
          set_ospf_iface st iface (fun oi -> { oi with Config_ir.cost = Some cost }))
        costs);
  (* Neighbors created by a non-remote-as command first. *)
  (match st.bgp with
  | Some b ->
      List.iter
        (fun (n : Config_ir.neighbor) ->
          if n.remote_as <= 0 then
            warn st ~line:0 "neighbor %s has no remote-as configured" (Ipv4.to_string n.addr))
        b.neighbors
  | None -> ());
  let ospf =
    Option.map
      (fun (o : Config_ir.ospf) ->
        {
          o with
          Config_ir.interfaces =
            List.sort
              (fun (a : Config_ir.ospf_interface) (b : Config_ir.ospf_interface) ->
                Iface.compare a.iface b.iface)
              o.interfaces;
        })
      st.ospf
  in
  let acls =
    List.map (fun (n, es) -> Acl.make n es) (group_by_name st.acl_entries)
  in
  {
    Config_ir.hostname = st.hostname;
    interfaces = st.interfaces;
    prefix_lists;
    community_lists;
    as_path_lists;
    route_maps;
    acls;
    statics = st.statics;
    bgp = st.bgp;
    ospf;
  }

let parse text =
  let st = fresh () in
  let ctx = ref Top in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let trimmed = String.trim raw in
      let indented =
        String.length raw > 0 && (raw.[0] = ' ' || raw.[0] = '\t') && trimmed <> ""
      in
      if trimmed = "" then ()
      else if trimmed.[0] = '!' then ctx := Top
      else
        let toks = tokens trimmed in
        match (!ctx, indented) with
        | _, false ->
            (* A flush-left line always re-enters top-level dispatch. *)
            ctx := dispatch_top st ~line toks
        | Top, true -> ctx := dispatch_top st ~line toks
        | In_interface iface, true -> handle_interface_line st ~line iface toks
        | In_bgp, true ->
            if is_cli_keyword toks then
              err st ~line
                "'%s' is an interactive CLI command, not a configuration statement"
                (String.concat " " toks)
            else handle_bgp_line st ~line toks
        | In_ospf, true -> handle_ospf_line st ~line toks
        | In_route_map key, true -> handle_route_map_line st ~line key toks
        | In_acl name, true -> handle_acl_line st ~line name toks)
    lines;
  let ir = assemble st in
  (ir, List.rev st.diags)

let parse_clean text =
  match parse text with
  | ir, [] -> Ok ir
  | _, diags -> Error diags
