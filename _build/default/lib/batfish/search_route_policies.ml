open Netcore
open Policy

type requirement =
  | Permits
  | Denies
  | Adds_community of Community.t
  | Prepends of int list

type spec = {
  policy : string;
  space : Symbolic.Pred.t;
  requirement : requirement;
  description : string;
}

type violation = {
  spec : spec;
  example : Route.t;
  got_action : Action.t;
  at_seq : int option;
  replaced_communities : bool;
}

type outcome = Holds | Violated of violation | Policy_missing

let requirement_to_string = function
  | Permits -> "be permitted"
  | Denies -> "be denied"
  | Adds_community c ->
      Printf.sprintf "be permitted with community %s added (additively)"
        (Community.to_string c)
  | Prepends asns ->
      Printf.sprintf "be permitted with AS path prepended by %s"
        (String.concat " " (List.map string_of_int asns))

(* Whether one region's behaviour satisfies the requirement. *)
let region_ok requirement (r : Symbolic.Transfer.region) =
  match requirement with
  | Permits -> r.action = Action.Permit
  | Denies -> r.action = Action.Deny
  | Adds_community c ->
      r.action = Action.Permit
      && r.effect_.Symbolic.Effects.comm_base = None
      && Community.Set.mem c r.effect_.Symbolic.Effects.comm_added
  | Prepends asns ->
      r.action = Action.Permit && r.effect_.Symbolic.Effects.prepend = asns

let check (config : Config_ir.t) spec =
  match Config_ir.find_route_map config spec.policy with
  | None -> Policy_missing
  | Some map ->
      let env = Eval.env_of_config config in
      let regions = Symbolic.Transfer.compile env map in
      let bad =
        List.find_map
          (fun (r : Symbolic.Transfer.region) ->
            if region_ok spec.requirement r then None
            else
              let overlap = Symbolic.Pred.inter r.space spec.space in
              if Symbolic.Pred.is_empty overlap then None
              else
                match Symbolic.Pred.sample ~env overlap with
                | Some example -> Some (r, example)
                | None -> None)
          regions
      in
      (match bad with
      | None -> Holds
      | Some (region, example) ->
          let replaced =
            match spec.requirement with
            | Adds_community _ ->
                region.action = Action.Permit
                && region.effect_.Symbolic.Effects.comm_base <> None
            | Permits | Denies | Prepends _ -> false
          in
          Violated
            {
              spec;
              example;
              got_action = region.action;
              at_seq = region.seq;
              replaced_communities = replaced;
            })

let check_all config specs = List.map (fun s -> (s, check config s)) specs
