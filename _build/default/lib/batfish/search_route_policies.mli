(** Batfish's "Search Route Policies" question: verify that a route map
    treats a symbolic space of input routes as a local policy requires, and
    produce a concrete counterexample route when it does not.

    This is the semantic verifier of the paper's second use case: local
    policies in the style of Lightyear ("R1 should add a specific community
    at the ingress to each ISP and then drop routes based on those
    communities at the egress"). *)

open Netcore
open Policy

type requirement =
  | Permits  (** Every route in the space must be permitted. *)
  | Denies  (** Every route in the space must be denied. *)
  | Adds_community of Community.t
      (** Every route in the space must be permitted with the community
          added {e additively} — a permit that replaces the route's
          communities violates this (the paper's "additive" pitfall). *)
  | Prepends of int list
      (** Every route in the space must be permitted with exactly this
          AS-path prepending applied (used by the incremental-policy
          extension). *)

type spec = {
  policy : string;  (** Route-map name. *)
  space : Symbolic.Pred.t;
  requirement : requirement;
  description : string;  (** Human phrasing of the space, for prompts. *)
}

type violation = {
  spec : spec;
  example : Route.t;
  got_action : Action.t;
  at_seq : int option;  (** Entry that mishandled the example. *)
  replaced_communities : bool;
      (** For {!Adds_community}: the entry permitted but replaced instead of
          adding. *)
}

type outcome = Holds | Violated of violation | Policy_missing

val requirement_to_string : requirement -> string

val check : Config_ir.t -> spec -> outcome

val check_all : Config_ir.t -> spec list -> (spec * outcome) list
