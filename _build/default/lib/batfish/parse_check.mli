(** The "Batfish syntax question": parse a vendor configuration and return
    the IR together with every parse warning and lint finding. *)

type dialect = Cisco_ios | Junos

val dialect_name : dialect -> string

val check : dialect -> string -> Policy.Config_ir.t * Netcore.Diag.t list
(** Parser diagnostics followed by lint diagnostics. *)

val syntax_ok : dialect -> string -> bool
(** True when {!check} yields no diagnostics of severity [Error]. Lint
    warnings do not make a config syntactically bad. *)

val errors_only : Netcore.Diag.t list -> Netcore.Diag.t list
